/**
 * @file
 * Render tps-stats-v1 and tps-timeseries-v1 JSON dumps into one
 * self-contained HTML report: run-manifest provenance header,
 * per-cell inline-SVG interval charts (miss rate / superpage
 * coverage, promotion-demotion-shootdown events, working-set bytes,
 * TLB reach and reach utilization when the lifecycle ledger ran),
 * sampled miss-event tables and whole-run aggregate tables.  No
 * external assets — the file opens anywhere, forever.
 *
 * The rendering itself lives in obs/report_html.h so tpsd's /report
 * endpoint serves byte-identical pages; this tool owns only file
 * loading, campaign-journal traversal and the CLI surface.
 *
 * Usage: tps_report [-o report.html] input.json [more.json...]
 *        tps_report --campaign DIR|campaign.jsonl [-o report.html]
 *
 * --campaign renders a whole checkpointed campaign (tps-campaign-v1
 * journal, see obs/campaign_journal.h) into one report: run header,
 * a summary table spanning every journaled cell, then each cell's
 * stats dump and interval charts pulled from the per-cell files the
 * journal references.
 *
 * Exit codes: 0 = report written, 2 = usage/IO/parse error.
 */

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/campaign_journal.h"
#include "obs/json.h"
#include "obs/report_html.h"

namespace
{

using tps::obs::JsonValue;
namespace report = tps::obs::report;
using report::formatNumber;
using report::htmlEscape;

const JsonValue *
find(const JsonValue &v, const char *name)
{
    return v.find(name);
}

std::string
stringOr(const JsonValue *v, const std::string &fallback = "")
{
    return v != nullptr && v->type == JsonValue::Type::String
               ? v->text
               : fallback;
}

double
numberOr(const JsonValue *v, double fallback = 0.0)
{
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

JsonValue
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return tps::obs::parseJson(text.str());
    } catch (const tps::obs::JsonParseError &error) {
        std::fprintf(stderr, "error: %s: %s (offset %zu)\n",
                     path.c_str(), error.what(), error.offset());
        std::exit(2);
    }
}

/**
 * Render one whole campaign from its journal: header, per-cell
 * summary table, then each journaled cell's stats and interval
 * charts.  Per-cell file paths in the journal are relative to the
 * journal's directory.
 */
void
writeCampaign(std::ostream &os, const std::string &journal_path)
{
    tps::obs::CampaignJournal::Loaded loaded;
    std::string error;
    if (!tps::obs::CampaignJournal::load(journal_path, loaded,
                                         error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        std::exit(2);
    }
    if (!loaded.exists) {
        std::fprintf(stderr, "error: no campaign journal at %s\n",
                     journal_path.c_str());
        std::exit(2);
    }

    const std::size_t slash = journal_path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".")
                                   : journal_path.substr(0, slash);

    os << "<h2>campaign " << htmlEscape(journal_path)
       << " <span class=\"dim\">(tps-campaign-v1)</span></h2>\n";
    os << "<table class=\"manifest\">\n"
       << "<tr><th>config hash</th><td>"
       << htmlEscape(loaded.configHash) << "</td></tr>\n"
       << "<tr><th>created</th><td>" << htmlEscape(loaded.createdUtc)
       << "</td></tr>\n"
       << "<tr><th>command</th><td>" << htmlEscape(loaded.command)
       << "</td></tr>\n"
       << "<tr><th>cells journaled</th><td>" << loaded.records.size()
       << " of " << loaded.cellsTotal << "</td></tr>\n</table>\n";

    // Summary table across every journaled cell.
    os << "<table class=\"stats\"><tr><th>cell</th><th>workload</th>"
       << "<th>config</th><th>refs</th><th>instructions</th>"
       << "<th>CPI_TLB</th><th>wall s</th><th>Mrefs/s</th></tr>\n";
    for (const tps::obs::CampaignCellRecord &r : loaded.records) {
        const double mrps =
            r.wallSeconds > 0.0
                ? static_cast<double>(r.refs) / r.wallSeconds / 1e6
                : 0.0;
        os << "<tr><td>" << htmlEscape(r.key) << "</td><td>"
           << htmlEscape(r.workload) << "</td><td>"
           << htmlEscape(r.config) << "</td><td>"
           << htmlEscape(formatNumber(static_cast<double>(r.refs)))
           << "</td><td>"
           << htmlEscape(
                  formatNumber(static_cast<double>(r.instructions)))
           << "</td><td>" << htmlEscape(formatNumber(r.cpiTlb))
           << "</td><td>" << htmlEscape(formatNumber(r.wallSeconds))
           << "</td><td>" << htmlEscape(formatNumber(mrps))
           << "</td></tr>\n";
    }
    os << "</table>\n";

    // Per-cell detail: stats dump + interval charts when recorded.
    for (const tps::obs::CampaignCellRecord &r : loaded.records) {
        os << "<h2>" << htmlEscape(r.key) << "</h2>\n";
        if (!r.statsFile.empty())
            report::writeStatsSections(os, load(dir + "/" +
                                                r.statsFile));
        if (!r.timeseriesFile.empty()) {
            const JsonValue ts = load(dir + "/" + r.timeseriesFile);
            if (const JsonValue *cells = find(ts, "cells")) {
                for (const auto &[key, cell] : cells->object)
                    report::writeTimeSeriesCell(os, key, cell);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "report.html";
    std::string campaign;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" || arg == "--output") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                return 2;
            }
            out_path = argv[++i];
        } else if (arg.rfind("-o=", 0) == 0) {
            out_path = arg.substr(3);
        } else if (arg == "--campaign") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                return 2;
            }
            campaign = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: tps_report [-o report.html] "
                         "[--campaign DIR|campaign.jsonl] "
                         "input.json [more.json...]\n");
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty() && campaign.empty()) {
        std::fprintf(stderr,
                     "usage: tps_report [-o report.html] "
                     "[--campaign DIR|campaign.jsonl] input.json "
                     "[more.json...]\n");
        return 2;
    }

    // A directory argument means "the campaign dir".
    if (!campaign.empty()) {
        struct stat st;
        if (stat(campaign.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
            campaign += "/campaign.jsonl";
    }

    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }

    report::writePageHead(os, "tps run report");

    if (!campaign.empty())
        writeCampaign(os, campaign);

    for (const std::string &path : inputs) {
        const JsonValue doc = load(path);
        const std::string schema = stringOr(find(doc, "schema"));
        if (schema.empty()) {
            std::fprintf(stderr,
                         "error: %s: missing \"schema\" field\n",
                         path.c_str());
            return 2;
        }
        os << "<h2>" << htmlEscape(path) << " <span class=\"dim\">("
           << htmlEscape(schema) << ")</span></h2>\n";
        report::writeManifest(os, find(doc, "manifest"));

        if (schema == "tps-timeseries-v1") {
            const JsonValue *cells = find(doc, "cells");
            if (cells == nullptr ||
                cells->type != JsonValue::Type::Object) {
                std::fprintf(stderr, "error: %s: no cells section\n",
                             path.c_str());
                return 2;
            }
            os << "<p class=\"dim\">" << cells->object.size()
               << " cells, interval "
               << htmlEscape(formatNumber(
                      numberOr(find(doc, "interval_refs"))))
               << " refs</p>\n";
            for (const auto &[key, cell] : cells->object)
                report::writeTimeSeriesCell(os, key, cell);
        } else if (schema == "tps-stats-v1") {
            report::writeStatsSections(os, doc);
        } else {
            std::fprintf(stderr, "error: %s: unknown schema %s\n",
                         path.c_str(), schema.c_str());
            return 2;
        }
    }

    report::writePageFoot(os);
    if (!os) {
        std::fprintf(stderr, "error: write to %s failed\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
