/**
 * @file
 * tps_top: terminal viewer for a running campaign's heartbeat file.
 *
 * Polls the tps-heartbeat-v1 JSON that tps_campaign atomically
 * rewrites and renders a one-screen status: campaign state, cell and
 * reference progress, throughput, ETA, and the in-flight cells with
 * their elapsed time and per-cell ETA.  Because the writer replaces
 * the file by rename, a read never observes a torn document — a
 * parse failure just means "between renames", and the viewer retries.
 *
 * Modes:
 *   tps_top DIR|FILE              watch until the campaign finishes
 *   tps_top DIR|FILE --once       render one frame and exit
 *   tps_top DIR|FILE --json       dump one parsed heartbeat as JSON
 *                                 and exit (implies --once); scripts
 *                                 and tps_submit poll status this way
 *                                 without scraping the terminal view
 *   --interval-ms N               poll period (default 500)
 *   --wait-ms N                   wait up to N ms for the file to
 *                                 appear / first parse (default 0
 *                                 under --once; watch mode without an
 *                                 explicit --wait-ms waits
 *                                 indefinitely, so the viewer can be
 *                                 launched before the campaign)
 *
 * Exit codes: 0 rendered at least one frame, 2 usage or no heartbeat
 * within the wait budget.
 */

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/heartbeat.h"

namespace
{

using tps::obs::Heartbeat;
using tps::obs::HeartbeatCell;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s DIR|heartbeat.json [--once] [--json] "
                 "[--interval-ms N] [--wait-ms N]\n",
                 argv0);
    return 2;
}

bool
readHeartbeat(const std::string &path, Heartbeat &hb)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string error;
    return Heartbeat::fromJson(ss.str(), hb, error);
}

std::string
fmtSeconds(double s)
{
    char buf[64];
    if (s < 0.0)
        return "-";
    if (s >= 3600.0)
        std::snprintf(buf, sizeof buf, "%.0fh%02.0fm", s / 3600.0,
                      (s - 3600.0 * static_cast<int>(s / 3600.0)) /
                          60.0);
    else if (s >= 60.0)
        std::snprintf(buf, sizeof buf, "%.0fm%02.0fs", s / 60.0,
                      s - 60.0 * static_cast<int>(s / 60.0));
    else
        std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
}

void
render(const Heartbeat &hb, bool clear)
{
    if (clear)
        std::printf("\033[H\033[J"); // home + clear, plain ANSI
    std::printf("tps campaign — %-12s  %s\n", hb.state.c_str(),
                hb.timestampUtc.c_str());
    std::printf("  config %s   uptime %s", hb.configHash.c_str(),
                fmtSeconds(hb.uptimeSeconds).c_str());
    if (!hb.hostname.empty())
        std::printf("   writer %s:%llu", hb.hostname.c_str(),
                    static_cast<unsigned long long>(hb.pid));
    std::printf("\n");
    std::printf("  cells %llu/%llu done (%llu resumed)   refs %.2fM   "
                "%.2fM refs/s   eta %s\n",
                static_cast<unsigned long long>(hb.cellsDone),
                static_cast<unsigned long long>(hb.cellsTotal),
                static_cast<unsigned long long>(hb.cellsResumed),
                static_cast<double>(hb.refsDone) / 1e6,
                hb.refsPerSec / 1e6,
                fmtSeconds(hb.etaSeconds).c_str());
    std::printf("  workers %llu/%llu busy\n",
                static_cast<unsigned long long>(hb.workersBusy),
                static_cast<unsigned long long>(hb.workers));
    if (!hb.inFlight.empty()) {
        std::printf("  in flight:\n");
        for (const HeartbeatCell &cell : hb.inFlight)
            std::printf("    %-44s elapsed %-8s eta %s\n",
                        cell.key.c_str(),
                        fmtSeconds(cell.elapsedSeconds).c_str(),
                        fmtSeconds(cell.etaSeconds).c_str());
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool once = false;
    bool json = false;
    bool wait_set = false;
    std::uint64_t interval_ms = 500;
    std::uint64_t wait_ms = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--once") {
            once = true;
        } else if (arg == "--json") {
            // Machine-readable once mode: the parsed heartbeat is
            // re-serialized, so consumers get schema-checked JSON
            // (never a torn or foreign document).
            json = true;
            once = true;
        } else if (arg == "--interval-ms" && i + 1 < argc) {
            interval_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--wait-ms" && i + 1 < argc) {
            wait_ms = std::strtoull(argv[++i], nullptr, 10);
            wait_set = true;
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    // A directory argument means "the campaign dir": look inside it.
    // Re-resolved on every wait poll because under --wait-ms the
    // campaign may not have created the directory yet.
    const std::string arg_path = path;
    const auto resolve = [](const std::string &p) {
        struct stat st;
        if (stat(p.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
            return p + "/heartbeat.json";
        return p;
    };
    path = resolve(arg_path);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(wait_ms);
    Heartbeat hb;
    bool said_waiting = false;
    while (!readHeartbeat(path, hb)) {
        // --once (and an explicit --wait-ms) bound the wait; plain
        // watch mode polls until the campaign shows up, so the viewer
        // can be started first.
        if ((once || wait_set) &&
            std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr, "error: no readable heartbeat at %s\n",
                         path.c_str());
            return 2;
        }
        if (!once && !said_waiting) {
            std::printf("tps campaign — waiting for heartbeat at %s\n",
                        path.c_str());
            std::fflush(stdout);
            said_waiting = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        path = resolve(arg_path);
    }

    if (json) {
        std::ostringstream out;
        hb.writeJson(out);
        out << '\n';
        std::fputs(out.str().c_str(), stdout);
        return 0;
    }
    if (once) {
        render(hb, false);
        return 0;
    }

    render(hb, true);
    while (hb.state != "finished" && hb.state != "interrupted") {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
        Heartbeat next;
        if (readHeartbeat(path, next)) // parse gap = between renames
            hb = next;
        render(hb, true);
    }
    return 0;
}
