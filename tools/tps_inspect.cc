/**
 * @file
 * tps_inspect: drill into a tps-events-v1 event log (written by
 * `--events-out`, see bench_common.h).  Where the stats dump answers
 * "how many promotions", the event log answers "which chunk, when,
 * and what happened to it afterwards" — this tool is the query side.
 *
 * Usage: tps_inspect [--cell SUBSTR] [--top N] [--vpn V] events.json
 *
 * Default report, per cell:
 *   - stream table: events seen (pre-sampling), kept, time range
 *   - top-N churned chunks: ranked by promote+demote event count,
 *     with the wasted back-and-forth (min(promotes, demotes)) shown
 *     as "churn" — the paper's promotion-criterion tradeoff made
 *     concrete per chunk
 *   - TLB-eviction dwell distribution per eviction stream: log2
 *     buckets of probes survived between fill and eviction (short
 *     dwells = entries evicted before they earned their slot)
 *   - victim-TLB summary (when victim_hit/victim_evict streams are
 *     present): the primary's tlb_evict stream is the victim array's
 *     refill stream, so the rescue rate (victim hits per refill) and
 *     the rescued entries' dwell fall straight out of the log
 *
 * --vpn V (decimal or 0x-hex) prints a chronological timeline of
 * every kept event whose "vpn" or "chunk" operand equals V, merged
 * across streams — the life story of one page.  Note the unit
 * difference: promote/demote/resv_break streams carry chunk numbers,
 * eviction/shootdown streams carry vpns; V is matched against
 * whichever the stream has.
 *
 * --cell SUBSTR restricts every report to cells whose key contains
 * SUBSTR.
 *
 * Exit codes: 0 ok (even when empty), 2 usage / IO / parse / schema.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace
{

using tps::obs::JsonValue;

std::uint64_t
asU64(const JsonValue &v)
{
    if (v.type == JsonValue::Type::Int)
        return static_cast<std::uint64_t>(v.integer);
    return static_cast<std::uint64_t>(v.number);
}

/** One stream of one cell, decoded from the document. */
struct StreamView
{
    std::string name;
    std::vector<std::string> fields; ///< includes the leading "t"
    std::uint64_t seen = 0;
    const JsonValue *events = nullptr; ///< array of [t, ...] rows

    std::size_t kept() const
    {
        return events != nullptr ? events->array.size() : 0;
    }

    /** Index of @p field in the rows; npos when absent. */
    std::size_t fieldIndex(const std::string &field) const
    {
        for (std::size_t i = 0; i < fields.size(); ++i)
            if (fields[i] == field)
                return i;
        return std::string::npos;
    }
};

std::vector<StreamView>
decodeStreams(const JsonValue &cell)
{
    std::vector<StreamView> out;
    const JsonValue *streams = cell.find("streams");
    if (streams == nullptr)
        return out;
    for (const auto &[name, stream] : streams->object) {
        StreamView view;
        view.name = name;
        if (const JsonValue *fields = stream.find("fields"))
            for (const JsonValue &f : fields->array)
                view.fields.push_back(f.text);
        if (const JsonValue *seen = stream.find("seen"))
            view.seen = asU64(*seen);
        view.events = stream.find("events");
        out.push_back(std::move(view));
    }
    return out;
}

void
printStreamTable(const std::vector<StreamView> &streams)
{
    std::printf("  %-22s %10s %10s %12s %12s\n", "stream", "seen",
                "kept", "first_t", "last_t");
    for (const StreamView &s : streams) {
        std::string first = "-";
        std::string last = "-";
        if (s.kept() > 0) {
            first = std::to_string(asU64(s.events->array.front().array[0]));
            last = std::to_string(asU64(s.events->array.back().array[0]));
        }
        std::printf("  %-22s %10llu %10zu %12s %12s\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.seen), s.kept(),
                    first.c_str(), last.c_str());
    }
}

/** Promote/demote traffic of one chunk. */
struct Churn
{
    std::uint64_t promotes = 0;
    std::uint64_t demotes = 0;
};

void
printChurnTable(const std::vector<StreamView> &streams, std::size_t top)
{
    std::map<std::uint64_t, Churn> chunks;
    for (const StreamView &s : streams) {
        const bool promote = s.name == "promote";
        if (!promote && s.name != "demote")
            continue;
        const std::size_t chunk_at = s.fieldIndex("chunk");
        if (chunk_at == std::string::npos || s.events == nullptr)
            continue;
        for (const JsonValue &row : s.events->array) {
            if (row.array.size() <= chunk_at)
                continue;
            Churn &c = chunks[asU64(row.array[chunk_at])];
            if (promote)
                ++c.promotes;
            else
                ++c.demotes;
        }
    }
    if (chunks.empty()) {
        std::printf("  (no promote/demote events)\n");
        return;
    }
    std::vector<std::pair<std::uint64_t, Churn>> ranked(chunks.begin(),
                                                        chunks.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  const std::uint64_t ta =
                      a.second.promotes + a.second.demotes;
                  const std::uint64_t tb =
                      b.second.promotes + b.second.demotes;
                  if (ta != tb)
                      return ta > tb;
                  return a.first < b.first;
              });
    std::printf("  %-16s %10s %10s %10s\n", "chunk", "promotes",
                "demotes", "churn");
    const std::size_t n = std::min(top, ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto &[chunk, c] = ranked[i];
        std::printf("  %#-16llx %10llu %10llu %10llu\n",
                    static_cast<unsigned long long>(chunk),
                    static_cast<unsigned long long>(c.promotes),
                    static_cast<unsigned long long>(c.demotes),
                    static_cast<unsigned long long>(
                        std::min(c.promotes, c.demotes)));
    }
    if (ranked.size() > n)
        std::printf("  ... and %zu more chunk(s)\n", ranked.size() - n);
}

void
printDwellHistograms(const std::vector<StreamView> &streams)
{
    bool any = false;
    for (const StreamView &s : streams) {
        const std::size_t dwell_at = s.fieldIndex("dwell");
        if (dwell_at == std::string::npos || s.kept() == 0)
            continue;
        any = true;
        // log2 buckets: bucket 0 = dwell 0, bucket k = [2^(k-1), 2^k).
        std::vector<std::uint64_t> buckets;
        std::uint64_t max_count = 0;
        for (const JsonValue &row : s.events->array) {
            if (row.array.size() <= dwell_at)
                continue;
            const std::uint64_t dwell = asU64(row.array[dwell_at]);
            std::size_t bucket = 0;
            while ((std::uint64_t{1} << bucket) <= dwell && bucket < 63)
                ++bucket;
            if (buckets.size() <= bucket)
                buckets.resize(bucket + 1, 0);
            max_count = std::max(max_count, ++buckets[bucket]);
        }
        std::printf("  %s dwell (probes survived, log2 buckets):\n",
                    s.name.c_str());
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            if (buckets[b] == 0)
                continue;
            const int bars = static_cast<int>(
                (40 * buckets[b] + max_count - 1) / max_count);
            std::printf("    <2^%-2zu %10llu %.*s\n", b,
                        static_cast<unsigned long long>(buckets[b]),
                        bars,
                        "########################################");
        }
    }
    if (!any)
        std::printf("  (no eviction events with dwell)\n");
}

/** Does @p name identify stream @p base (tagged variants included)? */
bool
streamIs(const std::string &name, const char *base)
{
    const std::size_t len = std::strlen(base);
    return name.compare(0, len, base) == 0 &&
           (name.size() == len || name[len] == '.');
}

/**
 * Victim-TLB summary: when a VictimTlb ran, the primary's tlb_evict
 * stream doubles as the victim array's refill stream (every eviction
 * parks the casualty there), and victim_hit / victim_evict record
 * what the array gave back vs aged out.  Quantify the rescue rate:
 * hits per refill, with the mean victim dwell of rescued entries.
 */
void
printVictimSummary(const std::vector<StreamView> &streams)
{
    std::uint64_t refills = 0;
    std::uint64_t hits = 0;
    std::uint64_t evicts = 0;
    std::uint64_t hit_dwell_sum = 0;
    std::uint64_t hit_dwell_n = 0;
    bool have_victim = false;
    for (const StreamView &s : streams) {
        if (streamIs(s.name, "tlb_evict")) {
            refills += s.seen;
        } else if (streamIs(s.name, "victim_hit")) {
            have_victim = true;
            hits += s.seen;
            const std::size_t dwell_at = s.fieldIndex("dwell");
            if (dwell_at == std::string::npos || s.events == nullptr)
                continue;
            for (const JsonValue &row : s.events->array) {
                if (row.array.size() <= dwell_at)
                    continue;
                hit_dwell_sum += asU64(row.array[dwell_at]);
                ++hit_dwell_n;
            }
        } else if (streamIs(s.name, "victim_evict")) {
            have_victim = true;
            evicts += s.seen;
        }
    }
    if (!have_victim)
        return;
    std::printf("\n  victim TLB: %llu refill(s) (primary tlb_evict), "
                "%llu rescued, %llu aged out",
                static_cast<unsigned long long>(refills),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(evicts));
    if (refills > 0)
        std::printf(" (rescue rate %.1f%%)",
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(refills));
    if (hit_dwell_n > 0)
        std::printf(", mean rescued dwell %.0f probes",
                    static_cast<double>(hit_dwell_sum) /
                        static_cast<double>(hit_dwell_n));
    std::printf("\n");
}

void
printTimeline(const std::vector<StreamView> &streams, std::uint64_t vpn)
{
    struct Line
    {
        std::uint64_t t;
        std::string text;
    };
    std::vector<Line> lines;
    for (const StreamView &s : streams) {
        std::size_t match_at = s.fieldIndex("vpn");
        if (match_at == std::string::npos)
            match_at = s.fieldIndex("chunk");
        if (match_at == std::string::npos || s.events == nullptr)
            continue;
        for (const JsonValue &row : s.events->array) {
            if (row.array.size() <= match_at ||
                asU64(row.array[match_at]) != vpn)
                continue;
            std::ostringstream text;
            text << s.name;
            for (std::size_t f = 1;
                 f < s.fields.size() && f < row.array.size(); ++f)
                text << " " << s.fields[f] << "="
                     << asU64(row.array[f]);
            lines.push_back(Line{asU64(row.array[0]), text.str()});
        }
    }
    std::stable_sort(lines.begin(), lines.end(),
                     [](const Line &a, const Line &b) {
                         return a.t < b.t;
                     });
    if (lines.empty()) {
        std::printf("  (no events for %#llx)\n",
                    static_cast<unsigned long long>(vpn));
        return;
    }
    for (const Line &line : lines)
        std::printf("  t=%-12llu %s\n",
                    static_cast<unsigned long long>(line.t),
                    line.text.c_str());
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--cell SUBSTR] [--top N] [--vpn V] "
                 "events.json\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cell_filter;
    std::string path;
    std::size_t top = 10;
    bool have_vpn = false;
    std::uint64_t vpn = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cell" && i + 1 < argc) {
            cell_filter = argv[++i];
        } else if (arg == "--top" && i + 1 < argc) {
            char *end = nullptr;
            top = static_cast<std::size_t>(
                std::strtoull(argv[++i], &end, 10));
            if (end == argv[i] || *end != '\0' || top == 0) {
                std::fprintf(stderr,
                             "error: --top expects a positive count\n");
                return 2;
            }
        } else if (arg == "--vpn" && i + 1 < argc) {
            char *end = nullptr;
            vpn = std::strtoull(argv[++i], &end, 0);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr,
                             "error: --vpn expects a number, got "
                             "'%s'\n",
                             argv[i]);
                return 2;
            }
            have_vpn = true;
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    JsonValue doc;
    try {
        doc = tps::obs::parseJson(text.str());
    } catch (const tps::obs::JsonParseError &error) {
        std::fprintf(stderr, "error: %s: %s (offset %zu)\n",
                     path.c_str(), error.what(), error.offset());
        return 2;
    }

    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || schema->type != JsonValue::Type::String ||
        schema->text != "tps-events-v1") {
        std::fprintf(stderr,
                     "error: %s is not a tps-events-v1 document\n",
                     path.c_str());
        return 2;
    }

    const JsonValue *cells = doc.find("cells");
    std::size_t matched = 0;
    if (cells != nullptr) {
        for (const auto &[key, cell] : cells->object) {
            if (!cell_filter.empty() &&
                key.find(cell_filter) == std::string::npos)
                continue;
            ++matched;
            std::printf("== cell %s ==\n", key.c_str());
            const std::vector<StreamView> streams =
                decodeStreams(cell);
            if (have_vpn) {
                printTimeline(streams, vpn);
            } else {
                printStreamTable(streams);
                std::printf("\n  top churned chunks:\n");
                printChurnTable(streams, top);
                std::printf("\n");
                printDwellHistograms(streams);
                printVictimSummary(streams);
            }
            std::printf("\n");
        }
    }
    std::printf("%zu cell(s)%s\n", matched,
                cell_filter.empty()
                    ? ""
                    : (" matching '" + cell_filter + "'").c_str());
    return 0;
}
