/**
 * @file
 * Campaign driver: the overnight-run layer above the sweep engine.
 *
 * Enumerates workload x configuration cells (paper preset: all 12
 * workloads against FA and set-assoc TLBs at 4K/8K/32K/two-size),
 * schedules them on the thread pool via SweepRunner, and makes the
 * run *durable* and *observable*:
 *
 *   - every cell completion is committed to an append-only JSONL
 *     journal (tps-campaign-v1) through atomic write-temp-rename, so
 *     `--resume` after any interruption — including kill -9 — re-runs
 *     only the missing cells and the final aggregate is byte-identical
 *     to an uninterrupted run;
 *   - a heartbeat JSON (tps-heartbeat-v1) is atomically rewritten
 *     every interval with in-flight cells, throughput and ETAs;
 *     `tps_top` tails it;
 *   - per-cell stats (+ optional timeseries) files feed
 *     `tps_report --campaign`.
 *
 * Exit codes: 0 success / nothing to do, 2 usage or refusal (existing
 * journal without --resume, config-hash mismatch on --resume).
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/figures.h"
#include "core/sweep.h"
#include "obs/atomic_file.h"
#include "obs/campaign_journal.h"
#include "obs/heartbeat.h"
#include "obs/manifest.h"
#include "obs/progress.h"
#include "obs/signal_flush.h"
#include "obs/stat_registry.h"
#include "obs/timeseries.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace
{

using namespace tps;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --out DIR [options]\n"
                 "\n"
                 "  --out DIR                 campaign directory (journal, "
                 "heartbeat, per-cell files)\n"
                 "  --preset paper|smoke      cell grid (default paper: "
                 "every workload x FA64/SA32x2 x 4K/8K/32K/two-size)\n"
                 "  --workloads a,b,...       override the preset's "
                 "workload list\n"
                 "  --refs N                  references per cell "
                 "(default: TPS_REFS or the preset)\n"
                 "  --window N                two-size assignment window T\n"
                 "  --warmup N                warmup references per cell\n"
                 "  --threads N               worker threads (0 = auto)\n"
                 "  --timeseries-interval N   per-cell interval telemetry "
                 "(0 = off)\n"
                 "  --miss-sample K           reservoir-sample K misses "
                 "per cell\n"
                 "  --heartbeat-interval-ms N heartbeat rewrite period "
                 "(default 1000)\n"
                 "  --shared-pass on|off      share classification passes "
                 "(default on)\n"
                 "  --resume                  skip cells already in the "
                 "journal\n"
                 "  --dry-run                 print the cell enumeration "
                 "and exit\n"
                 "  --progress                progress lines on stderr\n"
                 "  --test-cell-delay-ms N    test hook: sleep N ms at "
                 "each cell start\n",
                 argv0);
    return 2;
}

bool
flagValue(int argc, char **argv, const std::string &flag,
          std::string &value)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == flag && i + 1 < argc) {
            value = argv[i + 1];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            value = arg.substr(flag.size() + 1);
            return true;
        }
    }
    return false;
}

bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

std::uint64_t
parseCount(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                     flag.c_str(), value.c_str());
        std::exit(2);
    }
    return parsed;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
makeDirs(const std::string &path)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        partial = path.substr(0, slash);
        if (!partial.empty() && partial != "/" &&
            mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
        pos = slash + 1;
    }
    return true;
}

/** Single-size column: index by that size's bits (cf. runCpiStudy). */
TlbConfig
singleSizeTlb(TlbConfig base, unsigned size_log2)
{
    base.scheme = IndexScheme::Exact;
    base.smallLog2 = size_log2;
    base.largeLog2 = size_log2 + 3;
    return base;
}

/** One column of the campaign grid. */
struct Column
{
    std::string label;
    TlbConfig tlb;
    core::PolicySpec policy;
};

std::vector<Column>
presetColumns(const std::string &preset, const TwoSizeConfig &two)
{
    TlbConfig fa;
    fa.organization = TlbOrganization::FullyAssociative;
    fa.entries = 64;
    fa.replacement = ReplPolicy::LRU;

    TlbConfig sa;
    sa.organization = TlbOrganization::SetAssociative;
    sa.entries = 32;
    sa.ways = 2;
    sa.scheme = IndexScheme::Exact;

    auto columnsFor = [&](const std::string &base_name,
                          const TlbConfig &base,
                          std::vector<Column> &out) {
        out.push_back({base_name + " 4K",
                       singleSizeTlb(base, kLog2_4K),
                       core::PolicySpec::single(kLog2_4K)});
        out.push_back({base_name + " 8K",
                       singleSizeTlb(base, kLog2_8K),
                       core::PolicySpec::single(kLog2_8K)});
        out.push_back({base_name + " 32K",
                       singleSizeTlb(base, kLog2_32K),
                       core::PolicySpec::single(kLog2_32K)});
        TlbConfig two_tlb = base;
        two_tlb.smallLog2 = two.smallLog2;
        two_tlb.largeLog2 = two.largeLog2;
        out.push_back({base_name + " 4K/32K", two_tlb,
                       core::PolicySpec::twoSizes(two)});
    };

    std::vector<Column> columns;
    if (preset == "paper") {
        columnsFor("fa64", fa, columns);
        columnsFor("sa32x2", sa, columns);
    } else if (preset == "smoke") {
        columns.push_back({"fa64 4K", singleSizeTlb(fa, kLog2_4K),
                           core::PolicySpec::single(kLog2_4K)});
        TlbConfig two_tlb = fa;
        two_tlb.smallLog2 = two.smallLog2;
        two_tlb.largeLog2 = two.largeLog2;
        columns.push_back({"fa64 4K/32K", two_tlb,
                           core::PolicySpec::twoSizes(two)});
    } else {
        std::fprintf(stderr, "error: unknown preset '%s'\n",
                     preset.c_str());
        std::exit(2);
    }
    return columns;
}

/** Everything the heartbeat thread and hooks share. */
struct CampaignState
{
    std::mutex mutex;
    std::condition_variable cv; ///< wakes the heartbeat thread to stop
    bool stop = false;

    struct InFlight
    {
        std::string workload;
        std::string config;
        std::chrono::steady_clock::time_point start;
    };
    std::map<std::string, InFlight> inFlight; ///< keyed by cell key

    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsResumed = 0;
    std::uint64_t cellsDone = 0;    ///< journaled (includes resumed)
    std::uint64_t refsDone = 0;     ///< journaled refs
    std::uint64_t cellsDoneProc = 0; ///< completed by this process
    double wallSumProc = 0.0;        ///< their summed wall seconds

    unsigned workers = 1;
    std::string configHash;
    std::chrono::steady_clock::time_point started =
        std::chrono::steady_clock::now();
};

obs::Heartbeat
snapshotHeartbeat(CampaignState &state, const std::string &hb_state,
                  std::deque<std::pair<double, std::uint64_t>> &window)
{
    obs::Heartbeat hb;
    const auto now = std::chrono::steady_clock::now();
    const double uptime =
        std::chrono::duration<double>(now - state.started).count();

    std::lock_guard<std::mutex> lock(state.mutex);
    hb.state = hb_state;
    hb.configHash = state.configHash;
    hb.timestampUtc = obs::RunManifest::currentTimestampUtc();
    hb.hostname = obs::RunManifest::currentHostname();
    hb.pid = static_cast<std::uint64_t>(::getpid());
    hb.uptimeSeconds = uptime;
    hb.workers = state.workers;
    hb.workersBusy = state.inFlight.size();
    hb.cellsTotal = state.cellsTotal;
    hb.cellsDone = state.cellsDone;
    hb.cellsResumed = state.cellsResumed;
    hb.refsDone = state.refsDone;

    // Windowed campaign throughput: refs journaled by this process
    // over the trailing <= 30s of heartbeats (cumulative averages go
    // stale over an overnight run's slow and fast phases).
    window.emplace_back(uptime, state.refsDone);
    while (window.size() > 2 && uptime - window.front().first > 30.0)
        window.pop_front();
    const double dt = uptime - window.front().first;
    if (dt > 0.0 && state.refsDone >= window.front().second) {
        hb.refsPerSec =
            static_cast<double>(state.refsDone -
                                window.front().second) /
            dt;
    }

    const double avg_wall =
        state.cellsDoneProc != 0
            ? state.wallSumProc /
                  static_cast<double>(state.cellsDoneProc)
            : -1.0;
    for (const auto &[key, cell] : state.inFlight) {
        obs::HeartbeatCell out;
        out.key = key;
        out.workload = cell.workload;
        out.config = cell.config;
        out.elapsedSeconds =
            std::chrono::duration<double>(now - cell.start).count();
        if (avg_wall > 0.0) {
            out.etaSeconds =
                avg_wall > out.elapsedSeconds
                    ? avg_wall - out.elapsedSeconds
                    : 0.0;
        }
        hb.inFlight.push_back(std::move(out));
    }
    if (avg_wall > 0.0 && state.workers != 0 &&
        state.cellsTotal >= state.cellsDone) {
        const double remaining =
            static_cast<double>(state.cellsTotal - state.cellsDone);
        hb.etaSeconds = remaining * avg_wall /
                        static_cast<double>(state.workers);
    }
    return hb;
}

// Shared with the signal handler: a final "interrupted" heartbeat is
// best-effort evidence of where the campaign stood.
CampaignState *g_state = nullptr;
obs::HeartbeatWriter *g_heartbeat = nullptr;

} // namespace

int
main(int argc, char **argv)
{
    std::string value;
    std::string out_dir;
    if (!flagValue(argc, argv, "--out", value))
        return usage(argv[0]);
    out_dir = value;

    std::string preset = "paper";
    if (flagValue(argc, argv, "--preset", value))
        preset = value;

    // Scale defaults honour TPS_REFS/TPS_WINDOW/TPS_WARMUP like every
    // bench; the smoke preset shrinks them so CI finishes in seconds.
    core::StudyScale scale = core::defaultScale();
    if (preset == "smoke") {
        scale.refs = 60'000;
        scale.window = 10'000;
        scale.warmupRefs = 15'000;
    }
    if (flagValue(argc, argv, "--refs", value))
        scale.refs = parseCount("--refs", value);
    if (flagValue(argc, argv, "--window", value))
        scale.window = parseCount("--window", value);
    if (flagValue(argc, argv, "--warmup", value))
        scale.warmupRefs = parseCount("--warmup", value);

    unsigned threads = 0;
    if (flagValue(argc, argv, "--threads", value))
        threads =
            static_cast<unsigned>(parseCount("--threads", value));

    obs::TimeSeriesConfig ts;
    if (flagValue(argc, argv, "--timeseries-interval", value))
        ts.intervalRefs = parseCount("--timeseries-interval", value);
    if (flagValue(argc, argv, "--miss-sample", value))
        ts.missSampleCapacity = static_cast<std::size_t>(
            parseCount("--miss-sample", value));

    std::uint64_t heartbeat_ms = 1000;
    if (flagValue(argc, argv, "--heartbeat-interval-ms", value))
        heartbeat_ms = parseCount("--heartbeat-interval-ms", value);

    bool shared_pass = true;
    if (flagValue(argc, argv, "--shared-pass", value)) {
        if (value == "on")
            shared_pass = true;
        else if (value == "off")
            shared_pass = false;
        else {
            std::fprintf(stderr,
                         "error: --shared-pass expects on|off\n");
            return 2;
        }
    }

    std::uint64_t test_delay_ms = 0;
    if (flagValue(argc, argv, "--test-cell-delay-ms", value))
        test_delay_ms = parseCount("--test-cell-delay-ms", value);

    const bool resume = hasFlag(argc, argv, "--resume");
    const bool dry_run = hasFlag(argc, argv, "--dry-run");
    if (hasFlag(argc, argv, "--progress"))
        obs::setProgressEnabled(true);

    std::vector<std::string> names;
    if (flagValue(argc, argv, "--workloads", value))
        names = splitCsv(value);
    else if (preset == "smoke")
        names = {workloads::suiteNames()[0],
                 workloads::suiteNames()[1]};
    else
        names = workloads::suiteNames();

    TwoSizeConfig two;
    two.window = scale.window;
    const std::vector<Column> columns = presetColumns(preset, two);

    core::RunOptions options;
    options.maxRefs = scale.refs;
    options.warmupRefs =
        scale.warmupRefs < scale.refs ? scale.warmupRefs : 0;
    options.timeseries = ts;
    options.chunkRefs = scale.chunkRefs;
    options.harnessStats = true;

    core::SweepRunner runner;
    runner.workloads(names).options(options).threads(threads).sharedPass(
        shared_pass);
    for (const Column &column : columns)
        runner.configuration(column.tlb, column.policy, column.label);
    const std::string hash = runner.fingerprint();

    // Row-major enumeration, mirroring SweepRunner::run()'s order.
    struct Plan
    {
        std::string key;
        std::string workload;
        std::string config;
    };
    std::vector<Plan> plans;
    plans.reserve(names.size() * columns.size());
    for (const std::string &name : names)
        for (const Column &column : columns)
            plans.push_back(
                {core::SweepRunner::cellKey(name, column.label), name,
                 column.label});

    const std::string journal_path = out_dir + "/campaign.jsonl";
    obs::CampaignJournal::Loaded loaded;
    std::string error;
    if (!obs::CampaignJournal::load(journal_path, loaded, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    if (loaded.exists && !resume) {
        std::fprintf(stderr,
                     "error: %s already holds a campaign (%zu cells "
                     "journaled); pass --resume to continue it or use "
                     "a fresh --out\n",
                     journal_path.c_str(), loaded.records.size());
        return 2;
    }
    if (loaded.exists && loaded.configHash != hash) {
        std::fprintf(stderr,
                     "error: refusing to resume %s: journal config "
                     "hash %s does not match this invocation's %s "
                     "(different cells or run options)\n",
                     journal_path.c_str(), loaded.configHash.c_str(),
                     hash.c_str());
        return 2;
    }

    std::set<std::string> done_keys;
    std::uint64_t resumed_refs = 0;
    for (const obs::CampaignCellRecord &r : loaded.records) {
        done_keys.insert(r.key);
        resumed_refs += r.refs;
    }

    if (dry_run) {
        std::printf("campaign: %zu cells (%zu workloads x %zu "
                    "configs), config %s\n",
                    plans.size(), names.size(), columns.size(),
                    hash.c_str());
        for (const Plan &plan : plans)
            std::printf("  %-40s %-16s %-14s%s\n", plan.key.c_str(),
                        plan.workload.c_str(), plan.config.c_str(),
                        done_keys.count(plan.key) ? "  [done]" : "");
        std::printf("dry run: nothing executed\n");
        return 0;
    }

    if (!makeDirs(out_dir)) {
        std::fprintf(stderr, "error: cannot create %s: %s\n",
                     out_dir.c_str(), std::strerror(errno));
        return 2;
    }

    std::string command;
    for (int i = 0; i < argc; ++i) {
        if (i != 0)
            command += ' ';
        command += argv[i];
    }

    obs::CampaignJournal journal(journal_path);
    if (loaded.exists)
        journal.resume(loaded);
    else
        journal.start(hash, plans.size(), command,
                      obs::RunManifest::currentTimestampUtc());

    const std::string aggregate_path = out_dir + "/campaign_stats.json";
    auto writeAggregate = [&]() -> bool {
        std::ostringstream agg;
        std::string agg_error;
        if (!obs::aggregateCampaignStats(journal_path, agg,
                                         agg_error) ||
            !obs::atomicWriteFile(aggregate_path, agg.str(),
                                  agg_error)) {
            std::fprintf(stderr, "error: aggregate: %s\n",
                         agg_error.c_str());
            return false;
        }
        return true;
    };

    if (done_keys.size() == plans.size()) {
        // Re-resuming a completed campaign is a no-op: the journal is
        // not rewritten, no cell runs.  (The aggregate is re-derived
        // only if a crash between the last journal commit and the
        // aggregate write left it missing.)
        std::ifstream agg_in(aggregate_path);
        if (!agg_in && !writeAggregate())
            return 2;
        std::printf("campaign: nothing to do (%zu/%zu cells already "
                    "journaled in %s)\n",
                    done_keys.size(), plans.size(),
                    journal_path.c_str());
        return 0;
    }

    CampaignState state;
    state.cellsTotal = plans.size();
    state.cellsResumed = done_keys.size();
    state.cellsDone = done_keys.size();
    state.refsDone = resumed_refs;
    state.workers = threads != 0 ? threads
                                 : util::ThreadPool::defaultThreads();
    state.configHash = hash;

    obs::HeartbeatWriter heartbeat(out_dir + "/heartbeat.json");
    g_state = &state;
    g_heartbeat = &heartbeat;
    obs::installSignalFlush([](int) {
        // Best-effort: the journal is already durable; this just
        // leaves a final status file for tps_top / humans.
        if (g_state != nullptr && g_heartbeat != nullptr) {
            std::deque<std::pair<double, std::uint64_t>> w;
            std::string e;
            g_heartbeat->write(
                snapshotHeartbeat(*g_state, "interrupted", w), e);
        }
    });

    std::deque<std::pair<double, std::uint64_t>> hb_window;
    {
        std::string hb_error;
        if (!heartbeat.write(
                snapshotHeartbeat(state, "starting", hb_window),
                hb_error))
            std::fprintf(stderr, "warn: %s\n", hb_error.c_str());
    }
    std::thread hb_thread([&] {
        std::unique_lock<std::mutex> lock(state.mutex);
        while (!state.cv.wait_for(
            lock, std::chrono::milliseconds(heartbeat_ms),
            [&] { return state.stop; })) {
            lock.unlock();
            std::string hb_error;
            if (!heartbeat.write(
                    snapshotHeartbeat(state, "running", hb_window),
                    hb_error))
                std::fprintf(stderr, "warn: %s\n", hb_error.c_str());
            lock.lock();
        }
    });

    auto fileStem = [](const std::string &workload,
                       const std::string &config) {
        return "cell_" + obs::slugify(workload) + "__" +
               obs::slugify(config);
    };

    runner.resumed(done_keys.size(), resumed_refs);
    runner.skipCells([&](const std::string &workload,
                         const std::string &label) {
        return done_keys.count(
                   core::SweepRunner::cellKey(workload, label)) != 0;
    });
    runner.onCellStart([&](const std::string &workload,
                           const std::string &label) {
        if (test_delay_ms != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(test_delay_ms));
        std::lock_guard<std::mutex> lock(state.mutex);
        state.inFlight[core::SweepRunner::cellKey(workload, label)] = {
            workload, label, std::chrono::steady_clock::now()};
    });
    runner.onCellDone([&](const std::string &workload,
                          const std::string &label,
                          const core::ExperimentResult &result) {
        const std::string key =
            core::SweepRunner::cellKey(workload, label);
        const std::string stem = fileStem(workload, label);

        // Per-cell stats: deterministic content (no manifest), names
        // prefixed campaign.<workload>.<config> so cells merge into
        // one aggregate without collisions.  harness.* keys ride
        // along; the aggregator skips them.
        obs::StatRegistry cell_stats;
        result.exportTo(cell_stats, "campaign." +
                                        obs::slugify(workload) + "." +
                                        obs::slugify(label));
        std::ostringstream stats_ss;
        cell_stats.writeJson(stats_ss);
        const std::string stats_file = stem + ".stats.json";
        std::string io_error;
        if (!obs::atomicWriteFile(out_dir + "/" + stats_file,
                                  stats_ss.str(), io_error)) {
            std::fprintf(stderr, "error: %s\n", io_error.c_str());
            std::exit(1);
        }

        std::string ts_file;
        if (result.timeseries != nullptr) {
            obs::TimeSeriesSink cell_sink(ts);
            cell_sink.add(*result.timeseries);
            std::ostringstream ts_ss;
            cell_sink.writeJson(ts_ss);
            ts_file = stem + ".ts.json";
            if (!obs::atomicWriteFile(out_dir + "/" + ts_file,
                                      ts_ss.str(), io_error)) {
                std::fprintf(stderr, "error: %s\n", io_error.c_str());
                std::exit(1);
            }
        }

        // Stats file first, then the journal record that points at
        // it: a record on disk always references a complete file.
        obs::CampaignCellRecord record;
        record.key = key;
        record.workload = workload;
        record.config = label;
        record.refs = result.refs;
        record.instructions = result.instructions;
        record.cpiTlb = result.cpiTlb;
        record.wallSeconds = result.harness.wallSeconds;
        record.statsFile = stats_file;
        record.timeseriesFile = ts_file;
        journal.append(record);

        std::lock_guard<std::mutex> lock(state.mutex);
        state.inFlight.erase(key);
        state.cellsDone += 1;
        state.refsDone += result.refs;
        state.cellsDoneProc += 1;
        state.wallSumProc += result.harness.wallSeconds;
    });

    std::printf("campaign: %zu cells (%zu to run, %zu resumed), "
                "config %s, %u workers\n",
                plans.size(), plans.size() - done_keys.size(),
                done_keys.size(), hash.c_str(), state.workers);

    const auto run_start = std::chrono::steady_clock::now();
    std::vector<core::SweepCell> cells = runner.run();
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.stop = true;
    }
    state.cv.notify_all();
    hb_thread.join();
    {
        std::string hb_error;
        if (!heartbeat.write(
                snapshotHeartbeat(state, "finished", hb_window),
                hb_error))
            std::fprintf(stderr, "warn: %s\n", hb_error.c_str());
    }

    if (!writeAggregate())
        return 2;

    std::uint64_t run_refs = 0;
    std::size_t run_cells = 0;
    for (const core::SweepCell &cell : cells) {
        if (cell.result.refs != 0) {
            run_refs += cell.result.refs;
            ++run_cells;
        }
    }
    std::printf("campaign: done — %zu cells this run (%.2fM measured "
                "refs) in %.1fs; %llu/%llu journaled\n"
                "  journal   %s\n"
                "  aggregate %s\n"
                "  heartbeat %s\n",
                run_cells, static_cast<double>(run_refs) / 1e6,
                run_seconds,
                static_cast<unsigned long long>(state.cellsDone),
                static_cast<unsigned long long>(state.cellsTotal),
                journal_path.c_str(), aggregate_path.c_str(),
                heartbeat.path().c_str());
    return 0;
}
