/**
 * @file
 * Inverse converter: .tps binary trace back to Valgrind-lackey text.
 *
 * Useful for diffing against an original lackey capture (round-trip
 * verification) and for feeding .tps traces to third-party tools that
 * speak the lackey format.
 *
 * Usage: tps2lackey <trace.tps> [output.lackey|-]
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "trace/trace_file.h"
#include "util/format.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    if (argc < 2 || argc > 3) {
        std::cerr << "usage: tps2lackey <trace.tps> "
                     "[output.lackey|-]\n";
        return 1;
    }
    const std::string input_path = argv[1];
    const std::string output_path = argc > 2 ? argv[2] : "-";

    std::ofstream file;
    std::ostream *out = &std::cout;
    if (output_path != "-") {
        file.open(output_path);
        if (!file) {
            std::cerr << "cannot open " << output_path << "\n";
            return 1;
        }
        out = &file;
    }

    TraceFileReader reader(input_path);
    MemRef ref;
    std::uint64_t written = 0;
    char line[64];
    while (reader.next(ref)) {
        char kind = ' ';
        const char *prefix = " ";
        switch (ref.type) {
          case RefType::Ifetch:
            kind = 'I';
            prefix = ""; // lackey puts ifetches at column 0
            break;
          case RefType::Load:
            kind = 'L';
            break;
          case RefType::Store:
            kind = 'S';
            break;
        }
        std::snprintf(line, sizeof(line), "%s%c %llx,%u\n", prefix,
                      kind,
                      static_cast<unsigned long long>(ref.vaddr),
                      static_cast<unsigned>(ref.size));
        *out << line;
        ++written;
    }
    std::cerr << "wrote " << withCommas(written) << " lackey lines\n";
    return 0;
}
