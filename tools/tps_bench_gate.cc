/**
 * @file
 * Compare a freshly produced BENCH_*.json (tps-stats-v1, written by
 * the perf benches) against a committed baseline under
 * bench/baselines/ and fail when performance or invariants drift.
 *
 * Usage:
 *   tps_bench_gate --baseline bench/baselines/BENCH_micro_perf.json
 *                  [--tol-default REL] [--tol SUBSTR=REL]...
 *                  [--floor SUBSTR=FRAC]... [--ignore SUBSTR]...
 *                  [--allow-new SUBSTR]... candidate.json
 *   tps_bench_gate --baseline FILE --update-baseline candidate.json
 *
 * --update-baseline validates the candidate and rewrites the baseline
 * file from it in canonical form (sorted keys, stable number
 * formatting), so refreshed baselines produce minimal diffs; see
 * README.md "Refreshing a perf baseline".
 *
 * Comparison rules, per stats key (union of both files):
 *   - keys matching any --ignore substring are skipped entirely;
 *   - a key present in only one file is drift (the gate also guards
 *     the exported key *set*, not just the values) — except that a
 *     *candidate-only* key matching an --allow-new substring is
 *     accepted: feature-gated subtrees (e.g. "os." from the
 *     multiprogramming extension) may appear before the committed
 *     baseline is refreshed, without loosening any other check
 *     (values of keys present in both files are still gated, and
 *     keys *missing from the candidate* are still drift);
 *   - keys matching a --floor SUBSTR=FRAC pattern are one-sided
 *     throughput floors: the candidate must be >= FRAC * baseline,
 *     with no upper bound (getting faster is never drift) — the
 *     symmetric band below would fail a 4x speedup, which is exactly
 *     what refs/s metrics are supposed to do over time;
 *   - integer counters must match exactly unless a --tol SUBSTR=REL
 *     names them (drift of a deterministic counter is a functional
 *     regression, not noise);
 *   - floating-point metrics must satisfy |cand - base| <= REL *
 *     |base|, REL being the first matching --tol pattern, else
 *     --tol-default (default 0.5, i.e. a 1.5x band — perf metrics are
 *     noisy on shared CI hardware, so baselines gate order-of-
 *     magnitude regressions, not percent-level ones).
 * The "text" section must match exactly (modulo --ignore).  The
 * manifest is never compared.
 *
 * Exit codes: 0 = within tolerance, 1 = drift (details on stderr),
 * 2 = usage error or malformed input.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace
{

using tps::obs::JsonValue;

struct GateOptions
{
    std::string baselinePath;
    std::string candidatePath;
    bool updateBaseline = false;
    double tolDefault = 0.5;
    std::vector<std::pair<std::string, double>> tolOverrides;
    std::vector<std::pair<std::string, double>> floors;
    std::vector<std::string> ignores;
    std::vector<std::string> allowNew;
};

int drift_count = 0;

void
drift(const std::string &what)
{
    ++drift_count;
    std::fprintf(stderr, "gate: %s\n", what.c_str());
}

bool
ignored(const GateOptions &options, const std::string &key)
{
    for (const std::string &pattern : options.ignores)
        if (key.find(pattern) != std::string::npos)
            return true;
    return false;
}

/** Candidate-only keys matching --allow-new are not drift. */
bool
allowedNew(const GateOptions &options, const std::string &key)
{
    for (const std::string &pattern : options.allowNew)
        if (key.find(pattern) != std::string::npos)
            return true;
    return false;
}

/** First matching --tol override, or nullptr. */
const double *
tolOverride(const GateOptions &options, const std::string &key)
{
    for (const auto &[pattern, rel] : options.tolOverrides)
        if (key.find(pattern) != std::string::npos)
            return &rel;
    return nullptr;
}

/** First matching --floor fraction, or nullptr. */
const double *
floorFraction(const GateOptions &options, const std::string &key)
{
    for (const auto &[pattern, frac] : options.floors)
        if (key.find(pattern) != std::string::npos)
            return &frac;
    return nullptr;
}

/** Numeric value of an Int or Double JSON entry. */
double
asDouble(const JsonValue &v)
{
    return v.type == JsonValue::Type::Int
               ? static_cast<double>(v.integer)
               : v.number;
}

std::string
numberToString(const JsonValue &v)
{
    char buf[40];
    if (v.type == JsonValue::Type::Int)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.integer));
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v.number);
    return buf;
}

void
gateStats(const GateOptions &options, const JsonValue *base,
          const JsonValue *cand)
{
    static const JsonValue empty = [] {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        return v;
    }();
    if (base == nullptr)
        base = &empty;
    if (cand == nullptr)
        cand = &empty;

    std::set<std::string> names;
    for (const auto &[name, value] : base->object)
        names.insert(name);
    for (const auto &[name, value] : cand->object)
        names.insert(name);

    for (const std::string &name : names) {
        if (ignored(options, name))
            continue;
        const JsonValue *vb = base->find(name);
        const JsonValue *vc = cand->find(name);
        if (vb == nullptr) {
            if (!allowedNew(options, name))
                drift(name + " missing from baseline (refresh it?)");
            continue;
        }
        if (vc == nullptr) {
            drift(name + " missing from candidate");
            continue;
        }
        if (!vb->isNumber() || !vc->isNumber()) {
            drift(name + ": non-numeric stats entry");
            continue;
        }
        const double *floor_frac = floorFraction(options, name);
        if (floor_frac != nullptr) {
            const double db = asDouble(*vb);
            const double dc = asDouble(*vc);
            if (dc < *floor_frac * db) {
                char detail[128];
                std::snprintf(detail, sizeof(detail),
                              " (below %.3g x baseline floor)",
                              *floor_frac);
                drift(name + ": " + numberToString(*vb) + " -> " +
                      numberToString(*vc) + detail);
            }
            continue;
        }
        const double *override_rel = tolOverride(options, name);
        const bool counters = vb->type == JsonValue::Type::Int &&
                              vc->type == JsonValue::Type::Int;
        if (counters && override_rel == nullptr) {
            if (vb->integer != vc->integer)
                drift(name + ": counter " + numberToString(*vb) +
                      " -> " + numberToString(*vc) + " (exact match "
                      "required; --tol '" + name + "=REL' to relax)");
            continue;
        }
        const double rel =
            override_rel != nullptr ? *override_rel : options.tolDefault;
        const double db = vb->number;
        const double dc = vc->number;
        // Baseline-relative band: symmetric max-relative bands let a
        // huge candidate value excuse itself, which is exactly the
        // regression this gate exists to catch.
        const bool ok = db == 0.0 ? dc == 0.0
                                  : std::fabs(dc - db) <=
                                        rel * std::fabs(db);
        if (!ok) {
            char detail[128];
            std::snprintf(detail, sizeof(detail),
                          " (|%+.3g| > %.3g rel tol)",
                          db != 0.0 ? (dc - db) / db : dc, rel);
            drift(name + ": " + numberToString(*vb) + " -> " +
                  numberToString(*vc) + detail);
        }
    }
}

void
gateText(const GateOptions &options, const JsonValue *base,
         const JsonValue *cand)
{
    static const JsonValue empty = [] {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        return v;
    }();
    if (base == nullptr)
        base = &empty;
    if (cand == nullptr)
        cand = &empty;

    std::set<std::string> names;
    for (const auto &[name, value] : base->object)
        names.insert(name);
    for (const auto &[name, value] : cand->object)
        names.insert(name);
    for (const std::string &name : names) {
        if (ignored(options, name))
            continue;
        const JsonValue *vb = base->find(name);
        const JsonValue *vc = cand->find(name);
        if (vb == nullptr || vc == nullptr) {
            if (vb == nullptr && allowedNew(options, name))
                continue;
            drift("text." + name + " present in only one file");
            continue;
        }
        if (vb->text != vc->text)
            drift("text." + name + ": \"" + vb->text + "\" -> \"" +
                  vc->text + "\"");
    }
}

/** Re-emit a parsed document canonically: object keys sorted (the
 *  parse already holds them in a std::map) and numbers in JsonWriter's
 *  stable formats, so regenerated baselines diff minimally. */
void
writeValue(tps::obs::JsonWriter &writer, const JsonValue &v)
{
    switch (v.type) {
    case JsonValue::Type::Object:
        writer.beginObject();
        for (const auto &[name, member] : v.object) {
            writer.key(name);
            writeValue(writer, member);
        }
        writer.endObject();
        break;
    case JsonValue::Type::Array:
        writer.beginArray();
        for (const JsonValue &item : v.array)
            writeValue(writer, item);
        writer.endArray();
        break;
    case JsonValue::Type::String:
        writer.value(v.text);
        break;
    case JsonValue::Type::Bool:
        writer.value(v.boolean);
        break;
    case JsonValue::Type::Int:
        writer.value(v.integer);
        break;
    case JsonValue::Type::Double:
        writer.value(v.number);
        break;
    case JsonValue::Type::Null:
        std::fprintf(stderr, "error: null value has no canonical "
                             "baseline form\n");
        std::exit(2);
    }
}

JsonValue
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return tps::obs::parseJson(text.str());
    } catch (const tps::obs::JsonParseError &error) {
        std::fprintf(stderr, "error: %s: %s (offset %zu)\n",
                     path.c_str(), error.what(), error.offset());
        std::exit(2);
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tps_bench_gate --baseline FILE [--tol-default REL]\n"
        "                      [--tol SUBSTR=REL]... [--floor "
        "SUBSTR=FRAC]...\n"
        "                      [--ignore SUBSTR]... [--allow-new "
        "SUBSTR]... candidate.json\n"
        "       tps_bench_gate --baseline FILE --update-baseline "
        "candidate.json\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    GateOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baseline") {
            options.baselinePath = next();
        } else if (arg == "--tol-default") {
            const std::string value = next();
            char *end = nullptr;
            options.tolDefault = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                options.tolDefault < 0.0) {
                std::fprintf(stderr,
                             "error: --tol-default expects a "
                             "non-negative number, got '%s'\n",
                             value.c_str());
                return 2;
            }
        } else if (arg == "--tol") {
            const std::string value = next();
            const std::size_t eq = value.rfind('=');
            char *end = nullptr;
            const double rel =
                eq == std::string::npos
                    ? -1.0
                    : std::strtod(value.c_str() + eq + 1, &end);
            if (eq == std::string::npos || eq == 0 ||
                end == value.c_str() + eq + 1 || *end != '\0' ||
                rel < 0.0) {
                std::fprintf(stderr,
                             "error: --tol expects SUBSTR=REL, got "
                             "'%s'\n",
                             value.c_str());
                return 2;
            }
            options.tolOverrides.emplace_back(value.substr(0, eq), rel);
        } else if (arg == "--floor") {
            const std::string value = next();
            const std::size_t eq = value.rfind('=');
            char *end = nullptr;
            const double frac =
                eq == std::string::npos
                    ? -1.0
                    : std::strtod(value.c_str() + eq + 1, &end);
            if (eq == std::string::npos || eq == 0 ||
                end == value.c_str() + eq + 1 || *end != '\0' ||
                frac < 0.0) {
                std::fprintf(stderr,
                             "error: --floor expects SUBSTR=FRAC, got "
                             "'%s'\n",
                             value.c_str());
                return 2;
            }
            options.floors.emplace_back(value.substr(0, eq), frac);
        } else if (arg == "--ignore") {
            options.ignores.emplace_back(next());
        } else if (arg == "--allow-new") {
            options.allowNew.emplace_back(next());
        } else if (arg == "--update-baseline") {
            options.updateBaseline = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (options.candidatePath.empty()) {
            options.candidatePath = arg;
        } else {
            return usage();
        }
    }
    if (options.baselinePath.empty() || options.candidatePath.empty())
        return usage();

    if (options.updateBaseline) {
        const JsonValue cand = load(options.candidatePath);
        const JsonValue *schema = cand.find("schema");
        if (schema == nullptr ||
            schema->type != JsonValue::Type::String ||
            schema->text != "tps-stats-v1") {
            std::fprintf(stderr,
                         "error: %s is not a tps-stats-v1 dump\n",
                         options.candidatePath.c_str());
            return 2;
        }
        std::ofstream out(options.baselinePath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         options.baselinePath.c_str());
            return 2;
        }
        tps::obs::JsonWriter writer(out);
        writeValue(writer, cand);
        writer.finish();
        std::printf("bench gate: rewrote %s from %s\n",
                    options.baselinePath.c_str(),
                    options.candidatePath.c_str());
        return 0;
    }

    const JsonValue base = load(options.baselinePath);
    const JsonValue cand = load(options.candidatePath);
    for (const auto &[doc, path] :
         std::vector<std::pair<const JsonValue *, std::string>>{
             {&base, options.baselinePath},
             {&cand, options.candidatePath}}) {
        const JsonValue *schema = doc->find("schema");
        if (schema == nullptr ||
            schema->type != JsonValue::Type::String ||
            schema->text != "tps-stats-v1") {
            std::fprintf(stderr,
                         "error: %s is not a tps-stats-v1 dump\n",
                         path.c_str());
            return 2;
        }
    }

    gateStats(options, base.find("stats"), cand.find("stats"));
    gateText(options, base.find("text"), cand.find("text"));

    if (drift_count != 0) {
        std::fprintf(stderr,
                     "%d metric(s) outside tolerance vs %s\n",
                     drift_count, options.baselinePath.c_str());
        return 1;
    }
    std::printf("bench gate: %s within tolerance of %s\n",
                options.candidatePath.c_str(),
                options.baselinePath.c_str());
    return 0;
}
