/**
 * @file
 * tpsd: the trace-replay daemon (DESIGN.md §14).
 *
 * Serves tps-wire-v1 on a TCP port: clients Submit a
 * tps-session-spec-v1 experiment (registry workload or streamed
 * trace), the daemon multiplexes the resulting resumable sessions
 * onto a worker pool in fairness quanta, and clients Poll for live
 * telemetry and the final stats.  A plain-HTTP GET against the same
 * port serves per-session reports.
 *
 *   tpsd [--port N] [--port-file PATH] [--dir DIR] [--bind ADDR]
 *        [--threads N] [--quantum-chunks N] [--max-sessions N]
 *        [--max-trace-bytes N] [--max-inflight-refs N]
 *        [--idle-timeout-ms N] [--retry-after-ms N]
 *        [--heartbeat-ms N]
 *
 * --port 0 (the default) binds an ephemeral port; the resolved port
 * goes to stdout ("listening on PORT") and, with --port-file, into
 * PATH through an atomic rename — the race-free way for scripts to
 * find the daemon.  --dir enables the status artifacts (heartbeat for
 * tps_top, campaign journal + per-session dumps for tps_report).
 *
 * SIGINT/SIGTERM go through obs::installSignalFlush: the daemon
 * journals every finished-but-unclaimed session and leaves a
 * state="interrupted" heartbeat before exiting 128+signo, the same
 * artifact contract tps_campaign honors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "net/server.h"
#include "obs/atomic_file.h"
#include "obs/signal_flush.h"
#include "obs/stat_registry.h"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--port-file PATH] [--dir DIR]\n"
        "          [--bind ADDR] [--threads N] [--quantum-chunks N]\n"
        "          [--max-sessions N] [--max-trace-bytes N]\n"
        "          [--max-inflight-refs N] [--idle-timeout-ms N]\n"
        "          [--retry-after-ms N] [--heartbeat-ms N]\n",
        argv0);
    return 2;
}

bool
parseUint(const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    tps::net::ServerConfig config;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        std::uint64_t n = 0;
        if (arg == "--port" && value && parseUint(value, n)) {
            config.port = static_cast<std::uint16_t>(n);
            ++i;
        } else if (arg == "--port-file" && value) {
            port_file = value;
            ++i;
        } else if (arg == "--dir" && value) {
            config.statusDir = value;
            ++i;
        } else if (arg == "--bind" && value) {
            config.bindAddress = value;
            ++i;
        } else if (arg == "--threads" && value && parseUint(value, n)) {
            config.workers = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--quantum-chunks" && value &&
                   parseUint(value, n)) {
            config.quantumChunks = n;
            ++i;
        } else if (arg == "--max-sessions" && value &&
                   parseUint(value, n)) {
            config.maxSessions = static_cast<std::size_t>(n);
            ++i;
        } else if (arg == "--max-trace-bytes" && value &&
                   parseUint(value, n)) {
            config.maxQueuedTraceBytes = n;
            ++i;
        } else if (arg == "--max-inflight-refs" && value &&
                   parseUint(value, n)) {
            config.maxInflightRefs = n;
            ++i;
        } else if (arg == "--idle-timeout-ms" && value &&
                   parseUint(value, n)) {
            config.idleTimeoutMs = n;
            ++i;
        } else if (arg == "--retry-after-ms" && value &&
                   parseUint(value, n)) {
            config.retryAfterMs = n;
            ++i;
        } else if (arg == "--heartbeat-ms" && value &&
                   parseUint(value, n)) {
            config.heartbeatIntervalMs = n;
            ++i;
        } else {
            return usage(argv[0]);
        }
    }

    const std::string status_dir = config.statusDir;
    tps::net::Server server(std::move(config));
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "tpsd: %s\n", error.c_str());
        return 1;
    }

    tps::obs::installSignalFlush([&server, status_dir](int signo) {
        server.journalPartialAndFlush(signo);
        if (status_dir.empty())
            return;
        // Leave the daemon counters next to the journal, the same
        // stats-on-interrupt contract the bench harness honors.
        tps::obs::StatRegistry registry;
        server.exportStats(registry);
        std::ostringstream os;
        registry.writeJson(os);
        os << '\n';
        std::string write_error;
        tps::obs::atomicWriteFile(status_dir + "/tpsd.stats.json",
                                  os.str(), write_error);
    });

    if (!port_file.empty()) {
        const std::string content =
            std::to_string(server.port()) + "\n";
        if (!tps::obs::atomicWriteFile(port_file, content, error)) {
            std::fprintf(stderr, "tpsd: %s\n", error.c_str());
            return 1;
        }
    }
    std::printf("listening on %u\n", server.port());
    std::fflush(stdout);

    server.run();

    // Orderly exit (tests call stop() in-process; the daemon normally
    // leaves through the signal path above): dump the net.* counters.
    tps::obs::StatRegistry registry;
    server.exportStats(registry);
    std::ostringstream stats;
    registry.writeJson(stats);
    stats << '\n';
    std::fputs(stats.str().c_str(), stdout);
    return 0;
}
