/**
 * @file
 * CLI: print the header and descriptive statistics of a .tps trace
 * file (the Table 3.1 columns for an external trace).
 *
 * Usage: tpstrace_info <trace.tps>
 */

#include <iostream>

#include "trace/trace_file.h"
#include "trace/trace_stats.h"
#include "util/format.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    if (argc != 2) {
        std::cerr << "usage: tpstrace_info <trace.tps>\n";
        return 1;
    }

    TraceFileReader reader(argv[1]);
    std::cout << "name:        " << reader.name() << "\n"
              << "refs:        " << withCommas(reader.refCount())
              << "\n";

    const TraceStats stats = collectTraceStats(reader);
    std::cout << "instructions " << withCommas(stats.instructions)
              << "\n"
              << "loads:       " << withCommas(stats.loads) << "\n"
              << "stores:      " << withCommas(stats.stores) << "\n"
              << "rpi:         " << formatFixed(stats.rpi(), 3) << "\n"
              << "footprint:   " << formatBytes(stats.footprintBytes())
              << " (" << stats.codePages4k << " code + "
              << stats.dataPages4k << " data 4KB pages)\n";
    return 0;
}
