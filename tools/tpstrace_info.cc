/**
 * @file
 * CLI: print the header and descriptive statistics of a .tps trace
 * file (the Table 3.1 columns for an external trace), plus the
 * per-level page-table footprint under the default radix-walk
 * geometry — how many distinct L4/L3/L2/L1 entries the trace's
 * address set populates, i.e. the table working set a structural
 * walker (src/walk) would traverse.
 *
 * Usage: tpstrace_info <trace.tps>
 */

#include <iostream>
#include <unordered_set>
#include <vector>

#include "trace/trace_file.h"
#include "trace/trace_stats.h"
#include "util/format.h"
#include "walk/walk.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    if (argc != 2) {
        std::cerr << "usage: tpstrace_info <trace.tps>\n";
        return 1;
    }

    TraceFileReader reader(argv[1]);
    std::cout << "name:        " << reader.name() << "\n"
              << "refs:        " << withCommas(reader.refCount())
              << "\n";

    const TraceStats stats = collectTraceStats(reader);
    std::cout << "instructions " << withCommas(stats.instructions)
              << "\n"
              << "loads:       " << withCommas(stats.loads) << "\n"
              << "stores:      " << withCommas(stats.stores) << "\n"
              << "rpi:         " << formatFixed(stats.rpi(), 3) << "\n"
              << "footprint:   " << formatBytes(stats.footprintBytes())
              << " (" << stats.codePages4k << " code + "
              << stats.dataPages4k << " data 4KB pages)\n";

    // Per-level page-table footprint: distinct table entries at each
    // radix level.  The L1 (leaf) set is the distinct 4K-page set; a
    // level-k prefix is its child's prefix shifted down bitsPerLevel
    // more, so each level folds from the one below it.
    const walk::WalkConfig geom;
    reader.reset();
    std::unordered_set<std::uint64_t> entries;
    MemRef ref;
    while (reader.next(ref))
        entries.insert(static_cast<std::uint64_t>(ref.vaddr) >>
                       geom.pageShift);
    std::cout << "page table:  ";
    std::uint64_t total_entries = 0;
    std::vector<std::uint64_t> prev(entries.begin(), entries.end());
    for (unsigned level = 1; level <= geom.levels; ++level) {
        if (level > 1) {
            std::unordered_set<std::uint64_t> up;
            for (std::uint64_t prefix : prev)
                up.insert(prefix >> geom.bitsPerLevel);
            prev.assign(up.begin(), up.end());
            std::cout << ", ";
        }
        total_entries += prev.size();
        std::cout << "L" << level << " "
                  << withCommas(prev.size());
    }
    std::cout << " entries (" << geom.levels << "-level radix, "
              << geom.bitsPerLevel << " bits/level)\n"
              << "walk depth:  " << geom.levels << " levels per 4K "
              << "miss, " << geom.levels - 1
              << " per >=" << formatBytes(std::uint64_t{1}
                                          << geom.largeLeafLog2)
              << " miss\n";
    return 0;
}
