/**
 * @file
 * tps_submit: submit one experiment to tpsd (or run it locally) and
 * collect the stats.
 *
 *   tps_submit --workload NAME [spec flags]   registry workload
 *   tps_submit --workload NAME --stream ...   materialize the trace
 *                                             client-side and upload
 *                                             it in TraceChunk frames
 *   tps_submit --spec FILE ...                spec from JSON instead
 *                                             of flags
 *
 * Daemon selection: --host (default 127.0.0.1) plus --port N or
 * --port-file PATH (the file tpsd --port-file writes).  --local skips
 * the daemon entirely and runs the identical parsed spec through
 * core::runExperiment in-process — the bench-harness path.  Both
 * paths emit exactly sessionStatsJson(), which is what the loopback
 * byte-identity gate diffs.
 *
 * Spec flags (defaults in net/spec.h): --refs N --warmup N
 * --ws-window N --chunk-refs N --lifecycle --ts-interval N
 * --ts-miss-samples N --ts-miss-seed N --events-every N
 * --events-capacity N --tlb-org fa|set_assoc|split|two_level
 * --tlb-entries N --tlb-ways N --tlb-scheme small|large|exact
 * --tlb-probe parallel|sequential --small-log2 N --large-log2 N
 * --replacement lru|fifo|random|tree_plru --rng-seed N
 * --split-large N --l1-entries N --policy single|two_size
 * --page-log2 N --policy-window N --promote N --demote N
 *
 * Daemon-mode controls: --poll-ms N (default 50), --retries N (resubmit
 * after an admission Rejected, honoring the server's retry_after_ms
 * hint; default 0), --cancel-after-polls N (exercise the cancel path),
 * --report-out FILE (fetch the HTTP /report page when finished).
 * Output: stats to stdout, or --stats-out FILE; --ts-out FILE
 * (--local only) writes the interval timeseries document.
 *
 * Exit codes: 0 session done, 1 failed or cancelled, 2 usage /
 * connection / protocol error, 3 rejected after all retries.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "net/client.h"
#include "net/spec.h"
#include "obs/atomic_file.h"
#include "obs/json.h"
#include "trace/vector_trace.h"
#include "workloads/registry.h"

namespace
{

using tps::MemRef;
using tps::net::Client;
using tps::net::SessionSpec;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s (--workload NAME | --spec FILE) "
                 "[--stream] [--local]\n"
                 "       [--host H] [--port N | --port-file PATH] "
                 "[spec flags]\n"
                 "see the file header of tools/tps_submit.cc for the "
                 "full flag list\n",
                 argv0);
    return 2;
}

bool
parseUint(const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

bool
readFileTo(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Replay the registry workload into a vector — the trace a --stream
 *  submission uploads, and the one --local --stream replays. */
std::vector<MemRef>
materialize(const std::string &workload, std::uint64_t max_refs)
{
    auto generator =
        tps::workloads::findWorkload(workload).instantiate();
    std::vector<MemRef> refs(max_refs);
    std::size_t have = 0;
    while (have < refs.size()) {
        const std::size_t got =
            generator->fill(refs.data() + have, refs.size() - have);
        if (got == 0)
            break;
        have += got;
    }
    refs.resize(have);
    return refs;
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &info : tps::workloads::suite())
        if (info.name == name)
            return true;
    return false;
}

bool
writeOutput(const std::string &path, const std::string &content)
{
    if (path.empty() || path == "-") {
        std::fputs(content.c_str(), stdout);
        return true;
    }
    std::string error;
    if (!tps::obs::atomicWriteFile(path, content, error)) {
        std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
        return false;
    }
    return true;
}

std::uint64_t
telemetryRows(const std::vector<std::string> &payloads)
{
    std::uint64_t rows = 0;
    for (const std::string &payload : payloads) {
        try {
            const tps::obs::JsonValue doc =
                tps::obs::parseJson(payload);
            if (const tps::obs::JsonValue *r = doc.find("rows"))
                rows += r->array.size();
        } catch (const std::exception &) {
        }
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    SessionSpec spec;
    std::string workload;
    std::string spec_file;
    bool stream = false;
    bool local = false;

    std::string host = "127.0.0.1";
    std::uint64_t port = 0;
    std::string port_file;
    std::uint64_t poll_ms = 50;
    std::uint64_t retries = 0;
    std::uint64_t cancel_after_polls = 0;
    std::string stats_out;
    std::string ts_out;
    std::string report_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        std::uint64_t n = 0;
        const bool uint_arg = value != nullptr && parseUint(value, n);

        if (arg == "--workload" && value) {
            workload = value;
            ++i;
        } else if (arg == "--spec" && value) {
            spec_file = value;
            ++i;
        } else if (arg == "--stream") {
            stream = true;
        } else if (arg == "--local") {
            local = true;
        } else if (arg == "--host" && value) {
            host = value;
            ++i;
        } else if (arg == "--port" && uint_arg) {
            port = n;
            ++i;
        } else if (arg == "--port-file" && value) {
            port_file = value;
            ++i;
        } else if (arg == "--poll-ms" && uint_arg) {
            poll_ms = n;
            ++i;
        } else if (arg == "--retries" && uint_arg) {
            retries = n;
            ++i;
        } else if (arg == "--cancel-after-polls" && uint_arg) {
            cancel_after_polls = n;
            ++i;
        } else if (arg == "--stats-out" && value) {
            stats_out = value;
            ++i;
        } else if (arg == "--ts-out" && value) {
            ts_out = value;
            ++i;
        } else if (arg == "--report-out" && value) {
            report_out = value;
            ++i;
        } else if (arg == "--refs" && uint_arg) {
            spec.maxRefs = n;
            ++i;
        } else if (arg == "--warmup" && uint_arg) {
            spec.warmupRefs = n;
            ++i;
        } else if (arg == "--ws-window" && uint_arg) {
            spec.wsWindow = n;
            ++i;
        } else if (arg == "--chunk-refs" && uint_arg) {
            spec.chunkRefs = n;
            ++i;
        } else if (arg == "--lifecycle") {
            spec.lifecycle = true;
        } else if (arg == "--ts-interval" && uint_arg) {
            spec.tsIntervalRefs = n;
            ++i;
        } else if (arg == "--ts-miss-samples" && uint_arg) {
            spec.tsMissSamples = n;
            ++i;
        } else if (arg == "--ts-miss-seed" && uint_arg) {
            spec.tsMissSeed = n;
            ++i;
        } else if (arg == "--events-every" && uint_arg) {
            spec.eventsSampleEvery = n;
            ++i;
        } else if (arg == "--events-capacity" && uint_arg) {
            spec.eventsCapacity = n;
            ++i;
        } else if (arg == "--tlb-org" && value) {
            const std::string v = value;
            if (v == "fa")
                spec.tlb.organization =
                    tps::TlbOrganization::FullyAssociative;
            else if (v == "set_assoc")
                spec.tlb.organization =
                    tps::TlbOrganization::SetAssociative;
            else if (v == "split")
                spec.tlb.organization = tps::TlbOrganization::Split;
            else if (v == "two_level")
                spec.tlb.organization = tps::TlbOrganization::TwoLevel;
            else
                return usage(argv[0]);
            ++i;
        } else if (arg == "--tlb-entries" && uint_arg) {
            spec.tlb.entries = static_cast<std::size_t>(n);
            ++i;
        } else if (arg == "--tlb-ways" && uint_arg) {
            spec.tlb.ways = static_cast<std::size_t>(n);
            ++i;
        } else if (arg == "--tlb-scheme" && value) {
            const std::string v = value;
            if (v == "small")
                spec.tlb.scheme = tps::IndexScheme::SmallPage;
            else if (v == "large")
                spec.tlb.scheme = tps::IndexScheme::LargePage;
            else if (v == "exact")
                spec.tlb.scheme = tps::IndexScheme::Exact;
            else
                return usage(argv[0]);
            ++i;
        } else if (arg == "--tlb-probe" && value) {
            const std::string v = value;
            if (v == "parallel")
                spec.tlb.probe = tps::ProbeStrategy::Parallel;
            else if (v == "sequential")
                spec.tlb.probe = tps::ProbeStrategy::Sequential;
            else
                return usage(argv[0]);
            ++i;
        } else if (arg == "--small-log2" && uint_arg) {
            spec.tlb.smallLog2 = static_cast<unsigned>(n);
            spec.policy.twoSize.smallLog2 = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--large-log2" && uint_arg) {
            spec.tlb.largeLog2 = static_cast<unsigned>(n);
            spec.policy.twoSize.largeLog2 = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--replacement" && value) {
            const std::string v = value;
            if (v == "lru")
                spec.tlb.replacement = tps::ReplPolicy::LRU;
            else if (v == "fifo")
                spec.tlb.replacement = tps::ReplPolicy::FIFO;
            else if (v == "random")
                spec.tlb.replacement = tps::ReplPolicy::Random;
            else if (v == "tree_plru")
                spec.tlb.replacement = tps::ReplPolicy::TreePLRU;
            else
                return usage(argv[0]);
            ++i;
        } else if (arg == "--rng-seed" && uint_arg) {
            spec.tlb.rngSeed = n;
            ++i;
        } else if (arg == "--split-large" && uint_arg) {
            spec.tlb.splitLargeEntries = static_cast<std::size_t>(n);
            ++i;
        } else if (arg == "--l1-entries" && uint_arg) {
            spec.tlb.l1Entries = static_cast<std::size_t>(n);
            ++i;
        } else if (arg == "--policy" && value) {
            const std::string v = value;
            if (v == "single")
                spec.policy.kind = tps::core::PolicySpec::Kind::Single;
            else if (v == "two_size")
                spec.policy.kind =
                    tps::core::PolicySpec::Kind::TwoSize;
            else
                return usage(argv[0]);
            ++i;
        } else if (arg == "--page-log2" && uint_arg) {
            spec.policy.singleLog2 = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--policy-window" && uint_arg) {
            spec.policy.twoSize.window = n;
            ++i;
        } else if (arg == "--promote" && uint_arg) {
            spec.policy.twoSize.promoteThreshold =
                static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--demote" && uint_arg) {
            spec.policy.twoSize.demoteThreshold =
                static_cast<unsigned>(n);
            ++i;
        } else {
            return usage(argv[0]);
        }
    }

    std::string error;
    if (!spec_file.empty()) {
        std::string text;
        if (!readFileTo(spec_file, text)) {
            std::fprintf(stderr, "tps_submit: cannot read %s\n",
                         spec_file.c_str());
            return 2;
        }
        if (!SessionSpec::fromJson(text, spec, error)) {
            std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
            return 2;
        }
        stream = spec.streamTrace;
        if (stream)
            // A streamed spec names no workload; the generator to
            // materialize still comes from --workload.
            spec.workload.clear();
        else
            workload = spec.workload;
    } else {
        spec.streamTrace = stream;
        spec.workload = stream ? "" : workload;
    }

    if (stream || !spec.streamTrace) {
        if (workload.empty() && spec.workload.empty()) {
            std::fprintf(stderr, "tps_submit: --workload required\n");
            return 2;
        }
    }
    if (stream && !knownWorkload(workload)) {
        std::fprintf(stderr, "tps_submit: unknown workload %s\n",
                     workload.c_str());
        return 2;
    }
    if (!spec.validate(error)) {
        std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
        return 2;
    }
    if (spec.maxRefs == 0) {
        std::fprintf(stderr, "tps_submit: --refs must be > 0\n");
        return 2;
    }

    // ---------------------------------------------------- local path
    if (local) {
        std::unique_ptr<tps::TraceSource> trace;
        if (stream)
            trace = std::make_unique<tps::VectorTrace>(
                materialize(workload, spec.maxRefs), "stream");
        else
            trace = tps::workloads::findWorkload(spec.workload)
                        .instantiate();
        const tps::core::ExperimentResult result =
            tps::core::runExperiment(*trace, spec.policy, spec.tlb,
                                     spec.runOptions());
        if (!writeOutput(stats_out, tps::net::sessionStatsJson(result)))
            return 2;
        if (!ts_out.empty() &&
            !writeOutput(ts_out,
                         tps::net::sessionTimeseriesJson(result)))
            return 2;
        return 0;
    }

    // --------------------------------------------------- daemon path
    if (!port_file.empty()) {
        std::string text;
        if (!readFileTo(port_file, text) ||
            !parseUint(std::string(text, 0, text.find('\n')).c_str(),
                       port)) {
            std::fprintf(stderr, "tps_submit: cannot read port from %s\n",
                         port_file.c_str());
            return 2;
        }
    }
    if (port == 0 || port > 65535) {
        std::fprintf(stderr,
                     "tps_submit: --port or --port-file required\n");
        return 2;
    }

    Client client;
    if (!client.connect(host, static_cast<std::uint16_t>(port),
                        error)) {
        std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
        return 2;
    }

    Client::SubmitReply submitted;
    for (std::uint64_t attempt = 0;; ++attempt) {
        if (!client.submit(spec, submitted, error)) {
            std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
            return 2;
        }
        if (submitted.accepted)
            break;
        if (attempt >= retries) {
            std::fprintf(stderr, "tps_submit: rejected: %s\n",
                         submitted.reason.c_str());
            return 3;
        }
        std::fprintf(stderr,
                     "tps_submit: rejected (%s), retrying in %llu ms\n",
                     submitted.reason.c_str(),
                     static_cast<unsigned long long>(
                         submitted.retryAfterMs));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(submitted.retryAfterMs));
    }
    const std::uint64_t session = submitted.sessionId;

    if (stream) {
        const std::vector<MemRef> refs =
            materialize(workload, spec.maxRefs);
        if (!client.sendTrace(session, refs, error)) {
            std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
            return 2;
        }
    }

    std::uint64_t rows = 0;
    std::uint64_t polls = 0;
    bool cancel_sent = false;
    Client::PollReply reply;
    for (;;) {
        if (cancel_after_polls != 0 && polls >= cancel_after_polls &&
            !cancel_sent) {
            if (!client.cancel(session, reply, error)) {
                std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
                return 2;
            }
            cancel_sent = true;
        }
        if (!client.poll(session, reply, error)) {
            std::fprintf(stderr, "tps_submit: %s\n", error.c_str());
            return 2;
        }
        ++polls;
        rows += telemetryRows(reply.telemetry);
        if (reply.state == "done" || reply.state == "cancelled" ||
            reply.state == "failed" || reply.state == "evicted")
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }

    std::fprintf(stderr,
                 "tps_submit: session %llu %s: %llu refs, %llu chunks, "
                 "%llu telemetry rows\n",
                 static_cast<unsigned long long>(session),
                 reply.state.c_str(),
                 static_cast<unsigned long long>(reply.replayedRefs),
                 static_cast<unsigned long long>(reply.chunks),
                 static_cast<unsigned long long>(rows));

    if (!reply.resultStats.empty() &&
        !writeOutput(stats_out, reply.resultStats))
        return 2;

    if (!report_out.empty() && !reply.resultStats.empty()) {
        std::string body;
        if (!tps::net::httpGet(host,
                               static_cast<std::uint16_t>(port),
                               "/report/" + std::to_string(session),
                               body, error)) {
            std::fprintf(stderr, "tps_submit: report: %s\n",
                         error.c_str());
            return 2;
        }
        if (!writeOutput(report_out, body))
            return 2;
    }

    if (reply.state == "done")
        return 0;
    if (reply.state == "failed" && !reply.sessionError.empty())
        std::fprintf(stderr, "tps_submit: session failed: %s\n",
                     reply.sessionError.c_str());
    return 1;
}
