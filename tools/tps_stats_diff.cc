/**
 * @file
 * Compare two tps-stats-v1 JSON dumps (see obs/stat_registry.h) and
 * exit nonzero when they drift.  The regression gate behind the
 * determinism guarantee: a serial and a 4-thread run of the same
 * experiment must produce byte-identical stats sections.
 *
 * Usage: tps_stats_diff [--tol REL] a.json b.json
 *
 * Compares the "stats" section numerically (|a-b| <= tol * max(|a|,
 * |b|); the default tolerance 0 demands exact equality), the "text"
 * and "histograms" sections exactly, and ignores the manifest —
 * hostname, timestamp and command line legitimately differ between
 * runs of the same configuration.
 *
 * Exit codes: 0 = match, 1 = drift (details on stderr), 2 = usage or
 * I/O or parse error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace
{

using tps::obs::JsonValue;

int drift_count = 0;

void
drift(const std::string &what)
{
    ++drift_count;
    std::fprintf(stderr, "drift: %s\n", what.c_str());
}

std::string
numberToString(const JsonValue &v)
{
    char buf[40];
    if (v.type == JsonValue::Type::Int)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.integer));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
    return buf;
}

/** Compare one section ("stats", "text" or "histograms") key by key. */
void
diffSection(const char *section, const JsonValue *a, const JsonValue *b,
            double tol)
{
    static const JsonValue empty_object = [] {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        return v;
    }();
    if (a == nullptr)
        a = &empty_object;
    if (b == nullptr)
        b = &empty_object;

    std::set<std::string> names;
    for (const auto &[name, value] : a->object)
        names.insert(name);
    for (const auto &[name, value] : b->object)
        names.insert(name);

    for (const std::string &name : names) {
        const JsonValue *va = a->find(name);
        const JsonValue *vb = b->find(name);
        const std::string label = std::string(section) + "." + name;
        if (va == nullptr) {
            drift(label + " only in second file");
            continue;
        }
        if (vb == nullptr) {
            drift(label + " only in first file");
            continue;
        }
        if (va->isNumber() && vb->isNumber()) {
            // Exact integers compare exactly regardless of tolerance.
            if (va->type == JsonValue::Type::Int &&
                vb->type == JsonValue::Type::Int) {
                if (va->integer != vb->integer)
                    drift(label + ": " + numberToString(*va) + " vs " +
                          numberToString(*vb));
                continue;
            }
            const double da = va->number;
            const double db = vb->number;
            const double scale =
                std::max(std::fabs(da), std::fabs(db));
            if (std::fabs(da - db) > tol * scale)
                drift(label + ": " + numberToString(*va) + " vs " +
                      numberToString(*vb));
            continue;
        }
        if (va->type != vb->type) {
            drift(label + ": type mismatch");
            continue;
        }
        if (va->type == JsonValue::Type::String) {
            if (va->text != vb->text)
                drift(label + ": \"" + va->text + "\" vs \"" + vb->text +
                      "\"");
            continue;
        }
        if (va->type == JsonValue::Type::Array) {
            bool equal = va->array.size() == vb->array.size();
            for (std::size_t i = 0; equal && i < va->array.size(); ++i) {
                const JsonValue &ea = va->array[i];
                const JsonValue &eb = vb->array[i];
                equal = ea.isNumber() && eb.isNumber() &&
                        ea.number == eb.number && ea.integer == eb.integer;
            }
            if (!equal)
                drift(label + ": histograms differ");
            continue;
        }
        drift(label + ": unsupported value type");
    }
}

JsonValue
load(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return tps::obs::parseJson(text.str());
    } catch (const tps::obs::JsonParseError &error) {
        std::fprintf(stderr, "error: %s: %s (offset %zu)\n", path,
                     error.what(), error.offset());
        std::exit(2);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    double tol = 0.0;
    int arg = 1;
    if (arg < argc && std::string(argv[arg]).rfind("--tol", 0) == 0) {
        const std::string opt = argv[arg];
        std::string value;
        if (opt.rfind("--tol=", 0) == 0) {
            value = opt.substr(6);
            ++arg;
        } else if (arg + 1 < argc) {
            value = argv[arg + 1];
            arg += 2;
        }
        char *end = nullptr;
        tol = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || tol < 0.0) {
            std::fprintf(stderr, "error: --tol expects a non-negative "
                                 "number, got '%s'\n",
                         value.c_str());
            return 2;
        }
    }
    if (argc - arg != 2) {
        std::fprintf(stderr,
                     "usage: tps_stats_diff [--tol REL] a.json b.json\n");
        return 2;
    }

    const JsonValue a = load(argv[arg]);
    const JsonValue b = load(argv[arg + 1]);

    const JsonValue *schema_a = a.find("schema");
    const JsonValue *schema_b = b.find("schema");
    if (schema_a == nullptr || schema_b == nullptr ||
        schema_a->type != JsonValue::Type::String ||
        schema_b->type != JsonValue::Type::String) {
        std::fprintf(stderr, "error: missing \"schema\" field (not a "
                             "tps-stats dump?)\n");
        return 2;
    }
    if (schema_a->text != schema_b->text) {
        std::fprintf(stderr, "error: schema mismatch: %s vs %s\n",
                     schema_a->text.c_str(), schema_b->text.c_str());
        return 2;
    }

    diffSection("stats", a.find("stats"), b.find("stats"), tol);
    diffSection("text", a.find("text"), b.find("text"), tol);
    diffSection("histograms", a.find("histograms"), b.find("histograms"),
                tol);

    if (drift_count != 0) {
        std::fprintf(stderr, "%d stat(s) drifted\n", drift_count);
        return 1;
    }
    std::printf("stats match (%zu/%zu entries compared)\n",
                a.find("stats") ? a.find("stats")->object.size() : 0,
                b.find("stats") ? b.find("stats")->object.size() : 0);
    return 0;
}
