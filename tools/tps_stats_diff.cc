/**
 * @file
 * Compare two tps JSON dumps and exit nonzero when they drift.  The
 * regression gate behind the determinism guarantee: a serial and a
 * 4-thread run of the same experiment must produce byte-identical
 * stats sections.
 *
 * Usage: tps_stats_diff [--tol REL] [--prefix P] [--max-print N]
 *                       a.json b.json
 *
 * For tps-stats-v1 dumps, compares the "stats" section numerically
 * (|a-b| <= tol * max(|a|, |b|); the default tolerance 0 demands
 * exact equality) and the "text" and "histograms" sections exactly.
 * For tps-timeseries-v1 and tps-events-v1 dumps, recursively compares
 * every top-level key.  All schemas ignore the manifest — hostname,
 * timestamp and command line legitimately differ between runs of the
 * same configuration.
 *
 * --prefix P restricts the comparison to keys whose dotted path (with
 * or without the leading section name) starts with P; --max-print N
 * prints only the first N diverging keys, then a one-line count of
 * the rest (the exit code still reflects all of them).
 *
 * Exit codes: 0 = match, 1 = drift (details on stderr), 2 = usage or
 * I/O or parse error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace
{

using tps::obs::JsonValue;

int drift_count = 0;
std::size_t max_print = std::numeric_limits<std::size_t>::max();
std::string key_prefix;

void
drift(const std::string &what)
{
    ++drift_count;
    if (static_cast<std::size_t>(drift_count) <= max_print)
        std::fprintf(stderr, "drift: %s\n", what.c_str());
}

/**
 * True when @p label survives --prefix.  The prefix may or may not
 * include the section name: "stats.micro" and "micro" both select
 * "stats.micro_perf.replay.refs".
 */
bool
selected(const std::string &label)
{
    if (key_prefix.empty())
        return true;
    if (label.rfind(key_prefix, 0) == 0)
        return true;
    const std::size_t dot = label.find('.');
    return dot != std::string::npos &&
           label.compare(dot + 1, key_prefix.size(), key_prefix) == 0;
}

std::string
numberToString(const JsonValue &v)
{
    char buf[40];
    if (v.type == JsonValue::Type::Int)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.integer));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
    return buf;
}

bool
numbersEqual(const JsonValue &a, const JsonValue &b, double tol)
{
    // Exact integers compare exactly regardless of tolerance.
    if (a.type == JsonValue::Type::Int && b.type == JsonValue::Type::Int)
        return a.integer == b.integer;
    const double scale = std::max(std::fabs(a.number),
                                  std::fabs(b.number));
    return std::fabs(a.number - b.number) <= tol * scale;
}

/**
 * Recursive structural diff used for tps-timeseries-v1 documents.
 * Every leaf divergence is reported with its full dotted path (array
 * elements as [i]), so a diverging interval pinpoints the cell,
 * interval index and column.
 */
void
diffValue(const std::string &label, const JsonValue &a,
          const JsonValue &b, double tol)
{
    if (a.isNumber() && b.isNumber()) {
        if (selected(label) && !numbersEqual(a, b, tol))
            drift(label + ": " + numberToString(a) + " vs " +
                  numberToString(b));
        return;
    }
    if (a.type != b.type) {
        if (selected(label))
            drift(label + ": type mismatch");
        return;
    }
    switch (a.type) {
      case JsonValue::Type::Object: {
        std::set<std::string> names;
        for (const auto &[name, value] : a.object)
            names.insert(name);
        for (const auto &[name, value] : b.object)
            names.insert(name);
        for (const std::string &name : names) {
            const std::string child =
                label.empty() ? name : label + "." + name;
            const JsonValue *va = a.find(name);
            const JsonValue *vb = b.find(name);
            if (va == nullptr || vb == nullptr) {
                if (selected(child))
                    drift(child + " only in " +
                          (va == nullptr ? "second" : "first") +
                          " file");
                continue;
            }
            diffValue(child, *va, *vb, tol);
        }
        return;
      }
      case JsonValue::Type::Array: {
        if (a.array.size() != b.array.size()) {
            if (selected(label))
                drift(label + ": length " +
                      std::to_string(a.array.size()) + " vs " +
                      std::to_string(b.array.size()));
            return;
        }
        for (std::size_t i = 0; i < a.array.size(); ++i)
            diffValue(label + "[" + std::to_string(i) + "]",
                      a.array[i], b.array[i], tol);
        return;
      }
      case JsonValue::Type::String:
        if (selected(label) && a.text != b.text)
            drift(label + ": \"" + a.text + "\" vs \"" + b.text + "\"");
        return;
      case JsonValue::Type::Bool:
        if (selected(label) && a.boolean != b.boolean)
            drift(label + ": boolean mismatch");
        return;
      default:
        return; // both null
    }
}

/** Compare one section ("stats", "text" or "histograms") key by key. */
void
diffSection(const char *section, const JsonValue *a, const JsonValue *b,
            double tol)
{
    static const JsonValue empty_object = [] {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        return v;
    }();
    if (a == nullptr)
        a = &empty_object;
    if (b == nullptr)
        b = &empty_object;

    std::set<std::string> names;
    for (const auto &[name, value] : a->object)
        names.insert(name);
    for (const auto &[name, value] : b->object)
        names.insert(name);

    for (const std::string &name : names) {
        const std::string label = std::string(section) + "." + name;
        if (!selected(label))
            continue;
        const JsonValue *va = a->find(name);
        const JsonValue *vb = b->find(name);
        if (va == nullptr) {
            drift(label + " only in second file");
            continue;
        }
        if (vb == nullptr) {
            drift(label + " only in first file");
            continue;
        }
        if (va->isNumber() && vb->isNumber()) {
            if (!numbersEqual(*va, *vb, tol))
                drift(label + ": " + numberToString(*va) + " vs " +
                      numberToString(*vb));
            continue;
        }
        if (va->type != vb->type) {
            drift(label + ": type mismatch");
            continue;
        }
        if (va->type == JsonValue::Type::String) {
            if (va->text != vb->text)
                drift(label + ": \"" + va->text + "\" vs \"" + vb->text +
                      "\"");
            continue;
        }
        if (va->type == JsonValue::Type::Array) {
            bool equal = va->array.size() == vb->array.size();
            for (std::size_t i = 0; equal && i < va->array.size(); ++i) {
                const JsonValue &ea = va->array[i];
                const JsonValue &eb = vb->array[i];
                equal = ea.isNumber() && eb.isNumber() &&
                        ea.number == eb.number && ea.integer == eb.integer;
            }
            if (!equal)
                drift(label + ": histograms differ");
            continue;
        }
        drift(label + ": unsupported value type");
    }
}

JsonValue
load(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return tps::obs::parseJson(text.str());
    } catch (const tps::obs::JsonParseError &error) {
        std::fprintf(stderr, "error: %s: %s (offset %zu)\n", path,
                     error.what(), error.offset());
        std::exit(2);
    }
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: tps_stats_diff [--tol REL] [--prefix P] "
                 "[--max-print N] a.json b.json\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    double tol = 0.0;
    int arg = 1;
    while (arg < argc && argv[arg][0] == '-') {
        const std::string opt = argv[arg++];
        std::string flag = opt;
        std::string value;
        const std::size_t eq = opt.find('=');
        if (eq != std::string::npos) {
            flag = opt.substr(0, eq);
            value = opt.substr(eq + 1);
        } else {
            if (arg >= argc)
                return usage();
            value = argv[arg++];
        }
        if (flag == "--tol") {
            char *end = nullptr;
            tol = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || tol < 0.0) {
                std::fprintf(stderr,
                             "error: --tol expects a non-negative "
                             "number, got '%s'\n",
                             value.c_str());
                return 2;
            }
        } else if (flag == "--prefix") {
            key_prefix = value;
        } else if (flag == "--max-print") {
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr,
                             "error: --max-print expects a count, "
                             "got '%s'\n",
                             value.c_str());
                return 2;
            }
            max_print = static_cast<std::size_t>(n);
        } else {
            return usage();
        }
    }
    if (argc - arg != 2)
        return usage();

    const JsonValue a = load(argv[arg]);
    const JsonValue b = load(argv[arg + 1]);

    const JsonValue *schema_a = a.find("schema");
    const JsonValue *schema_b = b.find("schema");
    if (schema_a == nullptr || schema_b == nullptr ||
        schema_a->type != JsonValue::Type::String ||
        schema_b->type != JsonValue::Type::String) {
        std::fprintf(stderr, "error: missing \"schema\" field (not a "
                             "tps-stats dump?)\n");
        return 2;
    }
    if (schema_a->text != schema_b->text) {
        std::fprintf(stderr, "error: schema mismatch: %s vs %s\n",
                     schema_a->text.c_str(), schema_b->text.c_str());
        return 2;
    }

    std::size_t compared = 0;
    if (schema_a->text == "tps-timeseries-v1" ||
        schema_a->text == "tps-events-v1") {
        // Whole-document structural diff, manifest excepted.
        std::set<std::string> names;
        for (const auto &[name, value] : a.object)
            names.insert(name);
        for (const auto &[name, value] : b.object)
            names.insert(name);
        names.erase("manifest");
        names.erase("schema");
        for (const std::string &name : names) {
            const JsonValue *va = a.find(name);
            const JsonValue *vb = b.find(name);
            if (va == nullptr || vb == nullptr) {
                if (selected(name))
                    drift(name + " only in " +
                          (va == nullptr ? "second" : "first") +
                          " file");
                continue;
            }
            diffValue(name, *va, *vb, tol);
        }
        const JsonValue *cells = a.find("cells");
        compared = cells != nullptr ? cells->object.size() : 0;
    } else {
        diffSection("stats", a.find("stats"), b.find("stats"), tol);
        diffSection("text", a.find("text"), b.find("text"), tol);
        diffSection("histograms", a.find("histograms"),
                    b.find("histograms"), tol);
        compared = a.find("stats") ? a.find("stats")->object.size() : 0;
    }

    if (drift_count != 0) {
        if (static_cast<std::size_t>(drift_count) > max_print)
            std::fprintf(stderr, "...and %zu more diverging key(s)\n",
                         static_cast<std::size_t>(drift_count) -
                             max_print);
        std::fprintf(stderr, "%d stat(s) drifted\n", drift_count);
        return 1;
    }
    std::printf("match (%zu entries compared)\n", compared);
    return 0;
}
