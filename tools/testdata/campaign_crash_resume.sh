#!/bin/sh
# Crash-resume durability check for tps_campaign (ctest label:
# campaign).
#
#   1. run an uninterrupted reference campaign;
#   2. run the same campaign with slowed-down cells, kill -9 it after
#      the first cell commits but before the last;
#   3. --resume it and require the aggregated campaign_stats.json to
#      be BYTE-IDENTICAL to the uninterrupted run's (possible because
#      per-cell stats are deterministic and the aggregator skips the
#      wall-clock harness.* keys);
#   4. require a second --resume to be a no-op (journal untouched);
#   5. require refusal without --resume and refusal on a config-hash
#      mismatch (different --refs).
#
# Usage: campaign_crash_resume.sh <tps_campaign> <tps_top> <scratch>
set -e

CAMPAIGN=$1
TOP=$2
OUT=$3
# Small but not trivial: enough refs that 4 smoke cells outlive the
# kill window below, with per-cell start delays doing the stretching.
ARGS="--preset smoke --refs 40000 --warmup 10000 --window 8000 \
    --threads 1 --heartbeat-interval-ms 100"

rm -rf "$OUT"
mkdir -p "$OUT"

# 1. Uninterrupted reference run.
"$CAMPAIGN" --out "$OUT/ref" $ARGS > /dev/null

# 2. Interrupted run: each cell start sleeps, so the kill lands
#    mid-campaign.  Wait for durable progress (a journal with at least
#    one cell line beyond the header) before killing.
"$CAMPAIGN" --out "$OUT/crash" $ARGS --test-cell-delay-ms 500 \
    > /dev/null 2>&1 &
PID=$!

# Meanwhile prove tps_top renders the LIVE heartbeat of the running
# campaign (written every 100ms from the very start).
"$TOP" "$OUT/crash" --once --wait-ms 10000 \
    | grep -q 'tps campaign' || exit 1

i=0
while [ $i -lt 200 ]; do
    if [ -f "$OUT/crash/campaign.jsonl" ] \
        && [ "$(wc -l < "$OUT/crash/campaign.jsonl")" -gt 1 ]; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# The kill must have landed mid-campaign: some cells journaled (>= 1
# line past the header), some still pending (< 4 cell lines).
DONE=$(($(wc -l < "$OUT/crash/campaign.jsonl") - 1))
[ "$DONE" -ge 1 ] || { echo "no cell journaled before kill"; exit 1; }
[ "$DONE" -lt 4 ] || { echo "campaign finished before kill"; exit 1; }

# 3. Resume (full speed) and compare aggregates byte for byte.
"$CAMPAIGN" --out "$OUT/crash" $ARGS --resume > /dev/null
cmp "$OUT/ref/campaign_stats.json" "$OUT/crash/campaign_stats.json"

# 4. Re-resume is a no-op: journal byte-identical, nothing executed.
cp "$OUT/crash/campaign.jsonl" "$OUT/journal_before_rerun"
"$CAMPAIGN" --out "$OUT/crash" $ARGS --resume | grep -q 'nothing to do'
cmp "$OUT/journal_before_rerun" "$OUT/crash/campaign.jsonl"

# 5a. A fresh run into the same directory must refuse (exit 2).
if "$CAMPAIGN" --out "$OUT/crash" $ARGS > /dev/null 2>&1; then
    echo "fresh run over existing journal did not refuse"
    exit 1
fi

# 5b. Resuming with different result-relevant options must refuse.
if "$CAMPAIGN" --out "$OUT/crash" --preset smoke --refs 50000 \
    --warmup 10000 --window 8000 --threads 1 --resume \
    > /dev/null 2>&1; then
    echo "config-hash mismatch did not refuse"
    exit 1
fi

echo "campaign-crash-resume-ok"
