/**
 * @file
 * Converter: Valgrind lackey / cachegrind-style memory-trace text to
 * the .tps binary trace format.
 *
 * The paper consumed SPARC traces captured with Sun's shade/shadow;
 * the accessible modern equivalent is
 *
 *     valgrind --tool=lackey --trace-mem=yes ./prog 2> prog.lackey
 *
 * whose output lines look like
 *
 *     I  0023C790,2      (instruction fetch)
 *      L 04EDF54C,4      (data load)
 *      S 04EDF550,8      (data store)
 *      M 0425F4D0,4      (modify = load + store)
 *
 * Usage: lackey2tps <input.lackey|-> <output.tps> [trace-name]
 *
 * Unparseable lines (lackey banners, etc.) are skipped with a count
 * reported at the end.  'M' records expand to a load followed by a
 * store, matching how a TLB sees a read-modify-write.
 */

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/trace_file.h"
#include "util/format.h"

namespace
{

using namespace tps;

struct ParsedLine
{
    char kind = 0; // 'I', 'L', 'S', 'M'
    Addr addr = 0;
    std::uint8_t size = 4;
};

/** Parse one lackey line; false if it is not a memory record. */
bool
parseLackeyLine(const std::string &line, ParsedLine &out)
{
    std::size_t pos = 0;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    if (pos >= line.size())
        return false;
    const char kind = line[pos];
    if (kind != 'I' && kind != 'L' && kind != 'S' && kind != 'M')
        return false;
    ++pos;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;

    // Hex address.
    Addr addr = 0;
    std::size_t digits = 0;
    while (pos < line.size() &&
           std::isxdigit(static_cast<unsigned char>(line[pos]))) {
        const char c = line[pos];
        addr = (addr << 4) |
               static_cast<Addr>(c <= '9' ? c - '0'
                                          : (c | 0x20) - 'a' + 10);
        ++pos;
        ++digits;
    }
    if (digits == 0 || digits > 16)
        return false;
    if (pos >= line.size() || line[pos] != ',')
        return false;
    ++pos;

    unsigned size = 0;
    std::size_t size_digits = 0;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
        size = size * 10 + static_cast<unsigned>(line[pos] - '0');
        ++pos;
        ++size_digits;
    }
    if (size_digits == 0 || size == 0 || size > 255)
        return false;

    out.kind = kind;
    out.addr = addr;
    out.size = static_cast<std::uint8_t>(size);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tps;

    if (argc < 3) {
        std::cerr << "usage: lackey2tps <input.lackey|-> <output.tps>"
                     " [trace-name]\n";
        return 1;
    }
    const std::string input_path = argv[1];
    const std::string output_path = argv[2];
    const std::string trace_name =
        argc > 3 ? argv[3] : input_path == "-" ? "stdin" : input_path;

    std::ifstream file;
    std::istream *in = &std::cin;
    if (input_path != "-") {
        file.open(input_path);
        if (!file) {
            std::cerr << "cannot open " << input_path << "\n";
            return 1;
        }
        in = &file;
    }

    TraceFileWriter writer(output_path, trace_name);
    std::uint64_t skipped = 0;
    std::string line;
    ParsedLine parsed;
    while (std::getline(*in, line)) {
        if (!parseLackeyLine(line, parsed)) {
            ++skipped;
            continue;
        }
        switch (parsed.kind) {
          case 'I':
            writer.write({parsed.addr, RefType::Ifetch, parsed.size});
            break;
          case 'L':
            writer.write({parsed.addr, RefType::Load, parsed.size});
            break;
          case 'S':
            writer.write({parsed.addr, RefType::Store, parsed.size});
            break;
          case 'M': // read-modify-write
            writer.write({parsed.addr, RefType::Load, parsed.size});
            writer.write({parsed.addr, RefType::Store, parsed.size});
            break;
          default:
            break;
        }
    }
    writer.finish();

    std::cerr << "wrote " << withCommas(writer.refsWritten())
              << " refs to " << output_path << " (" << skipped
              << " non-record lines skipped)\n";
    return 0;
}
