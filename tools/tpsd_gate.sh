#!/bin/sh
# Loopback byte-identity gate for tpsd (DESIGN.md §14, label: net).
#
# Boots a daemon on an ephemeral port, submits two experiments
# CONCURRENTLY through tps_submit — one replayed server-side from the
# registry, one streamed over TraceChunk frames — and requires each
# session's stats to be byte-identical (tps_stats_diff, exit 0) to the
# same spec run through `tps_submit --local`, i.e. the bench-harness
# runExperiment path.  Also checks the daemon's artifacts: the HTTP
# /report page, the heartbeat, and the campaign journal.
#
# usage: tpsd_gate.sh TPSD TPS_SUBMIT TPS_STATS_DIFF WORKDIR
set -u

TPSD=$1
TPS_SUBMIT=$2
TPS_STATS_DIFF=$3
DIR=$4

rm -rf "$DIR"
mkdir -p "$DIR"

"$TPSD" --port-file "$DIR/port" --dir "$DIR/status" \
    --threads 2 --quantum-chunks 8 --heartbeat-ms 200 \
    > "$DIR/tpsd.log" 2>&1 &
TPSD_PID=$!
trap 'kill "$TPSD_PID" 2>/dev/null' EXIT

i=0
while [ ! -s "$DIR/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ] || ! kill -0 "$TPSD_PID" 2>/dev/null; then
        echo "tpsd_gate: daemon did not come up" >&2
        cat "$DIR/tpsd.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Session A: registry workload, two-size policy, interval telemetry.
SPEC_A="--workload li --refs 30000 --warmup 5000 --chunk-refs 1024 \
    --policy two_size --policy-window 8000 \
    --ts-interval 5000 --ts-miss-samples 16"
# Session B: streamed trace, single-size defaults.
SPEC_B="--workload espresso --refs 20000 --chunk-refs 512 --stream"

# Both submissions run concurrently: the daemon must multiplex them.
"$TPS_SUBMIT" --port-file "$DIR/port" --poll-ms 20 $SPEC_A \
    --stats-out "$DIR/daemon_a.json" \
    --report-out "$DIR/report_a.html" \
    > /dev/null 2> "$DIR/submit_a.log" &
A_PID=$!
"$TPS_SUBMIT" --port-file "$DIR/port" --poll-ms 20 $SPEC_B \
    --stats-out "$DIR/daemon_b.json" \
    > /dev/null 2> "$DIR/submit_b.log" &
B_PID=$!

wait "$A_PID"
A_RC=$?
wait "$B_PID"
B_RC=$?
if [ "$A_RC" -ne 0 ] || [ "$B_RC" -ne 0 ]; then
    echo "tpsd_gate: submit failed (a=$A_RC b=$B_RC)" >&2
    cat "$DIR/submit_a.log" "$DIR/submit_b.log" "$DIR/tpsd.log" >&2
    exit 1
fi

# The identical parsed specs through the in-process harness path.
"$TPS_SUBMIT" --local $SPEC_A --stats-out "$DIR/local_a.json" \
    2>> "$DIR/submit_a.log" || exit 1
"$TPS_SUBMIT" --local $SPEC_B --stats-out "$DIR/local_b.json" \
    2>> "$DIR/submit_b.log" || exit 1

# The gate itself: daemon stats == harness stats, byte for byte.
"$TPS_STATS_DIFF" "$DIR/daemon_a.json" "$DIR/local_a.json" || {
    echo "tpsd_gate: session A stats differ from --local" >&2
    exit 1
}
"$TPS_STATS_DIFF" "$DIR/daemon_b.json" "$DIR/local_b.json" || {
    echo "tpsd_gate: session B stats differ from --local" >&2
    exit 1
}

grep -q '<svg' "$DIR/report_a.html" || {
    echo "tpsd_gate: /report page carries no charts" >&2
    exit 1
}
[ -s "$DIR/status/heartbeat.json" ] || {
    echo "tpsd_gate: no heartbeat written" >&2
    exit 1
}
grep -q 'session-' "$DIR/status/campaign.jsonl" || {
    echo "tpsd_gate: no session journaled" >&2
    exit 1
}

exit 0
