/**
 * @file
 * TLB design-space explorer: uses all-associativity stack simulation
 * (the paper's tycho methodology) to evaluate every (sets x ways) TLB
 * organization for a workload in a single trace pass, then prints the
 * miss-ratio grid and flags the sweet spots.
 *
 * Usage: tlb_design_explorer [workload] [page_size e.g. 4K|8K|32K]
 */

#include <iostream>
#include <vector>

#include "stacksim/all_assoc.h"
#include "stats/table.h"
#include "util/bitops.h"
#include "util/format.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    const std::string name = argc > 1 ? argv[1] : "nasa7";
    std::uint64_t page_bytes = 4096;
    if (argc > 2 && !parseSize(argv[2], page_bytes)) {
        std::cerr << "unparseable page size '" << argv[2] << "'\n";
        return 1;
    }
    if (!isPow2(page_bytes)) {
        std::cerr << "page size must be a power of two\n";
        return 1;
    }
    const unsigned page_log2 = log2Exact(page_bytes);

    auto workload = workloads::findWorkload(name).instantiate();

    constexpr unsigned kMaxSetBits = 6; // up to 64 sets
    constexpr std::size_t kMaxWays = 8;
    AllAssocSim sim(kMaxSetBits, kMaxWays);

    constexpr std::uint64_t kRefs = 2'000'000;
    MemRef ref;
    for (std::uint64_t n = 0; n < kRefs && workload->next(ref); ++n)
        sim.observe(ref.vaddr >> page_log2);

    std::cout << "all-associativity sweep: " << name << ", "
              << formatBytes(page_bytes) << " pages, "
              << withCommas(sim.refs()) << " refs, "
              << (kMaxSetBits + 1) * 4
              << " TLB organizations in one pass\n\n";

    stats::TextTable table({"Entries", "direct", "2-way", "4-way",
                            "8-way", "fully-assoc"});
    const std::size_t way_options[] = {1, 2, 4, 8};
    for (std::size_t entries = 8; entries <= 64; entries *= 2) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (std::size_t ways : way_options) {
            if (entries % ways != 0 ||
                log2Exact(entries / ways) > kMaxSetBits) {
                row.push_back("-");
                continue;
            }
            const double ratio =
                static_cast<double>(
                    sim.missesForCapacity(entries, ways)) /
                static_cast<double>(sim.refs());
            row.push_back(formatFixed(ratio * 100.0, 3) + "%");
        }
        // Fully associative = one set with `entries` ways, available
        // while entries <= kMaxWays; otherwise approximate with the
        // largest tracked associativity at minimum sets.
        if (entries <= kMaxWays) {
            const double ratio =
                static_cast<double>(sim.misses(0, entries)) /
                static_cast<double>(sim.refs());
            row.push_back(formatFixed(ratio * 100.0, 3) + "%");
        } else {
            row.push_back("-");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nReading the grid: going down a row doubles "
                 "capacity; moving right adds associativity at fixed "
                 "capacity.  When a row's 2-way and direct entries "
                 "match, conflicts are negligible and the cheaper "
                 "organization suffices (paper Section 2.2c: extra "
                 "associativity also absorbs large-page-index "
                 "collisions).\n";
    return 0;
}
