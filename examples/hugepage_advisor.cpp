/**
 * @file
 * Huge-page advisor: runs the Section 3.4 assignment policy over a
 * workload's reference stream and reports which 32KB regions of the
 * address space deserve large pages — the ancestor of what
 * `madvise(MADV_HUGEPAGE)` tooling or Linux khugepaged decides today.
 *
 * Usage: hugepage_advisor [workload] [window]
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "stats/table.h"
#include "util/format.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    const std::string name = argc > 1 ? argv[1] : "li";
    const RefTime window =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;

    auto workload = workloads::findWorkload(name).instantiate();

    TwoSizeConfig config;
    config.window = window;
    TwoSizePolicy policy(config);

    // Track per-chunk reference counts to rank the recommendations.
    std::map<Addr, std::uint64_t> chunk_refs;
    std::map<Addr, std::uint64_t> chunk_large_refs;

    MemRef ref;
    RefTime now = 0;
    while (now < 2'000'000 && workload->next(ref)) {
        ++now;
        const PageId page = policy.classify(ref.vaddr, now);
        const Addr chunk = ref.vaddr >> config.largeLog2;
        ++chunk_refs[chunk];
        if (page.sizeLog2 == config.largeLog2)
            ++chunk_large_refs[chunk];
    }

    std::cout << "huge-page advice for '" << name << "' (window "
              << withCommas(window) << " refs, "
              << withCommas(now) << " refs analyzed)\n"
              << "policy: promote a 32KB chunk when >= "
              << config.resolvedPromote()
              << " of its 8 blocks are touched within the window\n\n";

    struct Advice
    {
        Addr chunk;
        std::uint64_t refs;
        double largeShare;
        bool promoted;
    };
    std::vector<Advice> advice;
    for (const auto &[chunk, refs] : chunk_refs) {
        const double share =
            static_cast<double>(chunk_large_refs[chunk]) /
            static_cast<double>(refs);
        advice.push_back(Advice{
            chunk, refs, share,
            policy.isLargeMapped(chunk << config.largeLog2)});
    }
    std::sort(advice.begin(), advice.end(),
              [](const Advice &a, const Advice &b) {
                  return a.refs > b.refs;
              });

    stats::TextTable table(
        {"Region", "Refs", "Large-mapped refs", "Advice"});
    std::size_t shown = 0;
    std::uint64_t promoted_chunks = 0;
    for (const auto &entry : advice)
        promoted_chunks += entry.promoted ? 1 : 0;
    for (const auto &entry : advice) {
        if (shown++ >= 16)
            break;
        char region[64];
        std::snprintf(region, sizeof(region), "0x%09llx",
                      static_cast<unsigned long long>(
                          entry.chunk << config.largeLog2));
        table.addRow({region, withCommas(entry.refs),
                      formatFixed(entry.largeShare * 100.0, 1) + "%",
                      entry.promoted ? "use a 32KB page"
                                     : "keep 4KB pages"});
    }
    table.print(std::cout);

    std::cout << "\n" << promoted_chunks << " of " << advice.size()
              << " touched 32KB regions end mapped large ("
              << formatBytes(promoted_chunks << config.largeLog2)
              << " of huge-page-backed memory); "
              << policy.stats().promotions << " promotions total\n";
    return 0;
}
