/**
 * @file
 * Trace-file tour: captures a workload into the portable .tps binary
 * trace format, reads it back, and runs the full analysis pipeline
 * (descriptive stats, working sets, TLB simulation) from the file —
 * the workflow for plugging in externally captured traces (Pin,
 * Valgrind/lackey, QEMU plugins) in place of the built-in generators.
 *
 * Usage: trace_file_tour [workload] [path]
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "trace/trace_file.h"
#include "trace/trace_stats.h"
#include "util/format.h"
#include "workloads/registry.h"
#include "wset/avg_working_set.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    const std::string name = argc > 1 ? argv[1] : "eqntott";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/tps_tour_trace.tps";

    // 1. Capture: any TraceSource can be serialized.
    {
        auto workload = workloads::findWorkload(name).instantiate();
        const std::uint64_t written =
            writeTraceFile(path, *workload, 500'000);
        std::cout << "captured " << withCommas(written) << " refs of '"
                  << name << "' to " << path << "\n";
    }

    // 2. Reload and verify the header.
    TraceFileReader reader(path);
    std::cout << "header: name='" << reader.name() << "', "
              << withCommas(reader.refCount()) << " refs\n\n";

    // 3. Descriptive statistics (Table 3.1 columns).
    const TraceStats stats = collectTraceStats(reader);
    std::cout << "RPI " << formatFixed(stats.rpi(), 2) << ", footprint "
              << formatBytes(stats.footprintBytes()) << " ("
              << stats.codePages4k << " code + " << stats.dataPages4k
              << " data pages)\n";

    // 4. Working-set curve straight off the file.
    reader.reset();
    AvgWorkingSet wset({kLog2_4K, kLog2_8K, kLog2_16K, kLog2_32K},
                       {50'000});
    MemRef ref;
    while (reader.next(ref))
        wset.observe(ref.vaddr);
    wset.finish();
    std::cout << "avg working set (T=50k): ";
    const char *labels[] = {"4KB", "8KB", "16KB", "32KB"};
    for (std::size_t s = 0; s < 4; ++s) {
        std::cout << labels[s] << "="
                  << formatBytes(static_cast<std::uint64_t>(
                         wset.averageBytes(s, 0)))
                  << (s + 1 < 4 ? ", " : "\n");
    }

    // 5. TLB experiment driven from the file.
    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 32;
    tlb.ways = 2;
    core::RunOptions options;
    options.maxRefs = 0; // drain the file
    TwoSizeConfig policy;
    policy.window = 50'000;
    const auto result = core::runExperiment(
        reader, core::PolicySpec::twoSizes(policy), tlb, options);
    std::cout << "\n32-entry 2-way exact-index TLB, 4KB/32KB policy:\n"
              << "  CPI_TLB " << formatFixed(result.cpiTlb, 3) << ", "
              << formatFixed(result.policy.largeFraction() * 100, 1)
              << "% large-mapped refs, " << result.policy.promotions
              << " promotions\n";

    std::remove(path.c_str());
    return 0;
}
