/**
 * @file
 * One-command reproduction of the paper's abstract:
 *
 *   "increasing the page size to 32KB causes both a significant
 *    increase in average working set size (e.g., 60%) and a
 *    significant reduction in the TLB's contribution to CPI (namely
 *    a factor of eight) compared to using 4KB pages.  Results for
 *    using two page sizes ... show a small increase in working set
 *    size (about 10%) and variable decrease in CPI_TLB (from
 *    negligible to as good as found with the 32KB page size).
 *    CPI_TLB when using two page sizes is consistently better for
 *    fully associative TLBs than for set-associative ones."
 *
 * Runs the suite at a configurable scale and checks each clause,
 * printing PASS/FAIL per claim.  Exit status is the number of failed
 * claims, so this doubles as a coarse regression gate.
 */

#include <iostream>

#include "core/figures.h"
#include "util/format.h"

int
main()
{
    using namespace tps;
    const core::StudyScale scale = core::defaultScale();
    std::cout << "reproducing the abstract at "
              << withCommas(scale.refs) << " refs/workload, T = "
              << withCommas(scale.window) << "\n\n";

    int failures = 0;
    auto claim = [&](const char *text, bool ok, std::string detail) {
        std::cout << (ok ? "[PASS] " : "[FAIL] ") << text << "\n"
                  << "       " << detail << "\n";
        failures += ok ? 0 : 1;
    };

    // Working sets (Figure 4.x machinery).
    const auto ws = core::runWsTwoStudy(scale, core::paperPolicy(scale));
    double ws32 = 0.0, ws_two = 0.0;
    for (const auto &row : ws) {
        ws32 += row.norm32k;
        ws_two += row.normTwoSize;
    }
    ws32 /= static_cast<double>(ws.size());
    ws_two /= static_cast<double>(ws.size());

    claim("32KB single pages significantly increase working sets "
          "(paper: ~60%)",
          ws32 >= 1.3,
          "avg WS_norm(32KB) = " + formatFixed(ws32, 2));
    claim("two page sizes cost only ~10% extra working set",
          ws_two <= 1.2,
          "avg WS_norm(4K/32K) = " + formatFixed(ws_two, 2));

    // CPI on the fully associative TLB (Figure 5.1 machinery).
    TlbConfig fa;
    fa.organization = TlbOrganization::FullyAssociative;
    fa.entries = 16;
    const auto cpi_fa = core::runCpiStudy(scale, fa);
    double fa_4k = 0.0, fa_32k = 0.0, fa_two = 0.0;
    unsigned fa_improved = 0;
    for (const auto &row : cpi_fa) {
        fa_4k += row.cpi4k;
        fa_32k += row.cpi32k;
        fa_two += row.cpiTwoSize;
        fa_improved += row.cpiTwoSize < row.cpi4k ? 1 : 0;
    }
    claim("32KB single pages cut CPI_TLB by a large factor "
          "(paper: ~8x)",
          fa_32k > 0.0 && fa_4k / fa_32k >= 4.0,
          "aggregate 4KB/32KB ratio = " +
              formatFixed(fa_32k > 0 ? fa_4k / fa_32k : 0.0, 1) + "x");
    claim("two sizes approach the 32KB result on a fully "
          "associative TLB",
          fa_two <= 2.0 * fa_32k && fa_improved >= 9,
          "aggregate CPI: two-size " + formatFixed(fa_two / 12, 3) +
              " vs 32KB " + formatFixed(fa_32k / 12, 3) + "; " +
              std::to_string(fa_improved) + "/12 beat 4KB");

    // Set-associative comparison (Figure 5.2 machinery).
    TlbConfig sa;
    sa.organization = TlbOrganization::SetAssociative;
    sa.entries = 16;
    sa.ways = 2;
    sa.scheme = IndexScheme::Exact;
    const auto cpi_sa = core::runCpiStudy(scale, sa);
    unsigned sa_improved = 0;
    double sa_rel = 0.0, fa_rel = 0.0;
    for (std::size_t i = 0; i < cpi_sa.size(); ++i) {
        sa_improved += cpi_sa[i].cpiTwoSize < cpi_sa[i].cpi4k ? 1 : 0;
        if (cpi_sa[i].cpi4k > 0)
            sa_rel += cpi_sa[i].cpiTwoSize / cpi_sa[i].cpi4k;
        if (cpi_fa[i].cpi4k > 0)
            fa_rel += cpi_fa[i].cpiTwoSize / cpi_fa[i].cpi4k;
    }
    claim("set-associative results are mixed (paper: 8/12 improve "
          "at 16 entries)",
          sa_improved >= 6 && sa_improved <= 11,
          std::to_string(sa_improved) + "/12 improve at 16-entry "
          "2-way");
    claim("two page sizes consistently do better on fully "
          "associative than set-associative TLBs",
          fa_rel < sa_rel,
          "mean CPI(two)/CPI(4KB): FA " + formatFixed(fa_rel / 12, 2) +
              " vs 2-way " + formatFixed(sa_rel / 12, 2));

    std::cout << "\n" << (6 - failures) << "/6 abstract claims hold\n";
    return failures;
}
