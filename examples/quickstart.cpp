/**
 * @file
 * Quickstart: simulate one workload against a single-page-size TLB
 * and the paper's two-page-size scheme, and print the comparison.
 *
 * Usage: quickstart [workload]     (default: matrix300)
 */

#include <iostream>

#include "core/experiment.h"
#include "util/format.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;

    const std::string name = argc > 1 ? argv[1] : "matrix300";
    auto workload = workloads::findWorkload(name).instantiate();

    // A 16-entry fully associative TLB, like the paper's Figure 5.1.
    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 16;

    core::RunOptions options;
    options.maxRefs = 1'000'000;
    options.warmupRefs = 250'000;
    options.wsWindow = 100'000;

    std::cout << "workload: " << name << "\n\n";

    // Baseline: single 4KB pages.
    const auto base = core::runExperiment(
        *workload, core::PolicySpec::single(kLog2_4K), tlb, options);
    std::cout << "4KB pages on " << base.tlbName << ":\n"
              << "  misses " << withCommas(base.tlb.misses) << " / "
              << withCommas(base.refs) << " refs"
              << "  (miss ratio " << formatFixed(base.missRatio * 100, 3)
              << "%)\n"
              << "  CPI_TLB " << formatFixed(base.cpiTlb, 3)
              << "   avg working set "
              << formatBytes(static_cast<std::uint64_t>(base.avgWsBytes))
              << "\n\n";

    // The paper's dynamic 4KB/32KB scheme (Section 3.4 policy).
    TwoSizeConfig policy;
    policy.window = 100'000;
    const auto two = core::runExperiment(
        *workload, core::PolicySpec::twoSizes(policy), tlb, options);
    std::cout << "4KB/32KB two-page-size scheme:\n"
              << "  misses " << withCommas(two.tlb.misses)
              << "  CPI_TLB " << formatFixed(two.cpiTlb, 3)
              << "  (miss penalty x1.25 included)\n"
              << "  " << formatFixed(two.policy.largeFraction() * 100, 1)
              << "% of references mapped by large pages, "
              << two.policy.promotions
              << " promotions after warmup\n"
              << "  avg working set "
              << formatBytes(static_cast<std::uint64_t>(two.avgWsBytes))
              << "\n\n";

    const double speedup =
        two.cpiTlb > 0 ? base.cpiTlb / two.cpiTlb : 0.0;
    std::cout << "CPI_TLB ratio (4KB / two-size): "
              << formatFixed(speedup, 2) << "x\n";
    return 0;
}
