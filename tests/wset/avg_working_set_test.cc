/**
 * @file
 * Tests for the gap-based average working-set analyzer, including a
 * brute-force cross-validation of the Slutz-Traiger identity.
 */

#include "wset/avg_working_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.h"
#include "vm/page.h"

namespace tps
{
namespace
{

/** Brute force: recompute w(t) from scratch at every t. */
double
bruteForceAvgBytes(const std::vector<Addr> &addrs, unsigned size_log2,
                   RefTime window)
{
    double total = 0.0;
    for (std::size_t t = 1; t <= addrs.size(); ++t) {
        std::set<Addr> pages;
        const std::size_t begin =
            t > window ? t - static_cast<std::size_t>(window) : 0;
        for (std::size_t i = begin; i < t; ++i)
            pages.insert(addrs[i] >> size_log2);
        total += static_cast<double>(pages.size()) *
                 static_cast<double>(std::uint64_t{1} << size_log2);
    }
    return total / static_cast<double>(addrs.size());
}

std::vector<Addr>
randomTrace(std::size_t refs, Addr page_span, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs;
    addrs.reserve(refs);
    for (std::size_t i = 0; i < refs; ++i)
        addrs.push_back(rng.below(page_span * 4096));
    return addrs;
}

TEST(AvgWorkingSetTest, SinglePageAlwaysResident)
{
    AvgWorkingSet wset({kLog2_4K}, {10});
    for (int i = 0; i < 100; ++i)
        wset.observe(0x1000);
    wset.finish();
    EXPECT_DOUBLE_EQ(wset.averageBytes(0, 0), 4096.0);
    EXPECT_EQ(wset.distinctPages(0), 1u);
}

TEST(AvgWorkingSetTest, DisjointPagesWideWindow)
{
    // Window larger than the trace: every touched page stays resident
    // from its first touch on.
    AvgWorkingSet wset({kLog2_4K}, {1000});
    wset.observe(0x1000); // w=1 for t=1..
    wset.observe(0x2000); // w=2
    wset.observe(0x3000); // w=3
    wset.finish();
    EXPECT_DOUBLE_EQ(wset.averageBytes(0, 0), (1 + 2 + 3) / 3.0 * 4096);
}

TEST(AvgWorkingSetTest, WindowOneIsAlwaysOnePage)
{
    AvgWorkingSet wset({kLog2_4K}, {1});
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        wset.observe(rng.below(1 << 20));
    wset.finish();
    EXPECT_DOUBLE_EQ(wset.averageBytes(0, 0), 4096.0);
}

TEST(AvgWorkingSetTest, MatchesBruteForceRandomTraces)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto addrs = randomTrace(600, 16, seed);
        for (RefTime window : {5ull, 37ull, 200ull, 1000ull}) {
            AvgWorkingSet wset({kLog2_4K}, {window});
            for (Addr addr : addrs)
                wset.observe(addr);
            wset.finish();
            EXPECT_NEAR(wset.averageBytes(0, 0),
                        bruteForceAvgBytes(addrs, kLog2_4K, window),
                        1e-6)
                << "seed " << seed << " T " << window;
        }
    }
}

TEST(AvgWorkingSetTest, MultiSizeMatchesIndividualRuns)
{
    const auto addrs = randomTrace(800, 64, 7);
    AvgWorkingSet multi({kLog2_4K, kLog2_16K, kLog2_64K}, {50, 400});
    for (Addr addr : addrs)
        multi.observe(addr);
    multi.finish();

    const std::vector<unsigned> sizes = {kLog2_4K, kLog2_16K,
                                         kLog2_64K};
    const std::vector<RefTime> windows = {50, 400};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        for (std::size_t w = 0; w < windows.size(); ++w) {
            AvgWorkingSet single({sizes[s]}, {windows[w]});
            for (Addr addr : addrs)
                single.observe(addr);
            single.finish();
            EXPECT_DOUBLE_EQ(multi.averageBytes(s, w),
                             single.averageBytes(0, 0));
        }
    }
}

TEST(AvgWorkingSetTest, LargerPagesNeverShrinkWorkingSetBytes)
{
    // Monotonicity: doubling the page size can only merge pages, and
    // the byte total never decreases (each merged pair costs at most
    // one page size but is at least one page).
    const auto addrs = randomTrace(1000, 128, 9);
    AvgWorkingSet wset({kLog2_4K, kLog2_8K, kLog2_16K, kLog2_32K,
                        kLog2_64K},
                       {100});
    for (Addr addr : addrs)
        wset.observe(addr);
    wset.finish();
    for (std::size_t s = 1; s < 5; ++s)
        EXPECT_GE(wset.averageBytes(s, 0) * 1.0000001,
                  wset.averageBytes(s - 1, 0));
}

TEST(AvgWorkingSetTest, LargerWindowNeverShrinksWorkingSet)
{
    const auto addrs = randomTrace(1000, 64, 11);
    AvgWorkingSet wset({kLog2_4K}, {10, 50, 250, 1250});
    for (Addr addr : addrs)
        wset.observe(addr);
    wset.finish();
    for (std::size_t w = 1; w < 4; ++w)
        EXPECT_GE(wset.averageBytes(0, w), wset.averageBytes(0, w - 1));
}

TEST(AvgWorkingSetTest, EmptyTraceSafe)
{
    AvgWorkingSet wset({kLog2_4K}, {10});
    wset.finish();
    EXPECT_DOUBLE_EQ(wset.averageBytes(0, 0), 0.0);
}

TEST(AvgWorkingSetDeathTest, ObserveAfterFinishPanics)
{
    AvgWorkingSet wset({kLog2_4K}, {10});
    wset.finish();
    EXPECT_DEATH(wset.observe(0x1000), "finish");
}

TEST(AvgWorkingSetDeathTest, RejectsEmptyConfig)
{
    EXPECT_EXIT((AvgWorkingSet{{}, {10}}), ::testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace tps
