/**
 * @file
 * Tests for the exact two-size working-set analyzer, including a
 * brute-force recomputation of the paper's w(t,T,ps) definition.
 */

#include "wset/two_size_working_set.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace tps
{
namespace
{

TwoSizeConfig
testConfig(RefTime window)
{
    TwoSizeConfig config;
    config.smallLog2 = kLog2_4K;
    config.largeLog2 = kLog2_32K;
    config.window = window;
    return config;
}

/** Brute force per the paper's definition. */
double
bruteForceAvg(const std::vector<Addr> &addrs, const TwoSizeConfig &cfg)
{
    const unsigned threshold = cfg.resolvedPromote();
    double total = 0.0;
    for (std::size_t t = 1; t <= addrs.size(); ++t) {
        const std::size_t begin =
            t > cfg.window ? t - static_cast<std::size_t>(cfg.window)
                           : 0;
        std::map<Addr, std::set<unsigned>> chunk_blocks;
        for (std::size_t i = begin; i < t; ++i) {
            const Addr chunk = addrs[i] >> cfg.largeLog2;
            const unsigned block = static_cast<unsigned>(
                (addrs[i] >> cfg.smallLog2) &
                (cfg.blocksPerChunk() - 1));
            chunk_blocks[chunk].insert(block);
        }
        std::uint64_t bytes = 0;
        for (const auto &[chunk, blocks] : chunk_blocks) {
            if (blocks.size() >= threshold)
                bytes += std::uint64_t{1} << cfg.largeLog2;
            else
                bytes += std::uint64_t{blocks.size()} << cfg.smallLog2;
        }
        total += static_cast<double>(bytes);
    }
    return total / static_cast<double>(addrs.size());
}

TEST(TwoSizeWorkingSetTest, SingleBlockCountsSmall)
{
    TwoSizeWorkingSet wset(testConfig(100));
    for (int i = 0; i < 10; ++i)
        wset.observe(0x2000'0000);
    EXPECT_EQ(wset.currentBytes(), 4096u);
    EXPECT_EQ(wset.largeChunks(), 0u);
}

TEST(TwoSizeWorkingSetTest, PromotionAtThreshold)
{
    TwoSizeWorkingSet wset(testConfig(100));
    for (unsigned b = 0; b < 3; ++b)
        wset.observe(0x2000'0000 + b * 0x1000);
    EXPECT_EQ(wset.currentBytes(), 3u * 4096);
    wset.observe(0x2000'3000); // fourth block: whole chunk counts 32KB
    EXPECT_EQ(wset.currentBytes(), 32768u);
    EXPECT_EQ(wset.largeChunks(), 1u);
}

TEST(TwoSizeWorkingSetTest, DemotesWhenBlocksExpire)
{
    TwoSizeWorkingSet wset(testConfig(8));
    for (unsigned b = 0; b < 4; ++b)
        wset.observe(0x2000'0000 + b * 0x1000);
    EXPECT_EQ(wset.largeChunks(), 1u);
    // Push the window past the old touches with one distant block.
    for (int i = 0; i < 10; ++i)
        wset.observe(0x9000'0000);
    EXPECT_EQ(wset.largeChunks(), 0u);
    EXPECT_EQ(wset.currentBytes(), 4096u); // just the distant block
}

TEST(TwoSizeWorkingSetTest, NeverMoreThanDoubleSmallPages)
{
    // Paper Section 3.4: "at worst we only double the working set".
    Rng rng(31);
    TwoSizeConfig cfg = testConfig(200);
    TwoSizeWorkingSet two(cfg);
    // Companion exact 4KB-only window tracker.
    std::deque<Addr> window;
    std::map<Addr, int> counts;
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = rng.below(64 * 32768);
        two.observe(addr);
        window.push_back(addr >> kLog2_4K);
        counts[addr >> kLog2_4K]++;
        if (window.size() > 200) {
            if (--counts[window.front()] == 0)
                counts.erase(window.front());
            window.pop_front();
        }
        const std::uint64_t small_bytes = counts.size() * 4096;
        ASSERT_LE(two.currentBytes(), 2 * small_bytes);
        ASSERT_GE(two.currentBytes(), small_bytes);
    }
}

TEST(TwoSizeWorkingSetTest, MatchesBruteForce)
{
    Rng rng(33);
    std::vector<Addr> addrs;
    for (int i = 0; i < 1500; ++i)
        addrs.push_back(rng.below(16 * 32768));
    for (RefTime window : {7ull, 50ull, 300ull}) {
        TwoSizeConfig cfg = testConfig(window);
        TwoSizeWorkingSet wset(cfg);
        for (Addr addr : addrs)
            wset.observe(addr);
        EXPECT_NEAR(wset.averageBytes(), bruteForceAvg(addrs, cfg),
                    1e-6)
            << "window " << window;
    }
}

TEST(TwoSizeWorkingSetTest, CustomThresholdRespected)
{
    TwoSizeConfig cfg = testConfig(100);
    cfg.promoteThreshold = 2;
    TwoSizeWorkingSet wset(cfg);
    wset.observe(0x2000'0000);
    EXPECT_EQ(wset.currentBytes(), 4096u);
    wset.observe(0x2000'1000);
    EXPECT_EQ(wset.currentBytes(), 32768u);
}

TEST(TwoSizeWorkingSetTest, ResetClears)
{
    TwoSizeWorkingSet wset(testConfig(10));
    wset.observe(0x2000'0000);
    wset.reset();
    EXPECT_EQ(wset.currentBytes(), 0u);
    EXPECT_EQ(wset.refs(), 0u);
    EXPECT_DOUBLE_EQ(wset.averageBytes(), 0.0);
}

} // namespace
} // namespace tps
