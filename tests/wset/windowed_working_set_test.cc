/** @file Tests for the sliding-window working-set tracker. */

#include "wset/windowed_working_set.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "wset/avg_working_set.h"

namespace tps
{
namespace
{

TEST(WindowedWorkingSetTest, SinglePage)
{
    WindowedWorkingSet wset(10);
    for (int i = 0; i < 50; ++i)
        wset.observe(PageId{0x1, kLog2_4K});
    EXPECT_EQ(wset.currentBytes(), 4096u);
    EXPECT_EQ(wset.currentPages(), 1u);
    EXPECT_DOUBLE_EQ(wset.averageBytes(), 4096.0);
}

TEST(WindowedWorkingSetTest, EvictsAfterWindow)
{
    WindowedWorkingSet wset(3);
    wset.observe(PageId{0x1, kLog2_4K});
    wset.observe(PageId{0x2, kLog2_4K});
    wset.observe(PageId{0x3, kLog2_4K});
    EXPECT_EQ(wset.currentPages(), 3u);
    wset.observe(PageId{0x4, kLog2_4K}); // 0x1 falls out
    EXPECT_EQ(wset.currentPages(), 3u);
    EXPECT_EQ(wset.currentBytes(), 3u * 4096);
}

TEST(WindowedWorkingSetTest, MixedSizesSumBytes)
{
    WindowedWorkingSet wset(10);
    wset.observe(PageId{0x1, kLog2_4K});
    wset.observe(PageId{0x2, kLog2_32K});
    EXPECT_EQ(wset.currentBytes(), 4096u + 32768u);
}

TEST(WindowedWorkingSetTest, SamePageDifferentSizesDistinct)
{
    WindowedWorkingSet wset(10);
    wset.observe(PageId{0x1, kLog2_4K});
    wset.observe(PageId{0x1, kLog2_32K});
    EXPECT_EQ(wset.currentPages(), 2u);
}

TEST(WindowedWorkingSetTest, RepeatedTouchesRefreshResidency)
{
    WindowedWorkingSet wset(4);
    for (int i = 0; i < 20; ++i) {
        wset.observe(PageId{0x1, kLog2_4K});
        wset.observe(PageId{static_cast<Addr>(0x100 + i), kLog2_4K});
    }
    // 0x1 is re-touched every other ref, so it never leaves.
    EXPECT_GE(wset.currentPages(), 2u);
    EXPECT_LE(wset.currentPages(), 4u);
}

TEST(WindowedWorkingSetTest, AgreesWithGapAnalyzerOnStaticSizes)
{
    // For a fixed page size, the windowed tracker and the gap-based
    // analyzer compute the same average (two independent algorithms).
    Rng rng(21);
    const RefTime window = 64;
    WindowedWorkingSet windowed(window);
    AvgWorkingSet gap({kLog2_4K}, {window});
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(96 * 4096);
        windowed.observe(pageOf(addr, kLog2_4K));
        gap.observe(addr);
    }
    gap.finish();
    EXPECT_NEAR(windowed.averageBytes(), gap.averageBytes(0, 0), 1e-6);
}

TEST(WindowedWorkingSetTest, ResetClears)
{
    WindowedWorkingSet wset(5);
    wset.observe(PageId{0x1, kLog2_4K});
    wset.reset();
    EXPECT_EQ(wset.currentBytes(), 0u);
    EXPECT_EQ(wset.currentPages(), 0u);
    EXPECT_EQ(wset.refs(), 0u);
}

TEST(WindowedWorkingSetDeathTest, ZeroWindowFatal)
{
    EXPECT_EXIT(WindowedWorkingSet{0}, ::testing::ExitedWithCode(1),
                "window");
}

} // namespace
} // namespace tps
