/** @file Unit tests for workloads/patterns.h. */

#include "workloads/patterns.h"

#include <gtest/gtest.h>

#include <set>

namespace tps::workloads
{
namespace
{

TEST(SweepTest, SequentialAndWraps)
{
    Sweep sweep(0x1000, 32, 8);
    EXPECT_EQ(sweep.next(), 0x1000u);
    EXPECT_EQ(sweep.next(), 0x1008u);
    EXPECT_EQ(sweep.next(), 0x1010u);
    EXPECT_FALSE(sweep.wrapped());
    EXPECT_EQ(sweep.next(), 0x1018u);
    EXPECT_TRUE(sweep.wrapped());
    EXPECT_EQ(sweep.next(), 0x1000u); // wrapped to start
}

TEST(SweepTest, NegativeStrideNormalized)
{
    Sweep sweep(0x1000, 32, -8);
    EXPECT_EQ(sweep.next(), 0x1000u);
    EXPECT_EQ(sweep.next(), 0x1018u); // -8 mod 32 = 24
}

TEST(SweepTest, ZeroStrideStillAdvances)
{
    Sweep sweep(0x1000, 32, 0);
    const Addr first = sweep.next();
    const Addr second = sweep.next();
    EXPECT_NE(first, second);
}

TEST(SweepTest, RestartRewinds)
{
    Sweep sweep(0x2000, 64, 16);
    sweep.next();
    sweep.next();
    sweep.restart();
    EXPECT_EQ(sweep.next(), 0x2000u);
}

TEST(SweepTest, LargeStrideCoversAllPagesOfRegion)
{
    // The matrix300 B-operand pattern: stride 2400 over 64KB.
    Sweep sweep(0x0, 64 * 1024, 2400);
    std::set<Addr> pages;
    for (int i = 0; i < 10000; ++i)
        pages.insert(sweep.next() >> 12);
    EXPECT_EQ(pages.size(), 16u); // every 4KB page touched
}

TEST(PointerChaseTest, VisitsEveryCellOncePerCycle)
{
    Rng rng(5);
    PointerChase chase(0x10000, 1024, 64, rng);
    ASSERT_EQ(chase.cells(), 16u);
    std::set<Addr> seen;
    for (unsigned i = 0; i < chase.cells(); ++i)
        seen.insert(chase.next());
    EXPECT_EQ(seen.size(), chase.cells()); // single full cycle
}

TEST(PointerChaseTest, CycleRepeatsIdentically)
{
    Rng rng(6);
    PointerChase chase(0x0, 512, 32, rng);
    std::vector<Addr> first, second;
    for (unsigned i = 0; i < chase.cells(); ++i)
        first.push_back(chase.next());
    for (unsigned i = 0; i < chase.cells(); ++i)
        second.push_back(chase.next());
    EXPECT_EQ(first, second);
}

TEST(PointerChaseTest, AddressesInRegion)
{
    Rng rng(7);
    PointerChase chase(0x40000, 4096, 16, rng);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = chase.next();
        EXPECT_GE(addr, 0x40000u);
        EXPECT_LT(addr, 0x41000u);
    }
}

TEST(ZipfObjectsTest, AddressesInRegion)
{
    ZipfObjects objects(0x100000, 64, 2048, 1.0);
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = objects.next(rng);
        EXPECT_GE(addr, 0x100000u);
        EXPECT_LT(addr, 0x100000u + objects.regionBytes());
    }
}

TEST(ZipfObjectsTest, HotObjectDominates)
{
    ZipfObjects objects(0x0, 32, 4096, 1.5);
    Rng rng(9);
    const Addr hot_base = objects.objectBase(0);
    int hot = 0;
    const int draws = 5000;
    for (int i = 0; i < draws; ++i) {
        const Addr addr = objects.next(rng);
        hot += (addr >= hot_base && addr < hot_base + 4096) ? 1 : 0;
    }
    EXPECT_GT(hot, draws / 8); // far above the uniform 1/32 share
}

TEST(ZipfObjectsTest, PlacementScattersHotRanks)
{
    // Popularity rank 0 and 1 should usually not be adjacent in
    // memory thanks to the placement shuffle.
    int adjacent = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ZipfObjects objects(0x0, 256, 1024, 1.0, seed);
        const Addr delta = objects.objectBase(0) > objects.objectBase(1)
                               ? objects.objectBase(0) -
                                     objects.objectBase(1)
                               : objects.objectBase(1) -
                                     objects.objectBase(0);
        adjacent += delta == 1024 ? 1 : 0;
    }
    EXPECT_LT(adjacent, 5);
}

} // namespace
} // namespace tps::workloads
