/** @file Unit tests for workloads/code_model.h. */

#include "workloads/code_model.h"

#include <gtest/gtest.h>

#include <set>

namespace tps::workloads
{
namespace
{

CodeModelConfig
smallConfig()
{
    CodeModelConfig config;
    config.functions = 8;
    config.avgFuncBytes = 512;
    return config;
}

TEST(CodeModelTest, FetchesStayInText)
{
    CodeModel code(smallConfig());
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = code.nextFetch(rng);
        EXPECT_GE(pc, kTextBase);
        EXPECT_LT(pc, kTextBase + code.textBytes());
    }
}

TEST(CodeModelTest, FetchesAreInstructionAligned)
{
    CodeModel code(smallConfig());
    Rng rng(2);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(code.nextFetch(rng) & 3, 0u);
}

TEST(CodeModelTest, DeterministicGivenSameRngStream)
{
    CodeModel a(smallConfig()), b(smallConfig());
    Rng rng_a(3), rng_b(3);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a.nextFetch(rng_a), b.nextFetch(rng_b));
}

TEST(CodeModelTest, ResetRestartsAtEntry)
{
    CodeModel code(smallConfig());
    Rng rng1(4);
    const Addr first = code.nextFetch(rng1);
    for (int i = 0; i < 100; ++i)
        code.nextFetch(rng1);
    code.reset();
    Rng rng2(4);
    EXPECT_EQ(code.nextFetch(rng2), first);
}

TEST(CodeModelTest, TextBytesScalesWithFunctions)
{
    CodeModelConfig small = smallConfig();
    CodeModelConfig big = smallConfig();
    big.functions = 64;
    EXPECT_GT(CodeModel(big).textBytes(), CodeModel(small).textBytes());
}

TEST(CodeModelTest, MultiplePagesVisitedWithManyFunctions)
{
    CodeModelConfig config;
    config.functions = 32;
    config.avgFuncBytes = 2048;
    config.callRate = 0.05;
    CodeModel code(config);
    Rng rng(5);
    std::set<Addr> pages;
    for (int i = 0; i < 50000; ++i)
        pages.insert(code.nextFetch(rng) >> 12);
    EXPECT_GT(pages.size(), 4u);
}

TEST(CodeModelTest, HotFunctionDominatesWithSkew)
{
    CodeModelConfig config = smallConfig();
    config.zipfSkew = 1.5;
    config.callRate = 0.1;
    CodeModel code(config);
    Rng rng(6);
    // Function 0 is rank 0: its first page should see the most
    // fetches.
    std::uint64_t first_page = kTextBase >> 12;
    int hits = 0, total = 30000;
    for (int i = 0; i < total; ++i)
        hits += (code.nextFetch(rng) >> 12) == first_page ? 1 : 0;
    EXPECT_GT(hits, total / 8);
}

} // namespace
} // namespace tps::workloads
