/**
 * @file
 * Per-workload structural contracts: each generator's distinguishing
 * memory behaviour — the property that earns it its role in the
 * paper's story — is asserted directly, so future tuning can't
 * silently erase the contrasts the figures depend on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/trace_stats.h"
#include "vm/page.h"
#include "workloads/registry.h"

namespace tps::workloads
{
namespace
{

TraceStats
statsOf(const char *name, std::uint64_t refs)
{
    auto workload = findWorkload(name).instantiate();
    return collectTraceStats(*workload, refs);
}

/** Distinct 4KB blocks touched per 32KB chunk over a window. */
std::map<Addr, std::set<unsigned>>
chunkDensity(const char *name, std::uint64_t refs, bool data_only)
{
    auto workload = findWorkload(name).instantiate();
    std::map<Addr, std::set<unsigned>> density;
    MemRef ref;
    for (std::uint64_t n = 0; n < refs && workload->next(ref); ++n) {
        if (data_only && ref.isInstruction())
            continue;
        density[ref.vaddr >> kLog2_32K].insert(
            static_cast<unsigned>((ref.vaddr >> kLog2_4K) & 7));
    }
    return density;
}

TEST(BehaviourTest, WormChunksStaySparse)
{
    // worm's defining property: <= 3 blocks per data chunk, ever.
    const auto density = chunkDensity("worm", 500'000, true);
    EXPECT_GT(density.size(), 20u);
    for (const auto &[chunk, blocks] : density)
        EXPECT_LE(blocks.size(), 3u) << "chunk " << std::hex << chunk;
}

TEST(BehaviourTest, EspressoCoverChunksStaySparse)
{
    // The cover-table excursions must never reach the promotion
    // threshold (4 blocks); the hot region and code may be dense.
    auto workload = findWorkload("espresso").instantiate();
    std::map<Addr, std::set<unsigned>> density;
    MemRef ref;
    for (std::uint64_t n = 0; n < 500'000 && workload->next(ref);
         ++n) {
        if (ref.vaddr < 0x2010'0000) // hot region + text
            continue;
        density[ref.vaddr >> kLog2_32K].insert(
            static_cast<unsigned>((ref.vaddr >> kLog2_4K) & 7));
    }
    EXPECT_GT(density.size(), 10u); // excursions do happen
    for (const auto &[chunk, blocks] : density)
        EXPECT_LE(blocks.size(), 3u);
}

TEST(BehaviourTest, FppppIsCodeHeavy)
{
    const TraceStats stats = statsOf("fpppp", 300'000);
    // Huge text: instruction fetches dominate and code pages are a
    // large share of the footprint.
    EXPECT_GT(stats.instructions, stats.loads + stats.stores);
    EXPECT_GT(stats.codePages4k, 40u);
    EXPECT_GT(stats.codePages4k, stats.dataPages4k);
}

TEST(BehaviourTest, X11perfIsStoreHeavy)
{
    const TraceStats stats = statsOf("x11perf", 300'000);
    EXPECT_GT(stats.stores, stats.loads); // framebuffer blitting
}

TEST(BehaviourTest, LiHeapIsSparse)
{
    // Pools sit in every other 32KB chunk: consecutive touched data
    // chunks should show gaps.
    const auto density = chunkDensity("li", 400'000, true);
    std::size_t heap_chunks = 0;
    for (const auto &[chunk, blocks] : density) {
        const Addr addr = chunk << kLog2_32K;
        if (addr >= 0x2000'0000 && addr < 0x3000'0000)
            ++heap_chunks;
    }
    // 20 pools at 64KB spacing = 20 used chunks out of 40 covered.
    EXPECT_GE(heap_chunks, 10u);
    EXPECT_LE(heap_chunks, 22u);
}

TEST(BehaviourTest, Matrix300HasLargeStrideOperand)
{
    // The B operand strides 2400 bytes: consecutive loads to the B
    // region must frequently cross 4KB pages.
    auto workload = findWorkload("matrix300").instantiate();
    MemRef ref;
    Addr prev_b = 0;
    std::uint64_t b_loads = 0, b_page_changes = 0;
    for (std::uint64_t n = 0; n < 300'000 && workload->next(ref);
         ++n) {
        if (ref.type != RefType::Load)
            continue;
        if (ref.vaddr >= 0x200C'0000 && ref.vaddr < 0x2018'0000) {
            if (prev_b != 0 &&
                (ref.vaddr >> kLog2_4K) != (prev_b >> kLog2_4K))
                ++b_page_changes;
            prev_b = ref.vaddr;
            ++b_loads;
        }
    }
    ASSERT_GT(b_loads, 10'000u);
    // 2400B stride: a page boundary every ~1.7 accesses.
    EXPECT_GT(static_cast<double>(b_page_changes) /
                  static_cast<double>(b_loads),
              0.4);
}

TEST(BehaviourTest, TomcatvStreamsShareThePitch)
{
    // All arrays live in one common block at fixed pitch; the paper's
    // anomaly requires lockstep streams.  Verify accesses to at least
    // 3 distinct arrays occur within short windows.
    auto workload = findWorkload("tomcatv").instantiate();
    MemRef ref;
    std::set<Addr> arrays_in_window;
    std::size_t windows_with_3 = 0, windows = 0;
    std::uint64_t n = 0;
    while (n < 200'000 && workload->next(ref)) {
        ++n;
        if (ref.isData())
            arrays_in_window.insert((ref.vaddr - 0x2000'0000) /
                                    528'392);
        if (n % 64 == 0) {
            ++windows;
            windows_with_3 += arrays_in_window.size() >= 3 ? 1 : 0;
            arrays_in_window.clear();
        }
    }
    EXPECT_GT(windows_with_3, windows / 4);
}

TEST(BehaviourTest, VerilogActivityClusters)
{
    // 85% of gate evaluations stay inside the rotating clock domain:
    // within a short window, data accesses should concentrate in few
    // chunks, yet the long-run footprint is the whole netlist.
    const TraceStats long_run = statsOf("verilog", 1'000'000);
    EXPECT_GT(long_run.footprintBytes(), 1'500'000u);

    auto workload = findWorkload("verilog").instantiate();
    MemRef ref;
    std::set<Addr> chunks;
    std::uint64_t n = 0;
    while (n < 2'000 && workload->next(ref)) {
        ++n;
        if (ref.isData())
            chunks.insert(ref.vaddr >> kLog2_32K);
    }
    EXPECT_LT(chunks.size(), 55u); // clustered (uniform would cover ~69)
}

TEST(BehaviourTest, EqntottScansDominate)
{
    // Outside the quicksort phase, loads walk the two vectors
    // sequentially: the median inter-access delta within the vector
    // regions is the element size.
    auto workload = findWorkload("eqntott").instantiate();
    MemRef ref;
    Addr prev_a = 0;
    std::uint64_t seq = 0, total = 0;
    for (std::uint64_t n = 0; n < 200'000 && workload->next(ref);
         ++n) {
        if (ref.type != RefType::Load || ref.vaddr >= 0x2011'D000)
            continue;
        if (prev_a != 0) {
            ++total;
            seq += (ref.vaddr - prev_a) == 8 ? 1 : 0;
        }
        prev_a = ref.vaddr;
    }
    ASSERT_GT(total, 20'000u);
    EXPECT_GT(static_cast<double>(seq) / static_cast<double>(total),
              0.7);
}

TEST(BehaviourTest, DoducRegionsStraddleThreshold)
{
    // Region sizes 8-24KB = 2..6 blocks: some chunks promotable, some
    // not — the "mixed" program by construction.
    const auto density = chunkDensity("doduc", 600'000, true);
    std::size_t below = 0, at_or_above = 0;
    for (const auto &[chunk, blocks] : density) {
        if (blocks.size() >= 4)
            ++at_or_above;
        else
            ++below;
    }
    EXPECT_GT(below, 5u);
    EXPECT_GT(at_or_above, 5u);
}

TEST(BehaviourTest, XnewsHasFocusLocality)
{
    // 60% of widget accesses hit the focused widget: short windows of
    // widget-region accesses should concentrate on few pages.
    auto workload = findWorkload("xnews").instantiate();
    MemRef ref;
    std::map<Addr, unsigned> page_counts;
    std::uint64_t widget_refs = 0;
    for (std::uint64_t n = 0; n < 30'000 && workload->next(ref);
         ++n) {
        if (!ref.isData() || ref.vaddr >= 0x2020'0000 ||
            ref.vaddr < 0x2000'0000)
            continue;
        ++page_counts[ref.vaddr >> kLog2_4K];
        ++widget_refs;
    }
    ASSERT_GT(widget_refs, 3'000u);
    unsigned max_count = 0;
    for (const auto &[page, count] : page_counts)
        max_count = std::max(max_count, count);
    // The hottest page holds far more than a uniform share.
    EXPECT_GT(max_count, widget_refs / 50);
}

TEST(BehaviourTest, Nasa7HasDistinctPhases)
{
    // Phase footprints differ: the FFT phase touches the 1MB array
    // region, the mxm phase the matrix regions.
    auto workload = findWorkload("nasa7").instantiate();
    MemRef ref;
    std::set<Addr> first_phase, second_phase;
    std::uint64_t n = 0;
    // Phase length is 60k behave-steps ~ 200k refs.
    while (n < 420'000 && workload->next(ref)) {
        ++n;
        if (!ref.isData())
            continue;
        (n < 190'000 ? first_phase : second_phase)
            .insert(ref.vaddr >> kLog2_32K);
    }
    std::size_t overlap = 0;
    for (Addr chunk : first_phase)
        overlap += second_phase.count(chunk);
    // Mostly disjoint chunk sets across phases.
    EXPECT_LT(overlap * 2, first_phase.size() + second_phase.size());
}

} // namespace
} // namespace tps::workloads
