/**
 * @file
 * Parameterized conformance tests over the entire Table 3.1 workload
 * suite: every generator must be deterministic, resettable, infinite,
 * emit a plausible instruction mix, and keep its documented footprint
 * scale.
 */

#include "workloads/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "trace/trace_stats.h"
#include "trace/vector_trace.h"
#include "vm/two_size_policy.h"

namespace tps::workloads
{
namespace
{

class SuiteTest : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<SyntheticWorkload>
    make()
    {
        return findWorkload(GetParam()).instantiate();
    }
};

TEST_P(SuiteTest, IsInfiniteSource)
{
    auto workload = make();
    MemRef ref;
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(workload->next(ref));
}

TEST_P(SuiteTest, DeterministicAcrossInstances)
{
    auto a = make();
    auto b = make();
    MemRef ra, rb;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_EQ(ra, rb) << "diverged at ref " << i;
    }
}

TEST_P(SuiteTest, ResetReplaysExactly)
{
    auto workload = make();
    VectorTrace first = materialize(*workload, 30000);
    workload->reset();
    VectorTrace second = materialize(*workload, 30000);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first.refs(), second.refs());
}

TEST_P(SuiteTest, DifferentSeedsProduceDifferentStreams)
{
    const auto &info = findWorkload(GetParam());
    auto a = info.make(1);
    auto b = info.make(2);
    MemRef ra, rb;
    int same = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        a->next(ra);
        b->next(rb);
        same += ra == rb ? 1 : 0;
    }
    // Deterministic phase structure may coincide, but not everywhere.
    EXPECT_LT(same, n);
}

TEST_P(SuiteTest, InstructionMixPlausible)
{
    auto workload = make();
    const TraceStats stats = collectTraceStats(*workload, 200000);
    EXPECT_GT(stats.instructions, 0u);
    // RPI in a plausible band: >1 (there is data traffic) and <4
    // (not absurdly data-heavy).
    EXPECT_GT(stats.rpi(), 1.05);
    EXPECT_LT(stats.rpi(), 4.0);
    EXPECT_GT(stats.loads, 0u);
}

TEST_P(SuiteTest, FootprintInStudyBand)
{
    auto workload = make();
    const TraceStats stats = collectTraceStats(*workload, 1000000);
    // The paper's programs touch 0.1MB..8MB; generators must stay in
    // a band where 16-64 entry TLBs are meaningfully exercised.
    EXPECT_GE(stats.footprintBytes(), 64u * 1024);
    EXPECT_LE(stats.footprintBytes(), 8u * 1024 * 1024);
}

TEST_P(SuiteTest, TouchesBothCodeAndData)
{
    auto workload = make();
    const TraceStats stats = collectTraceStats(*workload, 100000);
    EXPECT_GT(stats.codePages4k, 0u);
    EXPECT_GT(stats.dataPages4k, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SuiteTest, ::testing::ValuesIn(suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(RegistryTest, HasTwelveWorkloads)
{
    EXPECT_EQ(suite().size(), 12u);
}

TEST(RegistryTest, NamesUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (const auto &info : suite()) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate " << info.name;
    }
}

TEST(RegistryTest, FindWorkloadRoundTrips)
{
    for (const auto &info : suite())
        EXPECT_EQ(findWorkload(info.name).name, info.name);
}

TEST(RegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(findWorkload("no-such-program"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

/**
 * Paper-specific behavioural contracts: worm must underuse large
 * pages, matrix300/nasa7 must promote heavily (Section 5.2's
 * explanation of who wins and who loses).
 */
TEST(SuiteBehaviourTest, WormAvoidsPromotion)
{
    auto workload = findWorkload("worm").instantiate();
    TwoSizeConfig config;
    config.window = 100000;
    TwoSizePolicy policy(config);
    MemRef ref;
    RefTime now = 0;
    while (now < 500000 && workload->next(ref))
        policy.classify(ref.vaddr, ++now);
    EXPECT_LT(policy.stats().largeFraction(), 0.05);
}

TEST(SuiteBehaviourTest, Nasa7PromotesHeavily)
{
    auto workload = findWorkload("nasa7").instantiate();
    TwoSizeConfig config;
    config.window = 100000;
    TwoSizePolicy policy(config);
    MemRef ref;
    RefTime now = 0;
    while (now < 500000 && workload->next(ref))
        policy.classify(ref.vaddr, ++now);
    EXPECT_GT(policy.stats().largeFraction(), 0.5);
}

} // namespace
} // namespace tps::workloads
