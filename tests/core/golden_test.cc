/**
 * @file
 * Golden-value regression tests.
 *
 * Every simulator in tps is deterministic by construction (fixed
 * PRNG algorithm, no dependence on container iteration order), so
 * exact counts are stable across platforms and rebuilds.  These
 * pinned values exist to catch unintended behavioural drift during
 * refactoring; if a deliberate model or workload change lands, the
 * values are expected to move and should be re-pinned (and the
 * figures in EXPERIMENTS.md re-captured).
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

struct Golden
{
    const char *workload;
    std::uint64_t misses;
    std::uint64_t promotions;
    std::uint64_t instructions;
};

// Captured with: 16-entry 2-way exact-index TLB, 4K/32K policy at
// T = 50,000; 200,000 refs with 50,000 warmup.
constexpr Golden kGolden[] = {
    {"li", 1365u, 0u, 88375u},
    {"espresso", 455u, 0u, 97113u},
    {"worm", 13587u, 0u, 95811u},
    {"matrix300", 11545u, 0u, 99973u},
    {"tomcatv", 23315u, 12u, 93750u},
};

class GoldenTest : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenTest, ExactCountsStable)
{
    const Golden &expected = GetParam();
    auto workload =
        workloads::findWorkload(expected.workload).instantiate();

    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 16;
    tlb.ways = 2;
    tlb.scheme = IndexScheme::Exact;

    TwoSizeConfig policy;
    policy.window = 50'000;

    RunOptions options;
    options.maxRefs = 200'000;
    options.warmupRefs = 50'000;

    const auto result = runExperiment(
        *workload, PolicySpec::twoSizes(policy), tlb, options);
    EXPECT_EQ(result.tlb.misses, expected.misses);
    EXPECT_EQ(result.policy.promotions, expected.promotions);
    EXPECT_EQ(result.instructions, expected.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    PinnedWorkloads, GoldenTest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(info.param.workload);
    });

} // namespace
} // namespace tps::core
