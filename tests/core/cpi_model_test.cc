/** @file Unit tests for the CPI accounting model (paper Section 3.2). */

#include "core/cpi_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tps::core
{
namespace
{

TlbStats
statsWith(std::uint64_t misses, std::uint64_t hits_large = 0)
{
    TlbStats stats;
    stats.misses = misses;
    stats.hitsLarge = hits_large;
    return stats;
}

TEST(CpiModelTest, PaperDefaults)
{
    CpiModel model;
    EXPECT_DOUBLE_EQ(model.missPenalty(false), 20.0);
    EXPECT_DOUBLE_EQ(model.missPenalty(true), 25.0);
}

TEST(CpiModelTest, CpiIsMpiTimesPenalty)
{
    CpiModel model;
    // 1000 misses over 100000 instructions: MPI = 0.01.
    EXPECT_DOUBLE_EQ(
        model.cpiTlb(statsWith(1000), PolicyStats{}, 100000, false),
        0.01 * 20.0);
    EXPECT_DOUBLE_EQ(
        model.cpiTlb(statsWith(1000), PolicyStats{}, 100000, true),
        0.01 * 25.0);
}

TEST(CpiModelTest, ZeroInstructionsSafe)
{
    CpiModel model;
    EXPECT_DOUBLE_EQ(
        model.cpiTlb(statsWith(10), PolicyStats{}, 0, false), 0.0);
}

TEST(CpiModelTest, SequentialReprobeChargesLargeHitsAndMisses)
{
    CpiModel model;
    model.reprobeCycles = 2.0;
    const TlbStats stats = statsWith(100, 400);
    const double parallel = model.cpiTlb(stats, PolicyStats{}, 10000,
                                         true, ProbeStrategy::Parallel);
    const double sequential = model.cpiTlb(
        stats, PolicyStats{}, 10000, true, ProbeStrategy::Sequential);
    EXPECT_DOUBLE_EQ(sequential - parallel,
                     2.0 * (100 + 400) / 10000.0);
}

TEST(CpiModelTest, ReprobeIrrelevantForSingleSize)
{
    CpiModel model;
    model.reprobeCycles = 5.0;
    const TlbStats stats = statsWith(100, 400);
    EXPECT_DOUBLE_EQ(model.cpiTlb(stats, PolicyStats{}, 10000, false,
                                  ProbeStrategy::Sequential),
                     model.cpiTlb(stats, PolicyStats{}, 10000, false,
                                  ProbeStrategy::Parallel));
}

TEST(CpiModelTest, PromotionCostCharged)
{
    CpiModel model;
    model.promotionCycles = 1000.0;
    PolicyStats policy;
    policy.promotions = 5;
    policy.demotions = 3;
    const double with_promos =
        model.cpiTlb(statsWith(0), policy, 10000, true);
    EXPECT_DOUBLE_EQ(with_promos, 1000.0 * 8 / 10000.0);
}

TEST(CriticalMissPenaltyTest, PaperFormula)
{
    // delta_mp = (MPI(4K)/MPI(ps) - 1) * 100%.
    EXPECT_DOUBLE_EQ(criticalMissPenaltyIncrease(0.02, 0.01), 100.0);
    EXPECT_NEAR(criticalMissPenaltyIncrease(0.013, 0.01), 30.0, 1e-9);
    EXPECT_NEAR(criticalMissPenaltyIncrease(0.13, 0.01), 1200.0, 1e-9);
}

TEST(CriticalMissPenaltyTest, NegativeWhenSchemeWorse)
{
    EXPECT_LT(criticalMissPenaltyIncrease(0.01, 0.02), 0.0);
}

TEST(CriticalMissPenaltyTest, InfiniteWhenNoMisses)
{
    EXPECT_TRUE(std::isinf(criticalMissPenaltyIncrease(0.01, 0.0)));
}

} // namespace
} // namespace tps::core
