/**
 * @file
 * The acceptance property of the parallel sweep runner: a sweep run
 * on worker threads is cell-for-cell bit-identical to the serial run,
 * and the materialized-trace cache changes nothing.  Exercised with
 * two-size policies (promotion state), random replacement (seeded
 * RNG per cell) and warmup, the three places nondeterminism would
 * creep in first.
 */

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <vector>

namespace tps::core
{
namespace
{

SweepRunner
referenceSweep()
{
    TwoSizeConfig two_size;
    two_size.window = 10'000;

    TlbConfig fa;
    fa.organization = TlbOrganization::FullyAssociative;
    fa.entries = 16;

    TlbConfig sa_random;
    sa_random.organization = TlbOrganization::SetAssociative;
    sa_random.entries = 32;
    sa_random.ways = 2;
    sa_random.replacement = ReplPolicy::Random;
    sa_random.rngSeed = 17;

    RunOptions options;
    options.maxRefs = 60'000;
    options.warmupRefs = 10'000;
    options.wsWindow = 10'000;

    SweepRunner sweep;
    sweep.workloads({"li", "worm", "xnews"})
        .configuration(fa, PolicySpec::single(kLog2_4K))
        .configuration(fa, PolicySpec::twoSizes(two_size))
        .configuration(sa_random, PolicySpec::twoSizes(two_size))
        .options(options);
    return sweep;
}

void
expectCellsIdentical(const std::vector<SweepCell> &a,
                     const std::vector<SweepCell> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + ": " +
                     a[i].workload + " / " + a[i].configLabel);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].configLabel, b[i].configLabel);

        const ExperimentResult &x = a[i].result;
        const ExperimentResult &y = b[i].result;
        EXPECT_EQ(x.workload, y.workload);
        EXPECT_EQ(x.tlbName, y.tlbName);
        EXPECT_EQ(x.policyName, y.policyName);
        EXPECT_EQ(x.refs, y.refs);
        EXPECT_EQ(x.instructions, y.instructions);

        EXPECT_EQ(x.tlb.accesses, y.tlb.accesses);
        EXPECT_EQ(x.tlb.hits, y.tlb.hits);
        EXPECT_EQ(x.tlb.misses, y.tlb.misses);
        EXPECT_EQ(x.tlb.hitsSmall, y.tlb.hitsSmall);
        EXPECT_EQ(x.tlb.hitsLarge, y.tlb.hitsLarge);
        EXPECT_EQ(x.tlb.missesSmall, y.tlb.missesSmall);
        EXPECT_EQ(x.tlb.missesLarge, y.tlb.missesLarge);
        EXPECT_EQ(x.tlb.fills, y.tlb.fills);
        EXPECT_EQ(x.tlb.evictions, y.tlb.evictions);
        EXPECT_EQ(x.tlb.invalidations, y.tlb.invalidations);

        EXPECT_EQ(x.policy.refsSmall, y.policy.refsSmall);
        EXPECT_EQ(x.policy.refsLarge, y.policy.refsLarge);
        EXPECT_EQ(x.policy.promotions, y.policy.promotions);
        EXPECT_EQ(x.policy.demotions, y.policy.demotions);

        // Bit-identical doubles, not nearly-equal: the parallel path
        // must perform the exact same arithmetic as the serial one.
        EXPECT_EQ(x.cpiTlb, y.cpiTlb);
        EXPECT_EQ(x.mpi, y.mpi);
        EXPECT_EQ(x.missRatio, y.missRatio);
        EXPECT_EQ(x.rpi, y.rpi);
        EXPECT_EQ(x.avgWsBytes, y.avgWsBytes);
    }
}

TEST(ParallelSweepTest, FourThreadsBitIdenticalToSerial)
{
    SweepRunner sweep = referenceSweep();
    sweep.threads(1);
    const auto serial = sweep.run();
    sweep.threads(4);
    const auto parallel = sweep.run();
    expectCellsIdentical(serial, parallel);
}

TEST(ParallelSweepTest, RepeatedParallelRunsAgree)
{
    SweepRunner sweep = referenceSweep();
    sweep.threads(4);
    const auto first = sweep.run();
    const auto second = sweep.run();
    expectCellsIdentical(first, second);
}

TEST(ParallelSweepTest, TraceCacheDoesNotChangeResults)
{
    SweepRunner sweep = referenceSweep();
    sweep.threads(2).cacheTraces(false);
    const auto uncached = sweep.run();
    sweep.cacheTraces(true);
    const auto cached = sweep.run();
    expectCellsIdentical(uncached, cached);
}

TEST(ParallelSweepTest, CachedCellsKeepWorkloadNames)
{
    SweepRunner sweep = referenceSweep();
    sweep.threads(2).cacheTraces(true);
    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 9u);
    EXPECT_EQ(cells[0].result.workload, "li");
    EXPECT_EQ(cells[3].result.workload, "worm");
    EXPECT_EQ(cells[6].result.workload, "xnews");
}

TEST(ParallelSweepTest, ZeroThreadsResolvesAndRuns)
{
    // 0 = auto (TPS_THREADS / hardware_concurrency); must still give
    // the serial answer on any machine.
    SweepRunner sweep = referenceSweep();
    sweep.threads(1);
    const auto serial = sweep.run();
    sweep.threads(0);
    const auto automatic = sweep.run();
    expectCellsIdentical(serial, automatic);
}

} // namespace
} // namespace tps::core
