/** @file Smoke tests for the shared table/figure runners (tiny scale). */

#include "core/figures.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tps::core
{
namespace
{

StudyScale
tinyScale()
{
    StudyScale scale;
    scale.refs = 60'000;
    scale.window = 10'000;
    scale.warmupRefs = 15'000;
    return scale;
}

TEST(FiguresTest, DefaultScaleHonorsEnv)
{
    setenv("TPS_REFS", "123456", 1);
    setenv("TPS_WINDOW", "7890", 1);
    setenv("TPS_WARMUP", "111", 1);
    const StudyScale scale = defaultScale();
    EXPECT_EQ(scale.refs, 123456u);
    EXPECT_EQ(scale.window, 7890u);
    EXPECT_EQ(scale.warmupRefs, 111u);
    unsetenv("TPS_REFS");
    unsetenv("TPS_WINDOW");
    unsetenv("TPS_WARMUP");
}

TEST(FiguresTest, DefaultWarmupIsQuarterOfRefs)
{
    setenv("TPS_REFS", "1000000", 1);
    unsetenv("TPS_WARMUP");
    EXPECT_EQ(defaultScale().warmupRefs, 250000u);
    unsetenv("TPS_REFS");
}

TEST(FiguresTest, PaperPolicyDefaults)
{
    const TwoSizeConfig config = paperPolicy(tinyScale());
    EXPECT_EQ(config.smallLog2, kLog2_4K);
    EXPECT_EQ(config.largeLog2, kLog2_32K);
    EXPECT_EQ(config.window, 10'000u);
    EXPECT_EQ(config.resolvedPromote(), 4u);
}

TEST(FiguresTest, WorkloadTableCoversSuite)
{
    const auto rows = runWorkloadTable(tinyScale());
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        EXPECT_EQ(row.refs, 60'000u);
        EXPECT_GT(row.instructions, 0u);
        EXPECT_GT(row.rpi, 1.0);
        EXPECT_GT(row.footprintBytes, 0u);
        EXPECT_GT(row.avgWs4kBytes, 0.0);
        EXPECT_LE(row.avgWs4kBytes,
                  static_cast<double>(row.footprintBytes));
    }
}

TEST(FiguresTest, WsSingleStudyMonotone)
{
    const auto rows =
        runWsSingleStudy(tinyScale(), {kLog2_8K, kLog2_16K, kLog2_32K});
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        ASSERT_EQ(row.wsNormalized.size(), 3u);
        // Normalized WS >= 1 and monotone in page size.
        EXPECT_GE(row.wsNormalized[0], 1.0 - 1e-9);
        EXPECT_GE(row.wsNormalized[1],
                  row.wsNormalized[0] - 1e-9);
        EXPECT_GE(row.wsNormalized[2],
                  row.wsNormalized[1] - 1e-9);
    }
}

TEST(FiguresTest, WsTwoStudyWithinDoublingBound)
{
    const auto rows =
        runWsTwoStudy(tinyScale(), paperPolicy(tinyScale()));
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        EXPECT_GE(row.normTwoSize, 1.0 - 1e-9) << row.name;
        EXPECT_LE(row.normTwoSize, 2.0 + 1e-9) << row.name;
        // Two-size never exceeds the 32KB-single cost.
        EXPECT_LE(row.normTwoSize, row.norm32k + 1e-9) << row.name;
    }
}

TEST(FiguresTest, CpiStudyProducesFiniteValues)
{
    TlbConfig base;
    base.organization = TlbOrganization::FullyAssociative;
    base.entries = 16;
    const auto rows = runCpiStudy(tinyScale(), base);
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        EXPECT_GE(row.cpi4k, 0.0);
        EXPECT_GE(row.cpi8k, 0.0);
        EXPECT_GE(row.cpi32k, 0.0);
        EXPECT_GE(row.cpiTwoSize, 0.0);
        EXPECT_LT(row.cpi4k, 25.0); // CPI can't exceed penalty/instr
    }
}

TEST(FiguresTest, IndexingStudyProducesAllColumns)
{
    const auto rows = runIndexingStudy(tinyScale(), 16, 2);
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        EXPECT_GE(row.cpi4k, 0.0);
        EXPECT_GE(row.cpi4kLargeIndex, 0.0);
        EXPECT_GE(row.cpiTwoLargeIndex, 0.0);
        EXPECT_GE(row.cpiTwoExactIndex, 0.0);
    }
}

} // namespace
} // namespace tps::core
