/**
 * @file
 * Reproducibility contract: every experiment is bit-for-bit
 * deterministic — same configuration, same result — across repeated
 * runs, TLB reuse, and policy reuse.  This is the property that makes
 * the figure tables in EXPERIMENTS.md regenerable.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

RunOptions
options()
{
    RunOptions opts;
    opts.maxRefs = 120'000;
    opts.warmupRefs = 30'000;
    opts.wsWindow = 20'000;
    return opts;
}

bool
sameResult(const ExperimentResult &a, const ExperimentResult &b)
{
    return a.tlb.misses == b.tlb.misses && a.tlb.hits == b.tlb.hits &&
           a.tlb.invalidations == b.tlb.invalidations &&
           a.policy.promotions == b.policy.promotions &&
           a.instructions == b.instructions &&
           a.cpiTlb == b.cpiTlb && a.avgWsBytes == b.avgWsBytes;
}

TEST(DeterminismTest, FreshObjectsReproduce)
{
    for (const char *name : {"li", "worm", "tomcatv"}) {
        auto w1 = workloads::findWorkload(name).instantiate();
        auto w2 = workloads::findWorkload(name).instantiate();
        TlbConfig tlb;
        tlb.organization = TlbOrganization::SetAssociative;
        tlb.entries = 16;
        tlb.ways = 2;
        TwoSizeConfig policy;
        policy.window = 20'000;
        const auto r1 = runExperiment(
            *w1, PolicySpec::twoSizes(policy), tlb, options());
        const auto r2 = runExperiment(
            *w2, PolicySpec::twoSizes(policy), tlb, options());
        EXPECT_TRUE(sameResult(r1, r2)) << name;
    }
}

TEST(DeterminismTest, ReusedObjectsReproduce)
{
    // runExperiment resets trace, policy and TLB: running twice with
    // the same objects must match exactly.
    auto workload = workloads::findWorkload("doduc").instantiate();
    TwoSizeConfig config;
    config.window = 20'000;
    TwoSizePolicy policy(config);
    auto tlb = makeTlb(TlbConfig{});
    const auto r1 = runExperiment(*workload, policy, *tlb, options());
    const auto r2 = runExperiment(*workload, policy, *tlb, options());
    EXPECT_TRUE(sameResult(r1, r2));
}

TEST(DeterminismTest, RandomReplacementIsSeededDeterministic)
{
    auto workload = workloads::findWorkload("xnews").instantiate();
    TlbConfig tlb;
    tlb.replacement = ReplPolicy::Random;
    tlb.rngSeed = 99;
    const auto r1 = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options());
    const auto r2 = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options());
    EXPECT_TRUE(sameResult(r1, r2));

    // ...and a different seed genuinely changes the outcome.
    tlb.rngSeed = 100;
    const auto r3 = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options());
    EXPECT_NE(r1.tlb.misses, r3.tlb.misses);
}

TEST(DeterminismTest, TwoLevelFactoryOrganizationRuns)
{
    auto workload = workloads::findWorkload("espresso").instantiate();
    TlbConfig tlb;
    tlb.organization = TlbOrganization::TwoLevel;
    tlb.entries = 64;
    tlb.l1Entries = 4;
    const auto r1 = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options());
    const auto r2 = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options());
    EXPECT_TRUE(sameResult(r1, r2));
    EXPECT_EQ(tlb.describe(), "64-entry two-level(L1 4)");
}

} // namespace
} // namespace tps::core
