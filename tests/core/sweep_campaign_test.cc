/**
 * @file
 * The sweep runner's campaign surface: cell keys, the config
 * fingerprint the journal pins, lifecycle hooks, and skip/resume
 * semantics (skipped cells stay placeholders and the rest stay
 * bit-identical, including under shared passes).
 */

#include "core/sweep.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tps::core
{
namespace
{

RunOptions
tinyOptions()
{
    RunOptions options;
    options.maxRefs = 40'000;
    return options;
}

TEST(SweepCampaign, CellKeySlugifiesBothHalves)
{
    EXPECT_EQ(SweepRunner::cellKey("li", "fa64 4K/32K"),
              "li/fa64_4k_32k");
    EXPECT_EQ(SweepRunner::cellKey("Matrix 300", "base"),
              "matrix_300/base");
}

TEST(SweepCampaign, FingerprintPinsResultsNotExecution)
{
    auto makeRunner = [](std::uint64_t refs, unsigned threads,
                         std::size_t chunk) {
        auto runner = std::make_unique<SweepRunner>();
        RunOptions options;
        options.maxRefs = refs;
        options.chunkRefs = chunk;
        options.harnessStats = chunk % 2 == 0; // execution-only knob
        runner->workloads({"li", "worm"})
            .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K),
                           "base")
            .options(options)
            .threads(threads);
        return runner;
    };

    const std::string base = makeRunner(40'000, 1, 4096)->fingerprint();
    EXPECT_EQ(base.size(), 16u); // 64-bit FNV-1a, hex

    // Stable across identical configs.
    EXPECT_EQ(base, makeRunner(40'000, 1, 4096)->fingerprint());
    // Invariant to execution knobs: threads, chunkRefs, harnessStats.
    EXPECT_EQ(base, makeRunner(40'000, 8, 1024)->fingerprint());
    // Sensitive to anything result-relevant.
    EXPECT_NE(base, makeRunner(50'000, 1, 4096)->fingerprint());

    SweepRunner other;
    other.workloads({"li", "worm"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_8K),
                       "base")
        .options(tinyOptions());
    EXPECT_NE(base, other.fingerprint());
}

TEST(SweepCampaign, HooksFirePerCellWithResults)
{
    SweepRunner sweep;
    sweep.workloads({"li"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K), "a")
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_32K), "b")
        .options(tinyOptions());

    std::mutex mutex;
    std::set<std::string> started;
    std::set<std::string> finished;
    std::uint64_t done_refs = 0;
    sweep.onCellStart([&](const std::string &w, const std::string &c) {
        std::lock_guard<std::mutex> lock(mutex);
        started.insert(SweepRunner::cellKey(w, c));
    });
    sweep.onCellDone([&](const std::string &w, const std::string &c,
                         const ExperimentResult &r) {
        std::lock_guard<std::mutex> lock(mutex);
        finished.insert(SweepRunner::cellKey(w, c));
        done_refs += r.refs;
    });

    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(started, (std::set<std::string>{"li/a", "li/b"}));
    EXPECT_EQ(finished, started);
    EXPECT_EQ(done_refs,
              cells[0].result.refs + cells[1].result.refs);
}

TEST(SweepCampaign, SkippedCellsArePlaceholdersOthersIdentical)
{
    auto build = [](SweepRunner &sweep) {
        sweep.workloads({"li"})
            .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K),
                           "a")
            .configuration(TlbConfig{}, PolicySpec::single(kLog2_32K),
                           "b")
            .options(tinyOptions());
    };
    SweepRunner full;
    build(full);
    const auto all = full.run();

    SweepRunner partial;
    build(partial);
    std::mutex mutex;
    std::set<std::string> started;
    partial.onCellStart([&](const std::string &w,
                            const std::string &c) {
        std::lock_guard<std::mutex> lock(mutex);
        started.insert(SweepRunner::cellKey(w, c));
    });
    partial.skipCells([](const std::string &,
                         const std::string &label) {
        return label == "a";
    });
    partial.resumed(1, all[0].result.refs);
    const auto rest = partial.run();

    ASSERT_EQ(rest.size(), 2u);
    // Skipped cell: placeholder (refs == 0), no hooks fired for it.
    EXPECT_EQ(rest[0].configLabel, "a");
    EXPECT_EQ(rest[0].result.refs, 0u);
    EXPECT_EQ(started.count("li/a"), 0u);
    EXPECT_EQ(started.count("li/b"), 1u);
    // The pending cell is bit-identical to the full run's.
    EXPECT_EQ(rest[1].result.refs, all[1].result.refs);
    EXPECT_EQ(rest[1].result.tlb.misses, all[1].result.tlb.misses);
    EXPECT_EQ(rest[1].result.cpiTlb, all[1].result.cpiTlb);
}

// Under sharedPass a group's single trace pass must probe only the
// pending members; the surviving cell stays bit-identical to its
// independent run.
TEST(SweepCampaign, SharedPassSkipsOnlyPendingMembers)
{
    TlbConfig small;
    small.entries = 16;
    TlbConfig large;
    large.entries = 64;

    auto build = [&](SweepRunner &sweep) {
        sweep.workloads({"worm"})
            .configuration(small, PolicySpec::single(kLog2_4K), "s16")
            .configuration(large, PolicySpec::single(kLog2_4K), "s64")
            .options(tinyOptions())
            .sharedPass(true);
    };
    SweepRunner full;
    build(full);
    const auto all = full.run();

    SweepRunner partial;
    build(partial);
    partial.skipCells([](const std::string &,
                         const std::string &label) {
        return label == "s64";
    });
    const auto rest = partial.run();

    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[1].result.refs, 0u); // skipped
    EXPECT_EQ(rest[0].result.refs, all[0].result.refs);
    EXPECT_EQ(rest[0].result.tlb.misses, all[0].result.tlb.misses);
    EXPECT_EQ(rest[0].result.cpiTlb, all[0].result.cpiTlb);
}

// Harness self-telemetry is feature-gated and batched-only.
TEST(SweepCampaign, HarnessStatsMeasuredOnlyWhenRequested)
{
    RunOptions options = tinyOptions();
    SweepRunner off;
    off.workloads({"li"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K))
        .options(options);
    EXPECT_FALSE(off.run()[0].result.harnessMeasured);

    options.harnessStats = true;
    SweepRunner on;
    on.workloads({"li"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K))
        .options(options);
    const auto cells = on.run();
    ASSERT_TRUE(cells[0].result.harnessMeasured);
    EXPECT_GT(cells[0].result.harness.wallSeconds, 0.0);
    EXPECT_GT(cells[0].result.harness.refsPerSec, 0.0);
    EXPECT_GT(cells[0].result.harness.chunks, 0u);
}

} // namespace
} // namespace tps::core
