/** @file Unit tests for the experiment driver. */

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "trace/vector_trace.h"

namespace tps::core
{
namespace
{

/** Trace touching `pages` 4KB pages cyclically, one ifetch each. */
VectorTrace
cyclicTrace(unsigned pages, unsigned rounds)
{
    std::vector<MemRef> refs;
    for (unsigned round = 0; round < rounds; ++round) {
        for (unsigned page = 0; page < pages; ++page) {
            refs.push_back(MemRef{0x100000 + Addr{page} * 4096,
                                  RefType::Ifetch, 4});
        }
    }
    return VectorTrace(std::move(refs), "cyclic");
}

TEST(ExperimentTest, CountsRefsAndInstructions)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_EQ(result.refs, 40u);
    EXPECT_EQ(result.instructions, 40u);
    EXPECT_DOUBLE_EQ(result.rpi, 1.0);
}

TEST(ExperimentTest, ColdMissesOnlyWhenFits)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_EQ(result.tlb.misses, 4u);
    EXPECT_DOUBLE_EQ(result.mpi, 0.1);
    EXPECT_DOUBLE_EQ(result.cpiTlb, 0.1 * 20.0);
}

TEST(ExperimentTest, MaxRefsTruncates)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 12;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_EQ(result.refs, 12u);
}

TEST(ExperimentTest, WarmupExcludesColdMisses)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.warmupRefs = 4; // exactly the cold pass
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_EQ(result.refs, 36u);
    EXPECT_EQ(result.tlb.misses, 0u);
    EXPECT_DOUBLE_EQ(result.cpiTlb, 0.0);
}

TEST(ExperimentTest, TwoSizePenaltyApplied)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    TwoSizeConfig policy;
    policy.window = 1000;
    policy.promoteThreshold = 8; // never promotes on this trace
    const auto result = runExperiment(
        trace, PolicySpec::twoSizes(policy), tlb, options);
    EXPECT_EQ(result.tlb.misses, 4u);
    EXPECT_DOUBLE_EQ(result.cpiTlb, 4.0 / 40.0 * 25.0);
    EXPECT_EQ(result.policyName, "4KB/32KB");
}

TEST(ExperimentTest, PromotionsInvalidateThroughDriver)
{
    // Four pages of one chunk touched cyclically: promotion fires and
    // the small-page entries are shot down inside the run.
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    TwoSizeConfig policy;
    policy.window = 1000;
    const auto result = runExperiment(
        trace, PolicySpec::twoSizes(policy), tlb, options);
    EXPECT_EQ(result.policy.promotions, 1u);
    // Three small translations were resident at promotion time.
    EXPECT_EQ(result.tlb.invalidations, 3u);
    // Cold misses on blocks 0..2 as small pages; block 3's access is
    // classified large (promotion fires first) and cold-misses once;
    // everything after hits the large page.
    EXPECT_EQ(result.tlb.misses, 4u);
}

TEST(ExperimentTest, WorkingSetTracked)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 0;
    options.wsWindow = 100; // everything stays in window
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_GT(result.avgWsBytes, 3.0 * 4096);
    EXPECT_LE(result.avgWsBytes, 4.0 * 4096);
}

TEST(ExperimentTest, PageTableModelMeasuresPenalty)
{
    VectorTrace trace = cyclicTrace(64, 4); // thrash an 8-entry TLB
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.modelPageTables = true;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_DOUBLE_EQ(result.measuredMissCycles, 20.0);
    EXPECT_GT(result.cpiTlbMeasured, 0.0);
}

TEST(ExperimentTest, ResultCarriesNames)
{
    VectorTrace trace = cyclicTrace(2, 2);
    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 16;
    tlb.ways = 2;
    RunOptions options;
    options.maxRefs = 0;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_8K), tlb, options);
    EXPECT_EQ(result.workload, "cyclic");
    EXPECT_EQ(result.policyName, "8KB");
    EXPECT_NE(result.tlbName.find("16-entry"), std::string::npos);
}

TEST(ExperimentDeathTest, WarmupBeyondMaxRefsFatal)
{
    VectorTrace trace = cyclicTrace(2, 2);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 10;
    options.warmupRefs = 10;
    EXPECT_EXIT(runExperiment(trace, PolicySpec::single(kLog2_4K), tlb,
                              options),
                ::testing::ExitedWithCode(1), "warmup");
}

} // namespace
} // namespace tps::core
