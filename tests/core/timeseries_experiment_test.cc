/**
 * @file
 * Interval-telemetry integration tests: the per-interval counter
 * deltas recorded by runExperiment must sum to the whole-run
 * aggregates exactly (with and without warmup), sampled miss events
 * must carry plausible cause attribution, and exportTo must register
 * a key set that depends only on the enabled features.
 */

#include "core/experiment.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stat_registry.h"
#include "trace/vector_trace.h"

namespace tps::core
{
namespace
{

/** Trace touching `pages` 4KB pages cyclically, one ifetch each. */
VectorTrace
cyclicTrace(unsigned pages, unsigned rounds)
{
    std::vector<MemRef> refs;
    for (unsigned round = 0; round < rounds; ++round) {
        for (unsigned page = 0; page < pages; ++page) {
            refs.push_back(MemRef{0x100000 + Addr{page} * 4096,
                                  RefType::Ifetch, 4});
        }
    }
    return VectorTrace(std::move(refs), "cyclic");
}

TEST(TimeSeriesExperiment, DisabledByDefault)
{
    VectorTrace trace = cyclicTrace(4, 4);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 0;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_EQ(result.timeseries, nullptr);
}

TEST(TimeSeriesExperiment, IntervalSumsMatchAggregates)
{
    VectorTrace trace = cyclicTrace(64, 8); // 512 refs, thrashes
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.timeseries.intervalRefs = 100;
    options.timeseries.missSampleCapacity = 8;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);

    ASSERT_NE(result.timeseries, nullptr);
    const obs::TimeSeries &series = *result.timeseries;
    // 5 full intervals plus the flushed 12-ref tail.
    ASSERT_EQ(series.intervals.size(), 6u);
    EXPECT_EQ(series.intervals.back().refs, 12u);

    EXPECT_EQ(series.counterSum("refs"), result.refs);
    EXPECT_EQ(series.counterSum("instructions"), result.instructions);
    EXPECT_EQ(series.counterSum("tlb_access"), result.tlb.accesses);
    EXPECT_EQ(series.counterSum("tlb_hit"), result.tlb.hits);
    EXPECT_EQ(series.counterSum("tlb_miss"), result.tlb.misses);
    EXPECT_EQ(series.counterSum("tlb_fill"), result.tlb.fills);
    EXPECT_EQ(series.counterSum("tlb_eviction"),
              result.tlb.evictions);
    EXPECT_EQ(series.counterSum("tlb_invalidation"),
              result.tlb.invalidations);
    EXPECT_EQ(series.counterSum("refs_small"),
              result.policy.refsSmall);
    EXPECT_EQ(series.counterSum("refs_large"),
              result.policy.refsLarge);
    EXPECT_EQ(series.counterSum("promotions"),
              result.policy.promotions);
    EXPECT_EQ(series.counterSum("demotions"),
              result.policy.demotions);

    // Intervals tile the measured stream contiguously.
    std::uint64_t expect_start = 0;
    for (const obs::IntervalRow &row : series.intervals) {
        EXPECT_EQ(row.startRef, expect_start);
        expect_start += row.refs;
    }
    EXPECT_EQ(expect_start, result.refs);
}

TEST(TimeSeriesExperiment, WarmupResetsSnapshotsToo)
{
    VectorTrace trace = cyclicTrace(64, 8);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.warmupRefs = 100;
    options.timeseries.intervalRefs = 128;
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);

    ASSERT_NE(result.timeseries, nullptr);
    const obs::TimeSeries &series = *result.timeseries;
    EXPECT_EQ(result.refs, 412u);
    // The aggregates were zeroed at the warmup boundary; interval
    // sums must land on the *measured* aggregates, not the raw ones.
    EXPECT_EQ(series.counterSum("refs"), result.refs);
    EXPECT_EQ(series.counterSum("tlb_miss"), result.tlb.misses);
    EXPECT_EQ(series.counterSum("tlb_fill"), result.tlb.fills);
}

TEST(TimeSeriesExperiment, TwoSizePolicyCountersRecorded)
{
    VectorTrace trace = cyclicTrace(4, 10);
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.timeseries.intervalRefs = 10;
    TwoSizeConfig policy;
    policy.window = 1000;
    const auto result = runExperiment(
        trace, PolicySpec::twoSizes(policy), tlb, options);

    ASSERT_NE(result.timeseries, nullptr);
    const obs::TimeSeries &series = *result.timeseries;
    EXPECT_EQ(result.policy.promotions, 1u);
    EXPECT_EQ(series.counterSum("promotions"), 1u);
    EXPECT_EQ(series.counterSum("tlb_invalidation"),
              result.tlb.invalidations);
}

TEST(TimeSeriesExperiment, MissSamplesAttributeColdVsCapacity)
{
    VectorTrace trace = cyclicTrace(64, 4); // every access misses
    TlbConfig tlb;
    tlb.entries = 8;
    RunOptions options;
    options.maxRefs = 0;
    options.timeseries.intervalRefs = 64;
    options.timeseries.missSampleCapacity = 4096; // keep everything
    const auto result = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);

    ASSERT_NE(result.timeseries, nullptr);
    const obs::TimeSeries &series = *result.timeseries;
    ASSERT_EQ(series.missSeen, result.tlb.misses);
    ASSERT_EQ(series.missSamples.size(), result.tlb.misses);
    std::uint64_t cold = 0, capacity = 0, shootdown = 0;
    std::uint64_t last_ref = 0;
    for (const obs::MissEvent &event : series.missSamples) {
        EXPECT_GT(event.ref, last_ref); // sorted, 1-based, unique
        last_ref = event.ref;
        EXPECT_EQ(event.sizeLog2, kLog2_4K);
        switch (event.cause) {
          case obs::MissCause::Cold:
            ++cold;
            break;
          case obs::MissCause::Capacity:
            ++capacity;
            break;
          case obs::MissCause::Shootdown:
            ++shootdown;
            break;
        }
    }
    // 64 distinct pages: the first touch of each is cold, every
    // re-miss is a capacity miss; nothing was shot down.
    EXPECT_EQ(cold, 64u);
    EXPECT_EQ(capacity, result.tlb.misses - 64u);
    EXPECT_EQ(shootdown, 0u);
}

TEST(TimeSeriesExperiment, WsBytesColumnOnlyWhenTracked)
{
    VectorTrace trace = cyclicTrace(8, 8);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 0;
    options.timeseries.intervalRefs = 16;

    VectorTrace plain = trace;
    const auto without = runExperiment(
        plain, PolicySpec::single(kLog2_4K), tlb, options);
    ASSERT_NE(without.timeseries, nullptr);
    const auto &names = without.timeseries->valueNames;
    EXPECT_EQ(std::count(names.begin(), names.end(), "ws_bytes"), 0);

    options.wsWindow = 100;
    const auto with = runExperiment(
        trace, PolicySpec::single(kLog2_4K), tlb, options);
    ASSERT_NE(with.timeseries, nullptr);
    const auto &ws_names = with.timeseries->valueNames;
    ASSERT_EQ(std::count(ws_names.begin(), ws_names.end(), "ws_bytes"),
              1);
    // The tracked working set is live by the first interval close.
    const std::size_t column = static_cast<std::size_t>(
        std::find(ws_names.begin(), ws_names.end(), "ws_bytes") -
        ws_names.begin());
    EXPECT_GT(with.timeseries->intervals.front().values[column], 0.0);
}

/** The exported key set must be a function of the enabled features,
 *  never of the measured values (satellite: dumps from identical
 *  configurations must agree on their key sets). */
TEST(TimeSeriesExperiment, ExportToKeySetTracksFeatures)
{
    VectorTrace trace = cyclicTrace(8, 4);
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 0;

    const std::vector<std::string> base_keys = {
        "x.workload",          "x.tlb_name",
        "x.policy_name",       "x.refs",
        "x.instructions",      "x.tlb.access",
        "x.tlb.hit",           "x.tlb.miss",
        "x.tlb.hit_small",     "x.tlb.hit_large",
        "x.tlb.miss_small",    "x.tlb.miss_large",
        "x.tlb.fill",          "x.tlb.eviction",
        "x.tlb.invalidation",  "x.tlb.miss_ratio",
        "x.policy.refs_small", "x.policy.refs_large",
        "x.policy.promotions", "x.policy.demotions",
        "x.policy.large_fraction",
        "x.cpi_tlb",           "x.mpi",
        "x.miss_ratio",        "x.rpi",
    };

    {
        VectorTrace copy = trace;
        const auto result = runExperiment(
            copy, PolicySpec::single(kLog2_4K), tlb, options);
        obs::StatRegistry registry;
        result.exportTo(registry, "x");
        for (const std::string &key : base_keys)
            EXPECT_TRUE(registry.has(key)) << key;
        EXPECT_FALSE(registry.has("x.avg_ws_bytes"));
        EXPECT_FALSE(registry.has("x.measured_miss_cycles"));
        EXPECT_FALSE(registry.has("x.cpi_tlb_measured"));
        EXPECT_FALSE(registry.has("x.cpi_phys"));
        EXPECT_EQ(registry.size(), base_keys.size());
    }

    options.wsWindow = 1000;
    options.modelPageTables = true;
    {
        VectorTrace copy = trace;
        const auto result = runExperiment(
            copy, PolicySpec::single(kLog2_4K), tlb, options);
        EXPECT_TRUE(result.wsTracked);
        EXPECT_TRUE(result.pageTablesModeled);
        obs::StatRegistry registry;
        result.exportTo(registry, "x");
        for (const std::string &key : base_keys)
            EXPECT_TRUE(registry.has(key)) << key;
        // Registered because the feature ran, even if the measured
        // value happens to be 0.0.
        EXPECT_TRUE(registry.has("x.avg_ws_bytes"));
        EXPECT_TRUE(registry.has("x.measured_miss_cycles"));
        EXPECT_TRUE(registry.has("x.cpi_tlb_measured"));
        EXPECT_FALSE(registry.has("x.cpi_phys"));
        EXPECT_EQ(registry.size(), base_keys.size() + 3);
    }

    options.phys.memBytes = 1u << 20;
    {
        VectorTrace copy = trace;
        const auto result = runExperiment(
            copy, PolicySpec::single(kLog2_4K), tlb, options);
        EXPECT_TRUE(result.physModeled);
        obs::StatRegistry registry;
        result.exportTo(registry, "x");
        for (const std::string &key : base_keys)
            EXPECT_TRUE(registry.has(key)) << key;
        // 12 phys counters + 4 fragmentation entries + cpi_phys.
        EXPECT_TRUE(registry.has("x.phys.frames_allocated"));
        EXPECT_TRUE(registry.has("x.phys.superpage_failures"));
        EXPECT_TRUE(registry.has("x.phys.frag.frag_index"));
        EXPECT_TRUE(registry.has("x.phys.frag.free_blocks_by_order"));
        EXPECT_TRUE(registry.has("x.cpi_phys"));
        EXPECT_EQ(registry.size(), base_keys.size() + 3 + 17);
    }
}

TEST(StatsDelta, TlbStatsDeltaSince)
{
    TlbStats earlier;
    earlier.accesses = 10;
    earlier.hits = 7;
    earlier.misses = 3;
    earlier.hitsSmall = 6;
    earlier.hitsLarge = 1;
    earlier.missesSmall = 2;
    earlier.missesLarge = 1;
    earlier.fills = 3;
    earlier.evictions = 1;
    earlier.invalidations = 1;

    TlbStats later = earlier;
    later.accesses = 25;
    later.hits = 18;
    later.misses = 7;
    later.hitsSmall = 15;
    later.hitsLarge = 3;
    later.missesSmall = 5;
    later.missesLarge = 2;
    later.fills = 7;
    later.evictions = 4;
    later.invalidations = 2;

    const TlbStats delta = later.deltaSince(earlier);
    EXPECT_EQ(delta.accesses, 15u);
    EXPECT_EQ(delta.hits, 11u);
    EXPECT_EQ(delta.misses, 4u);
    EXPECT_EQ(delta.hitsSmall, 9u);
    EXPECT_EQ(delta.hitsLarge, 2u);
    EXPECT_EQ(delta.missesSmall, 3u);
    EXPECT_EQ(delta.missesLarge, 1u);
    EXPECT_EQ(delta.fills, 4u);
    EXPECT_EQ(delta.evictions, 3u);
    EXPECT_EQ(delta.invalidations, 1u);
    // since + delta == now, field by field: the identity the interval
    // sums rely on.
    EXPECT_EQ(earlier.accesses + delta.accesses, later.accesses);
    // A zero-length window is an all-zero delta.
    const TlbStats none = later.deltaSince(later);
    EXPECT_EQ(none.accesses, 0u);
    EXPECT_EQ(none.misses, 0u);
}

TEST(StatsDelta, PolicyStatsDeltaSince)
{
    PolicyStats earlier;
    earlier.refsSmall = 100;
    earlier.refsLarge = 50;
    earlier.promotions = 2;
    earlier.demotions = 1;

    PolicyStats later;
    later.refsSmall = 160;
    later.refsLarge = 90;
    later.promotions = 5;
    later.demotions = 1;

    const PolicyStats delta = later.deltaSince(earlier);
    EXPECT_EQ(delta.refsSmall, 60u);
    EXPECT_EQ(delta.refsLarge, 40u);
    EXPECT_EQ(delta.promotions, 3u);
    EXPECT_EQ(delta.demotions, 0u);
    EXPECT_DOUBLE_EQ(delta.largeFraction(), 0.4);
}

} // namespace
} // namespace tps::core
