/**
 * @file
 * Cross-module integration tests: the paper's qualitative claims
 * checked end-to-end at reduced scale, plus equivalences between the
 * direct simulators and the stack-simulation methodology.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/figures.h"
#include "vm/multi_size_policy.h"
#include "stacksim/all_assoc.h"
#include "stacksim/lru_stack.h"
#include "trace/vector_trace.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

StudyScale
smallScale()
{
    StudyScale scale;
    scale.refs = 400'000;
    scale.window = 50'000;
    scale.warmupRefs = 100'000;
    return scale;
}

/**
 * Paper claim 1 (Section 6): 32KB single pages cut CPI_TLB by a
 * large factor vs 4KB on a fully associative TLB, aggregated across
 * the suite.
 */
TEST(PaperClaimsTest, LargePagesCutCpiOnFullyAssociative)
{
    TlbConfig base;
    base.organization = TlbOrganization::FullyAssociative;
    base.entries = 16;
    const auto rows = runCpiStudy(smallScale(), base);
    double total_4k = 0.0, total_32k = 0.0, total_8k = 0.0;
    for (const auto &row : rows) {
        total_4k += row.cpi4k;
        total_8k += row.cpi8k;
        total_32k += row.cpi32k;
    }
    EXPECT_GT(total_4k, 3.0 * total_32k); // paper: ~8x
    EXPECT_GT(total_4k, 1.3 * total_8k);  // 8KB roughly halves
}

/**
 * Paper claim 2: on a fully associative TLB the two-size scheme
 * tracks the 32KB single size closely (the gap is mostly the 1.25x
 * penalty), and beats 4KB overall.
 */
TEST(PaperClaimsTest, TwoSizesTrack32kOnFullyAssociative)
{
    TlbConfig base;
    base.organization = TlbOrganization::FullyAssociative;
    base.entries = 16;
    const auto rows = runCpiStudy(smallScale(), base);
    double total_two = 0.0, total_32k = 0.0, total_4k = 0.0;
    unsigned improved = 0;
    for (const auto &row : rows) {
        total_two += row.cpiTwoSize;
        total_32k += row.cpi32k;
        total_4k += row.cpi4k;
        improved += row.cpiTwoSize < row.cpi4k ? 1 : 0;
    }
    EXPECT_LT(total_two, 0.5 * total_4k);
    EXPECT_LT(total_two, 3.0 * total_32k);
    EXPECT_GE(improved, 9u); // nearly all programs improve under FA
}

/**
 * Paper claim 3: with two-way set-associative TLBs results are mixed
 * — most programs improve but some degrade (espresso, worm).
 */
TEST(PaperClaimsTest, SetAssociativeResultsMixed)
{
    TlbConfig base;
    base.organization = TlbOrganization::SetAssociative;
    base.entries = 16;
    base.ways = 2;
    base.scheme = IndexScheme::Exact;
    const auto rows = runCpiStudy(smallScale(), base);
    unsigned improved = 0;
    double worm_delta = 0.0;
    for (const auto &row : rows) {
        improved += row.cpiTwoSize < row.cpi4k ? 1 : 0;
        if (row.name == "worm")
            worm_delta = row.cpiTwoSize - row.cpi4k;
    }
    EXPECT_GE(improved, 6u);
    EXPECT_LE(improved, 11u); // not everyone improves
    EXPECT_GT(worm_delta, 0.0); // worm degrades (Section 5.2)
}

/**
 * Paper claim 4 (Section 5.2.1): hardware with the large-page index
 * but an OS that allocates only small pages is much worse than plain
 * 4KB hardware.
 */
TEST(PaperClaimsTest, LargeIndexWithoutOsSupportDegrades)
{
    const auto rows = runIndexingStudy(smallScale(), 16, 2);
    double total_4k = 0.0, total_4k_large_index = 0.0;
    for (const auto &row : rows) {
        total_4k += row.cpi4k;
        total_4k_large_index += row.cpi4kLargeIndex;
    }
    EXPECT_GT(total_4k_large_index, 1.2 * total_4k);
}

/**
 * Paper claim 5 (Section 4): the two-size scheme's working-set cost
 * is small (~1.1x average) and below even the 8KB single size, while
 * 32KB singles cost much more.
 */
TEST(PaperClaimsTest, WorkingSetCosts)
{
    const auto rows =
        runWsTwoStudy(smallScale(), paperPolicy(smallScale()));
    double sum_two = 0.0, sum_8k = 0.0, sum_32k = 0.0;
    for (const auto &row : rows) {
        sum_two += row.normTwoSize;
        sum_8k += row.norm8k;
        sum_32k += row.norm32k;
    }
    const double n = static_cast<double>(rows.size());
    EXPECT_LT(sum_two / n, 1.3);      // paper: ~1.1
    EXPECT_LT(sum_two, sum_8k * 1.05); // <= 8KB single (small slack)
    EXPECT_GT(sum_32k / n, 1.25);     // 32KB singles cost real memory
}

/**
 * Methodology equivalence: a full experiment through the single-size
 * policy on a fully associative TLB equals LRU stack simulation over
 * the same page stream.
 */
TEST(MethodologyTest, StackSimMatchesExperimentDriver)
{
    auto workload = workloads::findWorkload("espresso").instantiate();

    LruStackSim stack(64);
    {
        MemRef ref;
        for (int i = 0; i < 100'000 && workload->next(ref); ++i)
            stack.observe(ref.vaddr >> kLog2_4K);
    }

    for (std::size_t entries : {8u, 16u, 32u, 64u}) {
        TlbConfig tlb;
        tlb.organization = TlbOrganization::FullyAssociative;
        tlb.entries = entries;
        RunOptions options;
        options.maxRefs = 100'000;
        const auto result = runExperiment(
            *workload, PolicySpec::single(kLog2_4K), tlb, options);
        EXPECT_EQ(result.tlb.misses, stack.missesForSize(entries))
            << entries << " entries";
    }
}

/**
 * Methodology equivalence for the set-associative grid (the "84
 * configurations in one pass" of Section 3.3).
 */
TEST(MethodologyTest, AllAssocMatchesExperimentDriver)
{
    auto workload = workloads::findWorkload("doduc").instantiate();

    AllAssocSim sim(5, 4);
    {
        MemRef ref;
        for (int i = 0; i < 80'000 && workload->next(ref); ++i)
            sim.observe(ref.vaddr >> kLog2_4K);
    }

    for (std::size_t ways : {1u, 2u, 4u}) {
        for (unsigned set_bits : {2u, 3u, 4u}) {
            TlbConfig tlb;
            tlb.organization = TlbOrganization::SetAssociative;
            tlb.entries = (std::size_t{1} << set_bits) * ways;
            tlb.ways = ways;
            tlb.scheme = IndexScheme::Exact;
            RunOptions options;
            options.maxRefs = 80'000;
            const auto result = runExperiment(
                *workload, PolicySpec::single(kLog2_4K), tlb, options);
            EXPECT_EQ(result.tlb.misses, sim.misses(set_bits, ways))
                << "sets 2^" << set_bits << " ways " << ways;
        }
    }
}

/**
 * Consistency: after a promotion, no stale small-page translation of
 * that chunk can hit.
 */
TEST(ConsistencyTest, NoStaleSmallHitsAfterPromotion)
{
    // Drive the policy + TLB by hand and cross-check residency.
    TwoSizeConfig config;
    config.window = 10'000;
    TwoSizePolicy policy(config);
    auto tlb = makeTlb(TlbConfig{});
    policy.setInvalidationSink(tlb.get());

    auto workload = workloads::findWorkload("x11perf").instantiate();
    MemRef ref;
    RefTime now = 0;
    while (now < 200'000 && workload->next(ref)) {
        ++now;
        const PageId page = policy.classify(ref.vaddr, now);
        tlb->access(page, ref.vaddr);
        // Invariant: the TLB never hits a small page of a chunk that
        // is currently mapped large (exercised implicitly: if a stale
        // small entry survived, the policy would classify large and
        // the access would miss-fill, inflating `fills` vs misses).
        ASSERT_EQ(tlb->stats().fills, tlb->stats().misses);
    }
    EXPECT_GT(policy.stats().promotions, 0u);
}

/**
 * The hierarchical three-size policy runs end-to-end and is never
 * worse-or-equal than two sizes on big-footprint workloads (more
 * reach per entry, same penalty model).
 */
TEST(ConsistencyTest, ThreeSizesEndToEnd)
{
    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 16;
    RunOptions options;
    options.maxRefs = 400'000;
    options.warmupRefs = 100'000;

    auto workload = workloads::findWorkload("verilog").instantiate();
    TwoSizeConfig two_config;
    two_config.window = 50'000;
    auto two_tlb = makeTlb(tlb);
    TwoSizePolicy two_policy(two_config);
    const auto two = runExperiment(*workload, two_policy, *two_tlb,
                                   options);

    workload->reset();
    MultiSizeConfig multi_config;
    multi_config.sizeLog2s = {12, 15, 18};
    multi_config.window = 50'000;
    MultiSizePolicy multi_policy(multi_config);
    auto multi_tlb = makeTlb(tlb);
    const auto multi = runExperiment(*workload, multi_policy,
                                     *multi_tlb, options);

    EXPECT_GT(multi_policy.refsPerLevel()[2], 0u); // 256KB pages used
    EXPECT_LT(multi.tlb.misses, two.tlb.misses);
    EXPECT_EQ(multi.policyName, "4KB/32KB/256KB");
}

/** The split TLB runs end-to-end through the driver. */
TEST(ConsistencyTest, SplitTlbEndToEnd)
{
    auto workload = workloads::findWorkload("nasa7").instantiate();
    TlbConfig tlb;
    tlb.organization = TlbOrganization::Split;
    tlb.entries = 16;
    tlb.splitLargeEntries = 8;
    RunOptions options;
    options.maxRefs = 150'000;
    TwoSizeConfig policy;
    policy.window = 30'000;
    const auto result = runExperiment(
        *workload, PolicySpec::twoSizes(policy), tlb, options);
    EXPECT_GT(result.tlb.hitsLarge, 0u);
    EXPECT_GT(result.tlb.hitsSmall, 0u);
    EXPECT_GT(result.cpiTlb, 0.0);
}

} // namespace
} // namespace tps::core
