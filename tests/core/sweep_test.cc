/** @file Unit tests for the sweep runner. */

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/registry.h"

namespace tps::core
{
namespace
{

RunOptions
tinyOptions()
{
    RunOptions options;
    options.maxRefs = 40'000;
    return options;
}

TEST(SweepTest, CellCountIsProduct)
{
    SweepRunner sweep;
    sweep.workloads({"li", "worm"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K))
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_32K))
        .options(tinyOptions());
    EXPECT_EQ(sweep.cells(), 4u);
    EXPECT_EQ(sweep.run().size(), 4u);
}

TEST(SweepTest, DefaultsToWholeSuite)
{
    SweepRunner sweep;
    sweep.configuration(TlbConfig{}, PolicySpec::single(kLog2_4K));
    EXPECT_EQ(sweep.cells(), 12u);
}

TEST(SweepTest, AutoLabels)
{
    SweepRunner sweep;
    TwoSizeConfig policy;
    policy.window = 10'000;
    sweep.workloads({"espresso"})
        .configuration(TlbConfig{}, PolicySpec::twoSizes(policy))
        .options(tinyOptions());
    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_NE(cells[0].configLabel.find("16-entry"),
              std::string::npos);
    EXPECT_NE(cells[0].configLabel.find("4KB/32KB"),
              std::string::npos);
}

TEST(SweepTest, ResultsMatchDirectRuns)
{
    SweepRunner sweep;
    sweep.workloads({"doduc"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K))
        .options(tinyOptions());
    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 1u);

    auto workload = workloads::findWorkload("doduc").instantiate();
    const auto direct = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), TlbConfig{},
        tinyOptions());
    EXPECT_EQ(cells[0].result.tlb.misses, direct.tlb.misses);
    EXPECT_EQ(cells[0].result.cpiTlb, direct.cpiTlb);
}

TEST(SweepTest, CpiTableHasRowPerWorkload)
{
    SweepRunner sweep;
    sweep.workloads({"li", "worm", "xnews"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K),
                       "base")
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_32K),
                       "large")
        .options(tinyOptions());
    std::ostringstream os;
    SweepRunner::printCpiTable(os, sweep.run());
    const std::string out = os.str();
    EXPECT_NE(out.find("li"), std::string::npos);
    EXPECT_NE(out.find("worm"), std::string::npos);
    EXPECT_NE(out.find("base"), std::string::npos);
    EXPECT_NE(out.find("large"), std::string::npos);
}

TEST(SweepTest, CsvHasHeaderPlusCellRows)
{
    SweepRunner sweep;
    sweep.workloads({"li"})
        .configuration(TlbConfig{}, PolicySpec::single(kLog2_4K))
        .options(tinyOptions());
    std::ostringstream os;
    SweepRunner::writeCsv(os, sweep.run());
    std::size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 2u); // header + one cell
    EXPECT_NE(os.str().find("cpi_tlb"), std::string::npos);
}

TEST(SweepDeathTest, EmptyConfigurationFatal)
{
    SweepRunner sweep;
    EXPECT_EXIT(sweep.run(), ::testing::ExitedWithCode(1),
                "no configurations");
}

} // namespace
} // namespace tps::core
