/** @file Round-trip and robustness tests for the .tps trace format. */

#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/vector_trace.h"
#include "util/random.h"

namespace tps
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const char *tag)
    {
        return ::testing::TempDir() + "tps_trace_" + tag + ".tps";
    }
};

TEST_F(TraceFileTest, EmptyRoundTrip)
{
    const std::string path = tempPath("empty");
    {
        TraceFileWriter writer(path, "empty");
        writer.finish();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.refCount(), 0u);
    EXPECT_EQ(reader.name(), "empty");
    MemRef ref;
    EXPECT_FALSE(reader.next(ref));
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, RoundTripPreservesEverything)
{
    const std::string path = tempPath("rt");
    std::vector<MemRef> refs = {
        {0x1000, RefType::Ifetch, 4}, {0x0, RefType::Load, 1},
        {0xFFFF'FFFF'F000, RefType::Store, 8},
        {0x1004, RefType::Ifetch, 4}, {0x1000, RefType::Load, 2},
    };
    {
        TraceFileWriter writer(path, "roundtrip");
        for (const MemRef &ref : refs)
            writer.write(ref);
    } // destructor finishes

    TraceFileReader reader(path);
    EXPECT_EQ(reader.refCount(), refs.size());
    for (const MemRef &expected : refs) {
        MemRef got;
        ASSERT_TRUE(reader.next(got));
        EXPECT_EQ(got, expected);
    }
    MemRef extra;
    EXPECT_FALSE(reader.next(extra));
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, ReaderResetReplays)
{
    const std::string path = tempPath("reset");
    {
        TraceFileWriter writer(path, "r");
        writer.write({0xAAAA, RefType::Load, 4});
        writer.write({0xBBBB, RefType::Store, 8});
    }
    TraceFileReader reader(path);
    VectorTrace first = materialize(reader);
    reader.reset();
    VectorTrace second = materialize(reader);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first.refs(), second.refs());
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, RandomAddressesSurviveDeltaEncoding)
{
    const std::string path = tempPath("rand");
    Rng rng(99);
    std::vector<MemRef> refs;
    for (int i = 0; i < 5000; ++i) {
        refs.push_back(MemRef{rng.next64() & 0xFFFF'FFFF'FFFF,
                              static_cast<RefType>(rng.below(3)),
                              static_cast<std::uint8_t>(
                                  1u << rng.below(4))});
    }
    {
        TraceFileWriter writer(path, "rand");
        for (const MemRef &ref : refs)
            writer.write(ref);
    }
    TraceFileReader reader(path);
    for (const MemRef &expected : refs) {
        MemRef got;
        ASSERT_TRUE(reader.next(got));
        ASSERT_EQ(got, expected);
    }
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, SequentialTraceCompressesWell)
{
    const std::string path = tempPath("seq");
    constexpr int kRefs = 10000;
    {
        TraceFileWriter writer(path, "seq");
        for (int i = 0; i < kRefs; ++i)
            writer.write({0x10000 + static_cast<Addr>(i) * 8,
                          RefType::Load, 8});
    }
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
    // Control byte + 1-byte varint per record, plus a small header.
    EXPECT_LT(file_bytes, kRefs * 3u);
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, WriteTraceFileHelper)
{
    const std::string path = tempPath("helper");
    VectorTrace source({{0x1, RefType::Load, 4},
                        {0x2, RefType::Load, 4}},
                       "helper-src");
    EXPECT_EQ(writeTraceFile(path, source), 2u);
    TraceFileReader reader(path);
    EXPECT_EQ(reader.name(), "helper-src");
    EXPECT_EQ(reader.refCount(), 2u);
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    const std::string path = tempPath("bad");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACEFILE___garbage";
    }
    EXPECT_EXIT({ TraceFileReader reader(path); },
                ::testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT({ TraceFileReader reader("/nonexistent/nope.tps"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceFileTest, TruncatedRecordsAreFatalNotGarbage)
{
    const std::string path = tempPath("trunc");
    {
        TraceFileWriter writer(path, "trunc");
        for (int i = 0; i < 100; ++i)
            writer.write({0x1000 + static_cast<Addr>(i) * 0x1000,
                          RefType::Load, 8});
    }
    // Chop the record section short while keeping the header intact.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto full = static_cast<std::streamoff>(in.tellg());
    in.close();
    std::string data(static_cast<std::size_t>(full), '\0');
    std::ifstream re(path, std::ios::binary);
    re.read(data.data(), full);
    re.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), full - 40);
    out.close();

    EXPECT_EXIT(
        {
            TraceFileReader reader(path);
            MemRef ref;
            while (reader.next(ref)) {
            }
        },
        ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

} // namespace
} // namespace tps
