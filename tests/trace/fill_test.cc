/**
 * @file
 * Batch-fill equivalence: for every TraceSource, fill(out, n) must
 * deliver exactly the stream n repeated next() calls would, including
 * short reads at end-of-trace and arbitrary interleaving of the two
 * APIs.  The batched experiment loop depends on this contract.
 */

#include "trace/trace_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "trace/trace_file.h"
#include "trace/transforms.h"
#include "trace/vector_trace.h"
#include "util/random.h"
#include "workloads/registry.h"

namespace tps
{
namespace
{

std::vector<MemRef>
syntheticRefs(std::size_t count)
{
    Rng rng(99);
    std::vector<MemRef> refs;
    refs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MemRef ref;
        ref.vaddr = rng.next64() & 0xFFFF'FFFF;
        ref.type = i % 3 == 0 ? RefType::Ifetch
                              : (i % 3 == 1 ? RefType::Load
                                            : RefType::Store);
        refs.push_back(ref);
    }
    return refs;
}

std::vector<MemRef>
drainViaNext(TraceSource &source, std::size_t cap)
{
    std::vector<MemRef> out;
    MemRef ref;
    while (out.size() < cap && source.next(ref))
        out.push_back(ref);
    return out;
}

std::vector<MemRef>
drainViaFill(TraceSource &source, std::size_t cap, std::size_t chunk)
{
    std::vector<MemRef> out;
    std::vector<MemRef> buffer(chunk);
    while (out.size() < cap) {
        const std::size_t want =
            std::min(chunk, cap - out.size());
        const std::size_t got = source.fill(buffer.data(), want);
        out.insert(out.end(), buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(got));
        if (got == 0)
            break;
    }
    return out;
}

/**
 * Core contract check: after reset(), draining via fill (odd chunk
 * size) matches draining via next.  @p cap bounds infinite sources.
 */
void
expectFillMatchesNext(TraceSource &source, std::size_t cap)
{
    source.reset();
    const auto via_next = drainViaNext(source, cap);
    source.reset();
    const auto via_fill = drainViaFill(source, cap, 7);
    EXPECT_EQ(via_next, via_fill);
    source.reset();
    const auto via_big_fill = drainViaFill(source, cap, cap + 13);
    EXPECT_EQ(via_next, via_big_fill);
}

TEST(FillTest, VectorTraceMatchesNext)
{
    VectorTrace trace(syntheticRefs(1000));
    expectFillMatchesNext(trace, 2000);
}

TEST(FillTest, VectorTraceShortReadAtEnd)
{
    VectorTrace trace(syntheticRefs(10));
    MemRef buffer[64];
    EXPECT_EQ(trace.fill(buffer, 64), 10u);
    EXPECT_EQ(trace.fill(buffer, 64), 0u);
    MemRef ref;
    EXPECT_FALSE(trace.next(ref));
    trace.reset();
    EXPECT_EQ(trace.fill(buffer, 4), 4u);
}

TEST(FillTest, SharedTraceViewMatchesNextAndSharesStorage)
{
    auto storage = std::make_shared<const std::vector<MemRef>>(
        syntheticRefs(500));
    SharedTraceView view(storage, "shared");
    expectFillMatchesNext(view, 1000);

    // Two views over one storage advance independently.
    SharedTraceView a(storage, "a");
    SharedTraceView b(storage, "b");
    MemRef ref;
    ASSERT_TRUE(a.next(ref));
    ASSERT_TRUE(a.next(ref));
    const auto from_a = drainViaFill(a, 1000, 9);
    const auto from_b = drainViaNext(b, 1000);
    EXPECT_EQ(from_a.size(), 498u);
    EXPECT_EQ(from_b.size(), 500u);
    EXPECT_EQ(std::vector<MemRef>(from_b.begin() + 2, from_b.end()),
              from_a);
}

TEST(FillTest, TraceFileReaderMatchesNext)
{
    const std::string path =
        ::testing::TempDir() + "tps_fill_test.tps";
    const auto refs = syntheticRefs(300);
    {
        TraceFileWriter writer(path, "fill");
        for (const MemRef &ref : refs)
            writer.write(ref);
    }
    TraceFileReader reader(path);
    expectFillMatchesNext(reader, 600);
    reader.reset();
    EXPECT_EQ(drainViaFill(reader, 600, 11), refs);
    std::remove(path.c_str());
}

TEST(FillTest, LimitSourceClampsToBudget)
{
    VectorTrace inner(syntheticRefs(100));
    LimitSource limited(inner, 37);
    expectFillMatchesNext(limited, 100);

    limited.reset();
    MemRef buffer[64];
    EXPECT_EQ(limited.fill(buffer, 64), 37u);
    EXPECT_EQ(limited.fill(buffer, 64), 0u);
}

TEST(FillTest, TypeFilterSourceMatchesNext)
{
    VectorTrace inner(syntheticRefs(400));
    TypeFilterSource data_only(inner, false, true, true);
    expectFillMatchesNext(data_only, 800);
}

TEST(FillTest, InterleaveSourceMatchesNext)
{
    VectorTrace a(syntheticRefs(120));
    VectorTrace b(syntheticRefs(80));
    InterleaveSource merged({&a, &b}, 16);
    expectFillMatchesNext(merged, 400);
}

TEST(FillTest, SyntheticWorkloadsMatchNext)
{
    // Generators are infinite and deterministic across instantiate();
    // two fresh instances must produce identical streams regardless
    // of the API used to drain them.
    for (const char *name : {"li", "worm", "matrix300", "verilog"}) {
        auto via_next_source =
            workloads::findWorkload(name).instantiate();
        auto via_fill_source =
            workloads::findWorkload(name).instantiate();
        const auto via_next = drainViaNext(*via_next_source, 20'000);
        const auto via_fill =
            drainViaFill(*via_fill_source, 20'000, 513);
        ASSERT_EQ(via_next.size(), 20'000u) << name;
        EXPECT_EQ(via_next, via_fill) << name;
    }
}

TEST(FillTest, MixedFillAndNextIsOneStream)
{
    auto reference = workloads::findWorkload("espresso").instantiate();
    auto mixed = workloads::findWorkload("espresso").instantiate();
    const auto expected = drainViaNext(*reference, 5'000);

    std::vector<MemRef> got;
    MemRef buffer[256];
    MemRef one;
    while (got.size() < 5'000) {
        // Alternate single next() calls with odd-size batches.
        ASSERT_TRUE(mixed->next(one));
        got.push_back(one);
        const std::size_t want = std::min<std::size_t>(
            173, 5'000 - got.size());
        const std::size_t n = mixed->fill(buffer, want);
        got.insert(got.end(), buffer, buffer + n);
    }
    got.resize(5'000);
    EXPECT_EQ(got, expected);
}

} // namespace
} // namespace tps
