/** @file Unit tests for trace/transforms.h. */

#include "trace/transforms.h"

#include <gtest/gtest.h>

#include "trace/vector_trace.h"

namespace tps
{
namespace
{

VectorTrace
threeRefs()
{
    return VectorTrace({{0x1000, RefType::Ifetch, 4},
                        {0x2000, RefType::Load, 8},
                        {0x3000, RefType::Store, 8}},
                       "three");
}

TEST(LimitSourceTest, CapsOutput)
{
    VectorTrace inner = threeRefs();
    LimitSource limited(inner, 2);
    MemRef ref;
    EXPECT_TRUE(limited.next(ref));
    EXPECT_TRUE(limited.next(ref));
    EXPECT_FALSE(limited.next(ref));
}

TEST(LimitSourceTest, ResetRestoresBudget)
{
    VectorTrace inner = threeRefs();
    LimitSource limited(inner, 1);
    MemRef ref;
    EXPECT_TRUE(limited.next(ref));
    EXPECT_FALSE(limited.next(ref));
    limited.reset();
    EXPECT_TRUE(limited.next(ref));
    EXPECT_EQ(ref.vaddr, 0x1000u);
}

TEST(TypeFilterTest, KeepsOnlySelected)
{
    VectorTrace inner = threeRefs();
    TypeFilterSource data_only(inner, false, true, true);
    VectorTrace out = materialize(data_only);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out.refs()[0].type, RefType::Load);
    EXPECT_EQ(out.refs()[1].type, RefType::Store);
}

TEST(TypeFilterTest, IfetchOnly)
{
    VectorTrace inner = threeRefs();
    TypeFilterSource code_only(inner, true, false, false);
    VectorTrace out = materialize(code_only);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.refs()[0].type, RefType::Ifetch);
}

TEST(InterleaveTest, RoundRobinQuanta)
{
    VectorTrace a({{0x1, RefType::Load, 4},
                   {0x2, RefType::Load, 4},
                   {0x3, RefType::Load, 4}},
                  "a");
    VectorTrace b({{0x11, RefType::Load, 4},
                   {0x12, RefType::Load, 4}},
                  "b");
    InterleaveSource merged({&a, &b}, 2, 36);
    VectorTrace out = materialize(merged);
    ASSERT_EQ(out.size(), 5u);
    // a,a | b,b | a (b exhausted, a continues)
    EXPECT_EQ(out.refs()[0].vaddr, 0x1u);
    EXPECT_EQ(out.refs()[1].vaddr, 0x2u);
    EXPECT_EQ(out.refs()[2].vaddr, (Addr{1} << 36) + 0x11);
    EXPECT_EQ(out.refs()[3].vaddr, (Addr{1} << 36) + 0x12);
    EXPECT_EQ(out.refs()[4].vaddr, 0x3u);
}

TEST(InterleaveTest, AddressSlicesDisjoint)
{
    VectorTrace a({{0xFFFF, RefType::Load, 4}}, "a");
    VectorTrace b({{0xFFFF, RefType::Load, 4}}, "b");
    InterleaveSource merged({&a, &b}, 1, 30);
    VectorTrace out = materialize(merged);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out.refs()[0].vaddr, out.refs()[1].vaddr);
    EXPECT_EQ(out.refs()[0].vaddr >> 30, 0u);
    EXPECT_EQ(out.refs()[1].vaddr >> 30, 1u);
}

TEST(InterleaveTest, ResetReplays)
{
    VectorTrace a({{0x1, RefType::Load, 4}}, "a");
    VectorTrace b({{0x2, RefType::Load, 4}}, "b");
    InterleaveSource merged({&a, &b}, 1);
    VectorTrace first = materialize(merged);
    merged.reset();
    VectorTrace second = materialize(merged);
    EXPECT_EQ(first.refs(), second.refs());
}

TEST(InterleaveTest, RejectsSliceTooSmallForSources)
{
    VectorTrace a({}, "a");
    VectorTrace b({}, "b");
    VectorTrace c({}, "c");
    // slice_log2 at or above the address width can't offset anything.
    EXPECT_DEATH(InterleaveSource({&a, &b}, 1, 64), "address width");
    // Three sources need more than the 2^1 slices left above bit 63.
    EXPECT_DEATH(InterleaveSource({&a, &b, &c}, 1, 63), "alias");
}

TEST(InterleaveTest, NameMentionsAllSources)
{
    VectorTrace a({}, "alpha");
    VectorTrace b({}, "beta");
    InterleaveSource merged({&a, &b}, 4);
    EXPECT_EQ(merged.name(), "interleave(alpha+beta)");
}

} // namespace
} // namespace tps
