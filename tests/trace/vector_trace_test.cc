/** @file Unit tests for trace/vector_trace.h and memref.h. */

#include "trace/vector_trace.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

TEST(MemRefTest, TypePredicates)
{
    MemRef fetch{0x1000, RefType::Ifetch, 4};
    MemRef load{0x2000, RefType::Load, 8};
    MemRef store{0x3000, RefType::Store, 8};
    EXPECT_TRUE(fetch.isInstruction());
    EXPECT_FALSE(fetch.isData());
    EXPECT_TRUE(load.isData());
    EXPECT_TRUE(store.isData());
    EXPECT_FALSE(store.isInstruction());
}

TEST(MemRefTest, RefTypeNames)
{
    EXPECT_STREQ(refTypeName(RefType::Ifetch), "ifetch");
    EXPECT_STREQ(refTypeName(RefType::Load), "load");
    EXPECT_STREQ(refTypeName(RefType::Store), "store");
}

TEST(VectorTraceTest, DeliversInOrder)
{
    VectorTrace trace({{0x1000, RefType::Load, 4},
                       {0x2000, RefType::Store, 8}},
                      "t");
    MemRef ref;
    ASSERT_TRUE(trace.next(ref));
    EXPECT_EQ(ref.vaddr, 0x1000u);
    ASSERT_TRUE(trace.next(ref));
    EXPECT_EQ(ref.vaddr, 0x2000u);
    EXPECT_FALSE(trace.next(ref));
}

TEST(VectorTraceTest, ResetReplaysIdentically)
{
    VectorTrace trace({{0xA, RefType::Load, 4}}, "t");
    MemRef a, b;
    ASSERT_TRUE(trace.next(a));
    EXPECT_FALSE(trace.next(b));
    trace.reset();
    ASSERT_TRUE(trace.next(b));
    EXPECT_EQ(a, b);
}

TEST(VectorTraceTest, AppendGrows)
{
    VectorTrace trace;
    trace.append({0x1, RefType::Load, 4});
    trace.append({0x2, RefType::Load, 4});
    EXPECT_EQ(trace.size(), 2u);
}

TEST(MaterializeTest, DrainsWholeSource)
{
    VectorTrace source({{0x1, RefType::Load, 4},
                        {0x2, RefType::Load, 4},
                        {0x3, RefType::Load, 4}},
                       "src");
    VectorTrace copy = materialize(source);
    EXPECT_EQ(copy.size(), 3u);
    EXPECT_EQ(copy.name(), "src");
}

TEST(MaterializeTest, HonorsLimit)
{
    VectorTrace source({{0x1, RefType::Load, 4},
                        {0x2, RefType::Load, 4},
                        {0x3, RefType::Load, 4}},
                       "src");
    VectorTrace copy = materialize(source, 2);
    EXPECT_EQ(copy.size(), 2u);
}

} // namespace
} // namespace tps
