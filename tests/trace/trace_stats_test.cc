/** @file Unit tests for trace/trace_stats.h. */

#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include "trace/vector_trace.h"

namespace tps
{
namespace
{

TEST(TraceStatsTest, CountsByType)
{
    VectorTrace trace({{0x1000, RefType::Ifetch, 4},
                       {0x2000, RefType::Load, 8},
                       {0x3000, RefType::Store, 8},
                       {0x1004, RefType::Ifetch, 4}},
                      "t");
    const TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.refs, 4u);
    EXPECT_EQ(stats.instructions, 2u);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_DOUBLE_EQ(stats.rpi(), 2.0);
}

TEST(TraceStatsTest, DistinctPages)
{
    VectorTrace trace({{0x1000, RefType::Ifetch, 4},
                       {0x1004, RefType::Ifetch, 4}, // same page
                       {0x5000, RefType::Load, 8},
                       {0x5800, RefType::Store, 8}, // same page
                       {0x9000, RefType::Load, 8}},
                      "t");
    const TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.codePages4k, 1u);
    EXPECT_EQ(stats.dataPages4k, 2u);
    EXPECT_EQ(stats.totalPages4k, 3u);
    EXPECT_EQ(stats.footprintBytes(), 3u * 4096);
}

TEST(TraceStatsTest, SharedCodeDataPageCountedOnce)
{
    VectorTrace trace({{0x1000, RefType::Ifetch, 4},
                       {0x1800, RefType::Load, 8}},
                      "t");
    const TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.codePages4k, 1u);
    EXPECT_EQ(stats.dataPages4k, 1u);
    EXPECT_EQ(stats.totalPages4k, 1u);
}

TEST(TraceStatsTest, MaxRefsLimit)
{
    VectorTrace trace({{0x1000, RefType::Load, 8},
                       {0x2000, RefType::Load, 8},
                       {0x3000, RefType::Load, 8}},
                      "t");
    const TraceStats stats = collectTraceStats(trace, 2);
    EXPECT_EQ(stats.refs, 2u);
}

TEST(TraceStatsTest, EmptyTraceSafe)
{
    VectorTrace trace;
    const TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.refs, 0u);
    EXPECT_DOUBLE_EQ(stats.rpi(), 0.0);
    EXPECT_EQ(stats.footprintBytes(), 0u);
}

} // namespace
} // namespace tps
