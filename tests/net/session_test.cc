/**
 * @file
 * core::ExperimentSession resumability: stepping a session to
 * exhaustion must be byte-identical — same sessionStatsJson, same
 * sessionTimeseriesJson — to the one-shot runExperiment path, at every
 * quantum size, whether the quanta run serially or across a thread
 * pool.  This is the contract that lets tpsd park and resume
 * experiments without perturbing the science (DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <sstream>

#include "core/experiment.h"
#include "core/experiment_session.h"
#include "net/spec.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "tlb/factory.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace
{

using namespace tps;
using namespace tps::core;

/** A spec exercising every observable at once: warmup boundary,
 *  two-size policy with promotions, interval telemetry with miss
 *  sampling, event log, lifecycle ledger, working-set tracking. */
net::SessionSpec
denseSpec(const std::string &workload, std::uint64_t chunk_refs)
{
    net::SessionSpec spec;
    spec.workload = workload;
    spec.maxRefs = 24'000;
    spec.warmupRefs = 5'000;
    spec.wsWindow = 4'096;
    spec.chunkRefs = chunk_refs;
    spec.lifecycle = true;
    spec.tsIntervalRefs = 3'000;
    spec.tsMissSamples = 8;
    spec.eventsSampleEvery = 1;
    spec.policy.kind = PolicySpec::Kind::TwoSize;
    spec.policy.twoSize.window = 6'000;
    spec.tlb.entries = 32;
    spec.tlb.ways = 4;
    spec.tlb.organization = TlbOrganization::SetAssociative;
    return spec;
}

/** The three documents the resumability contract covers. */
struct RunDocs
{
    std::string stats;
    std::string timeseries;
    std::string events;

    bool operator==(const RunDocs &) const = default;
};

std::string
eventsJson(const ExperimentResult &result)
{
    if (!result.events)
        return "";
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    result.events->writeJson(w);
    w.finish();
    return os.str();
}

RunDocs
docsOf(const ExperimentResult &result)
{
    return {net::sessionStatsJson(result),
            net::sessionTimeseriesJson(result), eventsJson(result)};
}

RunDocs
oracleRun(const net::SessionSpec &spec)
{
    auto trace = workloads::findWorkload(spec.workload).instantiate();
    return docsOf(runExperiment(*trace, spec.policy, spec.tlb,
                                spec.runOptions()));
}

RunDocs
steppedRun(const net::SessionSpec &spec, std::uint64_t quantum)
{
    auto trace = workloads::findWorkload(spec.workload).instantiate();
    auto policy = spec.policy.instantiate();
    auto tlb = makeTlb(spec.tlb);
    std::vector<SessionCell> cells{{tlb.get(), spec.tlb.probe}};
    ExperimentSession session(*trace, *policy, cells,
                              spec.runOptions());

    std::uint64_t chunks = 0;
    while (!session.exhausted()) {
        const std::uint64_t ran = session.advance(quantum);
        chunks += ran;
        if (ran == 0)
            break;
    }
    EXPECT_TRUE(session.exhausted());
    EXPECT_EQ(session.chunksExecuted(), chunks);
    EXPECT_EQ(session.replayedRefs(), spec.maxRefs);
    EXPECT_EQ(session.measuredRefs(), spec.maxRefs - spec.warmupRefs);

    std::vector<ExperimentResult> results = session.finish();
    EXPECT_TRUE(session.finished());
    EXPECT_EQ(results.size(), 1u);
    return docsOf(results.front());
}

class SessionQuantum : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SessionQuantum, ByteIdenticalToOneShot)
{
    const net::SessionSpec spec = denseSpec("li", 1'024);
    const RunDocs oracle = oracleRun(spec);
    ASSERT_FALSE(oracle.stats.empty());
    ASSERT_FALSE(oracle.timeseries.empty());
    ASSERT_FALSE(oracle.events.empty());

    const RunDocs stepped = steppedRun(spec, GetParam());
    EXPECT_EQ(stepped.stats, oracle.stats);
    EXPECT_EQ(stepped.timeseries, oracle.timeseries);
    EXPECT_EQ(stepped.events, oracle.events);
}

INSTANTIATE_TEST_SUITE_P(Quanta, SessionQuantum,
                         ::testing::Values(1, 7, 4096));

TEST(Session, PoolInterleavingPreservesIdentity)
{
    // Four sessions advance concurrently on four threads, one quantum
    // at a time — the daemon's actual execution shape.  Each must
    // still match its own serial oracle exactly.
    const std::vector<std::string> workloads = {"li", "espresso",
                                                "eqntott", "worm"};
    std::vector<RunDocs> oracles;
    for (const std::string &name : workloads)
        oracles.push_back(oracleRun(denseSpec(name, 512)));

    const std::vector<RunDocs> stepped =
        util::parallelMapIndex(4, workloads.size(), [&](std::size_t i) {
            return steppedRun(denseSpec(workloads[i], 512), 3);
        });

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        EXPECT_EQ(stepped[i].stats, oracles[i].stats) << workloads[i];
        EXPECT_EQ(stepped[i].timeseries, oracles[i].timeseries)
            << workloads[i];
        EXPECT_EQ(stepped[i].events, oracles[i].events)
            << workloads[i];
    }
}

TEST(Session, EarlyFinishYieldsPartialStats)
{
    const net::SessionSpec spec = denseSpec("espresso", 256);
    auto trace = workloads::findWorkload(spec.workload).instantiate();
    auto policy = spec.policy.instantiate();
    auto tlb = makeTlb(spec.tlb);
    std::vector<SessionCell> cells{{tlb.get(), spec.tlb.probe}};
    ExperimentSession session(*trace, *policy, cells,
                              spec.runOptions());

    ASSERT_EQ(session.advance(10), 10u); // 10 chunks x 256 refs
    EXPECT_FALSE(session.exhausted());
    const std::uint64_t replayed = session.replayedRefs();
    EXPECT_GT(replayed, 0u);
    EXPECT_LT(replayed, spec.maxRefs);

    std::vector<ExperimentResult> results = session.finish();
    ASSERT_EQ(results.size(), 1u);
    // The partial stats are well-formed and reflect the cut point.
    EXPECT_EQ(results.front().refs,
              replayed - std::min(replayed, spec.warmupRefs));
    EXPECT_FALSE(net::sessionStatsJson(results.front()).empty());
}

TEST(Session, LiveRecorderAccumulatesBetweenSteps)
{
    const net::SessionSpec spec = denseSpec("li", 1'000);
    auto trace = workloads::findWorkload(spec.workload).instantiate();
    auto policy = spec.policy.instantiate();
    auto tlb = makeTlb(spec.tlb);
    std::vector<SessionCell> cells{{tlb.get(), spec.tlb.probe}};
    ExperimentSession session(*trace, *policy, cells,
                              spec.runOptions());

    const obs::TimeSeriesRecorder *recorder = session.recorder(0);
    ASSERT_NE(recorder, nullptr);

    std::size_t last_rows = 0;
    bool grew_midway = false;
    while (session.step()) {
        const std::size_t rows = recorder->intervals().size();
        EXPECT_GE(rows, last_rows); // rows only accumulate
        if (rows > last_rows && !session.exhausted())
            grew_midway = true;
        last_rows = rows;
    }
    // Telemetry must appear while the run is in flight, not only at
    // finish() — that is what a Poll's Telemetry frame reads.
    EXPECT_TRUE(grew_midway);
    EXPECT_GT(last_rows, 0u);
    session.finish();
}

} // namespace
