/**
 * @file
 * TimeWheel: deterministic expiry under a fake clock — ordering,
 * re-arm (the "client touched the session" path), cancel, deadlines
 * beyond one wheel revolution, and the nextDeadline() poll hint.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/timewheel.h"

namespace
{

using tps::net::TimeWheel;

TEST(TimeWheel, ExpiresInDeadlineOrder)
{
    TimeWheel wheel(10, 32);
    wheel.schedule(3, 250);
    wheel.schedule(1, 90);
    wheel.schedule(2, 170);
    EXPECT_EQ(wheel.size(), 3u);

    EXPECT_TRUE(wheel.advanceTo(50).empty());
    const std::vector<std::uint64_t> first = wheel.advanceTo(100);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0], 1u);

    const std::vector<std::uint64_t> rest = wheel.advanceTo(1000);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], 2u);
    EXPECT_EQ(rest[1], 3u);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimeWheel, RearmReplacesDeadline)
{
    TimeWheel wheel(10, 32);
    wheel.schedule(7, 100);
    wheel.schedule(7, 400); // the touch: push the timeout out
    EXPECT_EQ(wheel.size(), 1u);

    EXPECT_TRUE(wheel.advanceTo(200).empty());
    const std::vector<std::uint64_t> fired = wheel.advanceTo(400);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 7u);
}

TEST(TimeWheel, CancelDisarms)
{
    TimeWheel wheel(10, 32);
    wheel.schedule(1, 50);
    wheel.schedule(2, 60);
    wheel.cancel(1);
    wheel.cancel(99); // unknown id: no-op
    EXPECT_EQ(wheel.size(), 1u);

    const std::vector<std::uint64_t> fired = wheel.advanceTo(500);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 2u);
}

TEST(TimeWheel, DeadlineBeyondOneRevolution)
{
    // 8 slots x 10 ms = one 80 ms revolution; deadlines land in the
    // same buckets repeatedly and must only fire when their absolute
    // time passes.
    TimeWheel wheel(10, 8);
    wheel.schedule(1, 500);
    wheel.schedule(2, 45);

    std::vector<std::uint64_t> fired;
    for (std::uint64_t now = 0; now <= 600; now += 7) {
        for (const std::uint64_t id : wheel.advanceTo(now))
            fired.push_back(id);
    }
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 2u);
    EXPECT_EQ(fired[1], 1u);
}

TEST(TimeWheel, NextDeadlineTracksEarliest)
{
    TimeWheel wheel(10, 32);
    EXPECT_EQ(wheel.nextDeadline(), UINT64_MAX);
    wheel.schedule(1, 300);
    wheel.schedule(2, 120);

    // The hint is tick-rounded, so it may sit a little past the raw
    // deadline but never before it and never past the next armed one.
    const std::uint64_t hint = wheel.nextDeadline();
    EXPECT_GE(hint, 120u);
    EXPECT_LE(hint, 130u);

    // Sleeping exactly until the hint must actually fire the entry:
    // a hint earlier than the firing tick would spin the event loop.
    const std::vector<std::uint64_t> fired = wheel.advanceTo(hint);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 2u);

    wheel.cancel(1);
    EXPECT_EQ(wheel.nextDeadline(), UINT64_MAX);
}

TEST(TimeWheel, MonotonicClamp)
{
    TimeWheel wheel(10, 32);
    wheel.schedule(1, 100);
    EXPECT_TRUE(wheel.advanceTo(90).empty());
    // Time going backwards is clamped, not honored.
    EXPECT_TRUE(wheel.advanceTo(10).empty());
    const std::vector<std::uint64_t> fired = wheel.advanceTo(100);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 1u);
}

} // namespace
