/**
 * @file
 * tps-wire-v1 framing: encode/decode round trips, incremental parsing
 * under arbitrary TCP segmentation, and the malformed-framing
 * contract (sticky error, no resync).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace
{

using namespace tps;
using namespace tps::net;

Frame
parseOne(const std::string &bytes)
{
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Ready);
    return frame;
}

TEST(Wire, FrameRoundTrip)
{
    std::string out;
    appendFrame(out, FrameType::Submit, "{\"x\":1}");
    ASSERT_EQ(out.size(), kFrameHeader + 7);
    const Frame frame = parseOne(out);
    EXPECT_EQ(frame.type, FrameType::Submit);
    EXPECT_EQ(frame.payload, "{\"x\":1}");
}

TEST(Wire, ByteAtATimeSegmentation)
{
    std::string out;
    appendFrame(out, FrameType::Hello, encodeVersion(kWireVersion));
    appendFrame(out, FrameType::Poll, encodeSessionId(42));

    FrameParser parser;
    std::vector<Frame> frames;
    for (const char byte : out) {
        parser.feed(&byte, 1);
        Frame frame;
        while (parser.next(frame) == FrameParser::Result::Ready)
            frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::Hello);
    EXPECT_EQ(frames[1].type, FrameType::Poll);

    PayloadReader r(frames[1].payload);
    std::uint64_t id = 0;
    EXPECT_TRUE(r.u64(id));
    EXPECT_EQ(id, 42u);
    EXPECT_TRUE(r.done());
}

TEST(Wire, EmptyPayloadFrame)
{
    std::string out;
    appendFrame(out, FrameType::TraceDone, "");
    const Frame frame = parseOne(out);
    EXPECT_EQ(frame.type, FrameType::TraceDone);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, TraceChunkRoundTrip)
{
    std::vector<MemRef> refs;
    refs.push_back({0x1000, RefType::Ifetch, 4});
    refs.push_back({0xdeadbeefcafe, RefType::Store, 8});
    refs.push_back({0x2000, RefType::Load, 2});
    const std::string payload =
        encodeTraceChunk(7, refs.data(), refs.size());
    ASSERT_EQ(payload.size(), 8 + refs.size() * kWireRefBytes);

    std::uint64_t session = 0;
    std::vector<MemRef> decoded;
    ASSERT_TRUE(decodeTraceChunk(payload, session, decoded));
    EXPECT_EQ(session, 7u);
    ASSERT_EQ(decoded.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
        EXPECT_EQ(decoded[i].vaddr, refs[i].vaddr);
        EXPECT_EQ(decoded[i].type, refs[i].type);
        EXPECT_EQ(decoded[i].size, refs[i].size);
    }
}

TEST(Wire, TraceChunkRejectsBadShape)
{
    std::vector<MemRef> refs(1);
    std::string payload = encodeTraceChunk(1, refs.data(), 1);

    std::uint64_t session = 0;
    std::vector<MemRef> decoded;
    // Truncated: length no longer a multiple of the ref record.
    std::string truncated = payload.substr(0, payload.size() - 1);
    EXPECT_FALSE(decodeTraceChunk(truncated, session, decoded));
    // Out-of-range RefType byte.
    payload[8 + 8] = 17;
    EXPECT_FALSE(decodeTraceChunk(payload, session, decoded));
    // Shorter than the session id alone.
    EXPECT_FALSE(decodeTraceChunk("abc", session, decoded));
}

TEST(Wire, UnknownTypeIsMalformedAndSticky)
{
    std::string out;
    appendFrame(out, FrameType::Hello, encodeVersion(kWireVersion));
    out[4] = static_cast<char>(0x7f); // clobber the type byte

    FrameParser parser;
    parser.feed(out.data(), out.size());
    Frame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Malformed);

    // Sticky: even a well-formed follow-up frame must not parse.
    std::string good;
    appendFrame(good, FrameType::Poll, encodeSessionId(1));
    parser.feed(good.data(), good.size());
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Malformed);
}

TEST(Wire, OversizedLengthIsMalformed)
{
    std::string out;
    putU32(out, kMaxFramePayload + 1);
    out.push_back(static_cast<char>(FrameType::Hello));

    FrameParser parser;
    parser.feed(out.data(), out.size());
    Frame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Malformed);
}

TEST(Wire, NeedMoreUntilComplete)
{
    std::string out;
    appendFrame(out, FrameType::Submit, "abcdef");

    FrameParser parser;
    Frame frame;
    parser.feed(out.data(), kFrameHeader + 3);
    EXPECT_EQ(parser.next(frame), FrameParser::Result::NeedMore);
    parser.feed(out.data() + kFrameHeader + 3, out.size() -
                                                  (kFrameHeader + 3));
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Ready);
    EXPECT_EQ(frame.payload, "abcdef");
    EXPECT_EQ(parser.next(frame), FrameParser::Result::NeedMore);
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Wire, PayloadReaderBounds)
{
    std::string payload;
    putU32(payload, 5);
    PayloadReader r(payload);
    std::uint64_t wide = 0;
    EXPECT_FALSE(r.u64(wide)); // only 4 bytes buffered
    std::uint32_t narrow = 0;
    EXPECT_TRUE(r.u32(narrow));
    EXPECT_EQ(narrow, 5u);
    EXPECT_TRUE(r.done());
    std::uint8_t byte = 0;
    EXPECT_FALSE(r.u8(byte));
}

} // namespace
