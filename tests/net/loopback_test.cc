/**
 * @file
 * End-to-end loopback: an in-process tpsd Server on an ephemeral port
 * driven by real Clients over TCP.  Covers the happy path (registry
 * and streamed sessions, byte-identity vs the in-process harness),
 * admission control (deterministic rejection + retry-after, zero lost
 * sessions under a concurrent soak), cancellation, idle eviction, and
 * the protocol edges (version mismatch, malformed framing, bad spec).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "net/client.h"
#include "net/server.h"
#include "net/spec.h"
#include "net/wire.h"
#include "trace/vector_trace.h"
#include "workloads/registry.h"

namespace
{

using namespace tps;
using namespace tps::net;

/** Server on an ephemeral loopback port with run() on its own
 *  thread; stop() + join on destruction. */
class LoopbackServer
{
  public:
    explicit LoopbackServer(ServerConfig config)
        : server_(std::move(config))
    {
        std::string error;
        if (!server_.start(error))
            ADD_FAILURE() << "server start failed: " << error;
        thread_ = std::thread([this] { server_.run(); });
    }

    ~LoopbackServer()
    {
        server_.stop();
        thread_.join();
    }

    Server &server() { return server_; }
    std::uint16_t port() const { return server_.port(); }

  private:
    Server server_;
    std::thread thread_;
};

ServerConfig
baseConfig()
{
    ServerConfig config;
    config.workers = 2;
    config.quantumChunks = 4;
    config.heartbeatIntervalMs = 60'000; // quiet during tests
    return config;
}

SessionSpec
smallSpec(const std::string &workload)
{
    SessionSpec spec;
    spec.workload = workload;
    spec.maxRefs = 12'000;
    spec.warmupRefs = 2'000;
    spec.chunkRefs = 512;
    spec.tsIntervalRefs = 2'500;
    spec.policy.kind = core::PolicySpec::Kind::TwoSize;
    spec.policy.twoSize.window = 4'000;
    return spec;
}

std::vector<MemRef>
materialize(const std::string &workload, std::uint64_t refs)
{
    auto trace = workloads::findWorkload(workload).instantiate();
    std::vector<MemRef> out;
    out.reserve(refs);
    MemRef ref;
    while (out.size() < refs && trace->next(ref))
        out.push_back(ref);
    return out;
}

std::string
localStats(const SessionSpec &spec)
{
    if (spec.streamTrace) {
        VectorTrace trace(materialize(spec.workload, spec.maxRefs),
                          "stream");
        return sessionStatsJson(runExperiment(
            trace, spec.policy, spec.tlb, spec.runOptions()));
    }
    auto trace = workloads::findWorkload(spec.workload).instantiate();
    return sessionStatsJson(runExperiment(
        *trace, spec.policy, spec.tlb, spec.runOptions()));
}

/** Submit (with a retry loop honoring retry_after_ms), stream if
 *  needed, poll to terminal state; returns the final stats. */
bool
runSession(std::uint16_t port, const SessionSpec &spec,
           std::string &stats_out, int &rejections,
           std::string &error)
{
    for (int attempt = 0; attempt < 400; ++attempt) {
        Client client;
        if (!client.connect("127.0.0.1", port, error))
            return false;
        Client::SubmitReply reply;
        if (!client.submit(spec, reply, error))
            return false;
        if (!reply.accepted) {
            ++rejections;
            EXPECT_FALSE(reply.reason.empty());
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<std::uint64_t>(reply.retryAfterMs, 1)));
            continue;
        }
        if (spec.streamTrace &&
            !client.sendTrace(reply.sessionId,
                              materialize(spec.workload, spec.maxRefs),
                              error))
            return false;
        for (;;) {
            Client::PollReply status;
            if (!client.poll(reply.sessionId, status, error))
                return false;
            if (status.state == "done") {
                stats_out = status.resultStats;
                return !stats_out.empty();
            }
            if (status.state == "failed" ||
                status.state == "cancelled" ||
                status.state == "evicted") {
                error = "session " + status.state + ": " +
                        status.sessionError;
                return false;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    error = "gave up after repeated rejections";
    return false;
}

TEST(Loopback, RegistrySessionMatchesLocal)
{
    LoopbackServer daemon(baseConfig());
    const SessionSpec spec = smallSpec("li");

    std::string stats, error;
    int rejections = 0;
    ASSERT_TRUE(runSession(daemon.port(), spec, stats, rejections,
                           error))
        << error;
    EXPECT_EQ(rejections, 0);
    EXPECT_EQ(stats, localStats(spec));
}

TEST(Loopback, StreamedSessionMatchesLocal)
{
    LoopbackServer daemon(baseConfig());
    SessionSpec spec = smallSpec("espresso");
    spec.streamTrace = true;

    std::string stats, error;
    int rejections = 0;
    ASSERT_TRUE(runSession(daemon.port(), spec, stats, rejections,
                           error))
        << error;
    EXPECT_EQ(stats, localStats(spec));
}

TEST(Loopback, TinyStreamedTraceDoesNotHangTheClient)
{
    // Regression: a streamed run this small finishes on the worker
    // before the loop composes the TraceDone reply, so that reply's
    // Status sees a terminal session.  has_result must still say
    // false there — only Poll replies carry a Result frame — or the
    // client blocks forever waiting for one.
    LoopbackServer daemon(baseConfig());
    SessionSpec spec = smallSpec("li");
    spec.streamTrace = true;
    spec.maxRefs = 2'000;
    spec.warmupRefs = 0;
    spec.chunkRefs = 4'096; // one chunk: the fastest possible run

    std::string stats, error;
    int rejections = 0;
    ASSERT_TRUE(runSession(daemon.port(), spec, stats, rejections,
                           error))
        << error;
    EXPECT_EQ(stats, localStats(spec));
}

TEST(Loopback, AdmissionRejectsDeterministically)
{
    ServerConfig config = baseConfig();
    config.maxSessions = 1;
    LoopbackServer daemon(config);

    // Occupy the single slot with a session that sits in Receiving
    // until we feed it.
    Client holder;
    std::string error;
    ASSERT_TRUE(holder.connect("127.0.0.1", daemon.port(), error))
        << error;
    SessionSpec stream_spec = smallSpec("li");
    stream_spec.streamTrace = true;
    Client::SubmitReply held;
    ASSERT_TRUE(holder.submit(stream_spec, held, error)) << error;
    ASSERT_TRUE(held.accepted);

    // The second submit must bounce with the configured hint.
    Client rejected;
    ASSERT_TRUE(rejected.connect("127.0.0.1", daemon.port(), error))
        << error;
    Client::SubmitReply reply;
    ASSERT_TRUE(rejected.submit(smallSpec("li"), reply, error))
        << error;
    EXPECT_FALSE(reply.accepted);
    EXPECT_NE(reply.reason.find("session limit"), std::string::npos)
        << reply.reason;
    EXPECT_EQ(reply.retryAfterMs, config.retryAfterMs);

    // Cancel the holder; the slot frees and the next submit lands.
    Client::PollReply cancelled;
    ASSERT_TRUE(holder.cancel(held.sessionId, cancelled, error))
        << error;
    std::string stats;
    int rejections = 0;
    EXPECT_TRUE(runSession(daemon.port(), smallSpec("li"), stats,
                           rejections, error))
        << error;
}

TEST(Loopback, ConcurrentSoakLosesNoSession)
{
    // More clients than admission slots: rejections are expected (and
    // counted), lost or corrupted sessions are not.  Every client must
    // land its stats, and every stats blob must equal the --local
    // bytes for its spec.
    ServerConfig config = baseConfig();
    config.maxSessions = 2;
    config.retryAfterMs = 20;
    LoopbackServer daemon(config);

    const std::vector<std::string> names = {"li", "espresso", "eqntott",
                                            "worm", "li", "espresso"};
    std::vector<SessionSpec> specs;
    for (std::size_t i = 0; i < names.size(); ++i) {
        SessionSpec spec = smallSpec(names[i]);
        spec.maxRefs = 6'000;
        spec.warmupRefs = 1'000;
        spec.streamTrace = (i % 3 == 2);
        specs.push_back(spec);
    }

    std::vector<std::string> stats(specs.size());
    std::vector<std::string> errors(specs.size());
    std::vector<int> rejections(specs.size(), 0);
    std::vector<bool> ok(specs.size(), false);
    std::vector<std::thread> clients;
    clients.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        clients.emplace_back([&, i] {
            ok[i] = runSession(daemon.port(), specs[i], stats[i],
                               rejections[i], errors[i]);
        });
    }
    for (std::thread &t : clients)
        t.join();

    int total_rejections = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(ok[i]) << names[i] << ": " << errors[i];
        total_rejections += rejections[i];
        if (ok[i]) {
            EXPECT_EQ(stats[i], localStats(specs[i])) << names[i];
        }
    }
    // 6 clients through 2 slots: the throttle must have pushed back
    // at least once, or the cap was not enforced.
    EXPECT_GT(total_rejections, 0);

    // All admitted sessions reached Done; none leaked another way.
    // The loop thread reaps the counter slightly after clients see
    // the terminal state, so give it a moment.
    std::uint64_t done = 0;
    for (int i = 0; i < 400; ++i) {
        obs::StatRegistry registry;
        daemon.server().exportStats(registry);
        done = registry.counter("net.sessions_done");
        if (done == specs.size())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(done, specs.size());
    obs::StatRegistry registry;
    daemon.server().exportStats(registry);
    EXPECT_GE(registry.counter("net.sessions_rejected"),
              static_cast<std::uint64_t>(total_rejections));
}

TEST(Loopback, CancelMidRunReturnsPartial)
{
    ServerConfig config = baseConfig();
    config.quantumChunks = 1; // keep the run slow enough to catch
    LoopbackServer daemon(config);

    SessionSpec spec = smallSpec("li");
    spec.maxRefs = 400'000;
    spec.warmupRefs = 0;
    spec.chunkRefs = 256;

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon.port(), error))
        << error;
    Client::SubmitReply reply;
    ASSERT_TRUE(client.submit(spec, reply, error)) << error;
    ASSERT_TRUE(reply.accepted);

    Client::PollReply status;
    ASSERT_TRUE(client.cancel(reply.sessionId, status, error)) << error;
    // The worker notices cancelRequested at the next chunk boundary.
    for (int i = 0; i < 400 && status.state != "cancelled"; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_TRUE(client.poll(reply.sessionId, status, error))
            << error;
    }
    EXPECT_EQ(status.state, "cancelled");
    EXPECT_LT(status.replayedRefs, spec.maxRefs);
    // Partial results are still published.
    EXPECT_FALSE(status.resultStats.empty());
}

TEST(Loopback, IdleSessionIsEvicted)
{
    ServerConfig config = baseConfig();
    config.idleTimeoutMs = 100;
    LoopbackServer daemon(config);

    // A Receiving session we never feed: the timewheel must reap it.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon.port(), error))
        << error;
    SessionSpec spec = smallSpec("li");
    spec.streamTrace = true;
    Client::SubmitReply reply;
    ASSERT_TRUE(client.submit(spec, reply, error)) << error;
    ASSERT_TRUE(reply.accepted);

    // Don't poll while waiting — every client frame re-arms the idle
    // timer.  Go quiet for several timeouts, then look once.
    bool gone = false;
    for (int i = 0; i < 40 && !gone; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        Client::PollReply status;
        Client probe;
        ASSERT_TRUE(probe.connect("127.0.0.1", daemon.port(), error))
            << error;
        if (!probe.poll(reply.sessionId, status, error)) {
            gone = true; // erased: unknown session -> Error frame
        } else if (status.state == "evicted") {
            gone = true;
        }
    }
    EXPECT_TRUE(gone);

    obs::StatRegistry registry;
    daemon.server().exportStats(registry);
    EXPECT_GE(registry.counter("net.sessions_evicted"), 1u);
}

TEST(Loopback, TelemetryFlowsBeforeCompletion)
{
    LoopbackServer daemon(baseConfig());
    SessionSpec spec = smallSpec("li");
    spec.maxRefs = 60'000;
    spec.tsIntervalRefs = 2'000;

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon.port(), error))
        << error;
    Client::SubmitReply reply;
    ASSERT_TRUE(client.submit(spec, reply, error)) << error;
    ASSERT_TRUE(reply.accepted);

    std::size_t telemetry_frames = 0;
    for (int i = 0; i < 2'000; ++i) {
        Client::PollReply status;
        ASSERT_TRUE(client.poll(reply.sessionId, status, error))
            << error;
        telemetry_frames += status.telemetry.size();
        if (status.state == "done")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(telemetry_frames, 0u);
}

TEST(Loopback, RejectsBadSpecAndUnknownSession)
{
    LoopbackServer daemon(baseConfig());
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon.port(), error))
        << error;

    // Unknown workload: an Error frame, not an accepted session.
    SessionSpec bad = smallSpec("no-such-workload");
    Client::SubmitReply reply;
    EXPECT_FALSE(client.submit(bad, reply, error));
    EXPECT_FALSE(error.empty());

    // Poll for a session that never existed (fresh connection; the
    // previous Error closed the old one).
    Client fresh;
    ASSERT_TRUE(fresh.connect("127.0.0.1", daemon.port(), error))
        << error;
    Client::PollReply status;
    EXPECT_FALSE(fresh.poll(999'999, status, error));
}

// ---- raw-socket protocol edges -------------------------------------

int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/** Read frames until EOF; returns the types seen. */
std::vector<FrameType>
drainFrames(int fd)
{
    FrameParser parser;
    std::vector<FrameType> types;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n <= 0)
            break;
        parser.feed(buffer, static_cast<std::size_t>(n));
        Frame frame;
        while (parser.next(frame) == FrameParser::Result::Ready)
            types.push_back(frame.type);
    }
    return types;
}

TEST(Loopback, HelloVersionMismatchGetsErrorAndClose)
{
    LoopbackServer daemon(baseConfig());
    const int fd = rawConnect(daemon.port());

    std::string out;
    appendFrame(out, FrameType::Hello, encodeVersion(kWireVersion + 7));
    ASSERT_EQ(::write(fd, out.data(), out.size()),
              static_cast<ssize_t>(out.size()));

    const std::vector<FrameType> types = drainFrames(fd);
    ASSERT_EQ(types.size(), 1u); // then EOF: the server closed
    EXPECT_EQ(types[0], FrameType::Error);
    ::close(fd);
}

TEST(Loopback, MalformedFrameGetsErrorAndClose)
{
    LoopbackServer daemon(baseConfig());
    const int fd = rawConnect(daemon.port());

    std::string out;
    appendFrame(out, FrameType::Hello, encodeVersion(kWireVersion));
    out.push_back('\x01');
    out.push_back('\x00');
    out.push_back('\x00');
    out.push_back('\x00');
    out.push_back('\x7f'); // unknown frame type byte
    out.push_back('x');
    ASSERT_EQ(::write(fd, out.data(), out.size()),
              static_cast<ssize_t>(out.size()));

    const std::vector<FrameType> types = drainFrames(fd);
    ASSERT_GE(types.size(), 1u);
    EXPECT_EQ(types.front(), FrameType::HelloOk);
    EXPECT_EQ(types.back(), FrameType::Error);
    ::close(fd);
}

TEST(Loopback, FrameBeforeHelloIsRejected)
{
    LoopbackServer daemon(baseConfig());
    const int fd = rawConnect(daemon.port());

    std::string out;
    appendFrame(out, FrameType::Poll, encodeSessionId(1));
    ASSERT_EQ(::write(fd, out.data(), out.size()),
              static_cast<ssize_t>(out.size()));

    const std::vector<FrameType> types = drainFrames(fd);
    ASSERT_EQ(types.size(), 1u);
    EXPECT_EQ(types[0], FrameType::Error);
    ::close(fd);
}

} // namespace
