/**
 * @file
 * Byte-identity gates for the tps-events-v1 stream: the batched
 * engine must produce EXACTLY the per-ref oracle's event log — same
 * streams, same timestamps, same order — at any chunk size, for every
 * TLB organization (composites register one eviction stream per sub),
 * with the physical model's reservation-break stream attached, under
 * sampling, and across the cells of a shared pass.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/json.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

std::string
serialize(const obs::EventLog &log)
{
    std::ostringstream out;
    obs::JsonWriter writer(out, /*pretty=*/false);
    log.writeJson(writer);
    writer.finish();
    return out.str();
}

PolicySpec
churnyPolicy()
{
    TwoSizeConfig config;
    config.window = 5'000;
    config.promoteThreshold = 2; // promote eagerly at this scale
    config.demoteThreshold = 2;  // and exercise demotion churn
    return PolicySpec::twoSizes(config);
}

RunOptions
eventOptions()
{
    RunOptions options;
    options.maxRefs = 60'000;
    options.warmupRefs = 15'000;
    options.events.sampleEvery = 1;
    return options;
}

std::uint64_t
streamSeen(const obs::EventLog &log, const std::string &name)
{
    const auto it = log.streams.find(name);
    return it == log.streams.end() ? 0 : it->second.seen;
}

TEST(EventDeterminism, BatchedMatchesPerRefByteForByte)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig tlb;
    tlb.entries = 32;

    // verilog churns under the eager window (espresso never demotes
    // at this scale), so every stream the gate asserts on is hot.
    auto workload = workloads::findWorkload("verilog").instantiate();
    RunOptions oracle_options = eventOptions();
    oracle_options.exec = ExecMode::PerRef;
    const ExperimentResult oracle =
        runExperiment(*workload, policy, tlb, oracle_options);
    ASSERT_NE(oracle.events, nullptr);
    ASSERT_GT(streamSeen(*oracle.events, "promote"), 0u);
    ASSERT_GT(streamSeen(*oracle.events, "demote"), 0u);
    ASSERT_GT(streamSeen(*oracle.events, "tlb_evict"), 0u);
    ASSERT_GT(streamSeen(*oracle.events, "shootdown"), 0u);
    const std::string golden = serialize(*oracle.events);

    for (std::uint64_t chunk : {std::uint64_t{1}, std::uint64_t{257},
                                std::uint64_t{4'096},
                                std::uint64_t{100'000}}) {
        RunOptions options = eventOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = chunk;
        workload->reset();
        const ExperimentResult batched =
            runExperiment(*workload, policy, tlb, options);
        ASSERT_NE(batched.events, nullptr);
        EXPECT_EQ(serialize(*batched.events), golden)
            << "chunkRefs=" << chunk;
    }
}

TEST(EventDeterminism, CompositeTlbsKeepPerSubStreams)
{
    const PolicySpec policy = churnyPolicy();

    TlbConfig split;
    split.organization = TlbOrganization::Split;
    split.entries = 16;
    split.splitLargeEntries = 8;

    TlbConfig two_level;
    two_level.organization = TlbOrganization::TwoLevel;
    two_level.entries = 32;
    two_level.l1Entries = 4;

    for (const TlbConfig &tlb : {split, two_level}) {
        auto workload =
            workloads::findWorkload("espresso").instantiate();
        RunOptions oracle_options = eventOptions();
        oracle_options.exec = ExecMode::PerRef;
        const ExperimentResult oracle =
            runExperiment(*workload, policy, tlb, oracle_options);
        ASSERT_NE(oracle.events, nullptr);

        RunOptions options = eventOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = 257;
        workload->reset();
        const ExperimentResult batched =
            runExperiment(*workload, policy, tlb, options);
        ASSERT_NE(batched.events, nullptr);
        EXPECT_EQ(serialize(*batched.events),
                  serialize(*oracle.events));

        if (tlb.organization == TlbOrganization::Split) {
            // One eviction stream per sub-TLB: batching partitions
            // refs across subs but never reorders within one, which
            // is exactly why the streams must be split.
            EXPECT_NE(oracle.events->streams.find("tlb_evict.small"),
                      oracle.events->streams.end());
            EXPECT_NE(oracle.events->streams.find("tlb_evict.large"),
                      oracle.events->streams.end());
        } else {
            EXPECT_NE(oracle.events->streams.find("tlb_evict.l1"),
                      oracle.events->streams.end());
            EXPECT_NE(oracle.events->streams.find("tlb_evict.l2"),
                      oracle.events->streams.end());
        }
    }
}

TEST(EventDeterminism, ReservationBreaksMatchUnderPressure)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig tlb;
    tlb.entries = 32;

    for (const bool reservation : {true, false}) {
        RunOptions oracle_options = eventOptions();
        oracle_options.exec = ExecMode::PerRef;
        oracle_options.phys.memBytes = 4ull << 20;
        oracle_options.phys.fragPressure = 0.5;
        oracle_options.phys.reservation = reservation;

        auto workload =
            workloads::findWorkload("espresso").instantiate();
        const ExperimentResult oracle =
            runExperiment(*workload, policy, tlb, oracle_options);
        ASSERT_NE(oracle.events, nullptr);
        ASSERT_GT(streamSeen(*oracle.events, "resv_break"), 0u)
            << "reservation=" << reservation;

        RunOptions options = oracle_options;
        options.exec = ExecMode::Batched;
        options.chunkRefs = 257;
        workload->reset();
        const ExperimentResult batched =
            runExperiment(*workload, policy, tlb, options);
        ASSERT_NE(batched.events, nullptr);
        EXPECT_EQ(serialize(*batched.events),
                  serialize(*oracle.events))
            << "reservation=" << reservation;
    }
}

TEST(EventDeterminism, SampledLogIsDeterministicSubsequence)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig tlb;
    tlb.entries = 32;

    auto workload = workloads::findWorkload("espresso").instantiate();
    RunOptions oracle_options = eventOptions();
    oracle_options.exec = ExecMode::PerRef;
    oracle_options.events.sampleEvery = 7;
    const ExperimentResult oracle =
        runExperiment(*workload, policy, tlb, oracle_options);
    ASSERT_NE(oracle.events, nullptr);

    RunOptions options = eventOptions();
    options.exec = ExecMode::Batched;
    options.events.sampleEvery = 7;
    options.chunkRefs = 4'096;
    workload->reset();
    const ExperimentResult batched =
        runExperiment(*workload, policy, tlb, options);
    ASSERT_NE(batched.events, nullptr);
    EXPECT_EQ(serialize(*batched.events), serialize(*oracle.events));

    // Sampling kept every 7th offer: kept == ceil(seen / 7), within
    // the capacity cap.
    for (const auto &[name, stream] : oracle.events->streams) {
        SCOPED_TRACE(name);
        const std::uint64_t expected = (stream.seen + 6) / 7;
        EXPECT_EQ(stream.events.size(),
                  std::min<std::uint64_t>(
                      expected, oracle_options.events.capacity));
    }
}

TEST(EventDeterminism, SharedPassMatchesIndependentRuns)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig small;
    small.entries = 16;
    TlbConfig large;
    large.entries = 64;
    const RunOptions options = eventOptions();

    auto workload = workloads::findWorkload("espresso").instantiate();
    const std::vector<ExperimentResult> shared =
        runSharedPass(*workload, policy, {small, large}, options);
    ASSERT_EQ(shared.size(), 2u);
    ASSERT_NE(shared[0].events, nullptr);
    ASSERT_NE(shared[1].events, nullptr);

    for (std::size_t i = 0; i < shared.size(); ++i) {
        workload->reset();
        const ExperimentResult alone = runExperiment(
            *workload, policy, i == 0 ? small : large, options);
        ASSERT_NE(alone.events, nullptr);
        EXPECT_EQ(serialize(*shared[i].events),
                  serialize(*alone.events))
            << "cell " << i;
    }
}

} // namespace
} // namespace tps::core
