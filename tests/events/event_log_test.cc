/**
 * @file
 * Unit tests for the tps-events-v1 building blocks: deterministic
 * keep-every-Nth sampling, the per-stream capacity cap, JSON shape,
 * and the sink's content-ordered duplicate handling (the property the
 * serial-vs-parallel byte-identity gate rests on).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/event_log.h"
#include "obs/json.h"

namespace tps::obs
{
namespace
{

std::string
serialize(const EventLog &log)
{
    std::ostringstream out;
    JsonWriter writer(out, /*pretty=*/false);
    log.writeJson(writer);
    writer.finish();
    return out.str();
}

TEST(EventLogRecorder, KeepsEveryNthEvent)
{
    EventLogConfig config;
    config.sampleEvery = 3;
    EventLogRecorder recorder(config);
    const std::size_t s = recorder.stream("s", {"a"});
    for (std::uint64_t i = 0; i < 10; ++i)
        recorder.emit(s, i, i * 100);

    const EventLog log = recorder.finish("w", "t", "p");
    const EventStream &stream = log.streams.at("s");
    EXPECT_EQ(stream.seen, 10u);
    ASSERT_EQ(stream.events.size(), 4u); // offers 1,4,7,10 kept
    EXPECT_EQ(stream.events[0].t, 0u);
    EXPECT_EQ(stream.events[1].t, 3u);
    EXPECT_EQ(stream.events[2].t, 6u);
    EXPECT_EQ(stream.events[3].t, 9u);
    EXPECT_EQ(stream.events[3].a, 900u);
}

TEST(EventLogRecorder, CapacityCapsKeptButNotSeen)
{
    EventLogConfig config;
    config.sampleEvery = 1;
    config.capacity = 4;
    EventLogRecorder recorder(config);
    const std::size_t s = recorder.stream("s", {"a"});
    for (std::uint64_t i = 0; i < 10; ++i)
        recorder.emit(s, i, i);

    const EventLog log = recorder.finish("w", "t", "p");
    const EventStream &stream = log.streams.at("s");
    EXPECT_EQ(stream.seen, 10u);       // true total survives the cap
    ASSERT_EQ(stream.events.size(), 4u);
    EXPECT_EQ(stream.events.back().t, 3u); // first 4, not last 4
}

TEST(EventLogRecorder, StreamRegistrationIsIdempotent)
{
    EventLogConfig config;
    config.sampleEvery = 1;
    EventLogRecorder recorder(config);
    const std::size_t a = recorder.stream("tlb_evict", {"vpn"});
    const std::size_t b = recorder.stream("tlb_evict", {"vpn"});
    EXPECT_EQ(a, b);
    EXPECT_NE(recorder.stream("promote", {"chunk"}), a);
}

TEST(EventLogRecorder, RejectsDisabledConfig)
{
    EXPECT_THROW(EventLogRecorder(EventLogConfig{}),
                 std::invalid_argument);
}

TEST(EventLog, JsonShapeRoundTrips)
{
    EventLogConfig config;
    config.sampleEvery = 1;
    EventLogRecorder recorder(config);
    const std::size_t promote =
        recorder.stream("promote", {"chunk", "from_log2", "to_log2"});
    const std::size_t evict = recorder.stream("tlb_evict", {"vpn"});
    recorder.emit(promote, 5, 0x42, 12, 15);
    recorder.emit(evict, 9, 0x17);

    const EventLog log = recorder.finish("w", "t", "p");
    const JsonValue doc = parseJson(serialize(log));
    EXPECT_EQ(doc.find("workload")->text, "w");

    const JsonValue *streams = doc.find("streams");
    ASSERT_NE(streams, nullptr);
    ASSERT_EQ(streams->object.size(), 2u);

    const JsonValue &p = streams->object.at("promote");
    const JsonValue *fields = p.find("fields");
    ASSERT_NE(fields, nullptr);
    ASSERT_EQ(fields->array.size(), 4u); // implicit t + 3 operands
    EXPECT_EQ(fields->array[0].text, "t");
    EXPECT_EQ(fields->array[3].text, "to_log2");
    const JsonValue *rows = p.find("events");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->array.size(), 1u);
    ASSERT_EQ(rows->array[0].array.size(), 4u); // row width = fields
    EXPECT_EQ(rows->array[0].array[1].integer, 0x42);

    // A one-operand stream writes one-operand rows.
    const JsonValue &e = streams->object.at("tlb_evict");
    ASSERT_EQ(e.find("events")->array[0].array.size(), 2u);
}

EventLog
makeLog(std::uint64_t payload)
{
    EventLogConfig config;
    config.sampleEvery = 1;
    EventLogRecorder recorder(config);
    recorder.emit(recorder.stream("s", {"a"}), 1, payload);
    return recorder.finish("w", "t", "p");
}

TEST(EventLogSink, DuplicateCellsOrderedByContentNotArrival)
{
    EventLogConfig config;
    config.sampleEvery = 1;

    EventLogSink first(config);
    first.add(makeLog(7));
    first.add(makeLog(3));

    EventLogSink second(config);
    second.add(makeLog(3));
    second.add(makeLog(7));

    std::ostringstream a, b;
    first.writeJson(a);
    second.writeJson(b);
    EXPECT_EQ(a.str(), b.str()); // arrival order must not show

    const JsonValue doc = parseJson(a.str());
    EXPECT_EQ(doc.find("schema")->text, "tps-events-v1");
    const JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->object.size(), 2u);
    EXPECT_NE(cells->object.find("w.t.p"), cells->object.end());
    EXPECT_NE(cells->object.find("w.t.p_2"), cells->object.end());
}

TEST(EventLogSink, GlobalFirstConfigWins)
{
    EventLogSink::disableGlobal();
    EventLogConfig first;
    first.sampleEvery = 2;
    EventLogSink *sink = EventLogSink::enableGlobal(first);
    ASSERT_NE(sink, nullptr);

    EventLogConfig second;
    second.sampleEvery = 5;
    EXPECT_EQ(EventLogSink::enableGlobal(second), sink);
    EXPECT_EQ(EventLogSink::global()->config().sampleEvery, 2u);

    EventLogSink::disableGlobal();
    EXPECT_EQ(EventLogSink::global(), nullptr);
}

} // namespace
} // namespace tps::obs
