/**
 * @file
 * Ledger-reconciliation gates: the LifecycleLedger is fed by the
 * experiment driver alongside the policy, so its promote/demote
 * totals must equal PolicyStats::promotions/demotions EXACTLY — over
 * the measured region, at any chunk size, under either engine, for
 * the two-size and the multi-size policy, and across the cells of a
 * shared pass (which share one ledger).  Beyond the totals, the whole
 * summary (dwell histogram, churn, touched subpages) must be
 * bit-identical between engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "tlb/factory.h"
#include "vm/multi_size_policy.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

void
expectReconciled(const ExperimentResult &result, const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_TRUE(result.lifecycleTracked);
    EXPECT_EQ(result.lifecycle.promotions, result.policy.promotions);
    EXPECT_EQ(result.lifecycle.demotions, result.policy.demotions);
    // Episode accounting is internally consistent: every closed
    // episode was closed by exactly one measured demotion.
    EXPECT_LE(result.lifecycle.episodesClosed,
              result.lifecycle.demotions);
}

void
expectSameSummary(const LifecycleSummary &a, const LifecycleSummary &b,
                  const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.chunksPromoted, b.chunksPromoted);
    EXPECT_EQ(a.repromotions, b.repromotions);
    EXPECT_EQ(a.episodesClosed, b.episodesClosed);
    EXPECT_EQ(a.episodesOpen, b.episodesOpen);
    EXPECT_EQ(a.wastedPromotions, b.wastedPromotions);
    EXPECT_EQ(a.touchedSubpages, b.touchedSubpages);
    EXPECT_EQ(a.coveredSubpages, b.coveredSubpages);
    EXPECT_EQ(a.dwellLog2, b.dwellLog2);
}

PolicySpec
churnyPolicy()
{
    TwoSizeConfig config;
    config.window = 5'000;
    config.promoteThreshold = 2; // promote eagerly at this scale
    config.demoteThreshold = 2;  // and exercise demotion churn
    return PolicySpec::twoSizes(config);
}

RunOptions
ledgerOptions()
{
    RunOptions options;
    options.maxRefs = 60'000;
    options.warmupRefs = 15'000;
    options.lifecycle = true; // ledger without the event log
    return options;
}

TEST(LedgerReconcile, TotalsMatchPolicyAtEveryChunkSize)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig tlb;
    tlb.entries = 32;

    // verilog under the eager window actually churns (hundreds of
    // promotions AND demotions in 60k refs); espresso promotes but
    // never lets a chunk go idle long enough to demote.
    auto workload = workloads::findWorkload("verilog").instantiate();

    RunOptions oracle_options = ledgerOptions();
    oracle_options.exec = ExecMode::PerRef;
    const ExperimentResult oracle =
        runExperiment(*workload, policy, tlb, oracle_options);
    ASSERT_GT(oracle.policy.promotions, 0u);
    ASSERT_GT(oracle.policy.demotions, 0u);
    expectReconciled(oracle, "per-ref oracle");
    EXPECT_GT(oracle.lifecycle.touchedSubpages, 0u);

    for (std::uint64_t chunk : {std::uint64_t{1}, std::uint64_t{257},
                                std::uint64_t{4'096}}) {
        RunOptions options = ledgerOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = chunk;
        workload->reset();
        const ExperimentResult batched =
            runExperiment(*workload, policy, tlb, options);
        expectReconciled(batched,
                         "chunkRefs=" + std::to_string(chunk));
        expectSameSummary(batched.lifecycle, oracle.lifecycle,
                          "chunkRefs=" + std::to_string(chunk));
        EXPECT_EQ(batched.reachOpenBytes, oracle.reachOpenBytes);
        EXPECT_EQ(batched.reachUtilization, oracle.reachUtilization);
    }
}

TEST(LedgerReconcile, MultiSizePolicyCountsEveryTransition)
{
    MultiSizeConfig config;
    config.sizeLog2s = {12, 15, 18};
    config.window = 20'000;

    TlbConfig tlb;
    tlb.entries = 16;

    RunOptions options = ledgerOptions();
    options.maxRefs = 300'000;
    options.warmupRefs = 50'000;

    auto workload = workloads::findWorkload("verilog").instantiate();
    MultiSizePolicy per_ref_policy(config);
    auto per_ref_tlb = makeTlb(tlb);
    RunOptions per_ref_options = options;
    per_ref_options.exec = ExecMode::PerRef;
    const ExperimentResult oracle = runExperiment(
        *workload, per_ref_policy, *per_ref_tlb, per_ref_options);
    ASSERT_GT(per_ref_policy.refsPerLevel()[2], 0u); // 256KB used
    expectReconciled(oracle, "multi-size per-ref");

    workload->reset();
    MultiSizePolicy batched_policy(config);
    auto batched_tlb = makeTlb(tlb);
    const ExperimentResult batched = runExperiment(
        *workload, batched_policy, *batched_tlb, options);
    expectReconciled(batched, "multi-size batched");
    expectSameSummary(batched.lifecycle, oracle.lifecycle,
                      "multi-size engines");
}

TEST(LedgerReconcile, SharedPassCellsShareOneLedger)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig small;
    small.entries = 16;
    TlbConfig large;
    large.entries = 64;

    RunOptions options = ledgerOptions();
    auto workload = workloads::findWorkload("espresso").instantiate();
    const std::vector<ExperimentResult> results =
        runSharedPass(*workload, policy, {small, large}, options);
    ASSERT_EQ(results.size(), 2u);

    // The promote/demote stream is policy state: both cells see the
    // identical ledger summary, and both reconcile with the (shared)
    // policy counters.
    expectReconciled(results[0], "shared cell 0");
    expectReconciled(results[1], "shared cell 1");
    expectSameSummary(results[0].lifecycle, results[1].lifecycle,
                      "shared cells");

    // And the shared-pass summary equals an independent run's.
    workload->reset();
    const ExperimentResult alone =
        runExperiment(*workload, policy, small, options);
    expectSameSummary(results[0].lifecycle, alone.lifecycle,
                      "shared vs independent");

    // Reach telemetry: ledger-side numbers are pass-shared, the TLB
    // occupancy side is per cell (64 entries reach at least as far as
    // 16 at end of run is not guaranteed, but both snapshots exist).
    EXPECT_EQ(results[0].reachOpenBytes, results[1].reachOpenBytes);
    EXPECT_GT(results[1].reach.sets, 0u);
}

TEST(LedgerReconcile, ExportsFeatureGatedKeys)
{
    const PolicySpec policy = churnyPolicy();
    TlbConfig tlb;
    tlb.entries = 32;
    RunOptions options = ledgerOptions();

    auto workload = workloads::findWorkload("espresso").instantiate();
    const ExperimentResult on =
        runExperiment(*workload, policy, tlb, options);
    obs::StatRegistry with;
    on.exportTo(with, "cell");
    EXPECT_TRUE(with.has("cell.lifecycle.promotions"));
    EXPECT_TRUE(with.has("cell.lifecycle.wasted_promotions"));
    EXPECT_TRUE(with.has("cell.reach.tlb_bytes"));
    EXPECT_TRUE(with.has("cell.reach.utilization"));

    // Ledger off: none of the lifecycle/reach keys appear.
    options.lifecycle = false;
    workload->reset();
    const ExperimentResult off =
        runExperiment(*workload, policy, tlb, options);
    EXPECT_FALSE(off.lifecycleTracked);
    obs::StatRegistry without;
    off.exportTo(without, "cell");
    EXPECT_FALSE(without.has("cell.lifecycle.promotions"));
    EXPECT_FALSE(without.has("cell.reach.tlb_bytes"));
}

} // namespace
} // namespace tps::core
