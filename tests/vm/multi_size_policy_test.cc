/** @file Unit tests for the hierarchical multi-size policy. */

#include "vm/multi_size_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace tps
{
namespace
{

class CountingSink : public InvalidationSink
{
  public:
    void
    invalidatePage(const PageId &page) override
    {
        invalidated.push_back(page);
    }

    std::size_t
    countOfSize(unsigned size_log2) const
    {
        std::size_t count = 0;
        for (const PageId &page : invalidated)
            count += page.sizeLog2 == size_log2 ? 1 : 0;
        return count;
    }

    std::vector<PageId> invalidated;
};

MultiSizeConfig
threeLevel(RefTime window = 10'000)
{
    MultiSizeConfig config;
    config.sizeLog2s = {12, 15, 18}; // 4K / 32K / 256K
    config.window = window;
    return config;
}

TEST(MultiSizeConfigTest, FanoutAndThreshold)
{
    const MultiSizeConfig config = threeLevel();
    EXPECT_EQ(config.fanout(0), 8u);
    EXPECT_EQ(config.fanout(1), 8u);
    EXPECT_EQ(config.threshold(0), 4u);
    EXPECT_EQ(config.threshold(1), 4u);
}

TEST(MultiSizePolicyTest, StartsAtSmallest)
{
    MultiSizePolicy policy(threeLevel());
    EXPECT_EQ(policy.classify(0x2000'0000, 1).sizeLog2, 12);
    EXPECT_EQ(policy.levelOf(0x2000'0000), 0u);
}

TEST(MultiSizePolicyTest, FirstLevelPromotionMatchesTwoSize)
{
    MultiSizePolicy policy(threeLevel());
    RefTime now = 0;
    for (unsigned b = 0; b < 3; ++b)
        EXPECT_EQ(policy.classify(0x2000'0000 + b * 0x1000, ++now)
                      .sizeLog2,
                  12);
    EXPECT_EQ(policy.classify(0x2000'3000, ++now).sizeLog2, 15);
    EXPECT_EQ(policy.levelOf(0x2000'0000), 1u);
}

TEST(MultiSizePolicyTest, SecondLevelPromotionAtHalfTheChunks)
{
    MultiSizePolicy policy(threeLevel());
    RefTime now = 0;
    // Promote 4 of the 8 chunks of superchunk 0 (touch 4 blocks in
    // each).
    for (unsigned chunk = 0; chunk < 4; ++chunk) {
        for (unsigned b = 0; b < 4; ++b) {
            policy.classify(0x2000'0000 + chunk * 0x8000 + b * 0x1000,
                            ++now);
        }
    }
    // The 4th chunk promotion tips the superchunk.
    EXPECT_EQ(policy.levelOf(0x2000'0000), 2u);
    EXPECT_EQ(policy.classify(0x2000'0000, ++now).sizeLog2, 18);
    // Even a never-promoted chunk inside it is now mapped at 256KB.
    EXPECT_EQ(policy.classify(0x2003'8000, ++now).sizeLog2, 18);
    // 4 chunk promotions + 1 superchunk promotion.
    EXPECT_EQ(policy.stats().promotions, 5u);
}

TEST(MultiSizePolicyTest, SuperchunkPromotionInvalidatesAllFiner)
{
    CountingSink sink;
    MultiSizePolicy policy(threeLevel());
    policy.setInvalidationSink(&sink);
    RefTime now = 0;
    for (unsigned chunk = 0; chunk < 4; ++chunk)
        for (unsigned b = 0; b < 4; ++b)
            policy.classify(0x2000'0000 + chunk * 0x8000 + b * 0x1000,
                            ++now);
    // Four chunk promotions invalidate 8 small pages each; the
    // superchunk promotion invalidates its 8 chunk pages and all 64
    // small pages.
    EXPECT_EQ(sink.countOfSize(15), 8u);
    EXPECT_EQ(sink.countOfSize(12), 4u * 8 + 64u);
}

TEST(MultiSizePolicyTest, SparseChunksNeverCascade)
{
    MultiSizePolicy policy(threeLevel());
    RefTime now = 0;
    // Promote only 3 chunks: superchunk stays unpromoted.
    for (unsigned chunk = 0; chunk < 3; ++chunk)
        for (unsigned b = 0; b < 4; ++b)
            policy.classify(0x2000'0000 + chunk * 0x8000 + b * 0x1000,
                            ++now);
    EXPECT_EQ(policy.levelOf(0x2000'0000), 1u);
    EXPECT_EQ(policy.classify(0x2003'8000, ++now).sizeLog2, 12);
}

TEST(MultiSizePolicyTest, RefsPerLevelAccounted)
{
    MultiSizePolicy policy(threeLevel());
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    policy.classify(0x2000'0000, ++now);
    const auto &levels = policy.refsPerLevel();
    EXPECT_EQ(levels[0], 3u); // before promotion
    EXPECT_EQ(levels[1], 2u); // promoting ref + next
    EXPECT_EQ(levels[2], 0u);
}

TEST(MultiSizePolicyTest, TwoLevelDegeneratesToTwoSizeBehaviour)
{
    MultiSizeConfig config;
    config.sizeLog2s = {12, 15};
    config.window = 1'000;
    MultiSizePolicy policy(config);
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x5000'0000 + b * 0x1000, ++now);
    EXPECT_EQ(policy.classify(0x5000'0000, ++now).sizeLog2, 15);
    EXPECT_EQ(policy.name(), "4KB/32KB");
}

TEST(MultiSizePolicyTest, ResetForgets)
{
    MultiSizePolicy policy(threeLevel());
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    policy.reset();
    EXPECT_EQ(policy.levelOf(0x2000'0000), 0u);
    EXPECT_EQ(policy.stats().promotions, 0u);
}

TEST(MultiSizePolicyTest, NameListsAllSizes)
{
    EXPECT_EQ(MultiSizePolicy(threeLevel()).name(), "4KB/32KB/256KB");
}

TEST(MultiSizePolicyDeathTest, RejectsBadLadders)
{
    MultiSizeConfig config;
    config.sizeLog2s = {12};
    EXPECT_EXIT(MultiSizePolicy{config}, ::testing::ExitedWithCode(1),
                "levels");
    config.sizeLog2s = {12, 12};
    EXPECT_EXIT(MultiSizePolicy{config}, ::testing::ExitedWithCode(1),
                "ascending");
    config.sizeLog2s = {12, 20};
    EXPECT_EXIT(MultiSizePolicy{config}, ::testing::ExitedWithCode(1),
                "fanout");
}

} // namespace
} // namespace tps
