/** @file Unit tests for the Section 3.4 page-size assignment policy. */

#include "vm/two_size_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace tps
{
namespace
{

/** Records invalidations for inspection. */
class RecordingSink : public InvalidationSink
{
  public:
    void
    invalidatePage(const PageId &page) override
    {
        invalidated.push_back(page);
    }

    void
    onChunkRemap(Addr chunk, bool to_large) override
    {
        remaps.emplace_back(chunk, to_large);
    }

    std::vector<PageId> invalidated;
    std::vector<std::pair<Addr, bool>> remaps;
};

TwoSizeConfig
testConfig(RefTime window = 1000)
{
    TwoSizeConfig config;
    config.smallLog2 = kLog2_4K;
    config.largeLog2 = kLog2_32K;
    config.window = window;
    return config;
}

TEST(TwoSizeConfigTest, Defaults)
{
    TwoSizeConfig config = testConfig();
    EXPECT_EQ(config.blocksPerChunk(), 8u);
    EXPECT_EQ(config.resolvedPromote(), 4u); // "half or more"
}

TEST(TwoSizeConfigTest, ExplicitThresholdWins)
{
    TwoSizeConfig config = testConfig();
    config.promoteThreshold = 6;
    EXPECT_EQ(config.resolvedPromote(), 6u);
}

TEST(TwoSizePolicyTest, StartsSmall)
{
    TwoSizePolicy policy(testConfig());
    const PageId page = policy.classify(0x2000'0000, 1);
    EXPECT_EQ(page.sizeLog2, kLog2_4K);
    EXPECT_FALSE(policy.isLargeMapped(0x2000'0000));
}

TEST(TwoSizePolicyTest, PromotesAtHalfTheBlocks)
{
    TwoSizePolicy policy(testConfig());
    RefTime now = 0;
    // Touch blocks 0..2: three distinct blocks -> still small.
    for (unsigned b = 0; b < 3; ++b) {
        const PageId page =
            policy.classify(0x2000'0000 + b * 0x1000, ++now);
        EXPECT_EQ(page.sizeLog2, kLog2_4K);
    }
    // Fourth block reaches the threshold: promoted.
    const PageId page = policy.classify(0x2000'3000, ++now);
    EXPECT_EQ(page.sizeLog2, kLog2_32K);
    EXPECT_TRUE(policy.isLargeMapped(0x2000'0000));
    EXPECT_EQ(policy.stats().promotions, 1u);
}

TEST(TwoSizePolicyTest, RepeatTouchesOfOneBlockNeverPromote)
{
    TwoSizePolicy policy(testConfig());
    for (RefTime t = 1; t <= 500; ++t) {
        const PageId page = policy.classify(0x2000'0000 + (t % 64) * 8,
                                            t);
        ASSERT_EQ(page.sizeLog2, kLog2_4K);
    }
    EXPECT_EQ(policy.stats().promotions, 0u);
}

TEST(TwoSizePolicyTest, ExpiredBlocksDoNotCount)
{
    TwoSizePolicy policy(testConfig(100));
    RefTime now = 0;
    // Three blocks long ago...
    for (unsigned b = 0; b < 3; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    // ...expire, then one more recent block: 2 active, no promotion.
    now += 200;
    policy.classify(0x2000'3000, ++now);
    PageId page = policy.classify(0x2000'4000, ++now);
    EXPECT_EQ(page.sizeLog2, kLog2_4K);
    EXPECT_EQ(policy.stats().promotions, 0u);
}

TEST(TwoSizePolicyTest, PromotionInvalidatesSmallPagesAndRemaps)
{
    RecordingSink sink;
    TwoSizePolicy policy(testConfig());
    policy.setInvalidationSink(&sink);
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    // All 8 small-page translations of the chunk are shot down.
    ASSERT_EQ(sink.invalidated.size(), 8u);
    for (unsigned b = 0; b < 8; ++b) {
        EXPECT_EQ(sink.invalidated[b].vpn, (0x2000'0000u >> 12) + b);
        EXPECT_EQ(sink.invalidated[b].sizeLog2, kLog2_4K);
    }
    ASSERT_EQ(sink.remaps.size(), 1u);
    EXPECT_EQ(sink.remaps[0].first, 0x2000'0000u >> 15);
    EXPECT_TRUE(sink.remaps[0].second);
}

TEST(TwoSizePolicyTest, NoDemotionByDefault)
{
    TwoSizePolicy policy(testConfig(100));
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    ASSERT_TRUE(policy.isLargeMapped(0x2000'0000));
    // Return long after everything expired: stays large.
    now += 10'000;
    const PageId page = policy.classify(0x2000'0000, ++now);
    EXPECT_EQ(page.sizeLog2, kLog2_32K);
    EXPECT_EQ(policy.stats().demotions, 0u);
}

TEST(TwoSizePolicyTest, DemotionWhenEnabled)
{
    RecordingSink sink;
    TwoSizeConfig config = testConfig(100);
    config.demoteThreshold = 4; // symmetric with promote
    TwoSizePolicy policy(config);
    policy.setInvalidationSink(&sink);
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    ASSERT_TRUE(policy.isLargeMapped(0x2000'0000));
    sink.invalidated.clear();

    now += 10'000; // window empties
    const PageId page = policy.classify(0x2000'0000, ++now);
    EXPECT_EQ(page.sizeLog2, kLog2_4K);
    EXPECT_EQ(policy.stats().demotions, 1u);
    // The large-page translation was shot down.
    ASSERT_EQ(sink.invalidated.size(), 1u);
    EXPECT_EQ(sink.invalidated[0].sizeLog2, kLog2_32K);
    ASSERT_EQ(sink.remaps.size(), 2u);
    EXPECT_FALSE(sink.remaps[1].second);
}

TEST(TwoSizePolicyTest, ChunksIndependent)
{
    TwoSizePolicy policy(testConfig());
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    EXPECT_TRUE(policy.isLargeMapped(0x2000'0000));
    EXPECT_FALSE(policy.isLargeMapped(0x2000'8000));
    const PageId other = policy.classify(0x2000'8000, ++now);
    EXPECT_EQ(other.sizeLog2, kLog2_4K);
}

TEST(TwoSizePolicyTest, StatsTrackSizeMix)
{
    TwoSizePolicy policy(testConfig());
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now); // 4 small
    policy.classify(0x2000'0000, ++now);                  // 1 large
    // The promoting reference itself is classified large.
    EXPECT_EQ(policy.stats().refsSmall, 3u);
    EXPECT_EQ(policy.stats().refsLarge, 2u);
    EXPECT_DOUBLE_EQ(policy.stats().largeFraction(), 0.4);
}

TEST(TwoSizePolicyTest, ResetForgetsEverything)
{
    TwoSizePolicy policy(testConfig());
    RefTime now = 0;
    for (unsigned b = 0; b < 4; ++b)
        policy.classify(0x2000'0000 + b * 0x1000, ++now);
    policy.reset();
    EXPECT_FALSE(policy.isLargeMapped(0x2000'0000));
    EXPECT_EQ(policy.stats().promotions, 0u);
    EXPECT_EQ(policy.trackedChunks(), 0u);
}

TEST(TwoSizePolicyTest, OtherSizeRatios)
{
    // 4KB/64KB: 16 blocks, promote at 8.
    TwoSizeConfig config = testConfig();
    config.largeLog2 = kLog2_64K;
    EXPECT_EQ(config.blocksPerChunk(), 16u);
    TwoSizePolicy policy(config);
    RefTime now = 0;
    for (unsigned b = 0; b < 7; ++b)
        EXPECT_EQ(policy.classify(0x10000 * 5 + b * 0x1000, ++now)
                      .sizeLog2,
                  kLog2_4K);
    EXPECT_EQ(policy.classify(0x10000 * 5 + 7 * 0x1000, ++now).sizeLog2,
              kLog2_64K);
}

TEST(TwoSizePolicyTest, WorstCaseDoublingBound)
{
    // Paper Section 3.4: promoting at half the blocks at most doubles
    // the memory mapped for the chunk (4 blocks * 4KB -> 32KB).
    TwoSizeConfig config = testConfig();
    const std::uint64_t small_bytes =
        config.resolvedPromote() *
        (std::uint64_t{1} << config.smallLog2);
    const std::uint64_t large_bytes = std::uint64_t{1}
                                      << config.largeLog2;
    EXPECT_LE(large_bytes, 2 * small_bytes);
}

TEST(TwoSizePolicyDeathTest, RejectsInvertedSizes)
{
    TwoSizeConfig config;
    config.smallLog2 = kLog2_32K;
    config.largeLog2 = kLog2_4K;
    EXPECT_EXIT(TwoSizePolicy{config}, ::testing::ExitedWithCode(1),
                "must exceed");
}

TEST(TwoSizePolicyDeathTest, RejectsZeroWindow)
{
    TwoSizeConfig config = testConfig();
    config.window = 0;
    EXPECT_EXIT(TwoSizePolicy{config}, ::testing::ExitedWithCode(1),
                "window");
}

TEST(TwoSizePolicyDeathTest, RejectsOversizedRatio)
{
    TwoSizeConfig config = testConfig();
    config.smallLog2 = 12;
    config.largeLog2 = 20; // 256 blocks > 64 supported
    EXPECT_EXIT(TwoSizePolicy{config}, ::testing::ExitedWithCode(1),
                "blocks per chunk");
}

/** Parameterized sweep: promotion happens exactly at the threshold. */
class ThresholdTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ThresholdTest, PromotesExactlyAtThreshold)
{
    const unsigned threshold = GetParam();
    TwoSizeConfig config = testConfig();
    config.promoteThreshold = threshold;
    TwoSizePolicy policy(config);
    RefTime now = 0;
    for (unsigned b = 0; b + 1 < threshold; ++b) {
        ASSERT_EQ(
            policy.classify(0x4000'0000 + b * 0x1000, ++now).sizeLog2,
            kLog2_4K);
    }
    EXPECT_EQ(policy
                  .classify(0x4000'0000 + (threshold - 1) * 0x1000,
                            ++now)
                  .sizeLog2,
              kLog2_32K);
}

INSTANTIATE_TEST_SUITE_P(AllThresholds, ThresholdTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
} // namespace tps
