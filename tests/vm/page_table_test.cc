/** @file Unit tests for the page-table substrate and walker costs. */

#include "vm/page_table.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

TEST(ForwardPageTableTest, UnmappedWalkFails)
{
    ForwardPageTable table(kLog2_4K);
    unsigned touches = 0;
    EXPECT_EQ(table.walk(0x123, touches), nullptr);
    EXPECT_GE(touches, 1u); // at least the root descriptor was read
}

TEST(ForwardPageTableTest, MapThenWalk)
{
    ForwardPageTable table(kLog2_4K);
    table.map(0x123);
    unsigned touches = 0;
    const PageTableEntry *pte = table.walk(0x123, touches);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->valid);
    EXPECT_EQ(touches, table.levels());
    EXPECT_EQ(table.mappedPages(), 1u);
}

TEST(ForwardPageTableTest, DistinctFrames)
{
    ForwardPageTable table(kLog2_4K);
    table.map(0x1);
    table.map(0x2);
    unsigned t = 0;
    const PageTableEntry *a = table.walk(0x1, t);
    const PageTableEntry *b = table.walk(0x2, t);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a->pfn, b->pfn);
}

TEST(ForwardPageTableTest, MapIdempotent)
{
    ForwardPageTable table(kLog2_4K);
    table.map(0x5);
    table.map(0x5);
    EXPECT_EQ(table.mappedPages(), 1u);
}

TEST(ForwardPageTableTest, UnmapRemoves)
{
    ForwardPageTable table(kLog2_4K);
    table.map(0x5);
    table.unmap(0x5);
    EXPECT_FALSE(table.isMapped(0x5));
    EXPECT_EQ(table.mappedPages(), 0u);
    // Unmapping absent entries is harmless.
    table.unmap(0x5);
    table.unmap(0x9999);
}

TEST(ForwardPageTableTest, SparseVpnsDoNotCollide)
{
    ForwardPageTable table(kLog2_4K, 48, 3);
    const Addr far_apart[] = {0x0, 0xFFF, 0x100000, 0xFFFFFFFFF};
    for (Addr vpn : far_apart)
        table.map(vpn);
    for (Addr vpn : far_apart)
        EXPECT_TRUE(table.isMapped(vpn)) << std::hex << vpn;
    EXPECT_EQ(table.mappedPages(), 4u);
}

TEST(ForwardPageTableTest, TableBytesGrowWithMappings)
{
    ForwardPageTable table(kLog2_4K);
    const std::uint64_t empty = table.tableBytes();
    table.map(0x0);
    table.map(0x100000); // forces a second subtree
    EXPECT_GT(table.tableBytes(), empty);
}

TEST(ForwardPageTableTest, SingleLevelWorks)
{
    ForwardPageTable table(kLog2_32K, 30, 1);
    table.map(0x7);
    unsigned touches = 0;
    ASSERT_NE(table.walk(0x7, touches), nullptr);
    EXPECT_EQ(touches, 1u);
}

TEST(HandlerCostModelTest, PaperConstantsReproduced)
{
    // Default model: 8 + 4*3 = 20 cycles for a 3-level single-size
    // walk — the paper's Section 3.2 assumption.
    HandlerCostModel costs;
    EXPECT_EQ(costs.singleSizeCost(3), 20u);
}

TEST(AddressSpaceTest, SingleSizeMissCost)
{
    AddressSpace space(kLog2_4K, kLog2_32K);
    const WalkResult result =
        space.handleMissSingleSize(PageId{0x123, kLog2_4K});
    EXPECT_TRUE(result.found);
    EXPECT_TRUE(result.faulted); // first touch demand-faults
    EXPECT_EQ(result.cycles, 20u);
    EXPECT_EQ(space.faults(), 1u);

    // Second miss on the same page: no fault, same walk cost.
    const WalkResult again =
        space.handleMissSingleSize(PageId{0x123, kLog2_4K});
    EXPECT_FALSE(again.faulted);
    EXPECT_EQ(again.cycles, 20u);
}

TEST(AddressSpaceTest, TwoSizeHandlerCostsMoreThanSingle)
{
    AddressSpace space(kLog2_4K, kLog2_32K);
    // Map a small page, then handle misses with the two-size handler.
    const WalkResult small_hit = space.handleMiss(
        PageId{0x40, kLog2_4K}, ProbeOrder::SmallFirst);
    EXPECT_TRUE(small_hit.found);
    EXPECT_GT(small_hit.cycles, 20u); // size check overhead at least

    // A large page probed small-first pays for the failed probe.
    const WalkResult large_hit = space.handleMiss(
        PageId{0x9, kLog2_32K}, ProbeOrder::SmallFirst);
    EXPECT_TRUE(large_hit.found);
    EXPECT_GT(large_hit.cycles, small_hit.cycles);
}

TEST(AddressSpaceTest, ProbeOrderMatters)
{
    AddressSpace a(kLog2_4K, kLog2_32K);
    AddressSpace b(kLog2_4K, kLog2_32K);
    const PageId large{0x9, kLog2_32K};
    const WalkResult small_first =
        a.handleMiss(large, ProbeOrder::SmallFirst);
    const WalkResult large_first =
        b.handleMiss(large, ProbeOrder::LargeFirst);
    EXPECT_TRUE(small_first.found);
    EXPECT_TRUE(large_first.found);
    EXPECT_LT(large_first.cycles, small_first.cycles);
}

TEST(AddressSpaceTest, AverageTracksTwoSizeOverhead)
{
    // A half-small/half-large miss stream should average noticeably
    // above the single-size 20 cycles — the paper's ~25% figure.
    AddressSpace space(kLog2_4K, kLog2_32K);
    for (Addr i = 0; i < 50; ++i) {
        space.handleMiss(PageId{0x1000 + i, kLog2_4K},
                         ProbeOrder::SmallFirst);
        space.handleMiss(PageId{0x10 + i, kLog2_32K},
                         ProbeOrder::SmallFirst);
    }
    const double avg = space.averageMissCycles();
    EXPECT_GT(avg, 20.0);
    EXPECT_LT(avg, 2.0 * 20.0);
}

TEST(AddressSpaceTest, RemapChunkMovesMappings)
{
    AddressSpace space(kLog2_4K, kLog2_32K);
    // Fault in the 8 small pages of chunk 3.
    for (Addr b = 0; b < 8; ++b)
        space.handleMissSingleSize(PageId{3 * 8 + b, kLog2_4K});
    EXPECT_EQ(space.smallTable().mappedPages(), 8u);

    space.remapChunk(3, true);
    EXPECT_EQ(space.smallTable().mappedPages(), 0u);
    EXPECT_EQ(space.largeTable().mappedPages(), 1u);

    space.remapChunk(3, false);
    EXPECT_EQ(space.smallTable().mappedPages(), 8u);
    EXPECT_EQ(space.largeTable().mappedPages(), 0u);
}

TEST(ForwardPageTableDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT((ForwardPageTable{kLog2_4K, 48, 0}),
                ::testing::ExitedWithCode(1), "levels");
    EXPECT_EXIT((ForwardPageTable{kLog2_4K, 10, 3}),
                ::testing::ExitedWithCode(1), "must exceed");
}

} // namespace
} // namespace tps
