/** @file Unit tests for vm/page.h and the single-size policy. */

#include "vm/policy.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace tps
{
namespace
{

TEST(PageIdTest, BaseAddrAndSize)
{
    PageId page{0x5, kLog2_32K};
    EXPECT_EQ(page.baseAddr(), 0x5ull << 15);
    EXPECT_EQ(page.sizeBytes(), 32u * 1024);
}

TEST(PageIdTest, Containment)
{
    PageId page = pageOf(0x2000'8123, kLog2_32K);
    EXPECT_TRUE(page.contains(0x2000'8000));
    EXPECT_TRUE(page.contains(0x2000'FFFF));
    EXPECT_FALSE(page.contains(0x2001'0000));
}

TEST(PageIdTest, SameVpnDifferentSizeNotEqual)
{
    PageId small{0x10, kLog2_4K};
    PageId large{0x10, kLog2_32K};
    EXPECT_FALSE(small == large);
}

TEST(PageIdTest, HashDistinguishesSizes)
{
    PageIdHash hash;
    EXPECT_NE(hash(PageId{0x10, kLog2_4K}), hash(PageId{0x10, kLog2_32K}));
}

TEST(PageIdTest, HashSpreads)
{
    PageIdHash hash;
    std::unordered_set<std::size_t> values;
    for (Addr vpn = 0; vpn < 1000; ++vpn)
        values.insert(hash(PageId{vpn, kLog2_4K}));
    EXPECT_GT(values.size(), 990u); // near-perfect for small sets
}

TEST(SingleSizePolicyTest, ClassifiesByShift)
{
    SingleSizePolicy policy(kLog2_4K);
    const PageId page = policy.classify(0x12345678, 1);
    EXPECT_EQ(page.vpn, 0x12345u);
    EXPECT_EQ(page.sizeLog2, kLog2_4K);
}

TEST(SingleSizePolicyTest, NeverMultiSize)
{
    SingleSizePolicy policy(kLog2_8K);
    EXPECT_FALSE(policy.isMultiSize());
}

TEST(SingleSizePolicyTest, StatsCountRefs)
{
    SingleSizePolicy policy(kLog2_4K);
    for (RefTime t = 1; t <= 10; ++t)
        policy.classify(0x1000 * t, t);
    EXPECT_EQ(policy.stats().refsSmall, 10u);
    EXPECT_EQ(policy.stats().refsLarge, 0u);
    EXPECT_DOUBLE_EQ(policy.stats().largeFraction(), 0.0);
}

TEST(SingleSizePolicyTest, ResetClearsStats)
{
    SingleSizePolicy policy(kLog2_4K);
    policy.classify(0x1000, 1);
    policy.reset();
    EXPECT_EQ(policy.stats().refsSmall, 0u);
}

TEST(SingleSizePolicyTest, NameIsHumanReadable)
{
    EXPECT_EQ(SingleSizePolicy(kLog2_4K).name(), "4KB");
    EXPECT_EQ(SingleSizePolicy(kLog2_32K).name(), "32KB");
}

TEST(SingleSizePolicyDeathTest, RejectsAbsurdSizes)
{
    EXPECT_EXIT(SingleSizePolicy{31}, ::testing::ExitedWithCode(1),
                "implausible");
}

} // namespace
} // namespace tps
