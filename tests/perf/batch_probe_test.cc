/**
 * @file
 * Batch-vs-per-ref oracle: Tlb::lookupBatch() must be bit-identical
 * to n calls of Tlb::access() for every organization x replacement
 * combination, including across ASID switches and invalidateAsid()
 * shootdowns.  The batch path is the production engine (ExecMode::
 * Batched); the per-ref path is the oracle it is gated against.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tlb/factory.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"

namespace tps
{
namespace
{

struct BatchParam
{
    std::string label;
    TlbConfig config;
};

std::vector<BatchParam>
allConfigs()
{
    std::vector<BatchParam> params;
    const ReplPolicy policies[] = {ReplPolicy::LRU, ReplPolicy::FIFO,
                                   ReplPolicy::Random,
                                   ReplPolicy::TreePLRU};
    const char *policy_names[] = {"lru", "fifo", "random", "plru"};

    for (std::size_t p = 0; p < 4; ++p) {
        {
            TlbConfig config;
            config.organization = TlbOrganization::FullyAssociative;
            config.entries = 16;
            config.replacement = policies[p];
            params.push_back({std::string("fa16_") + policy_names[p],
                              config});
        }
        {
            TlbConfig config;
            config.organization = TlbOrganization::SetAssociative;
            config.entries = 32;
            config.ways = 2;
            config.scheme = IndexScheme::Exact;
            config.replacement = policies[p];
            params.push_back({std::string("sa32x2_") +
                                  policy_names[p],
                              config});
        }
    }
    for (IndexScheme scheme : {IndexScheme::SmallPage,
                               IndexScheme::LargePage}) {
        TlbConfig config;
        config.organization = TlbOrganization::SetAssociative;
        config.entries = 16;
        config.ways = 4;
        config.scheme = scheme;
        params.push_back(
            {std::string("sa16x4_") + indexSchemeName(scheme),
             config});
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::Split;
        config.entries = 24;
        config.splitLargeEntries = 8;
        params.push_back({"split24", config});
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::TwoLevel;
        config.entries = 32;
        config.l1Entries = 4;
        params.push_back({"twolevel4_32", config});
    }
    return params;
}

void
expectSameStats(const TlbStats &a, const TlbStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.hitsSmall, b.hitsSmall);
    EXPECT_EQ(a.hitsLarge, b.hitsLarge);
    EXPECT_EQ(a.missesSmall, b.missesSmall);
    EXPECT_EQ(a.missesLarge, b.missesLarge);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.invalidations, b.invalidations);
}

/**
 * Pre-classify one reference stream so both TLB instances see the
 * exact same PageId sequence (mixing small and large pages via the
 * two-size policy's promotion windows).
 */
std::vector<Tlb::BatchRef>
classifiedStream(std::size_t n)
{
    TwoSizeConfig policy_config;
    policy_config.window = 7'000;
    TwoSizePolicy policy(policy_config);

    auto workload = workloads::findWorkload("doduc").instantiate();
    std::vector<Tlb::BatchRef> refs;
    refs.reserve(n);
    MemRef ref;
    RefTime now = 0;
    while (refs.size() < n && workload->next(ref)) {
        ++now;
        refs.push_back({policy.classify(ref.vaddr, now), ref.vaddr});
    }
    return refs;
}

class BatchProbeTest : public ::testing::TestWithParam<BatchParam>
{
};

/**
 * Same classified stream, two identical TLBs: per-ref access() vs
 * chunked lookupBatch() must agree on every per-ref outcome and on
 * every final counter.  The chunk size (257) is deliberately odd so
 * chunk boundaries land at unaligned stream positions.
 */
TEST_P(BatchProbeTest, BatchMatchesPerRefOracle)
{
    const auto refs = classifiedStream(40'000);
    ASSERT_GE(refs.size(), 10'000u);

    auto oracle = makeTlb(GetParam().config);
    auto batched = makeTlb(GetParam().config);

    std::vector<std::uint8_t> oracle_hits(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
        oracle_hits[i] =
            oracle->access(refs[i].page, refs[i].vaddr) ? 1 : 0;
    }

    constexpr std::size_t kChunk = 257;
    Tlb::BatchResult out;
    std::size_t first_mismatch = refs.size();
    for (std::size_t base = 0; base < refs.size(); base += kChunk) {
        const std::size_t n =
            std::min(kChunk, refs.size() - base);
        batched->lookupBatch(refs.data() + base, n, out);
        ASSERT_EQ(out.hit.size(), n);
        for (std::size_t i = 0; i < n && first_mismatch == refs.size();
             ++i) {
            if ((out.hit[i] != 0) != (oracle_hits[base + i] != 0))
                first_mismatch = base + i;
        }
    }
    EXPECT_EQ(first_mismatch, refs.size())
        << "first diverging reference index";
    expectSameStats(batched->stats(), oracle->stats());
}

/**
 * ASID interleaving: both instances run the same schedule of
 * setAsid() switches and invalidateAsid() shootdowns; the batch side
 * applies them at chunk boundaries (how the experiment driver splits
 * chunks at context switches), the per-ref side at the same stream
 * positions.  Outcomes and counters must still match exactly.
 */
TEST_P(BatchProbeTest, AsidEventsMatchPerRefOracle)
{
    const auto refs = classifiedStream(30'000);
    ASSERT_GE(refs.size(), 10'000u);

    auto oracle = makeTlb(GetParam().config);
    auto batched = makeTlb(GetParam().config);

    // Event every kEvery refs: rotate between switching to ASID 1,
    // shooting down ASID 0, and switching back to ASID 0.
    constexpr std::size_t kEvery = 1'028; // 4 batch chunks of 257
    const auto applyEvent = [](Tlb &tlb, std::size_t k) {
        switch (k % 3) {
        case 1:
            tlb.setAsid(1);
            break;
        case 2:
            tlb.invalidateAsid(0);
            break;
        default:
            tlb.setAsid(0);
            break;
        }
    };

    std::vector<std::uint8_t> oracle_hits(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
        if (i != 0 && i % kEvery == 0)
            applyEvent(*oracle, i / kEvery);
        oracle_hits[i] =
            oracle->access(refs[i].page, refs[i].vaddr) ? 1 : 0;
    }

    constexpr std::size_t kChunk = 257;
    Tlb::BatchResult out;
    std::size_t mismatches = 0;
    for (std::size_t base = 0; base < refs.size(); base += kChunk) {
        // Split the chunk wherever an event lands inside it so events
        // fire at the exact same stream position as the oracle's.
        std::size_t pos = base;
        const std::size_t chunk_end =
            std::min(base + kChunk, refs.size());
        while (pos < chunk_end) {
            if (pos != 0 && pos % kEvery == 0)
                applyEvent(*batched, pos / kEvery);
            const std::size_t next_event =
                (pos / kEvery + 1) * kEvery;
            const std::size_t seg_end =
                std::min(chunk_end, next_event);
            batched->lookupBatch(refs.data() + pos, seg_end - pos,
                                 out);
            for (std::size_t i = 0; i < seg_end - pos; ++i) {
                if ((out.hit[i] != 0) !=
                    (oracle_hits[pos + i] != 0))
                    ++mismatches;
            }
            pos = seg_end;
        }
    }
    EXPECT_EQ(mismatches, 0u);
    expectSameStats(batched->stats(), oracle->stats());
}

/** reset() must clear batch-path acceleration state too: a reset
 *  instance replays the stream with identical outcomes. */
TEST_P(BatchProbeTest, ResetReplaysIdentically)
{
    const auto refs = classifiedStream(12'000);
    ASSERT_GE(refs.size(), 4'000u);

    auto tlb = makeTlb(GetParam().config);
    Tlb::BatchResult first;
    tlb->lookupBatch(refs.data(), refs.size(), first);
    const TlbStats pass1 = tlb->stats();

    tlb->reset();
    Tlb::BatchResult second;
    tlb->lookupBatch(refs.data(), refs.size(), second);
    EXPECT_EQ(first.hit, second.hit);
    expectSameStats(tlb->stats(), pass1);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, BatchProbeTest,
    ::testing::ValuesIn(allConfigs()),
    [](const ::testing::TestParamInfo<BatchParam> &info) {
        std::string name = info.param.label;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace tps
