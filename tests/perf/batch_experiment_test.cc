/**
 * @file
 * Chunk-split property tests for the batched experiment engine:
 * runExperiment(ExecMode::Batched) must produce bit-identical results
 * to the per-ref oracle for ANY chunk size, because chunks split at
 * policy-window boundaries, the warmup boundary, and interval-close
 * positions.  The policy window here (5'000 refs) is deliberately
 * coprime-ish with every chunk size under test so window boundaries
 * land mid-chunk.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

void
expectSameResult(const ExperimentResult &a, const ExperimentResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.instructions, b.instructions);

    EXPECT_EQ(a.tlb.accesses, b.tlb.accesses);
    EXPECT_EQ(a.tlb.hits, b.tlb.hits);
    EXPECT_EQ(a.tlb.misses, b.tlb.misses);
    EXPECT_EQ(a.tlb.hitsSmall, b.tlb.hitsSmall);
    EXPECT_EQ(a.tlb.hitsLarge, b.tlb.hitsLarge);
    EXPECT_EQ(a.tlb.missesSmall, b.tlb.missesSmall);
    EXPECT_EQ(a.tlb.missesLarge, b.tlb.missesLarge);
    EXPECT_EQ(a.tlb.fills, b.tlb.fills);
    EXPECT_EQ(a.tlb.evictions, b.tlb.evictions);
    EXPECT_EQ(a.tlb.invalidations, b.tlb.invalidations);

    EXPECT_EQ(a.policy.refsSmall, b.policy.refsSmall);
    EXPECT_EQ(a.policy.refsLarge, b.policy.refsLarge);
    EXPECT_EQ(a.policy.promotions, b.policy.promotions);
    EXPECT_EQ(a.policy.demotions, b.policy.demotions);

    // Derived metrics are pure functions of the counters above, but
    // compare them exactly anyway: they are what reports print.
    EXPECT_EQ(a.cpiTlb, b.cpiTlb);
    EXPECT_EQ(a.mpi, b.mpi);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.rpi, b.rpi);
    EXPECT_EQ(a.wsTracked, b.wsTracked);
    EXPECT_EQ(a.avgWsBytes, b.avgWsBytes);
}

RunOptions
baseOptions()
{
    RunOptions options;
    options.maxRefs = 60'000;
    options.warmupRefs = 15'000;
    options.wsWindow = 7'000;
    return options;
}

ExperimentResult
runOnce(const PolicySpec &policy, const TlbConfig &tlb,
        const RunOptions &options)
{
    auto workload = workloads::findWorkload("espresso").instantiate();
    return runExperiment(*workload, policy, tlb, options);
}

/**
 * Two-size policy with a 5'000-ref window: promotions/demotions (and
 * their shootdowns) fire at stream positions that no chunk size under
 * test divides.  Every chunk size must reproduce the per-ref result
 * exactly — including chunk sizes larger than the whole trace and the
 * degenerate chunk size 1.
 */
TEST(BatchExperiment, AnyChunkSizeMatchesPerRefOracle)
{
    TwoSizeConfig policy_config;
    policy_config.window = 5'000;
    policy_config.promoteThreshold = 2; // promote eagerly at this scale
    policy_config.demoteThreshold = 2;  // and exercise demotion churn
    const PolicySpec policy = PolicySpec::twoSizes(policy_config);

    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 32;

    RunOptions oracle_options = baseOptions();
    oracle_options.exec = ExecMode::PerRef;
    const ExperimentResult oracle =
        runOnce(policy, tlb, oracle_options);
    ASSERT_EQ(oracle.refs, 45'000u); // measured = maxRefs - warmup
    ASSERT_GT(oracle.policy.promotions, 0u);

    for (std::uint64_t chunk : {std::uint64_t{1}, std::uint64_t{64},
                                std::uint64_t{257},
                                std::uint64_t{4'096},
                                std::uint64_t{100'000}}) {
        RunOptions options = baseOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = chunk;
        const ExperimentResult batched =
            runOnce(policy, tlb, options);
        expectSameResult(batched, oracle,
                         "chunkRefs=" + std::to_string(chunk));
    }
}

/** Same property for a single-size policy (no window events at all —
 *  the chunk loop's only split points are warmup and end-of-trace). */
TEST(BatchExperiment, SingleSizePolicyMatchesPerRefOracle)
{
    const PolicySpec policy = PolicySpec::single(kLog2_4K);

    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 32;
    tlb.ways = 2;

    RunOptions oracle_options = baseOptions();
    oracle_options.exec = ExecMode::PerRef;
    const ExperimentResult oracle =
        runOnce(policy, tlb, oracle_options);

    for (std::uint64_t chunk :
         {std::uint64_t{97}, std::uint64_t{4'096}}) {
        RunOptions options = baseOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = chunk;
        const ExperimentResult batched =
            runOnce(policy, tlb, options);
        expectSameResult(batched, oracle,
                         "chunkRefs=" + std::to_string(chunk));
    }
}

/**
 * Interval telemetry forces additional chunk splits at interval-close
 * positions (7'000 measured refs — not a multiple of the 4'096 chunk).
 * Scalar results must still match, and the per-interval counters must
 * agree between batched and per-ref execution.
 */
TEST(BatchExperiment, IntervalSplitsPreserveTimeseries)
{
    TwoSizeConfig policy_config;
    policy_config.window = 5'000;
    policy_config.promoteThreshold = 2; // promote eagerly at this scale
    policy_config.demoteThreshold = 2;  // and exercise demotion churn
    const PolicySpec policy = PolicySpec::twoSizes(policy_config);

    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 32;

    RunOptions oracle_options = baseOptions();
    oracle_options.exec = ExecMode::PerRef;
    oracle_options.timeseries.intervalRefs = 7'000;
    const ExperimentResult oracle =
        runOnce(policy, tlb, oracle_options);
    ASSERT_NE(oracle.timeseries, nullptr);

    RunOptions options = baseOptions();
    options.exec = ExecMode::Batched;
    options.chunkRefs = 4'096;
    options.timeseries.intervalRefs = 7'000;
    const ExperimentResult batched = runOnce(policy, tlb, options);
    ASSERT_NE(batched.timeseries, nullptr);

    expectSameResult(batched, oracle, "timeseries run");
    EXPECT_EQ(batched.timeseries->counterNames,
              oracle.timeseries->counterNames);
    ASSERT_EQ(batched.timeseries->intervals.size(),
              oracle.timeseries->intervals.size());
    for (std::size_t i = 0; i < oracle.timeseries->intervals.size();
         ++i) {
        SCOPED_TRACE("interval " + std::to_string(i));
        const auto &a = batched.timeseries->intervals[i];
        const auto &b = oracle.timeseries->intervals[i];
        EXPECT_EQ(a.startRef, b.startRef);
        EXPECT_EQ(a.refs, b.refs);
        EXPECT_EQ(a.counters, b.counters);
        EXPECT_EQ(a.values, b.values);
    }
}

} // namespace
} // namespace tps::core
