/**
 * @file
 * Shared-pass determinism gate: runSharedPass() (one trace pass,
 * one classification, many TLB geometries) and SweepRunner::
 * sharedPass(true) must both reproduce independent per-cell
 * runExperiment() results bit for bit, across mixed policy groups.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

void
expectSameResult(const ExperimentResult &a, const ExperimentResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.tlbName, b.tlbName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.instructions, b.instructions);

    EXPECT_EQ(a.tlb.accesses, b.tlb.accesses);
    EXPECT_EQ(a.tlb.hits, b.tlb.hits);
    EXPECT_EQ(a.tlb.misses, b.tlb.misses);
    EXPECT_EQ(a.tlb.hitsSmall, b.tlb.hitsSmall);
    EXPECT_EQ(a.tlb.hitsLarge, b.tlb.hitsLarge);
    EXPECT_EQ(a.tlb.missesSmall, b.tlb.missesSmall);
    EXPECT_EQ(a.tlb.missesLarge, b.tlb.missesLarge);
    EXPECT_EQ(a.tlb.fills, b.tlb.fills);
    EXPECT_EQ(a.tlb.evictions, b.tlb.evictions);
    EXPECT_EQ(a.tlb.invalidations, b.tlb.invalidations);

    EXPECT_EQ(a.policy.refsSmall, b.policy.refsSmall);
    EXPECT_EQ(a.policy.refsLarge, b.policy.refsLarge);
    EXPECT_EQ(a.policy.promotions, b.policy.promotions);
    EXPECT_EQ(a.policy.demotions, b.policy.demotions);

    EXPECT_EQ(a.cpiTlb, b.cpiTlb);
    EXPECT_EQ(a.mpi, b.mpi);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.rpi, b.rpi);
    EXPECT_EQ(a.wsTracked, b.wsTracked);
    EXPECT_EQ(a.avgWsBytes, b.avgWsBytes);
}

RunOptions
baseOptions()
{
    RunOptions options;
    options.maxRefs = 50'000;
    options.warmupRefs = 10'000;
    options.wsWindow = 5'000;
    return options;
}

/**
 * runSharedPass drives several TLB geometries through ONE pass of the
 * trace; each result must equal the corresponding independent
 * runExperiment cell (which replays the trace from scratch).
 */
TEST(SharedPass, MatchesIndependentCells)
{
    TwoSizeConfig policy_config;
    policy_config.window = 5'000;
    policy_config.promoteThreshold = 2; // ensure window events fire
    const PolicySpec policy = PolicySpec::twoSizes(policy_config);

    std::vector<TlbConfig> tlbs;
    {
        TlbConfig config;
        config.organization = TlbOrganization::FullyAssociative;
        config.entries = 16;
        tlbs.push_back(config);
        config.entries = 64;
        tlbs.push_back(config);
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::SetAssociative;
        config.entries = 32;
        config.ways = 2;
        tlbs.push_back(config);
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::Split;
        config.entries = 24;
        config.splitLargeEntries = 8;
        tlbs.push_back(config);
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::TwoLevel;
        config.entries = 32;
        config.l1Entries = 4;
        tlbs.push_back(config);
    }

    const RunOptions options = baseOptions();

    auto shared_trace = workloads::findWorkload("doduc").instantiate();
    const std::vector<ExperimentResult> shared =
        runSharedPass(*shared_trace, policy, tlbs, options);
    ASSERT_EQ(shared.size(), tlbs.size());

    for (std::size_t i = 0; i < tlbs.size(); ++i) {
        auto trace = workloads::findWorkload("doduc").instantiate();
        const ExperimentResult independent =
            runExperiment(*trace, policy, tlbs[i], options);
        expectSameResult(shared[i], independent,
                         "config " + std::to_string(i) + " (" +
                             tlbs[i].describe() + ")");
    }
}

/**
 * SweepRunner::sharedPass(true) over a grid that mixes policy groups
 * (two columns share a two-size policy, two run single-size) must
 * return the exact cells — same order, labels, and results — as the
 * independent-cells path.
 */
TEST(SharedPass, SweepRunnerSharedEqualsIndependent)
{
    TwoSizeConfig policy_config;
    policy_config.window = 5'000;
    policy_config.promoteThreshold = 2; // ensure window events fire

    TlbConfig fa32;
    fa32.organization = TlbOrganization::FullyAssociative;
    fa32.entries = 32;
    TlbConfig fa64 = fa32;
    fa64.entries = 64;
    TlbConfig sa32;
    sa32.organization = TlbOrganization::SetAssociative;
    sa32.entries = 32;
    sa32.ways = 2;

    const auto configureSweep = [&](SweepRunner &sweep) {
        sweep.workloads({"li", "espresso"})
            .configuration(fa32, PolicySpec::single(kLog2_4K))
            .configuration(fa32,
                           PolicySpec::twoSizes(policy_config))
            .configuration(sa32,
                           PolicySpec::twoSizes(policy_config))
            .configuration(fa64, PolicySpec::single(kLog2_4K))
            .options(baseOptions())
            .threads(1);
    };

    SweepRunner shared;
    configureSweep(shared);
    shared.sharedPass(true);
    const std::vector<SweepCell> shared_cells = shared.run();

    SweepRunner independent;
    configureSweep(independent);
    independent.sharedPass(false);
    const std::vector<SweepCell> independent_cells =
        independent.run();

    ASSERT_EQ(shared_cells.size(), independent_cells.size());
    ASSERT_EQ(shared_cells.size(), 8u); // 2 workloads x 4 columns
    for (std::size_t i = 0; i < shared_cells.size(); ++i) {
        EXPECT_EQ(shared_cells[i].workload,
                  independent_cells[i].workload);
        EXPECT_EQ(shared_cells[i].configLabel,
                  independent_cells[i].configLabel);
        expectSameResult(shared_cells[i].result,
                         independent_cells[i].result,
                         "cell " + std::to_string(i) + " (" +
                             shared_cells[i].workload + " / " +
                             shared_cells[i].configLabel + ")");
    }
}

} // namespace
} // namespace tps::core
