/**
 * @file
 * Tests for the all-associativity simulator, centered on equivalence
 * with direct set-associative simulation across the whole
 * (sets x ways) grid — the property the paper's tycho run relied on
 * to evaluate 84 configurations in one pass.
 */

#include "stacksim/all_assoc.h"

#include <gtest/gtest.h>

#include "tlb/set_assoc.h"
#include "util/random.h"
#include "vm/page.h"

namespace tps
{
namespace
{

std::vector<std::uint64_t>
mixedTrace(std::size_t refs, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    keys.reserve(refs);
    for (std::size_t i = 0; i < refs; ++i) {
        if (rng.chance(0.5))
            keys.push_back(rng.below(10)); // hot
        else if (rng.chance(0.5))
            keys.push_back(100 + (i % 37)); // cyclic
        else
            keys.push_back(rng.below(500)); // cold-ish
    }
    return keys;
}

TEST(AllAssocTest, FullyAssociativeLevelMatchesLruStack)
{
    // Level 0 (one set) is plain fully associative LRU.
    AllAssocSim sim(4, 16);
    const auto keys = mixedTrace(4000, 3);
    for (std::uint64_t key : keys)
        sim.observe(key);
    // Compare against a direct 16-entry FA TLB.
    for (std::size_t ways : {1u, 4u, 16u}) {
        AllAssocSim fresh(0, 16);
        for (std::uint64_t key : keys)
            fresh.observe(key);
        EXPECT_EQ(sim.misses(0, ways), fresh.misses(0, ways));
    }
}

/** The headline equivalence across the configuration grid. */
TEST(AllAssocTest, MatchesDirectSetAssociativeSimulation)
{
    const auto keys = mixedTrace(6000, 9);
    AllAssocSim sim(4, 8);
    for (std::uint64_t key : keys)
        sim.observe(key);

    for (unsigned set_bits : {0u, 1u, 2u, 3u, 4u}) {
        for (std::size_t ways : {1u, 2u, 4u, 8u}) {
            const std::size_t entries = (std::size_t{1} << set_bits) *
                                        ways;
            SetAssocTlb tlb(entries, ways, IndexScheme::Exact);
            for (std::uint64_t key : keys)
                tlb.access(PageId{key, kLog2_4K}, key << kLog2_4K);
            EXPECT_EQ(sim.misses(set_bits, ways), tlb.stats().misses)
                << "sets 2^" << set_bits << " ways " << ways;
        }
    }
}

TEST(AllAssocTest, MissesForCapacityConvenience)
{
    const auto keys = mixedTrace(2000, 11);
    AllAssocSim sim(5, 4);
    for (std::uint64_t key : keys)
        sim.observe(key);
    EXPECT_EQ(sim.missesForCapacity(16, 2), sim.misses(3, 2));
    EXPECT_EQ(sim.missesForCapacity(32, 2), sim.misses(4, 2));
}

TEST(AllAssocTest, MoreWaysNeverMoreMisses)
{
    // Per-set LRU inclusion: at fixed sets, associativity only helps.
    const auto keys = mixedTrace(5000, 13);
    AllAssocSim sim(3, 16);
    for (std::uint64_t key : keys)
        sim.observe(key);
    for (unsigned set_bits = 0; set_bits <= 3; ++set_bits)
        for (std::size_t ways = 2; ways <= 16; ++ways)
            EXPECT_LE(sim.misses(set_bits, ways),
                      sim.misses(set_bits, ways - 1));
}

TEST(AllAssocTest, SeparateIndexKeySupported)
{
    // The large-page-index scheme on small pages: index with the
    // chunk number while tagging with the page number.
    AllAssocSim sim(2, 4);
    // Eight consecutive small pages of one chunk: same index.
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t page = 0; page < 8; ++page)
            sim.observe(page, page >> 3);
    // 2 sets x 4 ways with everything in one set: 8 pages cycling
    // through 4 ways miss every time (Section 2.2's collision cost).
    EXPECT_EQ(sim.misses(1, 4), 24u);
    // Indexed by their own low bits, 4 pages per set fit in 4 ways:
    // only the cold misses remain.
    AllAssocSim spread(2, 4);
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t page = 0; page < 8; ++page)
            spread.observe(page, page);
    EXPECT_EQ(spread.misses(1, 4), 8u);
}

TEST(AllAssocTest, ResetClears)
{
    AllAssocSim sim(2, 2);
    sim.observe(1);
    sim.reset();
    EXPECT_EQ(sim.refs(), 0u);
    EXPECT_EQ(sim.misses(0, 1), 0u);
}

TEST(AllAssocDeathTest, OutOfRangeQueriesFatal)
{
    AllAssocSim sim(2, 2);
    EXPECT_EXIT(sim.misses(3, 1), ::testing::ExitedWithCode(1),
                "beyond");
    EXPECT_EXIT(sim.misses(1, 3), ::testing::ExitedWithCode(1),
                "outside");
    EXPECT_EXIT(sim.missesForCapacity(6, 2),
                ::testing::ExitedWithCode(1), "power-of-two");
}

} // namespace
} // namespace tps
