/**
 * @file
 * Tests for Mattson LRU stack simulation — including the key property
 * that one stack-simulation pass equals direct fully associative LRU
 * simulation at every size (the paper's tycho methodology).
 */

#include "stacksim/lru_stack.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"
#include "util/random.h"
#include "vm/page.h"

namespace tps
{
namespace
{

TEST(LruStackTest, ColdMissesCounted)
{
    LruStackSim sim(8);
    sim.observe(1);
    sim.observe(2);
    sim.observe(3);
    EXPECT_EQ(sim.coldMisses(), 3u);
    EXPECT_EQ(sim.refs(), 3u);
    EXPECT_EQ(sim.missesForSize(8), 3u);
}

TEST(LruStackTest, HitAtDepth)
{
    LruStackSim sim(8);
    sim.observe(1);
    sim.observe(2);
    sim.observe(1); // distance 1: hits with >= 2 entries
    EXPECT_EQ(sim.missesForSize(1), 3u);
    EXPECT_EQ(sim.missesForSize(2), 2u);
}

TEST(LruStackTest, CyclicThrashAtExactCapacity)
{
    // The classic LRU pathology: cycling N+1 blocks through an
    // N-entry buffer misses every time.
    LruStackSim sim(8);
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t key = 0; key <= 4; ++key)
            sim.observe(key);
    EXPECT_EQ(sim.missesForSize(4), sim.refs());
    EXPECT_EQ(sim.missesForSize(5), 5u); // only the cold misses
}

TEST(LruStackTest, MissesMonotoneNonIncreasingInSize)
{
    LruStackSim sim(32);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        sim.observe(rng.below(64));
    for (std::size_t n = 1; n < 32; ++n)
        EXPECT_LE(sim.missesForSize(n + 1), sim.missesForSize(n));
}

/**
 * The central equivalence: stack simulation reproduces direct
 * fully-associative-LRU miss counts for every size in one pass.
 */
TEST(LruStackTest, MatchesDirectFullyAssociativeSimulation)
{
    Rng rng(7);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 8000; ++i) {
        // Mix of hot and cold pages for realistic distances.
        keys.push_back(rng.chance(0.7) ? rng.below(12)
                                       : rng.below(200));
    }

    LruStackSim stack(64);
    for (std::uint64_t key : keys)
        stack.observe(key);

    for (std::size_t entries : {1u, 2u, 3u, 8u, 16u, 33u, 64u}) {
        FullyAssocTlb tlb(entries, ReplPolicy::LRU);
        for (std::uint64_t key : keys)
            tlb.access(PageId{key, kLog2_4K}, key << kLog2_4K);
        EXPECT_EQ(stack.missesForSize(entries), tlb.stats().misses)
            << "entries " << entries;
    }
}

TEST(LruStackTest, SequentialScanMissesEverywhere)
{
    LruStackSim sim(16);
    for (std::uint64_t key = 0; key < 1000; ++key)
        sim.observe(key);
    for (std::size_t n = 1; n <= 16; ++n)
        EXPECT_EQ(sim.missesForSize(n), 1000u);
}

TEST(LruStackTest, ResetClears)
{
    LruStackSim sim(4);
    sim.observe(1);
    sim.reset();
    EXPECT_EQ(sim.refs(), 0u);
    EXPECT_EQ(sim.missesForSize(4), 0u);
}

TEST(LruStackDeathTest, SizeBeyondDepthFatal)
{
    LruStackSim sim(4);
    EXPECT_EXIT(sim.missesForSize(5), ::testing::ExitedWithCode(1),
                "beyond");
}

} // namespace
} // namespace tps
