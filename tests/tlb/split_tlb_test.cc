/** @file Unit tests for the split (per-size) TLB organization. */

#include "tlb/split_tlb.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"

namespace tps
{
namespace
{

std::unique_ptr<SplitTlb>
makeSplit(std::size_t small_entries, std::size_t large_entries)
{
    return std::make_unique<SplitTlb>(
        std::make_unique<FullyAssocTlb>(small_entries),
        std::make_unique<FullyAssocTlb>(large_entries), kLog2_32K);
}

TEST(SplitTlbTest, RoutesBySize)
{
    auto tlb = makeSplit(4, 2);
    tlb->access(PageId{0x10, kLog2_4K}, 0x10000);
    tlb->access(PageId{0x2, kLog2_32K}, 0x10000);
    EXPECT_EQ(tlb->smallTlb().stats().accesses, 1u);
    EXPECT_EQ(tlb->largeTlb().stats().accesses, 1u);
}

TEST(SplitTlbTest, CapacityIsSum)
{
    EXPECT_EQ(makeSplit(12, 4)->capacity(), 16u);
}

TEST(SplitTlbTest, CombinedStatsAggregate)
{
    auto tlb = makeSplit(4, 2);
    tlb->access(PageId{0x1, kLog2_4K}, 0x1000);
    tlb->access(PageId{0x1, kLog2_4K}, 0x1000);
    tlb->access(PageId{0x9, kLog2_32K}, 0x48000);
    const TlbStats &stats = tlb->stats();
    EXPECT_EQ(stats.accesses, 3u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.missesSmall, 1u);
    EXPECT_EQ(stats.missesLarge, 1u);
    EXPECT_EQ(stats.hitsSmall, 1u);
}

TEST(SplitTlbTest, StrandedCapacity)
{
    // The paper's criticism of option (c): if the OS allocates no
    // large pages, the large sub-TLB is dead weight.  A 6+2 split
    // thrashes on 8 small pages even though an 8-entry unified FA
    // TLB would hold them.
    auto split = makeSplit(6, 2);
    FullyAssocTlb unified(8);
    for (int round = 0; round < 4; ++round) {
        for (Addr vpn = 0; vpn < 8; ++vpn) {
            split->access(PageId{vpn, kLog2_4K}, vpn << 12);
            unified.access(PageId{vpn, kLog2_4K}, vpn << 12);
        }
    }
    EXPECT_GT(split->stats().misses, unified.stats().misses);
    EXPECT_EQ(unified.stats().misses, 8u); // cold only
}

TEST(SplitTlbTest, InvalidationRoutes)
{
    auto tlb = makeSplit(4, 2);
    tlb->access(PageId{0x1, kLog2_4K}, 0x1000);
    tlb->access(PageId{0x9, kLog2_32K}, 0x48000);
    tlb->invalidatePage(PageId{0x1, kLog2_4K});
    EXPECT_EQ(tlb->smallTlb().stats().invalidations, 1u);
    EXPECT_EQ(tlb->largeTlb().stats().invalidations, 0u);
    tlb->invalidatePage(PageId{0x9, kLog2_32K});
    EXPECT_EQ(tlb->largeTlb().stats().invalidations, 1u);
}

TEST(SplitTlbTest, InvalidateAllAndReset)
{
    auto tlb = makeSplit(4, 2);
    tlb->access(PageId{0x1, kLog2_4K}, 0x1000);
    tlb->access(PageId{0x9, kLog2_32K}, 0x48000);
    tlb->invalidateAll();
    EXPECT_EQ(tlb->stats().invalidations, 2u);
    tlb->reset();
    EXPECT_EQ(tlb->stats().accesses, 0u);
}

TEST(SplitTlbTest, ResetStatsKeepsContents)
{
    auto tlb = makeSplit(4, 2);
    tlb->access(PageId{0x1, kLog2_4K}, 0x1000);
    tlb->resetStats();
    EXPECT_EQ(tlb->stats().accesses, 0u);
    EXPECT_TRUE(tlb->access(PageId{0x1, kLog2_4K}, 0x1000));
}

TEST(SplitTlbTest, NameMentionsBothHalves)
{
    auto tlb = makeSplit(12, 4);
    const std::string name = tlb->name();
    EXPECT_NE(name.find("split"), std::string::npos);
    EXPECT_NE(name.find("12-entry"), std::string::npos);
    EXPECT_NE(name.find("4-entry"), std::string::npos);
}

} // namespace
} // namespace tps
