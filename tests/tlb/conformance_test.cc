/**
 * @file
 * Conformance suite over the whole Tlb interface: every organization
 * x replacement combination must satisfy the same accounting and
 * residency invariants when driven by a real reference stream.
 */

#include <gtest/gtest.h>

#include "tlb/factory.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"

namespace tps
{
namespace
{

struct ConformanceParam
{
    std::string label;
    TlbConfig config;
};

std::vector<ConformanceParam>
allConfigs()
{
    std::vector<ConformanceParam> params;
    const ReplPolicy policies[] = {ReplPolicy::LRU, ReplPolicy::FIFO,
                                   ReplPolicy::Random,
                                   ReplPolicy::TreePLRU};
    const char *policy_names[] = {"lru", "fifo", "random", "plru"};

    for (std::size_t p = 0; p < 4; ++p) {
        {
            TlbConfig config;
            config.organization = TlbOrganization::FullyAssociative;
            config.entries = 16;
            config.replacement = policies[p];
            params.push_back({std::string("fa16_") + policy_names[p],
                              config});
        }
        {
            TlbConfig config;
            config.organization = TlbOrganization::SetAssociative;
            config.entries = 32;
            config.ways = 2;
            config.scheme = IndexScheme::Exact;
            config.replacement = policies[p];
            params.push_back({std::string("sa32x2_") +
                                  policy_names[p],
                              config});
        }
    }
    for (IndexScheme scheme : {IndexScheme::SmallPage,
                               IndexScheme::LargePage}) {
        TlbConfig config;
        config.organization = TlbOrganization::SetAssociative;
        config.entries = 16;
        config.ways = 4;
        config.scheme = scheme;
        params.push_back(
            {std::string("sa16x4_") + indexSchemeName(scheme),
             config});
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::Split;
        config.entries = 24;
        config.splitLargeEntries = 8;
        params.push_back({"split24", config});
    }
    {
        TlbConfig config;
        config.organization = TlbOrganization::TwoLevel;
        config.entries = 32;
        config.l1Entries = 4;
        params.push_back({"twolevel4_32", config});
    }
    return params;
}

class TlbConformanceTest
    : public ::testing::TestWithParam<ConformanceParam>
{
};

/** Drive a two-size reference stream and check the books balance. */
TEST_P(TlbConformanceTest, AccountingInvariants)
{
    auto tlb = makeTlb(GetParam().config);
    TwoSizeConfig policy_config;
    policy_config.window = 20'000;
    TwoSizePolicy policy(policy_config);
    policy.setInvalidationSink(tlb.get());

    auto workload = workloads::findWorkload("doduc").instantiate();
    MemRef ref;
    RefTime now = 0;
    std::uint64_t observed_hits = 0;
    while (now < 100'000 && workload->next(ref)) {
        ++now;
        const PageId page = policy.classify(ref.vaddr, now);
        observed_hits += tlb->access(page, ref.vaddr) ? 1 : 0;
    }

    const TlbStats &stats = tlb->stats();
    EXPECT_EQ(stats.accesses, 100'000u);
    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    EXPECT_EQ(stats.hits, observed_hits);
    EXPECT_EQ(stats.hitsSmall + stats.hitsLarge, stats.hits);
    EXPECT_EQ(stats.missesSmall + stats.missesLarge, stats.misses);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GE(stats.missRatio(), 0.0);
    EXPECT_LE(stats.missRatio(), 1.0);
}

/** Repeated access to one page hits from the second access on. */
TEST_P(TlbConformanceTest, SinglePageAlwaysHitsAfterFill)
{
    auto tlb = makeTlb(GetParam().config);
    const PageId page{0x4242, kLog2_4K};
    EXPECT_FALSE(tlb->access(page, page.baseAddr()));
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(tlb->access(page, page.baseAddr()));
}

/** Invalidation of a resident page forces exactly one refill miss. */
TEST_P(TlbConformanceTest, InvalidateForcesRefill)
{
    auto tlb = makeTlb(GetParam().config);
    const PageId page{0x9, kLog2_32K};
    tlb->access(page, page.baseAddr());
    tlb->invalidatePage(page);
    EXPECT_FALSE(tlb->access(page, page.baseAddr()));
    EXPECT_TRUE(tlb->access(page, page.baseAddr()));
}

/** reset() restores a pristine simulator (replay-identical). */
TEST_P(TlbConformanceTest, ResetMakesRunsIdentical)
{
    auto tlb = makeTlb(GetParam().config);
    auto workload = workloads::findWorkload("xnews").instantiate();

    auto run = [&] {
        workload->reset();
        tlb->reset();
        SingleSizePolicy policy(kLog2_4K);
        MemRef ref;
        RefTime now = 0;
        while (now < 30'000 && workload->next(ref)) {
            ++now;
            tlb->access(policy.classify(ref.vaddr, now), ref.vaddr);
        }
        return tlb->stats().misses;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, TlbConformanceTest,
    ::testing::ValuesIn(allConfigs()),
    [](const ::testing::TestParamInfo<ConformanceParam> &info) {
        std::string name = info.param.label;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace tps
