/** @file Unit tests for victim selection (tlb/replacement.h). */

#include "tlb/replacement.h"

#include <gtest/gtest.h>

#include <array>

namespace tps
{
namespace
{

std::array<TlbEntry, 4>
fourValidEntries()
{
    std::array<TlbEntry, 4> entries{};
    for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i].valid = true;
        entries[i].page = PageId{i, kLog2_4K};
        entries[i].lastUse = 10 + i;
        entries[i].inserted = 20 - i;
    }
    return entries;
}

TEST(ReplacementTest, InvalidPreferredUnconditionally)
{
    auto entries = fourValidEntries();
    entries[2].valid = false;
    Rng rng(1);
    for (ReplPolicy policy :
         {ReplPolicy::LRU, ReplPolicy::FIFO, ReplPolicy::Random}) {
        EXPECT_EQ(chooseVictim(entries.data(), entries.size(), policy,
                               rng),
                  2u);
    }
}

TEST(ReplacementTest, FirstInvalidWins)
{
    auto entries = fourValidEntries();
    entries[1].valid = false;
    entries[3].valid = false;
    Rng rng(2);
    EXPECT_EQ(chooseVictim(entries.data(), entries.size(),
                           ReplPolicy::LRU, rng),
              1u);
}

TEST(ReplacementTest, LruPicksOldestUse)
{
    auto entries = fourValidEntries(); // lastUse 10,11,12,13
    Rng rng(3);
    EXPECT_EQ(chooseVictim(entries.data(), entries.size(),
                           ReplPolicy::LRU, rng),
              0u);
    entries[0].lastUse = 99;
    EXPECT_EQ(chooseVictim(entries.data(), entries.size(),
                           ReplPolicy::LRU, rng),
              1u);
}

TEST(ReplacementTest, FifoPicksOldestInsertion)
{
    auto entries = fourValidEntries(); // inserted 20,19,18,17
    Rng rng(4);
    EXPECT_EQ(chooseVictim(entries.data(), entries.size(),
                           ReplPolicy::FIFO, rng),
              3u);
}

TEST(ReplacementTest, RandomCoversAllWays)
{
    auto entries = fourValidEntries();
    Rng rng(5);
    std::array<int, 4> picks{};
    for (int i = 0; i < 4000; ++i)
        ++picks[chooseVictim(entries.data(), entries.size(),
                             ReplPolicy::Random, rng)];
    for (int count : picks)
        EXPECT_GT(count, 700); // roughly uniform
}

TEST(ReplacementTest, SingleCandidate)
{
    TlbEntry entry;
    entry.valid = true;
    Rng rng(6);
    for (ReplPolicy policy :
         {ReplPolicy::LRU, ReplPolicy::FIFO, ReplPolicy::Random})
        EXPECT_EQ(chooseVictim(&entry, 1, policy, rng), 0u);
}

TEST(ReplacementTest, PolicyNames)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "LRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::FIFO), "FIFO");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "random");
}

} // namespace
} // namespace tps
