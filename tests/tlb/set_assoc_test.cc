/**
 * @file
 * Unit tests for the set-associative TLB, focused on the three
 * indexing schemes of paper Section 2.2 and their documented
 * pathologies.
 */

#include "tlb/set_assoc.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

PageId
small(Addr vpn)
{
    return PageId{vpn, kLog2_4K};
}

PageId
large(Addr vpn)
{
    return PageId{vpn, kLog2_32K};
}

TEST(SetAssocTest, GeometryDerived)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    EXPECT_EQ(tlb.numSets(), 8u);
    EXPECT_EQ(tlb.numWays(), 2u);
    EXPECT_EQ(tlb.capacity(), 16u);
}

TEST(SetAssocTest, ExactIndexUsesOwnPageBits)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    // Small page at vaddr 0x3000: set = (0x3000 >> 12) & 7 = 3.
    EXPECT_EQ(tlb.indexFor(small(0x3), 0x3000), 3u);
    // Large page at vaddr 0x18000: set = (0x18000 >> 15) & 7 = 3.
    EXPECT_EQ(tlb.indexFor(large(0x3), 0x18000), 3u);
}

TEST(SetAssocTest, LargePageIndexConsistentForLargePages)
{
    SetAssocTlb tlb(16, 2, IndexScheme::LargePage);
    // Any offset inside the same 32KB page indexes the same set.
    const PageId page = large(0x5);
    const std::size_t set = tlb.indexFor(page, 0x5 << 15);
    for (Addr off = 0; off < (1u << 15); off += 0x1000)
        EXPECT_EQ(tlb.indexFor(page, (Addr{0x5} << 15) + off), set);
}

TEST(SetAssocTest, SmallPageIndexSplitsLargePages)
{
    // The Section 2.2 pathology: under the small-page index, a large
    // page indexes to different sets depending on offset bits that
    // are part of its own page offset.
    SetAssocTlb tlb(16, 2, IndexScheme::SmallPage);
    const PageId page = large(0x0);
    EXPECT_NE(tlb.indexFor(page, 0x0000), tlb.indexFor(page, 0x1000));
}

TEST(SetAssocTest, SmallPageIndexDuplicatesLargePageEntries)
{
    SetAssocTlb tlb(16, 2, IndexScheme::SmallPage);
    const PageId page = large(0x0);
    tlb.access(page, 0x0000); // fills set 0
    tlb.access(page, 0x1000); // MISSES again, fills set 1
    EXPECT_EQ(tlb.stats().misses, 2u);
    EXPECT_EQ(tlb.residentCopies(page), 2u);
    // ...which "negates the very reason to support both sizes".
}

TEST(SetAssocTest, ExactIndexNoDuplicates)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    const PageId page = large(0x0);
    tlb.access(page, 0x0000);
    EXPECT_TRUE(tlb.access(page, 0x1000)); // same set, same tag: hit
    EXPECT_EQ(tlb.residentCopies(page), 1u);
}

TEST(SetAssocTest, LargeIndexConflictsEightSmallPages)
{
    // Section 2.2: with the large-page index, the 8 small pages of a
    // chunk compete for one set; at 2 ways a cyclic scan thrashes.
    SetAssocTlb tlb(16, 2, IndexScheme::LargePage);
    for (int round = 0; round < 3; ++round)
        for (Addr block = 0; block < 8; ++block)
            tlb.access(small(block), block << 12);
    EXPECT_EQ(tlb.stats().misses, 24u); // every access misses
}

TEST(SetAssocTest, ExactIndexSpreadsEightSmallPages)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    for (int round = 0; round < 3; ++round)
        for (Addr block = 0; block < 8; ++block)
            tlb.access(small(block), block << 12);
    EXPECT_EQ(tlb.stats().misses, 8u); // cold only: one per set
}

TEST(SetAssocTest, HigherAssociativityAbsorbsLargeIndexConflicts)
{
    // Section 2.2(c): raising associativity to the chunk block count
    // removes the collision cost.
    SetAssocTlb tlb(16, 8, IndexScheme::LargePage);
    for (int round = 0; round < 3; ++round)
        for (Addr block = 0; block < 8; ++block)
            tlb.access(small(block), block << 12);
    EXPECT_EQ(tlb.stats().misses, 8u); // cold only
}

TEST(SetAssocTest, InvalidateFindsDuplicates)
{
    SetAssocTlb tlb(16, 2, IndexScheme::SmallPage);
    const PageId page = large(0x0);
    tlb.access(page, 0x0000);
    tlb.access(page, 0x1000);
    ASSERT_EQ(tlb.residentCopies(page), 2u);
    tlb.invalidatePage(page);
    EXPECT_EQ(tlb.residentCopies(page), 0u);
    EXPECT_EQ(tlb.stats().invalidations, 2u);
}

TEST(SetAssocTest, LruWithinSet)
{
    SetAssocTlb tlb(4, 2, IndexScheme::Exact); // 2 sets
    // Pages 0 and 2 land in set 0; page 4 also set 0.
    tlb.access(small(0), 0x0000);
    tlb.access(small(2), 0x2000);
    tlb.access(small(0), 0x0000); // refresh 0
    tlb.access(small(4), 0x4000); // evicts 2
    EXPECT_TRUE(tlb.access(small(0), 0x0000));
    EXPECT_FALSE(tlb.access(small(2), 0x2000));
}

TEST(SetAssocTest, DirectMappedWorks)
{
    SetAssocTlb tlb(8, 1, IndexScheme::Exact);
    EXPECT_EQ(tlb.numSets(), 8u);
    tlb.access(small(0), 0x0000);
    tlb.access(small(8), 0x8000); // same set, evicts
    EXPECT_FALSE(tlb.access(small(0), 0x0000));
}

TEST(SetAssocTest, ResetStatsKeepsContents)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    tlb.access(small(1), 0x1000);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.access(small(1), 0x1000));
}

TEST(SetAssocTest, NameDescribesScheme)
{
    SetAssocTlb tlb(32, 2, IndexScheme::LargePage);
    const std::string name = tlb.name();
    EXPECT_NE(name.find("32-entry"), std::string::npos);
    EXPECT_NE(name.find("large-index"), std::string::npos);
}

TEST(SetAssocDeathTest, BadGeometryFatal)
{
    EXPECT_EXIT((SetAssocTlb{0, 2, IndexScheme::Exact}),
                ::testing::ExitedWithCode(1), "entries");
    EXPECT_EXIT((SetAssocTlb{15, 2, IndexScheme::Exact}),
                ::testing::ExitedWithCode(1), "divisible");
    EXPECT_EXIT((SetAssocTlb{24, 2, IndexScheme::Exact}),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT((SetAssocTlb{16, 2, IndexScheme::Exact, 15, 12}),
                ::testing::ExitedWithCode(1), "exceed");
}

/**
 * Property sweep over geometries: a pure warm single-page working
 * set no larger than the associativity never misses after warmup.
 */
class GeometryTest
    : public ::testing::TestWithParam<std::pair<std::size_t,
                                                std::size_t>>
{
};

TEST_P(GeometryTest, WorkingSetWithinOneSetFits)
{
    const auto [entries, ways] = GetParam();
    SetAssocTlb tlb(entries, ways, IndexScheme::Exact);
    const std::size_t sets = entries / ways;
    // `ways` pages that all map to set 0.
    for (int round = 0; round < 5; ++round)
        for (std::size_t i = 0; i < ways; ++i)
            tlb.access(small(i * sets), (i * sets) << 12);
    EXPECT_EQ(tlb.stats().misses, ways); // cold misses only
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 1},
                      std::pair<std::size_t, std::size_t>{16, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{32, 2},
                      std::pair<std::size_t, std::size_t>{32, 8},
                      std::pair<std::size_t, std::size_t>{64, 4}));

} // namespace
} // namespace tps
