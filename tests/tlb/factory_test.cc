/** @file Unit tests for the TLB config factory. */

#include "tlb/factory.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"
#include "tlb/split_tlb.h"

namespace tps
{
namespace
{

TEST(FactoryTest, BuildsFullyAssociative)
{
    TlbConfig config;
    config.organization = TlbOrganization::FullyAssociative;
    config.entries = 48; // R4000-style non-power-of-two
    auto tlb = makeTlb(config);
    EXPECT_EQ(tlb->capacity(), 48u);
    EXPECT_NE(dynamic_cast<FullyAssocTlb *>(tlb.get()), nullptr);
}

TEST(FactoryTest, BuildsSetAssociative)
{
    TlbConfig config;
    config.organization = TlbOrganization::SetAssociative;
    config.entries = 32;
    config.ways = 4;
    config.scheme = IndexScheme::LargePage;
    auto tlb = makeTlb(config);
    auto *sa = dynamic_cast<SetAssocTlb *>(tlb.get());
    ASSERT_NE(sa, nullptr);
    EXPECT_EQ(sa->numSets(), 8u);
    EXPECT_EQ(sa->scheme(), IndexScheme::LargePage);
}

TEST(FactoryTest, BuildsSplit)
{
    TlbConfig config;
    config.organization = TlbOrganization::Split;
    config.entries = 16;
    config.splitLargeEntries = 4;
    auto tlb = makeTlb(config);
    auto *split = dynamic_cast<SplitTlb *>(tlb.get());
    ASSERT_NE(split, nullptr);
    EXPECT_EQ(split->smallTlb().capacity(), 12u);
    EXPECT_EQ(split->largeTlb().capacity(), 4u);
}

TEST(FactoryTest, DescribeMentionsShape)
{
    TlbConfig config;
    config.organization = TlbOrganization::SetAssociative;
    config.entries = 16;
    config.ways = 2;
    config.scheme = IndexScheme::Exact;
    EXPECT_EQ(config.describe(), "16-entry 2-way exact-index");

    config.organization = TlbOrganization::FullyAssociative;
    EXPECT_EQ(config.describe(), "16-entry fully-assoc");

    config.organization = TlbOrganization::Split;
    config.splitLargeEntries = 4;
    EXPECT_EQ(config.describe(), "16-entry split(12s+4l)");
}

TEST(FactoryTest, FreshTlbsIndependent)
{
    TlbConfig config;
    auto a = makeTlb(config);
    auto b = makeTlb(config);
    a->access(PageId{1, kLog2_4K}, 0x1000);
    EXPECT_EQ(b->stats().accesses, 0u);
}

TEST(FactoryDeathTest, BadSplitFatal)
{
    TlbConfig config;
    config.organization = TlbOrganization::Split;
    config.entries = 16;
    config.splitLargeEntries = 16;
    EXPECT_EXIT(makeTlb(config), ::testing::ExitedWithCode(1), "split");
    config.splitLargeEntries = 0;
    EXPECT_EXIT(makeTlb(config), ::testing::ExitedWithCode(1), "split");
}

TEST(IndexSchemeTest, Names)
{
    EXPECT_STREQ(indexSchemeName(IndexScheme::SmallPage),
                 "small-index");
    EXPECT_STREQ(indexSchemeName(IndexScheme::LargePage),
                 "large-index");
    EXPECT_STREQ(indexSchemeName(IndexScheme::Exact), "exact-index");
}

} // namespace
} // namespace tps
