/** @file Unit tests for the two-level TLB hierarchy. */

#include "tlb/two_level_tlb.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"

namespace tps
{
namespace
{

TwoLevelTlb
makeHierarchy(std::size_t l1, std::size_t l2)
{
    return TwoLevelTlb(std::make_unique<FullyAssocTlb>(l1),
                       std::make_unique<FullyAssocTlb>(l2));
}

PageId
page(Addr vpn)
{
    return PageId{vpn, kLog2_4K};
}

TEST(TwoLevelTest, L1HitFastPath)
{
    auto tlb = makeHierarchy(2, 8);
    tlb.access(page(1), 0x1000);
    EXPECT_TRUE(tlb.access(page(1), 0x1000));
    EXPECT_EQ(tlb.levelStats().l1Hits, 1u);
    EXPECT_EQ(tlb.levelStats().l2Hits, 0u);
}

TEST(TwoLevelTest, L2CatchesL1Evictions)
{
    auto tlb = makeHierarchy(2, 8);
    // Touch 3 pages: page 1 falls out of the 2-entry L1 but stays in
    // the 8-entry L2.
    tlb.access(page(1), 0x1000);
    tlb.access(page(2), 0x2000);
    tlb.access(page(3), 0x3000);
    EXPECT_TRUE(tlb.access(page(1), 0x1000)); // L2 hit, L1 refill
    EXPECT_EQ(tlb.levelStats().l2Hits, 1u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    // Refilled: next access is an L1 hit.
    EXPECT_TRUE(tlb.access(page(1), 0x1000));
    EXPECT_EQ(tlb.levelStats().l1Hits, 1u);
}

TEST(TwoLevelTest, MissCountsOnlyFullMisses)
{
    auto tlb = makeHierarchy(2, 8);
    for (Addr vpn = 0; vpn < 4; ++vpn)
        tlb.access(page(vpn), vpn << 12);
    EXPECT_EQ(tlb.stats().misses, 4u);       // all cold
    EXPECT_EQ(tlb.levelStats().l2Misses, 4u);
    // Re-touch everything: within L2 reach, so no new misses.
    for (Addr vpn = 0; vpn < 4; ++vpn)
        tlb.access(page(vpn), vpn << 12);
    EXPECT_EQ(tlb.stats().misses, 4u);
}

TEST(TwoLevelTest, SameMissesAsFlatL2SizedTlb)
{
    // With inclusion-on-fill and LRU everywhere, the hierarchy's
    // *misses* match a flat TLB of L2 size when the L1 refill path
    // keeps L2 recency in sync (it does: every access reaches L2
    // unless L1 hits, and L1 hits imply L2 would hit too under
    // inclusion... verified empirically here on a mixed pattern).
    auto hierarchy = makeHierarchy(4, 16);
    FullyAssocTlb flat(16);
    Rng rng(5);
    std::uint64_t mismatch = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr vpn = rng.chance(0.7) ? rng.below(10)
                                         : rng.below(64);
        const bool a = hierarchy.access(page(vpn), vpn << 12);
        const bool b = flat.access(page(vpn), vpn << 12);
        mismatch += a != b ? 1 : 0;
    }
    // L1 hits can mask L2 LRU updates, so small divergence is
    // possible in principle; it must stay marginal.
    EXPECT_LT(static_cast<double>(mismatch), 20000 * 0.02);
}

TEST(TwoLevelTest, InvalidationReachesBothLevels)
{
    auto tlb = makeHierarchy(2, 8);
    tlb.access(page(1), 0x1000);
    tlb.invalidatePage(page(1));
    EXPECT_FALSE(tlb.access(page(1), 0x1000)); // full miss again
    EXPECT_EQ(tlb.levelStats().l2Misses, 2u);
}

TEST(TwoLevelTest, ResetAndResetStats)
{
    auto tlb = makeHierarchy(2, 8);
    tlb.access(page(1), 0x1000);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.access(page(1), 0x1000)); // contents kept
    tlb.reset();
    EXPECT_FALSE(tlb.access(page(1), 0x1000)); // contents gone
}

TEST(TwoLevelTest, CapacityIsL2)
{
    EXPECT_EQ(makeHierarchy(4, 64).capacity(), 64u);
}

TEST(TwoLevelTest, NameMentionsBothLevels)
{
    auto tlb = makeHierarchy(4, 64);
    EXPECT_NE(tlb.name().find("L1["), std::string::npos);
    EXPECT_NE(tlb.name().find("L2["), std::string::npos);
}

TEST(TwoLevelDeathTest, L1MustBeSmaller)
{
    EXPECT_EXIT(makeHierarchy(8, 8), ::testing::ExitedWithCode(1),
                "smaller");
}

} // namespace
} // namespace tps
