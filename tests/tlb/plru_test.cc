/** @file Unit tests for tree pseudo-LRU replacement. */

#include "tlb/replacement.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"
#include "tlb/set_assoc.h"

namespace tps
{
namespace
{

TEST(PlruTreeTest, TwoWaysAlternate)
{
    PlruTree tree;
    tree.touch(0, 2);
    EXPECT_EQ(tree.victim(2), 1u);
    tree.touch(1, 2);
    EXPECT_EQ(tree.victim(2), 0u);
}

TEST(PlruTreeTest, SequentialFillVictimIsFirst)
{
    for (std::size_t ways : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
        PlruTree tree;
        for (std::size_t way = 0; way < ways; ++way)
            tree.touch(way, ways);
        EXPECT_EQ(tree.victim(ways), 0u) << ways << " ways";
    }
}

TEST(PlruTreeTest, NeverVictimizesMostRecentlyTouched)
{
    // The defining guarantee of tree-PLRU.
    for (std::size_t ways : {2ul, 4ul, 8ul, 16ul}) {
        PlruTree tree;
        Rng rng(ways);
        for (int i = 0; i < 20000; ++i) {
            const std::size_t way =
                static_cast<std::size_t>(rng.below(ways));
            tree.touch(way, ways);
            ASSERT_NE(tree.victim(ways), way)
                << ways << " ways, iteration " << i;
        }
    }
}

TEST(PlruTreeTest, VictimAlwaysInRange)
{
    PlruTree tree;
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        tree.touch(static_cast<std::size_t>(rng.below(8)), 8);
        ASSERT_LT(tree.victim(8), 8u);
    }
}

TEST(PlruFaTest, BehavesLikeLruOnSequentialFill)
{
    FullyAssocTlb plru(4, ReplPolicy::TreePLRU);
    FullyAssocTlb lru(4, ReplPolicy::LRU);
    // Fill 4, then insert a 5th: both evict the oldest (way 0).
    for (Addr vpn = 0; vpn < 5; ++vpn) {
        plru.access(PageId{vpn, kLog2_4K}, vpn << 12);
        lru.access(PageId{vpn, kLog2_4K}, vpn << 12);
    }
    for (Addr vpn = 1; vpn <= 4; ++vpn) {
        EXPECT_EQ(plru.contains(PageId{vpn, kLog2_4K}),
                  lru.contains(PageId{vpn, kLog2_4K}))
            << "vpn " << vpn;
    }
    EXPECT_FALSE(plru.contains(PageId{0, kLog2_4K}));
}

TEST(PlruFaTest, HotEntrySurvives)
{
    FullyAssocTlb tlb(4, ReplPolicy::TreePLRU);
    const PageId hot{99, kLog2_4K};
    for (Addr vpn = 0; vpn < 100; ++vpn) {
        tlb.access(hot, hot.vpn << 12); // touch hot every other access
        tlb.access(PageId{vpn, kLog2_4K}, vpn << 12);
    }
    EXPECT_TRUE(tlb.contains(hot));
}

TEST(PlruSetAssocTest, WorksPerSet)
{
    SetAssocTlb tlb(16, 4, IndexScheme::Exact, kLog2_4K, kLog2_32K,
                    ReplPolicy::TreePLRU);
    // 4 pages in set 0 fit; a 5th evicts exactly one.
    for (Addr i = 0; i < 5; ++i)
        tlb.access(PageId{i * 4, kLog2_4K}, (i * 4) << 12);
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(PlruDeathTest, RequiresPowerOfTwoWays)
{
    EXPECT_EXIT(FullyAssocTlb(48, ReplPolicy::TreePLRU),
                ::testing::ExitedWithCode(1), "power-of-two");
    EXPECT_EXIT((SetAssocTlb{24, 3, IndexScheme::Exact, kLog2_4K,
                             kLog2_32K, ReplPolicy::TreePLRU}),
                ::testing::ExitedWithCode(1), "power-of-two");
}

} // namespace
} // namespace tps
