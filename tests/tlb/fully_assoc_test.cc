/** @file Unit tests for the fully associative TLB model. */

#include "tlb/fully_assoc.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

PageId
small(Addr vpn)
{
    return PageId{vpn, kLog2_4K};
}

PageId
large(Addr vpn)
{
    return PageId{vpn, kLog2_32K};
}

TEST(FullyAssocTest, MissThenHit)
{
    FullyAssocTlb tlb(4);
    EXPECT_FALSE(tlb.access(small(1), 0x1000));
    EXPECT_TRUE(tlb.access(small(1), 0x1000));
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(FullyAssocTest, MixedPageSizesCoexist)
{
    FullyAssocTlb tlb(4);
    tlb.access(small(0x10), 0x10000);
    tlb.access(large(0x2), 0x10000);
    // Same covering address, different sizes: both resident.
    EXPECT_TRUE(tlb.contains(small(0x10)));
    EXPECT_TRUE(tlb.contains(large(0x2)));
    EXPECT_TRUE(tlb.access(small(0x10), 0x10000));
    EXPECT_TRUE(tlb.access(large(0x2), 0x10000));
}

TEST(FullyAssocTest, SizeIsPartOfTheTag)
{
    // Section 2.1: hit detection must use the page size.  A resident
    // 4KB translation must not satisfy a 32KB lookup with equal vpn.
    FullyAssocTlb tlb(4);
    tlb.access(small(0x5), 0x5000);
    EXPECT_FALSE(tlb.access(large(0x5), 0x5000 << 3));
}

TEST(FullyAssocTest, LruEvictsLeastRecent)
{
    FullyAssocTlb tlb(2, ReplPolicy::LRU);
    tlb.access(small(1), 0);
    tlb.access(small(2), 0);
    tlb.access(small(1), 0); // refresh 1
    tlb.access(small(3), 0); // evicts 2
    EXPECT_TRUE(tlb.contains(small(1)));
    EXPECT_FALSE(tlb.contains(small(2)));
    EXPECT_TRUE(tlb.contains(small(3)));
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(FullyAssocTest, FifoIgnoresRecency)
{
    FullyAssocTlb tlb(2, ReplPolicy::FIFO);
    tlb.access(small(1), 0);
    tlb.access(small(2), 0);
    tlb.access(small(1), 0); // hit; FIFO order unchanged
    tlb.access(small(3), 0); // evicts 1 (oldest insertion)
    EXPECT_FALSE(tlb.contains(small(1)));
    EXPECT_TRUE(tlb.contains(small(2)));
}

TEST(FullyAssocTest, RandomReplacementStillCorrectlyTracksResidency)
{
    FullyAssocTlb tlb(4, ReplPolicy::Random);
    for (Addr vpn = 0; vpn < 100; ++vpn)
        tlb.access(small(vpn), vpn << 12);
    EXPECT_EQ(tlb.validCount(), 4u);
    EXPECT_EQ(tlb.stats().misses, 100u);
}

TEST(FullyAssocTest, InvalidatePage)
{
    FullyAssocTlb tlb(4);
    tlb.access(small(1), 0x1000);
    tlb.invalidatePage(small(1));
    EXPECT_FALSE(tlb.contains(small(1)));
    EXPECT_EQ(tlb.stats().invalidations, 1u);
    EXPECT_FALSE(tlb.access(small(1), 0x1000)); // misses again
}

TEST(FullyAssocTest, InvalidateAbsentPageHarmless)
{
    FullyAssocTlb tlb(4);
    tlb.invalidatePage(small(99));
    EXPECT_EQ(tlb.stats().invalidations, 0u);
}

TEST(FullyAssocTest, InvalidateAllFlushes)
{
    FullyAssocTlb tlb(4);
    tlb.access(small(1), 0);
    tlb.access(small(2), 0);
    tlb.invalidateAll();
    EXPECT_EQ(tlb.validCount(), 0u);
    EXPECT_EQ(tlb.stats().invalidations, 2u);
}

TEST(FullyAssocTest, StatsSplitBySize)
{
    FullyAssocTlb tlb(4, ReplPolicy::LRU, kLog2_32K);
    tlb.access(small(1), 0);
    tlb.access(small(1), 0);
    tlb.access(large(2), 0);
    EXPECT_EQ(tlb.stats().missesSmall, 1u);
    EXPECT_EQ(tlb.stats().hitsSmall, 1u);
    EXPECT_EQ(tlb.stats().missesLarge, 1u);
    EXPECT_EQ(tlb.stats().hitsLarge, 0u);
}

TEST(FullyAssocTest, ResetRestoresDeterminism)
{
    FullyAssocTlb tlb(2, ReplPolicy::Random, kLog2_32K, 77);
    std::vector<bool> first, second;
    for (Addr vpn = 0; vpn < 50; ++vpn)
        first.push_back(tlb.access(small(vpn % 5), 0));
    tlb.reset();
    for (Addr vpn = 0; vpn < 50; ++vpn)
        second.push_back(tlb.access(small(vpn % 5), 0));
    EXPECT_EQ(first, second);
}

TEST(FullyAssocTest, ResetStatsKeepsContents)
{
    FullyAssocTlb tlb(4);
    tlb.access(small(1), 0);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.access(small(1), 0)); // still resident
}

TEST(FullyAssocTest, MissRatio)
{
    FullyAssocTlb tlb(4);
    tlb.access(small(1), 0);
    tlb.access(small(1), 0);
    tlb.access(small(1), 0);
    tlb.access(small(2), 0);
    EXPECT_DOUBLE_EQ(tlb.stats().missRatio(), 0.5);
}

TEST(FullyAssocTest, CapacityHonored)
{
    FullyAssocTlb tlb(3);
    EXPECT_EQ(tlb.capacity(), 3u);
    for (Addr vpn = 0; vpn < 3; ++vpn)
        tlb.access(small(vpn), 0);
    EXPECT_EQ(tlb.stats().evictions, 0u);
    tlb.access(small(3), 0);
    EXPECT_EQ(tlb.stats().evictions, 1u);
    EXPECT_EQ(tlb.validCount(), 3u);
}

TEST(FullyAssocDeathTest, ZeroEntriesFatal)
{
    EXPECT_EXIT(FullyAssocTlb{0}, ::testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace tps
