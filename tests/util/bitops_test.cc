/** @file Unit tests for util/bitops.h. */

#include "util/bitops.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

TEST(BitopsTest, IsPow2RecognizesPowers)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(4097));
    EXPECT_TRUE(isPow2(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPow2(~std::uint64_t{0}));
}

TEST(BitopsTest, FloorLog2KnownValues)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(~std::uint64_t{0}), 63u);
}

TEST(BitopsTest, Log2ExactInvertsShift)
{
    for (unsigned bit = 0; bit < 64; ++bit)
        EXPECT_EQ(log2Exact(std::uint64_t{1} << bit), bit);
}

TEST(BitopsTest, CeilPow2)
{
    EXPECT_EQ(ceilPow2(1), 1u);
    EXPECT_EQ(ceilPow2(3), 4u);
    EXPECT_EQ(ceilPow2(4), 4u);
    EXPECT_EQ(ceilPow2(4097), 8192u);
}

TEST(BitopsTest, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xFFFu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(65), ~std::uint64_t{0});
}

TEST(BitopsTest, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xABCD, 15, 12), 0xAu);
    EXPECT_EQ(bits(0xABCD, 11, 8), 0xBu);
    EXPECT_EQ(bits(0xABCD, 3, 0), 0xDu);
    EXPECT_EQ(bits(0xFF, 7, 7), 1u);
}

TEST(BitopsTest, AlignmentRoundTrips)
{
    EXPECT_EQ(alignDown(0x1FFF, 12), 0x1000u);
    EXPECT_EQ(alignUp(0x1001, 12), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 12), 0x1000u);
    EXPECT_TRUE(isAligned(0x8000, 15));
    EXPECT_FALSE(isAligned(0x8001, 15));
}

/** Property sweep: alignDown <= addr < alignDown + 2^a, etc. */
TEST(BitopsTest, AlignmentProperties)
{
    for (unsigned a = 0; a <= 20; a += 4) {
        for (Addr addr :
             {Addr{0}, Addr{1}, Addr{0xFFF}, Addr{0x12345}, Addr{1} << 40}) {
            const Addr down = alignDown(addr, a);
            const Addr up = alignUp(addr, a);
            EXPECT_LE(down, addr);
            EXPECT_GE(up, addr);
            EXPECT_TRUE(isAligned(down, a));
            EXPECT_TRUE(isAligned(up, a));
            EXPECT_LT(addr - down, std::uint64_t{1} << a);
        }
    }
}

} // namespace
} // namespace tps
