/** @file Unit tests for util/format.h. */

#include "util/format.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tps
{
namespace
{

TEST(FormatTest, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(1000000000ull), "1,000,000,000");
}

TEST(FormatTest, FormatBytesUnits)
{
    EXPECT_EQ(formatBytes(0), "0B");
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(4096), "4KB");
    EXPECT_EQ(formatBytes(32 * 1024), "32KB");
    EXPECT_EQ(formatBytes(1536 * 1024), "1.5MB");
    EXPECT_EQ(formatBytes(1ull << 30), "1GB");
}

TEST(FormatTest, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.23456, 3), "1.235");
    EXPECT_EQ(formatFixed(1.0, 0), "1");
    EXPECT_EQ(formatFixed(-0.5, 2), "-0.50");
}

TEST(FormatTest, ParseSizePlain)
{
    std::uint64_t bytes = 0;
    ASSERT_TRUE(parseSize("512", bytes));
    EXPECT_EQ(bytes, 512u);
}

TEST(FormatTest, ParseSizeSuffixes)
{
    std::uint64_t bytes = 0;
    ASSERT_TRUE(parseSize("4K", bytes));
    EXPECT_EQ(bytes, 4096u);
    ASSERT_TRUE(parseSize("32KB", bytes));
    EXPECT_EQ(bytes, 32768u);
    ASSERT_TRUE(parseSize("2m", bytes));
    EXPECT_EQ(bytes, 2u << 20);
    ASSERT_TRUE(parseSize("1G", bytes));
    EXPECT_EQ(bytes, 1ull << 30);
}

TEST(FormatTest, ParseSizeRejectsGarbage)
{
    std::uint64_t bytes = 0;
    EXPECT_FALSE(parseSize("", bytes));
    EXPECT_FALSE(parseSize("KB", bytes));
    EXPECT_FALSE(parseSize("12X", bytes));
    EXPECT_FALSE(parseSize("99999999999999999999999", bytes));
}

TEST(FormatTest, EnvOrFallsBack)
{
    unsetenv("TPS_TEST_ENVVAR");
    EXPECT_EQ(envOr("TPS_TEST_ENVVAR", 123), 123u);
}

TEST(FormatTest, EnvOrParsesPlainAndSized)
{
    setenv("TPS_TEST_ENVVAR", "456", 1);
    EXPECT_EQ(envOr("TPS_TEST_ENVVAR", 1), 456u);
    setenv("TPS_TEST_ENVVAR", "2M", 1);
    EXPECT_EQ(envOr("TPS_TEST_ENVVAR", 1), 2u << 20);
    setenv("TPS_TEST_ENVVAR", "bogus", 1);
    EXPECT_EQ(envOr("TPS_TEST_ENVVAR", 7), 7u);
    unsetenv("TPS_TEST_ENVVAR");
}

} // namespace
} // namespace tps
