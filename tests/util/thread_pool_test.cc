/** @file Unit tests for the worker pool behind parallel sweeps. */

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tps::util
{
namespace
{

TEST(ThreadPoolTest, ZeroTasksConstructDestroy)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    // Destructor must join cleanly with an empty queue.
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return std::string("done"); });
    EXPECT_EQ(future.get(), "done");
}

TEST(ThreadPoolTest, ManyTasksAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    futures.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        futures.push_back(pool.submit([i, &ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
            return i;
        }));
    long long sum = 0;
    for (auto &future : futures)
        sum += future.get();
    EXPECT_EQ(ran.load(), 1000);
    EXPECT_EQ(sum, 999LL * 1000 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 1; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(good.get(), 1);
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnv)
{
    ::setenv("TPS_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ::unsetenv("TPS_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelMapIndexTest, PreservesIndexOrder)
{
    const auto squares = parallelMapIndex(
        4, 100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMapIndexTest, SerialAndParallelAgree)
{
    auto fn = [](std::size_t i) { return 3 * i + 1; };
    EXPECT_EQ(parallelMapIndex(1, 64, fn), parallelMapIndex(8, 64, fn));
}

TEST(ParallelMapIndexTest, EmptyAndSingleton)
{
    auto fn = [](std::size_t i) { return i; };
    EXPECT_TRUE(parallelMapIndex(4, 0, fn).empty());
    EXPECT_EQ(parallelMapIndex(4, 1, fn),
              std::vector<std::size_t>{0});
}

TEST(ParallelMapIndexTest, PropagatesTaskException)
{
    EXPECT_THROW(parallelMapIndex(4, 16,
                                  [](std::size_t i) -> int {
                                      if (i == 5)
                                          throw std::runtime_error(
                                              "cell failed");
                                      return 0;
                                  }),
                 std::runtime_error);
}

} // namespace
} // namespace tps::util
