/** @file Unit tests for the gem5-style logging facility. */

#include "util/logging.h"

#include <gtest/gtest.h>

namespace tps
{
namespace
{

TEST(LoggingTest, WarnIncrementsCounter)
{
    const std::uint64_t before = detail::warnCount();
    tps_warn("test warning ", 42);
    EXPECT_EQ(detail::warnCount(), before + 1);
}

TEST(LoggingTest, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("x=", 7, ", y=", 2.5, "!"),
              "x=7, y=2.5!");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingTest, QuietSuppressionToggle)
{
    detail::setQuiet(true);
    EXPECT_TRUE(detail::quiet());
    tps_inform("this should not appear");
    detail::setQuiet(false);
    EXPECT_FALSE(detail::quiet());
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(tps_fatal("config error ", 1), // NOLINT
                ::testing::ExitedWithCode(1), "config error 1");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(tps_panic("invariant broken"), "invariant broken");
}

TEST(LoggingDeathTest, MessagesIncludeLocation)
{
    EXPECT_EXIT(tps_fatal("locate me"), ::testing::ExitedWithCode(1),
                "logging_test.cc");
}

} // namespace
} // namespace tps
