/** @file Unit tests for the deterministic RNG and Zipf sampler. */

#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace tps
{
namespace
{

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsValid)
{
    Rng rng(0);
    std::uint64_t acc = 0;
    for (int i = 0; i < 100; ++i)
        acc |= rng.next64();
    EXPECT_NE(acc, 0u);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(RngTest, BelowCoversAllResidues)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.below(8)];
    for (int count : seen) {
        EXPECT_GT(count, 300); // ~500 expected; catches gross bias
        EXPECT_LT(count, 700);
    }
}

TEST(RngTest, RangeIsInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, BurstLengthMeanRoughlyInverseP)
{
    Rng rng(29);
    double total = 0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i)
        total += static_cast<double>(rng.burstLength(0.1));
    EXPECT_NEAR(total / trials, 10.0, 1.5);
}

TEST(RngTest, BurstLengthHonorsCap)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(rng.burstLength(1e-9, 16), 16u);
}

TEST(ZipfTest, UniformWhenSkewZero)
{
    ZipfSampler zipf(4, 0.0);
    Rng rng(37);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[zipf.sample(rng)];
    for (int count : counts)
        EXPECT_NEAR(count, 2000, 300);
}

TEST(ZipfTest, SkewFavorsLowRanks)
{
    ZipfSampler zipf(100, 1.2);
    Rng rng(41);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 20000 / 100); // far above uniform share
    // Monotone on average: first decile beats last decile.
    int first = 0, last = 0;
    for (int i = 0; i < 10; ++i) {
        first += counts[i];
        last += counts[90 + i];
    }
    EXPECT_GT(first, 5 * last);
}

TEST(ZipfTest, SingleRankAlwaysZero)
{
    ZipfSampler zipf(1, 1.0);
    Rng rng(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

} // namespace
} // namespace tps
