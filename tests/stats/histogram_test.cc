/** @file Unit tests for stats/histogram.h. */

#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace tps::stats
{
namespace
{

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram hist(4);
    hist.add(0);
    hist.add(1);
    hist.add(1);
    hist.add(3);
    hist.add(4);  // overflow
    hist.add(99); // overflow
    EXPECT_EQ(hist.bucket(0), 1u);
    EXPECT_EQ(hist.bucket(1), 2u);
    EXPECT_EQ(hist.bucket(2), 0u);
    EXPECT_EQ(hist.bucket(3), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.total(), 6u);
}

TEST(HistogramTest, WeightedAdd)
{
    Histogram hist(2);
    hist.add(1, 10);
    hist.add(5, 3);
    EXPECT_EQ(hist.bucket(1), 10u);
    EXPECT_EQ(hist.overflow(), 3u);
    EXPECT_EQ(hist.total(), 13u);
}

TEST(HistogramTest, TailAtLeastIsMissCount)
{
    // Stack-distance semantics: tailAtLeast(n) = misses with n slots.
    Histogram hist(8);
    hist.add(0, 100); // distance 0: hits for any size >= 1
    hist.add(3, 50);  // hits for size >= 4
    hist.add(7, 25);
    hist.add(8, 10); // overflow: always misses
    EXPECT_EQ(hist.tailAtLeast(0), 185u);
    EXPECT_EQ(hist.tailAtLeast(1), 85u);
    EXPECT_EQ(hist.tailAtLeast(4), 35u);
    EXPECT_EQ(hist.tailAtLeast(8), 10u);
}

TEST(HistogramTest, TailMonotoneNonIncreasing)
{
    Histogram hist(16);
    for (std::uint64_t v = 0; v < 32; ++v)
        hist.add(v % 20, v + 1);
    std::uint64_t prev = hist.tailAtLeast(0);
    for (std::uint64_t n = 1; n <= 16; ++n) {
        const std::uint64_t tail = hist.tailAtLeast(n);
        EXPECT_LE(tail, prev);
        prev = tail;
    }
}

TEST(HistogramTest, ResetClears)
{
    Histogram hist(4);
    hist.add(2);
    hist.add(9);
    hist.reset();
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(hist.overflow(), 0u);
    EXPECT_EQ(hist.bucket(2), 0u);
}

TEST(Log2HistogramTest, BucketBoundaries)
{
    Log2Histogram hist(10);
    hist.add(0);
    hist.add(1);
    hist.add(2);
    hist.add(3);
    hist.add(4);
    EXPECT_EQ(hist.bucket(0), 1u); // value 0
    EXPECT_EQ(hist.bucket(1), 1u); // value 1
    EXPECT_EQ(hist.bucket(2), 2u); // values 2-3
    EXPECT_EQ(hist.bucket(3), 1u); // values 4-7
    EXPECT_EQ(hist.total(), 5u);
}

TEST(Log2HistogramTest, BucketFloor)
{
    Log2Histogram hist(10);
    EXPECT_EQ(hist.bucketFloor(0), 0u);
    EXPECT_EQ(hist.bucketFloor(1), 1u);
    EXPECT_EQ(hist.bucketFloor(2), 2u);
    EXPECT_EQ(hist.bucketFloor(4), 8u);
}

TEST(Log2HistogramTest, HugeValuesClampToLastBucket)
{
    Log2Histogram hist(4);
    hist.add(~std::uint64_t{0});
    EXPECT_EQ(hist.bucket(hist.numBuckets() - 1), 1u);
}

TEST(Log2HistogramTest, MeanUsesExactValues)
{
    Log2Histogram hist(20);
    hist.add(10, 2);
    hist.add(30, 2);
    EXPECT_DOUBLE_EQ(hist.mean(), 20.0);
}

} // namespace
} // namespace tps::stats
