/** @file Unit tests for stats/distribution.h. */

#include "stats/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tps::stats
{
namespace
{

TEST(DistributionTest, EmptyIsSafe)
{
    Distribution dist;
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(dist.min(), 0.0);
    EXPECT_DOUBLE_EQ(dist.max(), 0.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
}

TEST(DistributionTest, SingleSample)
{
    Distribution dist;
    dist.add(7.5);
    EXPECT_EQ(dist.count(), 1u);
    EXPECT_DOUBLE_EQ(dist.mean(), 7.5);
    EXPECT_DOUBLE_EQ(dist.min(), 7.5);
    EXPECT_DOUBLE_EQ(dist.max(), 7.5);
    EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
}

TEST(DistributionTest, KnownMoments)
{
    Distribution dist;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        dist.add(v);
    EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 4.0); // classic example set
    EXPECT_DOUBLE_EQ(dist.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(dist.min(), 2.0);
    EXPECT_DOUBLE_EQ(dist.max(), 9.0);
    EXPECT_DOUBLE_EQ(dist.sum(), 40.0);
}

TEST(DistributionTest, MergeMatchesCombinedStream)
{
    Distribution all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10.0;
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(DistributionTest, MergeWithEmpty)
{
    Distribution a, b;
    a.add(1.0);
    a.add(3.0);
    const double mean = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a); // copies
    EXPECT_DOUBLE_EQ(b.mean(), mean);
    EXPECT_EQ(b.count(), 2u);
}

TEST(DistributionTest, ResetClears)
{
    Distribution dist;
    dist.add(5.0);
    dist.reset();
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
}

} // namespace
} // namespace tps::stats
