/** @file Unit tests for stats/table.h. */

#include "stats/table.h"

#include <gtest/gtest.h>

namespace tps::stats
{
namespace
{

TEST(TextTableTest, HeaderAndRule)
{
    TextTable table({"A", "B"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned)
{
    TextTable table({"Name", "Value"});
    table.addRow({"x", "1"});
    table.addRow({"longername", "2.345"});
    const std::string out = table.toString();
    // Every line has the same width up to trailing content.
    const auto first_newline = out.find('\n');
    ASSERT_NE(first_newline, std::string::npos);
    // Numeric cells right-aligned: "1" should be preceded by spaces.
    EXPECT_NE(out.find("     1"), std::string::npos);
}

TEST(TextTableTest, CountsRows)
{
    TextTable table({"A"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"1"});
    table.addRule();
    table.addRow({"2"});
    EXPECT_EQ(table.numRows(), 3u);
    EXPECT_EQ(table.numCols(), 1u);
}

TEST(TextTableTest, TextLeftNumericRight)
{
    TextTable table({"Program", "CPI"});
    table.addRow({"li", "0.320"});
    table.addRow({"verylongname", "12.5"});
    const std::string out = table.toString();
    // Text column padded on the right, so "li" followed by spaces.
    EXPECT_NE(out.find("li          "), std::string::npos);
}

TEST(TextTableDeathTest, RowArityMismatchFatal)
{
    TextTable table({"A", "B"});
    EXPECT_EXIT(table.addRow({"only one"}),
                ::testing::ExitedWithCode(1), "cells");
}

} // namespace
} // namespace tps::stats
