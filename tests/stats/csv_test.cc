/** @file Unit tests for stats/csv.h. */

#include "stats/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tps::stats
{
namespace
{

TEST(CsvTest, WritesHeaderOnConstruction)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_EQ(os.str(), "a,b\n");
}

TEST(CsvTest, WritesRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"x", "y"});
    csv.writeRow({"1", "2"});
    csv.writeRow({"3", "4"});
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(CsvTest, QuotesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, QuotedFieldRoundTripsInRow)
{
    std::ostringstream os;
    CsvWriter csv(os, {"name"});
    csv.writeRow({"hello, world"});
    EXPECT_EQ(os.str(), "name\n\"hello, world\"\n");
}

} // namespace
} // namespace tps::stats
