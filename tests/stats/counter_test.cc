/** @file Unit tests for stats/counter.h. */

#include "stats/counter.h"

#include <gtest/gtest.h>

namespace tps::stats
{
namespace
{

TEST(CounterTest, StartsAtZero)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, IncrementForms)
{
    Counter counter;
    ++counter;
    counter++;
    counter += 3;
    EXPECT_EQ(counter.value(), 5u);
}

TEST(CounterTest, ResetClears)
{
    Counter counter;
    counter += 10;
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, PerComputesRatio)
{
    Counter counter;
    counter += 25;
    EXPECT_DOUBLE_EQ(counter.per(100), 0.25);
}

TEST(CounterTest, PerZeroDenominatorIsZero)
{
    Counter counter;
    counter += 5;
    EXPECT_DOUBLE_EQ(counter.per(0), 0.0);
}

} // namespace
} // namespace tps::stats
