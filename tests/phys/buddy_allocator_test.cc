/**
 * @file
 * Buddy allocator invariants: greedy seeding, lowest-address-first
 * splits, buddy coalescing, memblock-style claims — plus the
 * fragmentation-index math on crafted free-list layouts.
 */

#include <gtest/gtest.h>

#include "phys/buddy_allocator.h"
#include "phys/frag_telemetry.h"

namespace tps::phys
{
namespace
{

constexpr unsigned kFrameLog2 = 12; // 4KB frames
constexpr std::uint64_t kFrame = 1u << kFrameLog2;

TEST(BuddyAllocator, SeedsPowerOfTwoMemoryAsMaxOrderBlocks)
{
    // 16 frames, max order 2: four order-2 blocks, nothing smaller.
    BuddyAllocator buddy(16 * kFrame, kFrameLog2, 2);
    EXPECT_EQ(buddy.totalFrames(), 16u);
    EXPECT_EQ(buddy.freeFrames(), 16u);
    EXPECT_EQ(buddy.freeBlocksAt(2), 4u);
    EXPECT_EQ(buddy.freeBlocksAt(1), 0u);
    EXPECT_EQ(buddy.freeBlocksAt(0), 0u);
    EXPECT_EQ(buddy.largestFreeOrder(), 2u);
}

TEST(BuddyAllocator, SeedsOddMemoryGreedily)
{
    // 13 frames: order-2 blocks at 0, 4, 8 and an order-0 tail at 12.
    BuddyAllocator buddy(13 * kFrame, kFrameLog2, 2);
    EXPECT_EQ(buddy.totalFrames(), 13u);
    EXPECT_EQ(buddy.freeFrames(), 13u);
    EXPECT_EQ(buddy.freeBlocksAt(2), 3u);
    EXPECT_EQ(buddy.freeBlocksAt(1), 0u);
    EXPECT_EQ(buddy.freeBlocksAt(0), 1u);
}

TEST(BuddyAllocator, ClampsMaxOrderToMemory)
{
    // 8 frames cannot hold an order-6 block; the ctor clamps to 3.
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 6);
    EXPECT_EQ(buddy.maxOrder(), 3u);
    EXPECT_EQ(buddy.freeBlocksAt(3), 1u);
    // ...and a request above the clamped max order fails cleanly.
    EXPECT_FALSE(buddy.allocate(4).has_value());
    EXPECT_EQ(buddy.counters().fails, 1u);
}

TEST(BuddyAllocator, SplitKeepsLowerHalfListsUpperHalves)
{
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    const auto frame = buddy.allocate(0);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, 0u);
    // Splitting 8 -> 4+4 -> 2+2 -> 1+1 leaves the upper halves free:
    // frame 1 (order 0), frames 2-3 (order 1), frames 4-7 (order 2).
    EXPECT_EQ(buddy.counters().splits, 3u);
    EXPECT_EQ(buddy.freeBlocksAt(0), 1u);
    EXPECT_EQ(buddy.freeBlocksAt(1), 1u);
    EXPECT_EQ(buddy.freeBlocksAt(2), 1u);
    EXPECT_EQ(buddy.freeBlocksAt(3), 0u);
    EXPECT_EQ(buddy.freeFrames(), 7u);
}

TEST(BuddyAllocator, AllocatesLowestAddressFirst)
{
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    EXPECT_EQ(buddy.allocate(0), 0u);
    EXPECT_EQ(buddy.allocate(0), 1u);
    EXPECT_EQ(buddy.allocate(0), 2u);
    EXPECT_EQ(buddy.allocate(1), 4u); // frame 3 is too small a block
    EXPECT_EQ(buddy.allocate(0), 3u);
}

TEST(BuddyAllocator, ReleaseCoalescesBackToMaxOrder)
{
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    const auto a = buddy.allocate(0);
    const auto b = buddy.allocate(0);
    ASSERT_TRUE(a.has_value() && b.has_value());

    // Frame 1 still allocated: releasing frame 0 cannot merge.
    buddy.release(*a, 0);
    EXPECT_EQ(buddy.counters().coalesces, 0u);
    EXPECT_EQ(buddy.freeBlocksAt(0), 1u);

    // Releasing frame 1 cascades 0+1 -> 2-3 -> 4-7 back to order 3.
    buddy.release(*b, 0);
    EXPECT_EQ(buddy.counters().coalesces, 3u);
    EXPECT_EQ(buddy.freeBlocksAt(3), 1u);
    EXPECT_EQ(buddy.freeBlocksAt(0), 0u);
    EXPECT_EQ(buddy.freeFrames(), 8u);
}

TEST(BuddyAllocator, ReleaseOfSubBlocksRecoalesces)
{
    // Frames allocated as one order-2 block may come back one at a
    // time (the copy-promotion path frees order-0 sub-frames).
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    const auto block = buddy.allocate(2);
    ASSERT_TRUE(block.has_value());
    for (std::uint64_t b = 0; b < 4; ++b)
        buddy.release(*block + b, 0);
    EXPECT_EQ(buddy.freeBlocksAt(3), 1u);
    EXPECT_EQ(buddy.freeFrames(), 8u);
}

TEST(BuddyAllocator, ClaimCarvesSpecificBlock)
{
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    EXPECT_TRUE(buddy.claim(4, 2));
    EXPECT_EQ(buddy.freeBlocksAt(2), 1u); // frames 0-3 remain
    EXPECT_EQ(buddy.freeFrames(), 4u);
    // Anything overlapping the claimed block is refused.
    EXPECT_FALSE(buddy.claim(4, 0));
    EXPECT_FALSE(buddy.claim(4, 2));
    // Misaligned and out-of-range claims are refused, not fatal.
    EXPECT_FALSE(buddy.claim(1, 1));
    EXPECT_FALSE(buddy.claim(8, 0));
    EXPECT_EQ(buddy.counters().claims, 1u);
}

TEST(BuddyAllocator, FragmentationBlocksLargeAllocations)
{
    // Claim frame 2 of every order-2 group: 12 of 16 frames stay free
    // but no order-2 block survives.
    BuddyAllocator buddy(16 * kFrame, kFrameLog2, 2);
    for (std::uint64_t group = 0; group < 4; ++group)
        ASSERT_TRUE(buddy.claim(group * 4 + 2, 0));
    EXPECT_EQ(buddy.freeFrames(), 12u);
    EXPECT_FALSE(buddy.allocate(2).has_value());
    EXPECT_TRUE(buddy.allocate(1).has_value());
    EXPECT_TRUE(buddy.allocate(0).has_value());
}

TEST(BuddyAllocator, IdenticalRequestStreamsYieldIdenticalPlacements)
{
    auto run = [] {
        BuddyAllocator buddy(64 * kFrame, kFrameLog2, 3);
        std::vector<std::uint64_t> placements;
        std::vector<std::pair<std::uint64_t, unsigned>> held;
        for (unsigned i = 0; i < 40; ++i) {
            const unsigned order = i % 3;
            if (const auto frame = buddy.allocate(order)) {
                placements.push_back(*frame);
                held.emplace_back(*frame, order);
            }
            if (i % 5 == 4) {
                buddy.release(held.front().first, held.front().second);
                held.erase(held.begin());
            }
        }
        return placements;
    };
    EXPECT_EQ(run(), run());
}

TEST(FragTelemetry, IndexIsZeroOnFreshMemory)
{
    BuddyAllocator buddy(16 * kFrame, kFrameLog2, 2);
    const FragSnapshot snap = snapshotOf(buddy, 2);
    EXPECT_EQ(snap.totalBytes, 16 * kFrame);
    EXPECT_EQ(snap.freeBytes, 16 * kFrame);
    EXPECT_EQ(snap.largestFreeBytes, 4 * kFrame);
    EXPECT_DOUBLE_EQ(snap.fragIndex, 0.0);
    ASSERT_EQ(snap.freeBlocksByOrder.size(), 3u);
    EXPECT_EQ(snap.freeBlocksByOrder[2], 4u);
}

TEST(FragTelemetry, IndexIsOneWhenNoSuperpageBlockSurvives)
{
    BuddyAllocator buddy(16 * kFrame, kFrameLog2, 2);
    for (std::uint64_t group = 0; group < 4; ++group)
        ASSERT_TRUE(buddy.claim(group * 4 + 2, 0));
    const FragSnapshot snap = snapshotOf(buddy, 2);
    EXPECT_EQ(snap.freeBytes, 12 * kFrame);
    EXPECT_EQ(snap.largestFreeBytes, 2 * kFrame);
    EXPECT_DOUBLE_EQ(snap.fragIndex, 1.0);
}

TEST(FragTelemetry, IndexOnMixedLayoutMatchesHandMath)
{
    // Shatter three groups, keep one whole: 4 of 13 free frames sit
    // in a superpage-order block, so index = 1 - 4/13.
    BuddyAllocator buddy(16 * kFrame, kFrameLog2, 2);
    for (std::uint64_t group = 1; group < 4; ++group)
        ASSERT_TRUE(buddy.claim(group * 4 + 2, 0));
    const FragSnapshot snap = snapshotOf(buddy, 2);
    EXPECT_EQ(snap.freeBytes, 13 * kFrame);
    EXPECT_EQ(snap.largestFreeBytes, 4 * kFrame);
    EXPECT_DOUBLE_EQ(snap.fragIndex, 1.0 - 4.0 / 13.0);
}

TEST(FragTelemetry, ExhaustedMemoryScoresZeroNotOne)
{
    BuddyAllocator buddy(8 * kFrame, kFrameLog2, 3);
    ASSERT_TRUE(buddy.allocate(3).has_value());
    const FragSnapshot snap = snapshotOf(buddy, 3);
    EXPECT_EQ(snap.freeBytes, 0u);
    EXPECT_EQ(snap.largestFreeBytes, 0u);
    EXPECT_DOUBLE_EQ(snap.fragIndex, 0.0);
}

} // namespace
} // namespace tps::phys
