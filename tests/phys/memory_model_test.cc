/**
 * @file
 * MemoryModel semantics: reservation-based promotion in place vs the
 * paper's copy-based promotion, fallback and failure accounting under
 * crafted memory layouts, deterministic pressure seeding, and the
 * pfn contract of frameFor().
 */

#include <gtest/gtest.h>

#include "phys/memory_model.h"

namespace tps::phys
{
namespace
{

/** 4K frames, 32KB superpages (8 blocks/chunk), 1 MiB memory. */
PhysConfig
baseConfig()
{
    PhysConfig config;
    config.memBytes = 1u << 20;
    config.frameLog2 = 12;
    config.superLog2 = 15;
    return config;
}

TEST(MemoryModel, CopyPromotionAllocatesFreshRegionAndCopies)
{
    PhysConfig config = baseConfig();
    config.reservation = false;
    MemoryModel model(config);

    // Touch 4 of chunk 0's 8 blocks: scattered order-0 frames.
    for (Addr vpn = 0; vpn < 4; ++vpn)
        model.touch(vpn, 12);
    EXPECT_EQ(model.counters().framesAllocated, 4u);
    EXPECT_EQ(model.counters().reservationsOpened, 0u);

    model.promoteChunk(0);
    EXPECT_EQ(model.counters().promotionsCopied, 1u);
    EXPECT_EQ(model.counters().promotionsInPlace, 0u);
    EXPECT_EQ(model.counters().superpageAllocs, 1u);
    EXPECT_EQ(model.counters().pagesCopied, 4u);
    EXPECT_EQ(model.counters().framesFreed, 4u);

    // The whole chunk is now backed by one contiguous region: the
    // large page's pfn is its superpage frame number.
    EXPECT_LT(model.frameFor(0, 15), Addr{1} << 52);
}

TEST(MemoryModel, ReservationPromotesInPlaceForFree)
{
    PhysConfig config = baseConfig();
    config.reservation = true;
    MemoryModel model(config);

    for (Addr vpn = 0; vpn < 4; ++vpn)
        model.touch(vpn, 12);
    EXPECT_EQ(model.counters().reservationsOpened, 1u);
    EXPECT_EQ(model.counters().framesAllocated, 0u);

    model.promoteChunk(0);
    EXPECT_EQ(model.counters().promotionsInPlace, 1u);
    EXPECT_EQ(model.counters().promotionsCopied, 0u);
    EXPECT_EQ(model.counters().pagesCopied, 0u);
}

TEST(MemoryModel, ReservationFallsBackToScatterWhenNoContiguity)
{
    // 12 frames: one aligned superpage region (frames 0-7) plus an
    // order-2 tail.  The second chunk's reservation must fail.
    PhysConfig config = baseConfig();
    config.memBytes = 12u << 12;
    config.reservation = true;
    MemoryModel model(config);

    model.touch(0, 12); // chunk 0 reserves frames 0-7
    EXPECT_EQ(model.counters().reservationsOpened, 1u);

    model.touch(8, 12); // chunk 1: no superpage region left
    EXPECT_EQ(model.counters().reservationFallbacks, 1u);
    EXPECT_EQ(model.counters().superpageFailures, 1u);
    EXPECT_EQ(model.counters().framesAllocated, 1u);

    // Copy-promotion of chunk 1 is impossible too: the policy's
    // promotion is recorded as a failure and the chunk scatter-fills.
    model.promoteChunk(1);
    EXPECT_EQ(model.counters().promotionFailures, 1u);
    EXPECT_EQ(model.counters().superpageFailures, 2u);
    EXPECT_EQ(model.counters().promotionsCopied, 0u);
    // 7 remaining blocks wanted frames; only 3 tail frames existed.
    EXPECT_EQ(model.counters().framesAllocated, 4u);
    EXPECT_EQ(model.counters().frameExhaustions, 4u);

    // A block with no frame gets a synthetic pfn above modeled memory.
    EXPECT_GE(model.frameFor(15, 12), Addr{1} << 52);
}

TEST(MemoryModel, DemotionKeepsBackingSoRepromotionIsFree)
{
    PhysConfig config = baseConfig();
    config.reservation = true;
    MemoryModel model(config);

    model.touch(0, 12);
    model.promoteChunk(0);
    model.demoteChunk(0);
    EXPECT_EQ(model.counters().demotions, 1u);

    model.promoteChunk(0);
    EXPECT_EQ(model.counters().promotionsInPlace, 2u);
    EXPECT_EQ(model.counters().superpageAllocs, 0u);
}

TEST(MemoryModel, TouchOfLargePagePromotesItsChunk)
{
    PhysConfig config = baseConfig();
    MemoryModel model(config);
    // A 32KB page touch is a promotion observation for its chunk.
    model.touch(3, 15);
    EXPECT_EQ(model.counters().promotionsCopied, 1u);
    EXPECT_LT(model.frameFor(3, 15), Addr{1} << 52);
}

TEST(MemoryModel, SmallPagePfnsLandInsideTheirRegion)
{
    PhysConfig config = baseConfig();
    config.reservation = true;
    MemoryModel model(config);
    // Chunk 0 reserves frames 0-7: vpn b maps to frame b exactly.
    for (Addr vpn = 0; vpn < 8; ++vpn)
        EXPECT_EQ(model.frameFor(vpn, 12), vpn);
    // The promoted large page covers the same region as one pfn.
    model.promoteChunk(0);
    EXPECT_EQ(model.frameFor(0, 15), 0u);
}

TEST(MemoryModel, PressureSeedingIsDeterministicAndScalesWithP)
{
    PhysConfig config = baseConfig();
    config.fragPressure = 0.5;
    MemoryModel a(config);
    MemoryModel b(config);
    EXPECT_EQ(a.pressureFrames(), b.pressureFrames());
    // 256 frames at p=0.5: a wildly improbable bound, not a flake.
    EXPECT_GT(a.pressureFrames(), 64u);
    EXPECT_LT(a.pressureFrames(), 192u);

    PhysConfig zero = baseConfig();
    MemoryModel c(zero);
    EXPECT_EQ(c.pressureFrames(), 0u);

    // A different seed yields a different (but again deterministic)
    // occupancy map.
    config.pressureSeed = 1234;
    MemoryModel d(config);
    EXPECT_NE(d.pressureFrames(), 0u);
}

TEST(MemoryModel, HighPressureMakesSuperpageAllocationFail)
{
    PhysConfig config = baseConfig();
    config.fragPressure = 0.75;
    config.reservation = true;
    MemoryModel model(config);

    // Touch 16 chunks; at p=0.75 the chance any aligned 8-frame run
    // is free is (0.25)^8 ~ 1.5e-5 — failures are certain.
    for (Addr chunk = 0; chunk < 16; ++chunk)
        model.touch(chunk * 8, 12);
    EXPECT_GT(model.counters().superpageFailures, 0u);
    EXPECT_GT(model.counters().reservationFallbacks, 0u);
    EXPECT_GT(model.snapshot().fragIndex, 0.5);
}

TEST(MemoryModel, ResetCountersKeepsBackingState)
{
    PhysConfig config = baseConfig();
    config.reservation = true;
    MemoryModel model(config);
    model.touch(0, 12);
    model.resetCounters();
    EXPECT_EQ(model.counters().reservationsOpened, 0u);
    // The reservation itself survives: promotion is still in place.
    model.promoteChunk(0);
    EXPECT_EQ(model.counters().promotionsInPlace, 1u);
}

} // namespace
} // namespace tps::phys
