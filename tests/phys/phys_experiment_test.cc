/**
 * @file
 * The phys model wired through runExperiment: the observer property
 * (enabling the model never perturbs the simulation it watches), the
 * CPI copy charge, the fragmentation-pressure acceptance criteria, and
 * determinism of phys counters across sweep thread counts.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep.h"
#include "trace/vector_trace.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

/**
 * A cyclic instruction sweep over @p pages 4KB pages: every chunk sees
 * all of its blocks each round, so the two-size policy promotes every
 * chunk once the window fills.
 */
VectorTrace
cyclicTrace(unsigned pages, unsigned rounds)
{
    std::vector<MemRef> refs;
    refs.reserve(std::size_t{pages} * rounds);
    for (unsigned round = 0; round < rounds; ++round)
        for (unsigned page = 0; page < pages; ++page)
            refs.push_back(
                MemRef{0x100000 + Addr{page} * 4096, RefType::Ifetch, 4});
    return VectorTrace(std::move(refs), "cyclic");
}

RunOptions
promotingOptions()
{
    RunOptions opts;
    opts.maxRefs = 64u * 400u;
    opts.warmupRefs = 0;
    return opts;
}

PolicySpec
promotingPolicy()
{
    TwoSizeConfig config;
    config.window = 10'000;
    return PolicySpec::twoSizes(config);
}

TEST(PhysExperiment, ModelIsAnObserverOfTheSimulation)
{
    // The acceptance bar for the null allocator is byte-identical
    // output; the model itself must also never feed back into the
    // TLB/policy stream it watches.
    RunOptions base;
    base.maxRefs = 120'000;
    base.warmupRefs = 30'000;
    base.wsWindow = 20'000;

    RunOptions with_phys = base;
    with_phys.phys.memBytes = 64u << 20;
    with_phys.phys.reservation = true;

    TwoSizeConfig policy;
    policy.window = 20'000;
    for (const char *name : {"li", "tomcatv"}) {
        auto w1 = workloads::findWorkload(name).instantiate();
        auto w2 = workloads::findWorkload(name).instantiate();
        const auto off = runExperiment(
            *w1, PolicySpec::twoSizes(policy), TlbConfig{}, base);
        const auto on = runExperiment(
            *w2, PolicySpec::twoSizes(policy), TlbConfig{}, with_phys);

        EXPECT_FALSE(off.physModeled) << name;
        EXPECT_TRUE(on.physModeled) << name;
        EXPECT_EQ(off.tlb.misses, on.tlb.misses) << name;
        EXPECT_EQ(off.tlb.hits, on.tlb.hits) << name;
        EXPECT_EQ(off.tlb.invalidations, on.tlb.invalidations) << name;
        EXPECT_EQ(off.policy.promotions, on.policy.promotions) << name;
        EXPECT_EQ(off.instructions, on.instructions) << name;
        EXPECT_EQ(off.cpiTlb, on.cpiTlb) << name;
        EXPECT_EQ(off.avgWsBytes, on.avgWsBytes) << name;
    }
}

TEST(PhysExperiment, CopyPromotionChargesCpiButReservationIsFree)
{
    auto trace = cyclicTrace(64, 400);
    RunOptions copy_mode = promotingOptions();
    copy_mode.phys.memBytes = 1u << 20;
    copy_mode.phys.reservation = false;

    const auto copied =
        runExperiment(trace, promotingPolicy(), TlbConfig{}, copy_mode);
    ASSERT_TRUE(copied.physModeled);
    EXPECT_GT(copied.policy.promotions, 0u);
    EXPECT_GT(copied.phys.promotionsCopied, 0u);
    EXPECT_GT(copied.phys.pagesCopied, 0u);
    EXPECT_EQ(copied.phys.promotionsInPlace, 0u);
    EXPECT_GT(copied.cpiPhys, copied.cpiTlb);

    RunOptions resv_mode = copy_mode;
    resv_mode.phys.reservation = true;
    const auto reserved =
        runExperiment(trace, promotingPolicy(), TlbConfig{}, resv_mode);
    ASSERT_TRUE(reserved.physModeled);
    EXPECT_GT(reserved.phys.promotionsInPlace, 0u);
    EXPECT_EQ(reserved.phys.pagesCopied, 0u);
    // In-place promotion costs nothing: the copy charge is the only
    // difference between cpiPhys and cpiTlb.
    EXPECT_DOUBLE_EQ(reserved.cpiPhys, reserved.cpiTlb);
}

TEST(PhysExperiment, FragPressureDrivesSuperpageFailures)
{
    // The PR's acceptance criterion: zero failed superpage allocations
    // at pressure 0, a nonzero count at pressure >= 0.5.
    // 4 MiB: roomy enough that pressure fragments memory rather than
    // exhausting it outright (an exhausted allocator scores 0, not 1).
    auto trace = cyclicTrace(64, 400);
    for (const bool reservation : {false, true}) {
        RunOptions calm = promotingOptions();
        calm.phys.memBytes = 4u << 20;
        calm.phys.reservation = reservation;
        calm.phys.fragPressure = 0.0;
        const auto easy =
            runExperiment(trace, promotingPolicy(), TlbConfig{}, calm);
        EXPECT_EQ(easy.phys.superpageFailures, 0u) << reservation;
        EXPECT_EQ(easy.phys.promotionFailures, 0u) << reservation;
        EXPECT_DOUBLE_EQ(easy.physFrag.fragIndex, 0.0) << reservation;

        RunOptions tight = calm;
        tight.phys.fragPressure = 0.75;
        const auto hard =
            runExperiment(trace, promotingPolicy(), TlbConfig{}, tight);
        EXPECT_GT(hard.phys.superpageFailures, 0u) << reservation;
        EXPECT_GT(hard.phys.promotionFailures, 0u) << reservation;
        EXPECT_GT(hard.physFrag.fragIndex, 0.5) << reservation;
    }
}

TEST(PhysExperiment, SweepCountersAreIdenticalAcrossThreadCounts)
{
    RunOptions opts;
    opts.maxRefs = 120'000;
    opts.warmupRefs = 30'000;
    opts.phys.memBytes = 8u << 20;
    opts.phys.reservation = true;
    opts.phys.fragPressure = 0.5;

    TwoSizeConfig policy;
    policy.window = 20'000;
    auto run = [&](unsigned threads) {
        return SweepRunner()
            .workloads({"li", "espresso", "tomcatv", "worm"})
            .configuration(TlbConfig{}, PolicySpec::twoSizes(policy),
                           "fa16 / two-size")
            .options(opts)
            .threads(threads)
            .run();
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto &a = serial[i].result;
        const auto &b = parallel[i].result;
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(a.tlb.misses, b.tlb.misses) << serial[i].workload;
        EXPECT_EQ(a.phys.framesAllocated, b.phys.framesAllocated)
            << serial[i].workload;
        EXPECT_EQ(a.phys.superpageFailures, b.phys.superpageFailures)
            << serial[i].workload;
        EXPECT_EQ(a.phys.promotionsInPlace, b.phys.promotionsInPlace)
            << serial[i].workload;
        EXPECT_EQ(a.phys.pagesCopied, b.phys.pagesCopied)
            << serial[i].workload;
        EXPECT_DOUBLE_EQ(a.cpiPhys, b.cpiPhys) << serial[i].workload;
        EXPECT_DOUBLE_EQ(a.physFrag.fragIndex, b.physFrag.fragIndex)
            << serial[i].workload;
    }
}

} // namespace
} // namespace tps::core
