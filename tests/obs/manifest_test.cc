/**
 * @file
 * RunManifest machine-context capture: hardware concurrency, load
 * average and page size must be populated and serialized, so refs/s
 * numbers carry enough provenance to be compared across hosts.
 */

#include "obs/manifest.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace obs = tps::obs;

namespace
{

TEST(RunManifest, CaptureRecordsMachineContext)
{
    char arg0[] = "manifest_test";
    char *argv[] = {arg0, nullptr};
    const obs::RunManifest m = obs::RunManifest::capture("test", 1, argv);

    EXPECT_GE(m.hardwareConcurrency, 1u);
    // Power-of-two page size, at least 4K on anything we target.
    EXPECT_GE(m.pageSizeBytes, 4096u);
    EXPECT_EQ(m.pageSizeBytes & (m.pageSizeBytes - 1), 0u);
    // getloadavg can legitimately fail (-1 sentinel), but on Linux it
    // reports a non-negative value.
    EXPECT_GE(m.loadAvg1m, 0.0);
    EXPECT_EQ(m.command, "manifest_test");
    EXPECT_FALSE(m.timestampUtc.empty());
}

TEST(RunManifest, WriteJsonEmitsMachineContextKeys)
{
    char arg0[] = "manifest_test";
    char *argv[] = {arg0, nullptr};
    const obs::RunManifest m = obs::RunManifest::capture("test", 1, argv);

    std::ostringstream ss;
    {
        obs::JsonWriter w(ss, /*pretty=*/false);
        w.beginObject();
        w.key("manifest");
        m.writeJson(w);
        w.endObject();
        w.finish();
    }
    const std::string out = ss.str();
    EXPECT_NE(out.find("\"hardware_concurrency\""), std::string::npos)
        << out;
    EXPECT_NE(out.find("\"loadavg_1m\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"page_size\""), std::string::npos) << out;
}

} // namespace
