/**
 * @file
 * Heartbeat: tps-heartbeat-v1 JSON round-trip, schema refusal, and
 * the atomic file publication used by tps_campaign/tps_top.
 */

#include "obs/heartbeat.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace obs = tps::obs;

namespace
{

obs::Heartbeat
sampleHeartbeat()
{
    obs::Heartbeat hb;
    hb.state = "running";
    hb.configHash = "00c0ffee00c0ffee";
    hb.timestampUtc = "2026-01-01T00:00:00Z";
    hb.hostname = "simbox-03";
    hb.pid = 4242;
    hb.uptimeSeconds = 12.5;
    hb.workers = 4;
    hb.workersBusy = 2;
    hb.cellsTotal = 96;
    hb.cellsDone = 10;
    hb.cellsResumed = 6;
    hb.refsDone = 20'000'000;
    hb.refsPerSec = 1.5e6;
    hb.etaSeconds = 345.5;
    obs::HeartbeatCell cell;
    cell.key = "matrix300/fa64_4k";
    cell.workload = "matrix300";
    cell.config = "fa64 4K";
    cell.elapsedSeconds = 2.25;
    cell.etaSeconds = 1.75;
    hb.inFlight.push_back(cell);
    cell.key = "matrix300/fa64_4k_32k";
    cell.config = "fa64 4K/32K";
    cell.etaSeconds = -1.0; // no estimate yet
    hb.inFlight.push_back(cell);
    return hb;
}

TEST(Heartbeat, JsonRoundTrip)
{
    const obs::Heartbeat hb = sampleHeartbeat();
    std::ostringstream ss;
    hb.writeJson(ss);
    ASSERT_NE(ss.str().find("tps-heartbeat-v1"), std::string::npos);

    obs::Heartbeat back;
    std::string error;
    ASSERT_TRUE(obs::Heartbeat::fromJson(ss.str(), back, error))
        << error;
    EXPECT_EQ(back.state, "running");
    EXPECT_EQ(back.configHash, hb.configHash);
    EXPECT_EQ(back.timestampUtc, hb.timestampUtc);
    EXPECT_EQ(back.hostname, "simbox-03");
    EXPECT_EQ(back.pid, 4242u);
    EXPECT_DOUBLE_EQ(back.uptimeSeconds, 12.5);
    EXPECT_EQ(back.workers, 4u);
    EXPECT_EQ(back.workersBusy, 2u);
    EXPECT_EQ(back.cellsTotal, 96u);
    EXPECT_EQ(back.cellsDone, 10u);
    EXPECT_EQ(back.cellsResumed, 6u);
    EXPECT_EQ(back.refsDone, 20'000'000u);
    EXPECT_DOUBLE_EQ(back.refsPerSec, 1.5e6);
    EXPECT_DOUBLE_EQ(back.etaSeconds, 345.5);
    ASSERT_EQ(back.inFlight.size(), 2u);
    EXPECT_EQ(back.inFlight[0].key, "matrix300/fa64_4k");
    EXPECT_EQ(back.inFlight[0].workload, "matrix300");
    EXPECT_EQ(back.inFlight[0].config, "fa64 4K");
    EXPECT_DOUBLE_EQ(back.inFlight[0].elapsedSeconds, 2.25);
    EXPECT_DOUBLE_EQ(back.inFlight[0].etaSeconds, 1.75);
    EXPECT_DOUBLE_EQ(back.inFlight[1].etaSeconds, -1.0);
}

TEST(Heartbeat, FromJsonRejectsGarbageAndWrongSchema)
{
    obs::Heartbeat hb;
    std::string error;
    EXPECT_FALSE(obs::Heartbeat::fromJson("not json", hb, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::Heartbeat::fromJson(
        "{\"schema\":\"tps-heartbeat-v0\",\"state\":\"running\"}", hb,
        error));
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(HeartbeatWriter, PublishesParseableFile)
{
    const std::string path =
        ::testing::TempDir() + "tps_heartbeat_test.json";
    std::remove(path.c_str());

    obs::HeartbeatWriter writer(path);
    std::string error;
    ASSERT_TRUE(writer.write(sampleHeartbeat(), error)) << error;

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    obs::Heartbeat back;
    ASSERT_TRUE(obs::Heartbeat::fromJson(ss.str(), back, error))
        << error;
    EXPECT_EQ(back.cellsTotal, 96u);

    // Overwrite must replace, not append/merge.
    obs::Heartbeat done = sampleHeartbeat();
    done.state = "finished";
    done.inFlight.clear();
    ASSERT_TRUE(writer.write(done, error)) << error;
    std::ifstream in2(path);
    std::ostringstream ss2;
    ss2 << in2.rdbuf();
    ASSERT_TRUE(obs::Heartbeat::fromJson(ss2.str(), back, error))
        << error;
    EXPECT_EQ(back.state, "finished");
    EXPECT_TRUE(back.inFlight.empty());
    std::remove(path.c_str());
}

TEST(HeartbeatWriter, FailsCleanlyOnUnwritablePath)
{
    obs::HeartbeatWriter writer("/nonexistent-dir/heartbeat.json");
    std::string error;
    EXPECT_FALSE(writer.write(sampleHeartbeat(), error));
    EXPECT_FALSE(error.empty());
}

} // namespace
