#include "obs/stat_registry.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace tps::obs
{
namespace
{

TEST(StatName, Validation)
{
    EXPECT_TRUE(isValidStatName("tlb.l1.miss"));
    EXPECT_TRUE(isValidStatName("policy.promotions"));
    EXPECT_TRUE(isValidStatName("a-b_c.d0"));
    EXPECT_FALSE(isValidStatName(""));
    EXPECT_FALSE(isValidStatName(".leading"));
    EXPECT_FALSE(isValidStatName("trailing."));
    EXPECT_FALSE(isValidStatName("double..dot"));
    EXPECT_FALSE(isValidStatName("spa ce"));
    EXPECT_FALSE(isValidStatName("sla/sh"));
}

TEST(Slugify, NormalizesLabels)
{
    EXPECT_EQ(slugify("64-entry FA / 4KB/32KB"), "64_entry_fa_4kb_32kb");
    EXPECT_EQ(slugify("matrix300"), "matrix300");
    EXPECT_EQ(slugify("  "), "_");
    EXPECT_TRUE(isValidStatName(slugify("any ! label (here)")));
}

TEST(StatRegistry, RegistersAndReadsBack)
{
    StatRegistry registry;
    registry.addCounter("tlb.miss", 7);
    registry.addValue("cpi", 1.25);
    registry.addText("workload", "li");
    registry.addHistogram("hist", {1, 2, 3});
    EXPECT_EQ(registry.size(), 4u);
    EXPECT_EQ(registry.counter("tlb.miss"), 7u);
    EXPECT_DOUBLE_EQ(registry.value("cpi"), 1.25);
    EXPECT_EQ(registry.text("workload"), "li");
    EXPECT_TRUE(registry.has("hist"));
    // Counters read as values too (table drivers want doubles).
    EXPECT_DOUBLE_EQ(registry.value("tlb.miss"), 7.0);
}

TEST(StatRegistry, RejectsCollisionsAndBadNames)
{
    StatRegistry registry;
    registry.addCounter("tlb.miss", 1);
    EXPECT_THROW(registry.addCounter("tlb.miss", 2),
                 std::invalid_argument);
    EXPECT_THROW(registry.addValue("tlb.miss", 0.0),
                 std::invalid_argument);
    EXPECT_THROW(registry.addCounter("bad name", 1),
                 std::invalid_argument);
    EXPECT_THROW(registry.addText("", "x"), std::invalid_argument);
    // The original registration is untouched.
    EXPECT_EQ(registry.counter("tlb.miss"), 1u);
}

TEST(StatRegistry, IncrCounterAccumulates)
{
    StatRegistry registry;
    registry.incrCounter("n", 2);
    registry.incrCounter("n", 3);
    EXPECT_EQ(registry.counter("n"), 5u);
    registry.addText("t", "x");
    EXPECT_THROW(registry.incrCounter("t", 1), std::invalid_argument);
}

TEST(StatRegistry, MergePrefixesAndDetectsCollisions)
{
    StatRegistry cell;
    cell.addCounter("tlb.miss", 3);
    cell.addValue("cpi", 2.0);

    StatRegistry parent;
    parent.merge(cell, "sweep.li.fa16");
    EXPECT_EQ(parent.counter("sweep.li.fa16.tlb.miss"), 3u);
    EXPECT_DOUBLE_EQ(parent.value("sweep.li.fa16.cpi"), 2.0);

    EXPECT_THROW(parent.merge(cell, "sweep.li.fa16"),
                 std::invalid_argument);
    // No-prefix merge keeps names as-is.
    StatRegistry flat;
    flat.merge(cell);
    EXPECT_EQ(flat.counter("tlb.miss"), 3u);
}

TEST(StatRegistry, JsonRoundTrip)
{
    StatRegistry registry;
    registry.addCounter("a.refs", 123456789012345ull);
    registry.addValue("a.cpi", 1.0 / 3.0);
    registry.addValue("a.zero", 0.0);
    registry.addText("a.name", "two-size \"exact\"");
    registry.addHistogram("a.hist", {0, 5, 9});

    std::ostringstream os;
    registry.writeJson(os);
    const JsonValue doc = parseJson(os.str());

    EXPECT_EQ(doc.find("schema")->text, kStatsSchema);
    const JsonValue *stats = doc.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("a.refs")->integer, 123456789012345ll);
    EXPECT_EQ(stats->find("a.cpi")->number, 1.0 / 3.0); // exact
    EXPECT_EQ(stats->find("a.zero")->number, 0.0);
    EXPECT_EQ(doc.find("text")->find("a.name")->text,
              "two-size \"exact\"");
    const JsonValue *hist = doc.find("histograms")->find("a.hist");
    ASSERT_NE(hist, nullptr);
    ASSERT_EQ(hist->array.size(), 3u);
    EXPECT_EQ(hist->array[2].integer, 9);
    // No manifest requested, none emitted.
    EXPECT_EQ(doc.find("manifest"), nullptr);
}

TEST(StatRegistry, DumpIsSortedRegardlessOfInsertionOrder)
{
    StatRegistry forward, backward;
    forward.addCounter("a", 1);
    forward.addCounter("b", 2);
    forward.addValue("c", 3.0);
    backward.addValue("c", 3.0);
    backward.addCounter("b", 2);
    backward.addCounter("a", 1);

    std::ostringstream os1, os2;
    forward.writeJson(os1);
    backward.writeJson(os2);
    EXPECT_EQ(os1.str(), os2.str());
}

TEST(StatRegistry, ManifestAppearsInDump)
{
    RunManifest manifest;
    manifest.experiment = "unit-test";
    manifest.refs = 1000;
    manifest.threads = 4;
    manifest.extra["note"] = "hello";

    StatRegistry registry;
    registry.addCounter("x", 1);
    std::ostringstream os;
    registry.writeJson(os, &manifest);

    const JsonValue doc = parseJson(os.str());
    const JsonValue *m = doc.find("manifest");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->find("experiment")->text, "unit-test");
    EXPECT_EQ(m->find("refs")->integer, 1000);
    EXPECT_EQ(m->find("threads")->integer, 4);
    EXPECT_EQ(m->find("extra")->find("note")->text, "hello");
}

TEST(StatRegistry, CopyIsIndependent)
{
    StatRegistry a;
    a.addCounter("n", 1);
    StatRegistry b = a;
    b.incrCounter("n", 10);
    EXPECT_EQ(a.counter("n"), 1u);
    EXPECT_EQ(b.counter("n"), 11u);
}

TEST(StatRegistry, CsvDump)
{
    StatRegistry registry;
    registry.addCounter("n", 2);
    registry.addText("t", "x");
    std::ostringstream os;
    registry.writeCsv(os);
    EXPECT_EQ(os.str(), "name,kind,value\nn,counter,2\nt,text,x\n");
}

TEST(RunManifest, CaptureRecordsCommandLine)
{
    const char *argv[] = {"prog", "--threads", "4", nullptr};
    const RunManifest manifest = RunManifest::capture(
        "Figure 5.2", 3, const_cast<char **>(argv));
    EXPECT_EQ(manifest.experiment, "Figure 5.2");
    EXPECT_EQ(manifest.command, "prog --threads 4");
    EXPECT_FALSE(manifest.gitDescribe.empty());
    EXPECT_FALSE(manifest.timestampUtc.empty());
}

} // namespace
} // namespace tps::obs
