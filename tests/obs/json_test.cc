#include "obs/json.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace tps::obs
{
namespace
{

TEST(JsonWriter, EmitsNestedDocument)
{
    std::ostringstream os;
    JsonWriter writer(os, /*pretty=*/false);
    writer.beginObject();
    writer.key("name").value("tps");
    writer.key("count").value(std::uint64_t{42});
    writer.key("items").beginArray();
    writer.value(std::uint64_t{1});
    writer.value(std::uint64_t{2});
    writer.endArray();
    writer.endObject();
    writer.finish();
    EXPECT_EQ(os.str(),
              "{\"name\":\"tps\",\"count\":42,\"items\":[1,2]}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(JsonWriter::quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, MisuseThrows)
{
    std::ostringstream os;
    JsonWriter writer(os);
    EXPECT_THROW(writer.key("k"), std::logic_error); // key outside object
    JsonWriter writer2(os);
    writer2.beginObject();
    EXPECT_THROW(writer2.endArray(), std::logic_error);
}

TEST(JsonWriter, NonFiniteDoublesBecomeStrings)
{
    std::ostringstream os;
    JsonWriter writer(os, /*pretty=*/false);
    writer.beginArray();
    writer.value(std::numeric_limits<double>::infinity());
    writer.value(-std::numeric_limits<double>::infinity());
    writer.value(std::nan(""));
    writer.endArray();
    writer.finish();
    EXPECT_EQ(os.str(), "[\"inf\",\"-inf\",\"nan\"]");
}

TEST(JsonParser, ParsesScalarsAndContainers)
{
    const JsonValue doc = parseJson(
        R"({"i": -3, "d": 0.5, "s": "x", "b": true, "n": null,
            "a": [1, 2.5], "o": {"k": "v"}})");
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    EXPECT_EQ(doc.find("i")->integer, -3);
    EXPECT_EQ(doc.find("d")->type, JsonValue::Type::Double);
    EXPECT_DOUBLE_EQ(doc.find("d")->number, 0.5);
    EXPECT_EQ(doc.find("s")->text, "x");
    EXPECT_TRUE(doc.find("b")->boolean);
    EXPECT_EQ(doc.find("n")->type, JsonValue::Type::Null);
    ASSERT_EQ(doc.find("a")->array.size(), 2u);
    EXPECT_EQ(doc.find("a")->array[0].integer, 1);
    EXPECT_EQ(doc.find("o")->find("k")->text, "v");
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, DecodesEscapes)
{
    const JsonValue doc = parseJson(R"(["a\nb", "\u0041"])");
    EXPECT_EQ(doc.array[0].text, "a\nb");
    EXPECT_EQ(doc.array[1].text, "A");
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), JsonParseError);
    EXPECT_THROW(parseJson("{"), JsonParseError);
    EXPECT_THROW(parseJson("[1,]"), JsonParseError);
    EXPECT_THROW(parseJson("{} trailing"), JsonParseError);
    try {
        parseJson("[1, oops]");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &error) {
        EXPECT_GT(error.offset(), 0u);
    }
}

TEST(JsonRoundTrip, DoublesSurviveExactly)
{
    // %.17g must reproduce the exact bits through a parse cycle.
    const double values[] = {1.0 / 3.0, 0.1, 6.0221407599999999e23,
                             -2.2250738585072014e-308, 12345.6789};
    for (const double v : values) {
        std::ostringstream os;
        JsonWriter writer(os, /*pretty=*/false);
        writer.beginArray();
        writer.value(v);
        writer.endArray();
        writer.finish();
        const JsonValue doc = parseJson(os.str());
        ASSERT_EQ(doc.array.size(), 1u);
        EXPECT_EQ(doc.array[0].number, v) << os.str();
    }
}

} // namespace
} // namespace tps::obs
