#include "obs/timeseries.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace tps::obs
{
namespace
{

TimeSeriesConfig
makeConfig(std::uint64_t interval, std::size_t capacity = 0,
           std::uint64_t seed = 1234)
{
    TimeSeriesConfig config;
    config.intervalRefs = interval;
    config.missSampleCapacity = capacity;
    config.missSampleSeed = seed;
    return config;
}

TEST(TimeSeriesConfig, EnabledOnlyWithInterval)
{
    EXPECT_FALSE(TimeSeriesConfig{}.enabled());
    EXPECT_TRUE(makeConfig(100).enabled());
}

TEST(TimeSeriesRecorder, RejectsZeroInterval)
{
    EXPECT_THROW(TimeSeriesRecorder(TimeSeriesConfig{}, {"a"}, {}),
                 std::invalid_argument);
}

TEST(TimeSeriesRecorder, RejectsColumnCountMismatch)
{
    TimeSeriesRecorder recorder(makeConfig(10), {"a", "b"}, {"v"});
    EXPECT_THROW(recorder.endInterval(0, 10, {1}, {0.5}),
                 std::invalid_argument);
    EXPECT_THROW(recorder.endInterval(0, 10, {1, 2}, {}),
                 std::invalid_argument);
}

TEST(TimeSeriesRecorder, SumsOfDeltasReproduceAggregates)
{
    TimeSeriesRecorder recorder(makeConfig(10), {"miss", "fill"},
                                {"rate"});
    recorder.endInterval(0, 10, {3, 2}, {0.3});
    recorder.endInterval(10, 10, {5, 1}, {0.5});
    recorder.endInterval(20, 4, {2, 2}, {0.5}); // partial tail
    const TimeSeries series =
        recorder.finish("wl", "tlb", "policy");
    EXPECT_EQ(series.intervals.size(), 3u);
    EXPECT_EQ(series.counterSum("miss"), 10u);
    EXPECT_EQ(series.counterSum("fill"), 5u);
    EXPECT_THROW(series.counterSum("absent"), std::out_of_range);
    EXPECT_EQ(series.intervals[2].startRef, 20u);
    EXPECT_EQ(series.intervals[2].refs, 4u);
}

TEST(TimeSeriesRecorder, ReservoirKeepsEverythingUnderCapacity)
{
    TimeSeriesRecorder recorder(makeConfig(10, 8), {}, {});
    ASSERT_TRUE(recorder.samplingMisses());
    for (std::uint64_t i = 1; i <= 5; ++i)
        recorder.offerMiss(i, 100 + i, 12, MissCause::Cold);
    const TimeSeries series = recorder.finish("w", "t", "p");
    EXPECT_EQ(series.missSeen, 5u);
    ASSERT_EQ(series.missSamples.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(series.missSamples[i].ref, i + 1);
}

TEST(TimeSeriesRecorder, ReservoirIsDeterministicAndBounded)
{
    auto run = [] {
        TimeSeriesRecorder recorder(makeConfig(10, 16), {}, {});
        for (std::uint64_t i = 1; i <= 1000; ++i)
            recorder.offerMiss(i, i * 7, 12,
                               i % 3 == 0 ? MissCause::Capacity
                                          : MissCause::Cold);
        return recorder.finish("w", "t", "p");
    };
    const TimeSeries a = run();
    const TimeSeries b = run();
    EXPECT_EQ(a.missSeen, 1000u);
    ASSERT_EQ(a.missSamples.size(), 16u);
    ASSERT_EQ(b.missSamples.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(a.missSamples[i].ref, b.missSamples[i].ref);
        EXPECT_EQ(a.missSamples[i].vpn, b.missSamples[i].vpn);
        EXPECT_EQ(a.missSamples[i].cause, b.missSamples[i].cause);
    }
    // finish() sorts by reference time.
    for (std::size_t i = 1; i < a.missSamples.size(); ++i)
        EXPECT_LT(a.missSamples[i - 1].ref, a.missSamples[i].ref);
    // A different seed picks a different sample (overwhelmingly).
    TimeSeriesRecorder other(makeConfig(10, 16, 999), {}, {});
    for (std::uint64_t i = 1; i <= 1000; ++i)
        other.offerMiss(i, i * 7, 12, MissCause::Cold);
    const TimeSeries c = other.finish("w", "t", "p");
    bool same = true;
    for (std::size_t i = 0; i < 16 && same; ++i)
        same = a.missSamples[i].ref == c.missSamples[i].ref;
    EXPECT_FALSE(same);
}

TEST(TimeSeries, JsonRoundTripsThroughParser)
{
    TimeSeriesRecorder recorder(makeConfig(100, 4), {"miss"},
                                {"rate"});
    recorder.endInterval(0, 100, {7}, {0.07});
    recorder.endInterval(100, 100, {3}, {0.03});
    recorder.offerMiss(42, 0xABC, 12, MissCause::Shootdown);
    const TimeSeries series = recorder.finish("li", "16-entry FA",
                                              "4KB only");
    std::ostringstream out;
    JsonWriter writer(out);
    series.writeJson(writer);
    writer.finish();

    const JsonValue doc = parseJson(out.str());
    EXPECT_EQ(doc.find("workload")->text, "li");
    EXPECT_EQ(doc.find("interval_refs")->integer, 100);
    EXPECT_EQ(doc.find("totals")->find("miss")->integer, 10);
    ASSERT_EQ(doc.find("intervals")->array.size(), 2u);
    const JsonValue &first = doc.find("intervals")->array[0];
    EXPECT_EQ(first.find("refs")->integer, 100);
    EXPECT_EQ(first.find("counters")->array[0].integer, 7);
    const JsonValue *samples = doc.find("miss_samples");
    ASSERT_NE(samples, nullptr);
    EXPECT_EQ(samples->find("seen")->integer, 1);
    ASSERT_EQ(samples->find("events")->array.size(), 1u);
    EXPECT_EQ(samples->find("events")->array[0].find("cause")->text,
              "shootdown");
}

TEST(MissCause, Names)
{
    EXPECT_STREQ(missCauseName(MissCause::Cold), "cold");
    EXPECT_STREQ(missCauseName(MissCause::Capacity), "capacity");
    EXPECT_STREQ(missCauseName(MissCause::Shootdown), "shootdown");
}

TimeSeries
tinySeries(const std::string &workload, std::uint64_t misses)
{
    TimeSeriesRecorder recorder(makeConfig(10), {"miss"}, {});
    recorder.endInterval(0, 10, {misses}, {});
    return recorder.finish(workload, "tlb", "pol");
}

TEST(TimeSeriesSink, CollectsAndEmitsSortedCells)
{
    TimeSeriesSink sink(makeConfig(10));
    sink.add(tinySeries("zeta", 1));
    sink.add(tinySeries("alpha", 2));
    EXPECT_EQ(sink.cellCount(), 2u);

    std::ostringstream out;
    sink.writeJson(out);
    const JsonValue doc = parseJson(out.str());
    EXPECT_EQ(doc.find("schema")->text, kTimeSeriesSchema);
    ASSERT_NE(doc.find("cells"), nullptr);
    const auto &cells = doc.find("cells")->object;
    ASSERT_EQ(cells.size(), 2u);
    // std::map order == sorted keys.
    EXPECT_EQ(cells.begin()->first, "alpha.tlb.pol");
    EXPECT_EQ(std::next(cells.begin())->first, "zeta.tlb.pol");
}

TEST(TimeSeriesSink, DisambiguatesDuplicateKeysDeterministically)
{
    // Same configuration added twice in both orders must serialize
    // identically: duplicates are sorted by content before numbering.
    auto emit = [](bool flip) {
        TimeSeriesSink sink(makeConfig(10));
        if (flip) {
            sink.add(tinySeries("li", 9));
            sink.add(tinySeries("li", 1));
        } else {
            sink.add(tinySeries("li", 1));
            sink.add(tinySeries("li", 9));
        }
        std::ostringstream out;
        sink.writeJson(out);
        return out.str();
    };
    const std::string a = emit(false);
    const std::string b = emit(true);
    EXPECT_EQ(a, b);
    const JsonValue doc = parseJson(a);
    const auto &cells = doc.find("cells")->object;
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_NE(cells.find("li.tlb.pol"), cells.end());
    EXPECT_NE(cells.find("li.tlb.pol_2"), cells.end());
}

TEST(TimeSeriesSink, GlobalIsIdempotent)
{
    TimeSeriesSink::disableGlobal();
    EXPECT_EQ(TimeSeriesSink::global(), nullptr);
    TimeSeriesSink *first = TimeSeriesSink::enableGlobal(makeConfig(50));
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(TimeSeriesSink::enableGlobal(makeConfig(99)), first);
    EXPECT_EQ(first->config().intervalRefs, 50u);
    EXPECT_EQ(TimeSeriesSink::global(), first);
    TimeSeriesSink::disableGlobal();
    EXPECT_EQ(TimeSeriesSink::global(), nullptr);
}

} // namespace
} // namespace tps::obs
