/**
 * @file
 * Thread-safety of the observability layer (run under Tsan via
 * `ctest -L concurrency`, see README): concurrent registry writes and
 * merges, concurrent spans on one profiler, concurrent progress
 * ticks, and concurrent warn emission.
 */

#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/progress.h"
#include "obs/stat_registry.h"
#include "obs/trace_profiler.h"
#include "util/logging.h"

namespace tps::obs
{
namespace
{

constexpr unsigned kThreads = 8;
constexpr unsigned kIters = 1000;

TEST(ObsConcurrency, SharedCounterIncrements)
{
    StatRegistry registry;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            for (unsigned i = 0; i < kIters; ++i) {
                registry.incrCounter("shared.n", 1);
                registry.incrCounter(
                    "worker" + std::to_string(t) + ".n", 2);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(registry.counter("shared.n"), kThreads * kIters);
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(registry.counter("worker" + std::to_string(t) + ".n"),
                  2u * kIters);
}

TEST(ObsConcurrency, ParallelCellMergesAggregateCleanly)
{
    // The sweep aggregation pattern: every cell builds its own
    // registry, a parent merges them under distinct prefixes while
    // other merges run.
    StatRegistry parent;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&parent, t] {
            StatRegistry cell;
            cell.addCounter("tlb.miss", t);
            cell.addValue("cpi", 0.5 * t);
            cell.addText("workload", "w" + std::to_string(t));
            parent.merge(cell, "cell" + std::to_string(t));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(parent.size(), 3u * kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(parent.counter("cell" + std::to_string(t) +
                                 ".tlb.miss"),
                  t);
    }
    // The merged dump must still be valid JSON.
    std::ostringstream os;
    parent.writeJson(os);
    EXPECT_NO_THROW(parseJson(os.str()));
}

TEST(ObsConcurrency, SpansFromManyThreadsStayBalanced)
{
    TraceProfiler profiler;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&profiler] {
            for (unsigned i = 0; i < kIters / 10; ++i) {
                ScopedSpan outer(&profiler, "outer", "test");
                ScopedSpan inner(&profiler, "inner", "test");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(profiler.eventCount(), kThreads * (kIters / 10) * 4);

    std::ostringstream os;
    profiler.writeJson(os);
    const JsonValue doc = parseJson(os.str());
    // Per-tid B/E balance (Chrome's nesting rule is per thread).
    std::map<std::int64_t, int> depth;
    for (const JsonValue &event : doc.find("traceEvents")->array) {
        const std::string ph = event.find("ph")->text;
        if (ph == "M")
            continue;
        const std::int64_t tid = event.find("tid")->integer;
        depth[tid] += ph == "B" ? 1 : -1;
        EXPECT_GE(depth[tid], 0);
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
}

TEST(ObsConcurrency, ProgressTicksFromManyThreads)
{
    ProgressReporter progress(kThreads * kIters, "items");
    progress.forceEnabled(false); // count, never print
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&progress] {
            for (unsigned i = 0; i < kIters; ++i)
                progress.tick(3);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(progress.done(), kThreads * kIters);
}

TEST(ObsConcurrency, WarnCountIsExact)
{
    // Satellite of the observability PR: warn emission used an
    // unsynchronized counter and stream writes before logging.cc
    // serialized them.
    const std::uint64_t before = tps::detail::warnCount();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (unsigned i = 0; i < 50; ++i)
                tps_warn("concurrent warning ", i);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(tps::detail::warnCount() - before, kThreads * 50);
}

} // namespace
} // namespace tps::obs
