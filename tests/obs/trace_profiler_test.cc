#include "obs/trace_profiler.h"

#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace tps::obs
{
namespace
{

TEST(TraceProfiler, ScopedSpansBalance)
{
    TraceProfiler profiler;
    {
        ScopedSpan outer(&profiler, "outer", "test");
        ScopedSpan inner(&profiler, "inner", "test");
    }
    EXPECT_EQ(profiler.eventCount(), 4u); // 2 B + 2 E
    profiler.clear();
    EXPECT_EQ(profiler.eventCount(), 0u);
}

TEST(TraceProfiler, NullProfilerSpanIsNoop)
{
    // The disabled-global path: must not crash or record anything.
    ScopedSpan span(nullptr, "nothing", "test");
    ScopedSpan global_span("nothing", "test"); // global() is off
    SUCCEED();
}

TEST(TraceProfiler, WriteJsonIsValidAndBalanced)
{
    TraceProfiler profiler;
    {
        ScopedSpan a(&profiler, "cell alpha", "cell");
        { ScopedSpan b(&profiler, "chunk", "replay"); }
        profiler.instant("note", "test");
    }

    std::ostringstream os;
    profiler.writeJson(os);
    const JsonValue doc = parseJson(os.str()); // throws if invalid

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::Array);

    std::size_t begins = 0, ends = 0, instants = 0, metadata = 0;
    std::vector<std::string> open;
    for (const JsonValue &event : events->array) {
        const std::string ph = event.find("ph")->text;
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_NE(event.find("ts"), nullptr);
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("tid"), nullptr);
        if (ph == "B") {
            ++begins;
            open.push_back(event.find("name")->text);
            EXPECT_NE(event.find("cat"), nullptr);
        } else if (ph == "E") {
            ++ends;
            ASSERT_FALSE(open.empty()) << "E without matching B";
            open.pop_back();
        } else if (ph == "i") {
            ++instants;
            EXPECT_EQ(event.find("s")->text, "t");
        }
    }
    EXPECT_EQ(metadata, 1u); // process_name
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
    EXPECT_EQ(instants, 1u);
    EXPECT_TRUE(open.empty()); // every B closed
}

TEST(TraceProfiler, TimestampsAreMonotonicPerThread)
{
    TraceProfiler profiler;
    {
        ScopedSpan a(&profiler, "first", "t");
    }
    {
        ScopedSpan b(&profiler, "second", "t");
    }
    std::ostringstream os;
    profiler.writeJson(os);
    const JsonValue doc = parseJson(os.str());
    std::int64_t last = -1;
    for (const JsonValue &event : doc.find("traceEvents")->array) {
        if (event.find("ph")->text == "M")
            continue;
        const std::int64_t ts = event.find("ts")->integer;
        EXPECT_GE(ts, last);
        last = ts;
    }
}

TEST(TraceProfiler, GlobalEnableIsIdempotent)
{
    EXPECT_EQ(TraceProfiler::global(), nullptr);
    TraceProfiler *first = TraceProfiler::enableGlobal();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(TraceProfiler::enableGlobal(), first);
    EXPECT_EQ(TraceProfiler::global(), first);

    {
        ScopedSpan span("global span", "test");
    }
    EXPECT_EQ(first->eventCount(), 2u);

    TraceProfiler::disableGlobal();
    EXPECT_EQ(TraceProfiler::global(), nullptr);
}

} // namespace
} // namespace tps::obs
