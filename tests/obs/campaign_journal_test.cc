/**
 * @file
 * CampaignJournal: tps-campaign-v1 golden schema, load/resume
 * round-trips, refusal of malformed journals, and the harness-key
 * exclusion that keeps resumed aggregates byte-identical.
 */

#include "obs/campaign_journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/atomic_file.h"
#include "obs/stat_registry.h"

namespace obs = tps::obs;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "tps_campaign_" + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

obs::CampaignCellRecord
sampleRecord(const std::string &key)
{
    obs::CampaignCellRecord r;
    r.key = key;
    r.workload = "w";
    r.config = "fa64 4K";
    r.refs = 100;
    r.instructions = 40;
    r.cpiTlb = 1.5;
    r.wallSeconds = 0.25;
    r.statsFile = key == "w/a" ? "a.stats.json" : "b.stats.json";
    r.timeseriesFile = "";
    return r;
}

// The on-disk format IS the interface other tooling parses: pin it
// byte for byte.  Any change here is a schema revision.
TEST(CampaignJournal, GoldenSchema)
{
    const std::string path = tempPath("golden.jsonl");
    std::remove(path.c_str());

    obs::CampaignJournal journal(path);
    journal.start("00c0ffee00c0ffee", 2, "tps_campaign --out d",
                  "2026-01-01T00:00:00Z");
    journal.append(sampleRecord("w/a"));
    obs::CampaignCellRecord b = sampleRecord("w/b");
    b.timeseriesFile = "b.ts.json";
    journal.append(b);

    const std::string expected =
        "{\"type\":\"header\",\"schema\":\"tps-campaign-v1\","
        "\"config_hash\":\"00c0ffee00c0ffee\",\"cells_total\":2,"
        "\"command\":\"tps_campaign --out d\","
        "\"created_utc\":\"2026-01-01T00:00:00Z\"}\n"
        "{\"type\":\"cell\",\"key\":\"w/a\",\"workload\":\"w\","
        "\"config\":\"fa64 4K\",\"refs\":100,\"instructions\":40,"
        "\"cpi_tlb\":1.5,\"wall_seconds\":0.25,"
        "\"stats_file\":\"a.stats.json\",\"timeseries_file\":\"\"}\n"
        "{\"type\":\"cell\",\"key\":\"w/b\",\"workload\":\"w\","
        "\"config\":\"fa64 4K\",\"refs\":100,\"instructions\":40,"
        "\"cpi_tlb\":1.5,\"wall_seconds\":0.25,"
        "\"stats_file\":\"b.stats.json\","
        "\"timeseries_file\":\"b.ts.json\"}\n";
    EXPECT_EQ(readAll(path), expected);
    std::remove(path.c_str());
}

TEST(CampaignJournal, LoadRoundTripAndResume)
{
    const std::string path = tempPath("roundtrip.jsonl");
    std::remove(path.c_str());

    {
        obs::CampaignJournal journal(path);
        journal.start("hash1", 3, "cmd", "2026-01-01T00:00:00Z");
        journal.append(sampleRecord("w/a"));
        EXPECT_TRUE(journal.done("w/a"));
        EXPECT_FALSE(journal.done("w/b"));
    }

    obs::CampaignJournal::Loaded loaded;
    std::string error;
    ASSERT_TRUE(obs::CampaignJournal::load(path, loaded, error))
        << error;
    ASSERT_TRUE(loaded.exists);
    EXPECT_EQ(loaded.configHash, "hash1");
    EXPECT_EQ(loaded.cellsTotal, 3u);
    EXPECT_EQ(loaded.command, "cmd");
    EXPECT_EQ(loaded.createdUtc, "2026-01-01T00:00:00Z");
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.records[0].key, "w/a");
    EXPECT_EQ(loaded.records[0].refs, 100u);
    EXPECT_DOUBLE_EQ(loaded.records[0].cpiTlb, 1.5);

    // Resume seeds done() and append keeps the prior records.
    obs::CampaignJournal resumed(path);
    resumed.resume(loaded);
    EXPECT_TRUE(resumed.done("w/a"));
    resumed.append(sampleRecord("w/b"));

    obs::CampaignJournal::Loaded again;
    ASSERT_TRUE(obs::CampaignJournal::load(path, again, error)) << error;
    ASSERT_EQ(again.records.size(), 2u);
    EXPECT_EQ(again.records[0].key, "w/a");
    EXPECT_EQ(again.records[1].key, "w/b");
    std::remove(path.c_str());
}

TEST(CampaignJournal, MissingFileIsAFreshCampaign)
{
    obs::CampaignJournal::Loaded loaded;
    std::string error;
    ASSERT_TRUE(obs::CampaignJournal::load(
        tempPath("never_written.jsonl"), loaded, error));
    EXPECT_FALSE(loaded.exists);
    EXPECT_TRUE(loaded.records.empty());
}

TEST(CampaignJournal, RejectsCorruptAndWrongSchema)
{
    const std::string path = tempPath("bad.jsonl");
    std::string error;

    ASSERT_TRUE(obs::atomicWriteFile(path, "not json\n", error));
    obs::CampaignJournal::Loaded loaded;
    EXPECT_FALSE(obs::CampaignJournal::load(path, loaded, error));
    EXPECT_NE(error.find(path), std::string::npos);

    ASSERT_TRUE(obs::atomicWriteFile(
        path,
        "{\"type\":\"header\",\"schema\":\"tps-campaign-v0\","
        "\"config_hash\":\"x\",\"cells_total\":1,\"command\":\"c\","
        "\"created_utc\":\"t\"}\n",
        error));
    EXPECT_FALSE(obs::CampaignJournal::load(path, loaded, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    // A cell line before any header is structural corruption too.
    ASSERT_TRUE(obs::atomicWriteFile(
        path, "{\"type\":\"cell\",\"key\":\"w/a\"}\n", error));
    EXPECT_FALSE(obs::CampaignJournal::load(path, loaded, error));
    std::remove(path.c_str());
}

// The aggregate of a campaign merges every journaled cell's stats but
// drops any dotted name with a "harness" segment: those are wall-clock
// self-telemetry, the one nondeterministic part of a cell's dump, and
// keeping them out is what makes resumed-vs-uninterrupted aggregates
// byte-identical.
TEST(CampaignJournal, AggregateMergesCellsAndSkipsHarnessKeys)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "tps_campaign_agg.jsonl";
    std::string error;

    auto writeStats = [&](const std::string &file,
                          const std::string &prefix) {
        obs::StatRegistry reg;
        reg.addCounter(prefix + ".refs", 100);
        reg.addValue(prefix + ".cpi_tlb", 1.5);
        reg.addValue(prefix + ".harness.wall_seconds", 0.123);
        reg.addCounter(prefix + ".harness.chunks", 7);
        std::ostringstream ss;
        reg.writeJson(ss);
        ASSERT_TRUE(obs::atomicWriteFile(dir + file, ss.str(), error))
            << error;
    };
    writeStats("tps_campaign_agg_a.json", "campaign.w.a");
    writeStats("tps_campaign_agg_b.json", "campaign.w.b");

    obs::CampaignJournal journal(path);
    journal.start("h", 2, "cmd", "t");
    obs::CampaignCellRecord a = sampleRecord("w/a");
    a.statsFile = "tps_campaign_agg_a.json";
    obs::CampaignCellRecord b = sampleRecord("w/b");
    b.statsFile = "tps_campaign_agg_b.json";
    journal.append(a);
    journal.append(b);

    std::ostringstream merged;
    ASSERT_TRUE(obs::aggregateCampaignStats(path, merged, error))
        << error;
    const std::string out = merged.str();
    EXPECT_NE(out.find("campaign.w.a.refs"), std::string::npos);
    EXPECT_NE(out.find("campaign.w.b.refs"), std::string::npos);
    EXPECT_NE(out.find("campaign.w.a.cpi_tlb"), std::string::npos);
    EXPECT_EQ(out.find("harness"), std::string::npos);

    // A journal record pointing at a missing stats file is an error,
    // not a silent hole in the aggregate.
    obs::CampaignCellRecord c = sampleRecord("w/c");
    c.statsFile = "tps_campaign_agg_missing.json";
    journal.append(c);
    std::ostringstream broken;
    EXPECT_FALSE(obs::aggregateCampaignStats(path, broken, error));
    std::remove(path.c_str());
}

} // namespace
