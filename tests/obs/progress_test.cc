#include "obs/progress.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace tps::obs
{
namespace
{

/** Temp FILE* whose contents can be read back after the test. */
class CaptureStream
{
  public:
    CaptureStream() : file_(std::tmpfile()) {}
    ~CaptureStream()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    std::FILE *get() { return file_; }

    std::string
    contents()
    {
        std::string out;
        std::fflush(file_);
        std::rewind(file_);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), file_)) > 0)
            out.append(buf, n);
        return out;
    }

  private:
    std::FILE *file_;
};

TEST(Progress, DisabledByDefault)
{
    ASSERT_FALSE(progressEnabled());
    CaptureStream capture;
    ProgressReporter progress(10, "cells");
    progress.setStream(capture.get());
    progress.setMinIntervalMs(0);
    for (int i = 0; i < 10; ++i)
        progress.tick(100);
    progress.finish();
    EXPECT_EQ(progress.emitted(), 0u);
    EXPECT_EQ(progress.done(), 10u);
    EXPECT_TRUE(capture.contents().empty());
}

TEST(Progress, GlobalGate)
{
    setProgressEnabled(true);
    EXPECT_TRUE(progressEnabled());
    CaptureStream capture;
    ProgressReporter progress(2, "cells");
    progress.setStream(capture.get());
    progress.finish();
    EXPECT_EQ(progress.emitted(), 1u);
    setProgressEnabled(false);
    EXPECT_FALSE(progressEnabled());
}

TEST(Progress, RateLimitSwallowsBursts)
{
    CaptureStream capture;
    ProgressReporter progress(1000, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    // A 10-minute interval: a fast burst of ticks must stay silent...
    progress.setMinIntervalMs(600'000);
    for (int i = 0; i < 1000; ++i)
        progress.tick(10);
    EXPECT_EQ(progress.emitted(), 0u);
    // ...while finish() always reports.
    progress.finish();
    EXPECT_EQ(progress.emitted(), 1u);
}

TEST(Progress, ZeroIntervalEmitsEveryTick)
{
    CaptureStream capture;
    ProgressReporter progress(3, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.setMinIntervalMs(0);
    progress.tick(50);
    progress.tick(50);
    progress.tick(50);
    EXPECT_EQ(progress.emitted(), 3u);
}

TEST(Progress, LineFormat)
{
    CaptureStream capture;
    ProgressReporter progress(4, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.setMinIntervalMs(0);
    progress.tick(1'000'000);
    progress.tick(1'000'000);
    progress.finish();

    const std::string out = capture.contents();
    EXPECT_NE(out.find("progress: 1 cells/4 (25%)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("progress: 2 cells/4 (50%)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("refs/s"), std::string::npos) << out;
    EXPECT_NE(out.find("eta"), std::string::npos) << out;
    EXPECT_NE(out.find("[done]"), std::string::npos) << out;
}

TEST(Progress, EtaGuardedWhenNoTimeHasPassed)
{
    CaptureStream capture;
    ProgressReporter progress(4, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.setMinIntervalMs(0);
    // A start timestamp in the future makes both the window and the
    // cumulative elapsed time non-positive — the degenerate case a
    // zero-elapsed or zero-work window produces.  The ETA must fall
    // back to a placeholder instead of extrapolating 0/inf/NaN.
    progress.setStartForTest(std::chrono::steady_clock::now() +
                             std::chrono::hours(1));
    progress.tick(1'000'000);
    const std::string out = capture.contents();
    EXPECT_NE(out.find("eta --:--"), std::string::npos) << out;
    EXPECT_EQ(out.find("inf"), std::string::npos) << out;
    EXPECT_EQ(out.find("nan"), std::string::npos) << out;
}

// After --resume, checkpointed cells count toward the displayed
// totals but must be invisible to every rate: the first window after
// a resume would otherwise claim this process replayed 40M refs in
// the microseconds since construction.
TEST(Progress, SeedResumedExcludesCheckpointedWorkFromRates)
{
    CaptureStream capture;
    ProgressReporter progress(10, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.setMinIntervalMs(0);
    progress.seedResumed(4, 40'000'000);
    // Pretend 10s have elapsed so the rate math is deterministic:
    // 1M new refs / 10s = 0.10M refs/s; counting the seeded refs
    // would print 4.10M.
    progress.setStartForTest(std::chrono::steady_clock::now() -
                             std::chrono::seconds(10));
    progress.tick(1'000'000);
    const std::string out = capture.contents();
    EXPECT_NE(out.find("progress: 5 cells/10 (50%)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("0.10M refs/s"), std::string::npos) << out;
    EXPECT_EQ(out.find("4.10M"), std::string::npos) << out;
}

// The cumulative fallback (empty window) must exclude seeds too: a
// resumed run that finishes without executing anything new has no
// throughput to report, not 40M-refs-in-an-instant.
TEST(Progress, SeedResumedExcludedFromCumulativeFallback)
{
    CaptureStream capture;
    ProgressReporter progress(4, "cells");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.seedResumed(4, 40'000'000);
    progress.finish();
    const std::string out = capture.contents();
    EXPECT_NE(out.find("progress: 4 cells/4 (100%)"), std::string::npos)
        << out;
    EXPECT_EQ(out.find("refs/s"), std::string::npos) << out;
    EXPECT_NE(out.find("[done]"), std::string::npos) << out;
}

TEST(Progress, UnknownTotalOmitsEta)
{
    CaptureStream capture;
    ProgressReporter progress(0, "items");
    progress.setStream(capture.get());
    progress.forceEnabled(true);
    progress.setMinIntervalMs(0);
    progress.tick();
    const std::string out = capture.contents();
    EXPECT_NE(out.find("progress: 1 items"), std::string::npos) << out;
    EXPECT_EQ(out.find("eta"), std::string::npos) << out;
    EXPECT_EQ(out.find("%"), std::string::npos) << out;
}

} // namespace
} // namespace tps::obs
