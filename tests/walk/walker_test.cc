/**
 * @file
 * Unit tests for the radix page walker (walk/walk.h): structural
 * level counts per page size, the exact integer cycle identity, and
 * PWC determinism (two walkers fed the same miss sequence produce
 * byte-identical counters).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "walk/walk.h"

namespace tps::walk
{
namespace
{

WalkConfig
noPwc()
{
    WalkConfig config;
    config.enabled = true;
    config.pwcEntries = 0;
    return config;
}

TEST(PageWalker, SmallLeafWalksEveryLevel)
{
    PageWalker walker(noPwc());
    const unsigned accesses = walker.walk(0x1234'5000, kLog2_4K);
    EXPECT_EQ(accesses, 4u);
    EXPECT_EQ(walker.stats().walks, 1u);
    EXPECT_EQ(walker.stats().walksLarge, 0u);
    EXPECT_EQ(walker.stats().levelsTouched, 4u);
    EXPECT_EQ(walker.stats().levelAccesses, 4u);
    // 4 levels x 5 cycles = the paper's 20-cycle flat constant.
    EXPECT_EQ(walker.stats().cycles, 20u);
}

TEST(PageWalker, LargeLeafTerminatesOneLevelEarly)
{
    PageWalker walker(noPwc());
    const unsigned accesses = walker.walk(0x1234'8000, kLog2_32K);
    EXPECT_EQ(accesses, 3u);
    EXPECT_EQ(walker.stats().walksLarge, 1u);
    EXPECT_EQ(walker.stats().levelsTouched, 3u);
    EXPECT_EQ(walker.stats().cycles, 15u);
}

TEST(PageWalker, StructuralDepthIgnoresPwcAbsorption)
{
    WalkConfig config;
    config.enabled = true; // default 16-entry PWC stays on
    PageWalker walker(config);
    walker.walk(0x4000'0000, kLog2_4K);
    walker.walk(0x4000'0000, kLog2_4K); // PWC-warm revisit
    // levelsTouched counts what the table format requires, not what
    // the PWC absorbed: 4 + 4, even though the second walk accessed
    // only the leaf.
    EXPECT_EQ(walker.stats().levelsTouched, 8u);
    EXPECT_LT(walker.stats().levelAccesses, 8u);
}

TEST(PageWalker, PwcHitSkipsCachedLevels)
{
    WalkConfig config;
    config.enabled = true;
    PageWalker walker(config);
    walker.walk(0x4000'0000, kLog2_4K);
    EXPECT_EQ(walker.stats().pwcHits, 0u);
    // Same page again: the level-2 entry (the leaf table pointer) is
    // now cached, so only the leaf level is accessed.
    const unsigned accesses = walker.walk(0x4000'0000, kLog2_4K);
    EXPECT_EQ(accesses, 1u);
    EXPECT_EQ(walker.stats().pwcHits, 1u);
    EXPECT_EQ(walker.stats().levelAccesses, 5u);
}

TEST(PageWalker, CycleIdentityHoldsExactly)
{
    // cycles == cyclesPerLevel * levelAccesses + pwcHitCycles *
    // pwcHits, with no floating-point slack: the invariant cpi_walk
    // reconciliation rests on.
    WalkConfig config;
    config.enabled = true;
    config.pwcEntries = 8;
    config.pwcWays = 2;
    PageWalker walker(config);
    std::uint64_t state = 12345;
    for (int i = 0; i < 20'000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const Addr vaddr = static_cast<Addr>(state >> 20);
        const unsigned size =
            (state & 3) == 0 ? kLog2_32K : kLog2_4K;
        walker.walk(vaddr, size);
    }
    const WalkStats &s = walker.stats();
    EXPECT_EQ(s.walks, 20'000u);
    EXPECT_EQ(s.cycles,
              std::uint64_t{config.cyclesPerLevel} * s.levelAccesses +
                  std::uint64_t{config.pwcHitCycles} * s.pwcHits);
    EXPECT_GT(s.pwcHits, 0u);
}

TEST(PageWalker, DeterministicAcrossInstances)
{
    WalkConfig config;
    config.enabled = true;
    auto drive = [&](PageWalker &walker) {
        std::uint64_t state = 99;
        for (int i = 0; i < 50'000; ++i) {
            state = state * 2862933555777941757ull + 3037000493ull;
            walker.walk(static_cast<Addr>(state >> 16),
                        (state & 7) < 2 ? kLog2_32K : kLog2_4K);
        }
    };
    PageWalker a(config);
    PageWalker b(config);
    drive(a);
    drive(b);
    EXPECT_EQ(a.stats().walks, b.stats().walks);
    EXPECT_EQ(a.stats().levelsTouched, b.stats().levelsTouched);
    EXPECT_EQ(a.stats().levelAccesses, b.stats().levelAccesses);
    EXPECT_EQ(a.stats().pwcLookups, b.stats().pwcLookups);
    EXPECT_EQ(a.stats().pwcHits, b.stats().pwcHits);
    EXPECT_EQ(a.stats().pwcEvictions, b.stats().pwcEvictions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
}

TEST(PageWalker, ResetStatsKeepsPwcContents)
{
    WalkConfig config;
    config.enabled = true;
    PageWalker walker(config);
    walker.walk(0x4000'0000, kLog2_4K);
    walker.resetStats();
    EXPECT_EQ(walker.stats().walks, 0u);
    // The PWC survived the warmup boundary: the revisit still hits.
    walker.walk(0x4000'0000, kLog2_4K);
    EXPECT_EQ(walker.stats().pwcHits, 1u);

    walker.reset();
    walker.resetStats();
    walker.walk(0x4000'0000, kLog2_4K);
    EXPECT_EQ(walker.stats().pwcHits, 0u); // reset() cleared contents
}

TEST(WalkStats, DeltaSinceSubtractsEveryField)
{
    WalkConfig config;
    config.enabled = true;
    PageWalker walker(config);
    walker.walk(0x1000, kLog2_4K);
    const WalkStats snapshot = walker.stats();
    walker.walk(0x2000'0000, kLog2_4K);
    walker.walk(0x2000'0000, kLog2_32K);
    const WalkStats delta = walker.stats().deltaSince(snapshot);
    EXPECT_EQ(delta.walks, 2u);
    EXPECT_EQ(delta.walksLarge, 1u);
    EXPECT_EQ(delta.levelsTouched, 7u);
    EXPECT_EQ(delta.cycles,
              walker.stats().cycles - snapshot.cycles);
}

} // namespace
} // namespace tps::walk
