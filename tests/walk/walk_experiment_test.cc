/**
 * @file
 * Walk-model integration gates: with `--walk-model` on, the batched
 * engine must stay bit-identical to the per-ref oracle at every chunk
 * size (the walker reads the miss stream, which is identical, so its
 * counters must be too); cpi_walk must reconcile exactly with the
 * counted walk accesses; sweeps must be schedule-independent; and the
 * victim-TLB organization must match the FA oracle of combined
 * capacity under a shootdown-free (single-size) policy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace tps::core
{
namespace
{

RunOptions
walkOptions()
{
    RunOptions options;
    options.maxRefs = 120'000;
    options.warmupRefs = 30'000;
    options.walk.enabled = true;
    return options;
}

/** Two-size policy scaled so promotions happen inside the short test
 *  traces (the default T=200k window would barely close once). */
TwoSizeConfig
testPolicy()
{
    TwoSizeConfig config;
    config.window = 20'000;
    return config;
}

void
expectSameWalk(const ExperimentResult &a, const ExperimentResult &b,
               const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.tlb.hits, b.tlb.hits);
    EXPECT_EQ(a.tlb.misses, b.tlb.misses);
    ASSERT_TRUE(a.walkModeled);
    ASSERT_TRUE(b.walkModeled);
    EXPECT_EQ(a.walk.walks, b.walk.walks);
    EXPECT_EQ(a.walk.walksLarge, b.walk.walksLarge);
    EXPECT_EQ(a.walk.levelsTouched, b.walk.levelsTouched);
    EXPECT_EQ(a.walk.levelAccesses, b.walk.levelAccesses);
    EXPECT_EQ(a.walk.pwcLookups, b.walk.pwcLookups);
    EXPECT_EQ(a.walk.pwcHits, b.walk.pwcHits);
    EXPECT_EQ(a.walk.pwcEvictions, b.walk.pwcEvictions);
    EXPECT_EQ(a.walk.cycles, b.walk.cycles);
    EXPECT_EQ(a.cpiWalk, b.cpiWalk);
}

TEST(WalkExperiment, BatchedMatchesPerRefAtEveryChunkSize)
{
    auto workload = workloads::findWorkload("espresso").instantiate();
    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 32;
    tlb.ways = 2;
    const auto policy = PolicySpec::twoSizes(testPolicy());

    RunOptions oracle_options = walkOptions();
    oracle_options.exec = ExecMode::PerRef;
    const auto oracle =
        runExperiment(*workload, policy, tlb, oracle_options);
    ASSERT_GT(oracle.walk.walks, 0u);
    ASSERT_GT(oracle.walk.walksLarge, 0u);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64},
                                    std::size_t{4096}}) {
        RunOptions options = walkOptions();
        options.exec = ExecMode::Batched;
        options.chunkRefs = chunk;
        const auto batched =
            runExperiment(*workload, policy, tlb, options);
        expectSameWalk(batched, oracle,
                       "chunkRefs=" + std::to_string(chunk));
    }
}

TEST(WalkExperiment, CpiWalkReconcilesExactly)
{
    auto workload = workloads::findWorkload("doduc").instantiate();
    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 48;
    const RunOptions options = walkOptions();
    const auto result = runExperiment(
        *workload, PolicySpec::twoSizes(testPolicy()), tlb,
        options);

    ASSERT_TRUE(result.walkModeled);
    // One walk per measured miss, no more, no fewer.
    EXPECT_EQ(result.walk.walks, result.tlb.misses);
    // The integer identity: every cycle is a counted level access or
    // a counted PWC hit.
    EXPECT_EQ(result.walk.cycles,
              std::uint64_t{options.walk.cyclesPerLevel} *
                      result.walk.levelAccesses +
                  std::uint64_t{options.walk.pwcHitCycles} *
                      result.walk.pwcHits);
    // And cpi_walk is exactly that integer per instruction.
    EXPECT_EQ(result.cpiWalk,
              static_cast<double>(result.walk.cycles) /
                  static_cast<double>(result.instructions));
    // Structural depth: a two-size mix must land strictly between the
    // all-large and all-small depths.
    ASSERT_GT(result.walk.walksLarge, 0u);
    ASSERT_LT(result.walk.walksLarge, result.walk.walks);
    EXPECT_GT(result.walk.levelsPerWalk(), 3.0);
    EXPECT_LT(result.walk.levelsPerWalk(), 4.0);
}

TEST(WalkExperiment, WalkOffLeavesResultUnmodeled)
{
    auto workload = workloads::findWorkload("li").instantiate();
    TlbConfig tlb;
    RunOptions options;
    options.maxRefs = 50'000;
    const auto result = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), tlb, options);
    EXPECT_FALSE(result.walkModeled);
    EXPECT_EQ(result.walk.walks, 0u);
    EXPECT_EQ(result.cpiWalk, 0.0);
}

TEST(WalkExperiment, SweepScheduleIndependentWithWalkOn)
{
    auto buildSweep = [](unsigned threads) {
        RunOptions options;
        options.maxRefs = 60'000;
        options.warmupRefs = 15'000;
        options.walk.enabled = true;
        SweepRunner sweep;
        sweep.workloads({"li", "espresso", "doduc"})
            .options(options)
            .threads(threads);
        for (const std::size_t entries : {16, 64}) {
            TlbConfig tlb;
            tlb.organization = TlbOrganization::FullyAssociative;
            tlb.entries = entries;
            sweep.configuration(
                tlb, PolicySpec::twoSizes(testPolicy()));
        }
        return sweep.run();
    };
    const auto serial = buildSweep(1);
    const auto parallel = buildSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameWalk(serial[i].result, parallel[i].result,
                       "cell " + std::to_string(i));
}

TEST(WalkExperiment, VictimOrganizationMatchesFaOracle)
{
    // FA(8)+victim(8) vs FA(16) through the full driver, hit-for-hit.
    // Single-size policy: no promotions, so no shootdowns — the
    // regime where the exclusivity argument is exact.
    auto workload = workloads::findWorkload("espresso").instantiate();
    RunOptions options;
    options.maxRefs = 100'000;

    TlbConfig victim;
    victim.organization = TlbOrganization::Victim;
    victim.entries = 8;
    victim.victimEntries = 8;
    const auto with_victim = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), victim, options);

    TlbConfig oracle;
    oracle.organization = TlbOrganization::FullyAssociative;
    oracle.entries = 16;
    const auto flat = runExperiment(
        *workload, PolicySpec::single(kLog2_4K), oracle, options);

    EXPECT_EQ(with_victim.tlb.hits, flat.tlb.hits);
    EXPECT_EQ(with_victim.tlb.misses, flat.tlb.misses);
    ASSERT_TRUE(with_victim.victimModeled);
    EXPECT_GT(with_victim.victim.victimHits, 0u);
    EXPECT_FALSE(flat.victimModeled);
}

TEST(WalkExperiment, VictimStatsExportedUnderWalkNamespace)
{
    auto workload = workloads::findWorkload("li").instantiate();
    RunOptions options;
    options.maxRefs = 40'000;
    options.walk.enabled = true;
    TlbConfig tlb;
    tlb.organization = TlbOrganization::Victim;
    tlb.entries = 8;
    tlb.victimEntries = 16;
    const auto result = runExperiment(
        *workload, PolicySpec::twoSizes(testPolicy()), tlb,
        options);
    ASSERT_TRUE(result.walkModeled);
    ASSERT_TRUE(result.victimModeled);

    obs::StatRegistry registry;
    result.exportTo(registry, "cell");
    std::ostringstream json;
    registry.writeJson(json);
    const std::string text = json.str();
    EXPECT_NE(text.find("cell.walk.cycles"), std::string::npos);
    EXPECT_NE(text.find("cell.cpi_walk"), std::string::npos);
    EXPECT_NE(text.find("cell.walk.victim_hits"), std::string::npos);
    EXPECT_NE(text.find("cell.walk.victim_fills"), std::string::npos);
}

} // namespace
} // namespace tps::core
