/**
 * @file
 * Unit tests for the victim-TLB wrapper (tlb/victim_tlb.h).  The
 * centerpiece is the classical oracle: because the arrangement is
 * exclusive and the array is exact LRU, FA-LRU(n) + victim(m) must
 * match FA-LRU(n+m) hit-for-hit on any shootdown-free reference
 * stream.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "tlb/fully_assoc.h"
#include "tlb/victim_tlb.h"
#include "vm/page.h"

namespace tps
{
namespace
{

std::unique_ptr<VictimTlb>
makeVictim(std::size_t primary_entries, std::size_t victim_entries)
{
    return std::make_unique<VictimTlb>(
        std::make_unique<FullyAssocTlb>(primary_entries),
        victim_entries);
}

TEST(VictimTlb, MatchesFaOfCombinedCapacity)
{
    // FA-LRU(8) + victim(8) vs FA-LRU(16), same 4K-page stream,
    // hit-for-hit.  Shootdown-free: no invalidations ever run.
    auto victim = makeVictim(8, 8);
    FullyAssocTlb oracle(16);
    std::uint64_t state = 7;
    for (int i = 0; i < 200'000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // ~24 hot pages over 8+8 entries: misses, rescues and age-outs.
        const Addr vaddr = ((state >> 33) % 24) << kLog2_4K;
        const PageId page = pageOf(vaddr, kLog2_4K);
        const bool a = victim->access(page, vaddr);
        const bool b = oracle.access(page, vaddr);
        ASSERT_EQ(a, b) << "diverged at access " << i;
    }
    EXPECT_EQ(victim->stats().hits, oracle.stats().hits);
    EXPECT_EQ(victim->stats().misses, oracle.stats().misses);
    EXPECT_GT(victim->victimStats().victimHits, 0u);
    EXPECT_GT(victim->victimStats().victimEvictions, 0u);
}

TEST(VictimTlb, ExclusiveAndAccounted)
{
    auto victim = makeVictim(2, 4);
    // Fill the primary, then displace: each eviction parks exactly one
    // entry in the array.
    for (Addr p = 0; p < 4; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    EXPECT_EQ(victim->victimStats().victimFills, 2u);
    EXPECT_EQ(victim->victimValidCount(), 2u);

    // Rescue: page 0 was displaced, so this access hits the array,
    // moves the entry back (exclusivity) and displaces another.
    const TlbStats before = victim->stats();
    EXPECT_TRUE(victim->access(pageOf(0, kLog2_4K), 0));
    EXPECT_EQ(victim->victimStats().victimHits, 1u);
    EXPECT_EQ(victim->stats().hits, before.hits + 1);
    // One came back, one went in: still 2 parked.
    EXPECT_EQ(victim->victimValidCount(), 2u);
}

TEST(VictimTlb, ShootdownsReachTheArray)
{
    auto victim = makeVictim(2, 4);
    for (Addr p = 0; p < 4; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    ASSERT_EQ(victim->victimValidCount(), 2u);

    // Page 0 lives in the array by now; a shootdown must find it there.
    victim->invalidatePage(pageOf(0, kLog2_4K));
    EXPECT_EQ(victim->victimValidCount(), 1u);
    EXPECT_EQ(victim->victimStats().victimInvalidations, 1u);
    // The wrapper's invalidation counter spans both structures.
    EXPECT_EQ(victim->stats().invalidations, 1u);

    victim->invalidateAll();
    EXPECT_EQ(victim->victimValidCount(), 0u);
}

TEST(VictimTlb, AsidInvalidationScansTheArray)
{
    auto victim = makeVictim(2, 8);
    victim->setAsid(1);
    for (Addr p = 0; p < 4; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    victim->setAsid(2);
    for (Addr p = 8; p < 12; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    const std::size_t parked = victim->victimValidCount();
    ASSERT_GT(parked, 0u);

    victim->invalidateAsid(1);
    // ASID 1's parked entries are gone; ASID 2's survive.
    EXPECT_LT(victim->victimValidCount(), parked);
    victim->setAsid(1);
    EXPECT_FALSE(victim->access(pageOf(0, kLog2_4K), 0));
}

TEST(VictimTlb, AsidTagsKeepStreamsApart)
{
    // Same vpn under two ASIDs: the array must not cross-serve.
    auto victim = makeVictim(1, 4);
    victim->setAsid(1);
    victim->access(pageOf(0, kLog2_4K), 0);
    victim->access(pageOf(1 << kLog2_4K, kLog2_4K),
                   Addr{1} << kLog2_4K); // displaces (asid 1, vpn 0)
    victim->setAsid(2);
    // vpn 0 is parked, but for ASID 1 — this must miss.
    EXPECT_FALSE(victim->access(pageOf(0, kLog2_4K), 0));
}

TEST(VictimTlb, CapacityNameAndReset)
{
    auto victim = makeVictim(4, 16);
    EXPECT_EQ(victim->capacity(), 20u);
    EXPECT_NE(victim->name().find("victim["), std::string::npos);
    EXPECT_NE(victim->name().find("16"), std::string::npos);

    for (Addr p = 0; p < 8; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    victim->reset();
    EXPECT_EQ(victim->victimValidCount(), 0u);
    EXPECT_EQ(victim->stats().accesses, 0u);
    EXPECT_EQ(victim->victimStats().victimFills, 0u);

    // resetStats keeps contents: the primary still holds its pages.
    victim->access(pageOf(0, kLog2_4K), 0);
    victim->resetStats();
    EXPECT_EQ(victim->stats().accesses, 0u);
    EXPECT_TRUE(victim->access(pageOf(0, kLog2_4K), 0));
}

TEST(VictimTlb, ReachSnapshotAddsTheArrayAsOneSet)
{
    auto victim = makeVictim(2, 4);
    for (Addr p = 0; p < 3; ++p)
        victim->access(pageOf(p << kLog2_4K, kLog2_4K),
                       p << kLog2_4K);
    auto primary_only = FullyAssocTlb(2);
    for (Addr p = 0; p < 3; ++p)
        primary_only.access(pageOf(p << kLog2_4K, kLog2_4K),
                            p << kLog2_4K);
    const auto combined = victim->reachSnapshot();
    const auto base = primary_only.reachSnapshot();
    EXPECT_EQ(combined.sets, base.sets + 1);
    // One entry is parked: its 4K page extends the reach.
    EXPECT_EQ(combined.reachBytes,
              base.reachBytes + (std::uint64_t{1} << kLog2_4K));
}

} // namespace
} // namespace tps
