/** @file Unit tests for the deterministic round-robin scheduler. */

#include "os/scheduler.h"

#include <gtest/gtest.h>

namespace tps::os
{
namespace
{

SchedulerConfig
quantumOf(std::uint64_t refs)
{
    SchedulerConfig config;
    config.quantumRefs = refs;
    return config;
}

TEST(SchedulerTest, RoundRobinOrder)
{
    Scheduler sched(quantumOf(100), {{}, {}, {}});
    const std::size_t expected[] = {0, 1, 2, 0, 1, 2};
    for (std::size_t want : expected) {
        auto quantum = sched.nextQuantum();
        ASSERT_TRUE(quantum.has_value());
        EXPECT_EQ(quantum->process, want);
        EXPECT_EQ(quantum->sliceRefs, 100u);
        sched.accountRun(quantum->process, quantum->sliceRefs, false);
    }
}

TEST(SchedulerTest, FirstDispatchIsNotASwitch)
{
    Scheduler sched(quantumOf(10), {{}, {}});
    auto first = sched.nextQuantum();
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(first->switched);
    EXPECT_EQ(sched.contextSwitches(), 0u);
    sched.accountRun(first->process, 10, false);
    auto second = sched.nextQuantum();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->switched);
    EXPECT_EQ(sched.contextSwitches(), 1u);
}

TEST(SchedulerTest, WeightsScaleSlices)
{
    Scheduler sched(quantumOf(100), {{/*weight=*/1}, {/*weight=*/3}});
    auto a = sched.nextQuantum();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->sliceRefs, 100u);
    sched.accountRun(a->process, a->sliceRefs, false);
    auto b = sched.nextQuantum();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->process, 1u);
    EXPECT_EQ(b->sliceRefs, 300u);
}

TEST(SchedulerTest, BudgetClampsThenRetires)
{
    Scheduler sched(quantumOf(100),
                    {{/*weight=*/1, /*budgetRefs=*/150}});
    auto first = sched.nextQuantum();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->sliceRefs, 100u);
    sched.accountRun(0, 100, false);
    auto second = sched.nextQuantum();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->sliceRefs, 50u); // clamped to remaining budget
    sched.accountRun(0, 50, false);
    EXPECT_FALSE(sched.runnable(0));
    EXPECT_FALSE(sched.nextQuantum().has_value());
}

TEST(SchedulerTest, DrainedProcessLeavesTheRotation)
{
    Scheduler sched(quantumOf(10), {{}, {}});
    auto first = sched.nextQuantum();
    ASSERT_TRUE(first.has_value());
    sched.accountRun(first->process, 4, /*drained=*/true);
    EXPECT_FALSE(sched.runnable(0));

    // The survivor is re-dispatched forever; only the first handoff
    // counts as a switch.
    for (int i = 0; i < 3; ++i) {
        auto quantum = sched.nextQuantum();
        ASSERT_TRUE(quantum.has_value());
        EXPECT_EQ(quantum->process, 1u);
        sched.accountRun(1, 10, false);
    }
    EXPECT_EQ(sched.contextSwitches(), 1u);
}

TEST(SchedulerTest, ParseAndNameRoundTrip)
{
    EXPECT_EQ(parseSwitchMode("flush"), SwitchMode::Flush);
    EXPECT_EQ(parseSwitchMode("tagged"), SwitchMode::Tagged);
    EXPECT_EQ(parseSwitchMode("tagged+limit"), SwitchMode::TaggedLimit);
    for (SwitchMode mode : {SwitchMode::Flush, SwitchMode::Tagged,
                            SwitchMode::TaggedLimit}) {
        EXPECT_EQ(parseSwitchMode(switchModeName(mode)), mode);
    }
    EXPECT_DEATH(parseSwitchMode("bogus"), "switch mode");
}

} // namespace
} // namespace tps::os
