/** @file ASID tagging: context isolation, selective flushes, and the
 *  AsidManager's three switch modes. */

#include "os/scheduler.h"

#include <gtest/gtest.h>

#include "tlb/fully_assoc.h"
#include "tlb/set_assoc.h"

namespace tps::os
{
namespace
{

PageId
small(Addr vpn)
{
    return PageId{vpn, kLog2_4K};
}

TEST(AsidTlbTest, FullyAssocEntriesAreContextLocal)
{
    FullyAssocTlb tlb(8);
    EXPECT_FALSE(tlb.access(small(1), 0x1000));
    EXPECT_TRUE(tlb.access(small(1), 0x1000));

    // Same vpn under a different context must not hit.
    tlb.setAsid(1);
    EXPECT_FALSE(tlb.access(small(1), 0x1000));

    // Both translations are now resident under their own tags.
    EXPECT_TRUE(tlb.access(small(1), 0x1000));
    tlb.setAsid(0);
    EXPECT_TRUE(tlb.access(small(1), 0x1000));
}

TEST(AsidTlbTest, SetAssocEntriesAreContextLocal)
{
    SetAssocTlb tlb(16, 2, IndexScheme::Exact);
    EXPECT_FALSE(tlb.access(small(5), 0x5000));
    EXPECT_TRUE(tlb.access(small(5), 0x5000));
    tlb.setAsid(3);
    EXPECT_FALSE(tlb.access(small(5), 0x5000));
    tlb.setAsid(0);
    EXPECT_TRUE(tlb.access(small(5), 0x5000));
}

TEST(AsidTlbTest, InvalidateAsidIsSelective)
{
    FullyAssocTlb tlb(8);
    tlb.access(small(1), 0x1000); // asid 0
    tlb.setAsid(1);
    tlb.access(small(2), 0x2000); // asid 1
    tlb.access(small(3), 0x3000); // asid 1

    tlb.invalidateAsid(1);
    EXPECT_EQ(tlb.stats().invalidations, 2u);

    // Context 1 entries are gone; context 0's survive.
    EXPECT_FALSE(tlb.access(small(2), 0x2000));
    tlb.setAsid(0);
    EXPECT_TRUE(tlb.access(small(1), 0x1000));
}

TEST(AsidTlbTest, ResetRestoresDefaultContext)
{
    FullyAssocTlb tlb(4);
    tlb.setAsid(7);
    tlb.reset();
    EXPECT_EQ(tlb.currentAsid(), 0u);
}

TEST(AsidManagerTest, FlushModeFlushesOnlyOnActualSwitches)
{
    FullyAssocTlb tlb(8);
    AsidManager asids(SwitchMode::Flush, 1, 2);

    EXPECT_EQ(asids.activate(0, /*switched=*/false, tlb), 0u);
    tlb.access(small(1), 0x1000);
    EXPECT_EQ(asids.switchFlushes(), 0u);

    // Re-dispatching the same process keeps the TLB warm.
    asids.activate(0, /*switched=*/false, tlb);
    EXPECT_TRUE(tlb.access(small(1), 0x1000));

    // A real switch empties it; everything runs untagged (tag 0).
    EXPECT_EQ(asids.activate(1, /*switched=*/true, tlb), 0u);
    EXPECT_EQ(asids.switchFlushes(), 1u);
    EXPECT_FALSE(tlb.access(small(1), 0x1000));
}

TEST(AsidManagerTest, TaggedAssignsOneTagPerProcess)
{
    FullyAssocTlb tlb(8);
    AsidManager asids(SwitchMode::Tagged, 2, 4);
    EXPECT_EQ(asids.activate(0, false, tlb), 0u);
    EXPECT_EQ(asids.activate(3, true, tlb), 3u);
    EXPECT_EQ(tlb.currentAsid(), 3u);
    EXPECT_EQ(asids.switchFlushes(), 0u);
    EXPECT_EQ(asids.recycleFlushes(), 0u);
}

TEST(AsidManagerTest, TaggedLimitRecyclesLeastRecentTag)
{
    FullyAssocTlb tlb(8);
    AsidManager asids(SwitchMode::TaggedLimit, /*hw_asids=*/2,
                      /*processes=*/3);

    const std::uint16_t tag0 = asids.activate(0, false, tlb);
    tlb.access(small(1), 0x1000); // process 0's entry
    const std::uint16_t tag1 = asids.activate(1, true, tlb);
    EXPECT_NE(tag0, tag1);
    EXPECT_EQ(asids.recycleFlushes(), 0u);

    // Third process overflows the tag file: process 0's tag (least
    // recently activated) is recycled and its entries flushed.
    const std::uint16_t tag2 = asids.activate(2, true, tlb);
    EXPECT_EQ(tag2, tag0);
    EXPECT_EQ(asids.recycleFlushes(), 1u);
    EXPECT_EQ(tlb.stats().invalidations, 1u);
    EXPECT_FALSE(tlb.access(small(1), 0x1000));

    // Process 0 returns: it lost its tag, so process 1's (now the
    // least recent) is recycled in turn.
    const std::uint16_t again = asids.activate(0, true, tlb);
    EXPECT_EQ(again, tag1);
    EXPECT_EQ(asids.recycleFlushes(), 2u);
}

TEST(AsidManagerTest, TaggedLimitKeepsOwnedTagsStable)
{
    FullyAssocTlb tlb(8);
    AsidManager asids(SwitchMode::TaggedLimit, 2, 2);
    const std::uint16_t a = asids.activate(0, false, tlb);
    const std::uint16_t b = asids.activate(1, true, tlb);
    // Enough tags for everyone: ping-pong never recycles.
    EXPECT_EQ(asids.activate(0, true, tlb), a);
    EXPECT_EQ(asids.activate(1, true, tlb), b);
    EXPECT_EQ(asids.recycleFlushes(), 0u);
}

} // namespace
} // namespace tps::os
