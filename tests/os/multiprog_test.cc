/** @file End-to-end tests of the multiprogrammed experiment driver:
 *  additivity against runExperiment, per-process/merged reconciliation,
 *  switch-mode CPI ordering, and interval-sum invariants. */

#include "core/multiprog.h"

#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace tps::core
{
namespace
{

/** Small window so promotions (and thus shootdowns) happen at the
 *  few-thousand-reference scale these tests run at. */
TwoSizeConfig
testPolicy()
{
    TwoSizeConfig config;
    config.window = 4'000;
    return config;
}

TlbConfig
smallFaTlb(std::size_t entries = 32)
{
    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = entries;
    return tlb;
}

std::vector<ProcessSpec>
mixSpecs(std::size_t procs, const PolicySpec &policy)
{
    const char *mix[] = {"espresso", "xnews", "matrix300", "li"};
    std::vector<ProcessSpec> specs;
    for (std::size_t p = 0; p < procs; ++p) {
        ProcessSpec spec;
        spec.workload = mix[p];
        spec.policy = policy;
        specs.push_back(spec);
    }
    return specs;
}

void
expectTlbStatsEq(const TlbStats &a, const TlbStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.hitsSmall, b.hitsSmall);
    EXPECT_EQ(a.hitsLarge, b.hitsLarge);
    EXPECT_EQ(a.missesSmall, b.missesSmall);
    EXPECT_EQ(a.missesLarge, b.missesLarge);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.invalidations, b.invalidations);
}

/** Acceptance: one process under tagged mode with zero shootdown cost
 *  is exactly runExperiment — the OS layer must be strictly additive. */
TEST(MultiprogTest, SingleProcessMatchesRunExperiment)
{
    RunOptions run;
    run.maxRefs = 24'000;
    run.warmupRefs = 6'000;
    const PolicySpec policy = PolicySpec::twoSizes(testPolicy());

    auto trace = workloads::findWorkload("espresso").instantiate();
    const ExperimentResult uni =
        runExperiment(*trace, policy, smallFaTlb(), run);

    MultiprogOptions options;
    options.run = run;
    options.sched.switchMode = os::SwitchMode::Tagged;
    options.shootdownCycles = 0.0;
    const MultiprogResult multi = runMultiprogExperiment(
        mixSpecs(1, policy), smallFaTlb(), options);

    EXPECT_EQ(multi.refs, uni.refs);
    EXPECT_EQ(multi.instructions, uni.instructions);
    expectTlbStatsEq(multi.tlb, uni.tlb);
    EXPECT_EQ(multi.policy.promotions, uni.policy.promotions);
    EXPECT_EQ(multi.policy.demotions, uni.policy.demotions);
    EXPECT_EQ(multi.policy.refsSmall, uni.policy.refsSmall);
    EXPECT_EQ(multi.policy.refsLarge, uni.policy.refsLarge);
    EXPECT_DOUBLE_EQ(multi.cpiTlb, uni.cpiTlb);
    EXPECT_DOUBLE_EQ(multi.missRatio, uni.missRatio);
    EXPECT_DOUBLE_EQ(multi.cpiOs, 0.0);
    EXPECT_EQ(multi.os.contextSwitches, 0u);

    ASSERT_EQ(multi.processes.size(), 1u);
    EXPECT_EQ(multi.processes[0].refs, uni.refs);
    expectTlbStatsEq(multi.processes[0].tlb, uni.tlb);
}

void
expectProcessSumsReconcile(const MultiprogResult &result)
{
    TlbStats tlb_sum;
    PolicyStats policy_sum;
    std::uint64_t refs = 0, instructions = 0, shootdowns = 0;
    for (const ProcessResult &proc : result.processes) {
        refs += proc.refs;
        instructions += proc.instructions;
        shootdowns += proc.shootdowns;
        tlb_sum.accesses += proc.tlb.accesses;
        tlb_sum.hits += proc.tlb.hits;
        tlb_sum.misses += proc.tlb.misses;
        tlb_sum.hitsSmall += proc.tlb.hitsSmall;
        tlb_sum.hitsLarge += proc.tlb.hitsLarge;
        tlb_sum.missesSmall += proc.tlb.missesSmall;
        tlb_sum.missesLarge += proc.tlb.missesLarge;
        tlb_sum.fills += proc.tlb.fills;
        tlb_sum.evictions += proc.tlb.evictions;
        tlb_sum.invalidations += proc.tlb.invalidations;
        policy_sum.promotions += proc.policy.promotions;
        policy_sum.demotions += proc.policy.demotions;
        policy_sum.refsSmall += proc.policy.refsSmall;
        policy_sum.refsLarge += proc.policy.refsLarge;
    }
    EXPECT_EQ(refs, result.refs);
    EXPECT_EQ(instructions, result.instructions);
    EXPECT_EQ(shootdowns, result.os.shootdowns);
    expectTlbStatsEq(tlb_sum, result.tlb);
    EXPECT_EQ(policy_sum.promotions, result.policy.promotions);
    EXPECT_EQ(policy_sum.demotions, result.policy.demotions);
    EXPECT_EQ(policy_sum.refsSmall, result.policy.refsSmall);
    EXPECT_EQ(policy_sum.refsLarge, result.policy.refsLarge);
}

/** Acceptance: per-process slices sum to the merged result exactly,
 *  field for field — with and without a warmup boundary. */
TEST(MultiprogTest, PerProcessStatsSumToMerged)
{
    MultiprogOptions options;
    options.run.maxRefs = 24'000;
    options.run.warmupRefs = 0;
    options.sched.quantumRefs = 3'000;
    options.sched.switchMode = os::SwitchMode::TaggedLimit;
    options.sched.hwAsids = 2;
    options.shootdownCycles = 25.0;

    const MultiprogResult result = runMultiprogExperiment(
        mixSpecs(4, PolicySpec::twoSizes(testPolicy())),
        smallFaTlb(), options);

    // Not vacuous: switches, recycles and shootdowns all happened.
    EXPECT_GT(result.os.contextSwitches, 0u);
    EXPECT_GT(result.os.asidRecycles, 0u);
    EXPECT_GT(result.os.shootdowns, 0u);
    ASSERT_EQ(result.processes.size(), 4u);
    expectProcessSumsReconcile(result);
    EXPECT_DOUBLE_EQ(result.cpiOs,
                     result.os.shootdownCycleTotal /
                         static_cast<double>(result.instructions));
}

TEST(MultiprogTest, PerProcessStatsSumToMergedAcrossWarmup)
{
    MultiprogOptions options;
    options.run.maxRefs = 24'000;
    options.run.warmupRefs = 7'000; // lands mid-quantum on purpose
    options.sched.quantumRefs = 3'000;
    options.sched.switchMode = os::SwitchMode::Tagged;
    options.shootdownCycles = 25.0;

    const MultiprogResult result = runMultiprogExperiment(
        mixSpecs(3, PolicySpec::twoSizes(testPolicy())),
        smallFaTlb(), options);
    EXPECT_EQ(result.refs, 17'000u);
    expectProcessSumsReconcile(result);
}

/** Acceptance: flush pays at least as much as a bounded tag file,
 *  which pays at least as much as unbounded tags. */
TEST(MultiprogTest, SwitchModeCpiOrdering)
{
    auto cpiFor = [](os::SwitchMode mode) {
        MultiprogOptions options;
        options.run.maxRefs = 40'000;
        options.run.warmupRefs = 8'000;
        options.sched.quantumRefs = 2'000;
        options.sched.switchMode = mode;
        options.sched.hwAsids = 2;
        // The TLB must be big enough that tagged entries actually
        // survive a full rotation — with a tiny TLB capacity evicts
        // everything before re-dispatch and all modes tie.
        return runMultiprogExperiment(
                   mixSpecs(4, PolicySpec::twoSizes(testPolicy())),
                   smallFaTlb(256), options)
            .cpiTlb;
    };
    const double flush = cpiFor(os::SwitchMode::Flush);
    const double limited = cpiFor(os::SwitchMode::TaggedLimit);
    const double tagged = cpiFor(os::SwitchMode::Tagged);
    EXPECT_GE(flush, limited);
    EXPECT_GE(limited, tagged);
    EXPECT_GT(flush, tagged); // flushing 4 procs must actually hurt
}

/** Interval rows are counter deltas: their sums must reproduce the
 *  merged aggregates exactly, including the OS-layer columns. */
TEST(MultiprogTest, IntervalSumsReproduceAggregates)
{
    MultiprogOptions options;
    options.run.maxRefs = 20'000;
    options.run.warmupRefs = 4'000;
    options.run.timeseries.intervalRefs = 4'000;
    options.sched.quantumRefs = 3'000;
    options.sched.switchMode = os::SwitchMode::TaggedLimit;
    options.sched.hwAsids = 2;
    options.shootdownCycles = 10.0;

    const MultiprogResult result = runMultiprogExperiment(
        mixSpecs(3, PolicySpec::twoSizes(testPolicy())),
        smallFaTlb(), options);
    ASSERT_NE(result.timeseries, nullptr);
    const obs::TimeSeries &series = *result.timeseries;
    EXPECT_EQ(series.counterSum("refs"), result.refs);
    EXPECT_EQ(series.counterSum("instructions"), result.instructions);
    EXPECT_EQ(series.counterSum("tlb_access"), result.tlb.accesses);
    EXPECT_EQ(series.counterSum("tlb_miss"), result.tlb.misses);
    EXPECT_EQ(series.counterSum("tlb_invalidation"),
              result.tlb.invalidations);
    EXPECT_EQ(series.counterSum("promotions"),
              result.policy.promotions);
    EXPECT_EQ(series.counterSum("ctx_switches"),
              result.os.contextSwitches);
    EXPECT_EQ(series.counterSum("asid_recycles"),
              result.os.asidRecycles);
    EXPECT_EQ(series.counterSum("shootdowns"), result.os.shootdowns);
}

/** Weights and budgets flow through the convenience spec form. */
TEST(MultiprogTest, BudgetsRetireProcessesEarly)
{
    MultiprogOptions options;
    options.run.maxRefs = 0; // run until budgets drain everything
    options.sched.quantumRefs = 1'000;

    auto specs = mixSpecs(2, PolicySpec::single(kLog2_4K));
    specs[0].budgetRefs = 3'000;
    specs[1].budgetRefs = 5'000;
    const MultiprogResult result = runMultiprogExperiment(
        specs, smallFaTlb(), options);
    EXPECT_EQ(result.refs, 8'000u);
    ASSERT_EQ(result.processes.size(), 2u);
    EXPECT_EQ(result.processes[0].refs, 3'000u);
    EXPECT_EQ(result.processes[1].refs, 5'000u);
}

} // namespace
} // namespace tps::core
