/**
 * @file
 * li, espresso and eqntott: the integer/symbolic workloads.  li and
 * espresso are the paper's examples of sparse address spaces and tight
 * temporal locality, respectively — the programs whose working sets
 * inflate most under a single large page size.
 */

#include "workloads/spec_suite.h"

#include <array>

#include "workloads/layout.h"
#include "workloads/patterns.h"

namespace tps::workloads
{

namespace
{

/**
 * li: the xlisp interpreter.  The heap is a set of cons-cell pools
 * placed every 64KB (leaving unused gaps, i.e. a *sparse* address
 * space), each pool bump-filled to a different density, so some 32KB
 * chunks are dense enough to promote and many are not.  The mutator
 * pointer-chases popularity-weighted pools; a periodic mark-and-sweep
 * GC walks every pool sequentially.
 */
class Li : public SyntheticWorkload
{
  public:
    explicit Li(std::uint64_t seed)
        : SyntheticWorkload("li", seed, codeConfig()),
          pool_popularity_(kPools, 1.4)
    {
        Rng layout_rng(seed + 17);
        for (unsigned p = 0; p < kPools; ++p) {
            // Fill fraction ramps from 20% to 100% across pools.
            const double fill = 0.20 + 0.80 * p / (kPools - 1);
            live_bytes_[p] = static_cast<std::uint32_t>(
                static_cast<double>(kPoolBytes) * fill) &
                ~std::uint32_t{15};
            (void)layout_rng;
        }
        onReset();
    }

  protected:
    static constexpr unsigned kPools = 20;
    static constexpr std::uint32_t kPoolBytes = 32 * 1024;
    static constexpr Addr kPoolSpacing = 64 * 1024; // gaps -> sparse
    static constexpr Addr kHeapBase = kDataBase;
    static constexpr Addr kEvalStack = kStackTop - 0xB000;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 30;      // eval/apply/builtins
        config.avgFuncBytes = 1024; // ~30KB text: one page per set
        config.callRate = 0.05;     // interpreter dispatch
        config.loopBackRate = 0.06;
        return config;
    }

    Addr
    poolBase(unsigned pool) const
    {
        return kHeapBase + pool * kPoolSpacing;
    }

    void
    behave() override
    {
        ++steps_;
        if (steps_ % kGcPeriod == 0) {
            gc_pool_ = 0;
            gc_offset_ = 0;
            gc_active_ = true;
        }

        if (gc_active_) {
            // Mark-and-sweep: walk live cells of every pool in order.
            instrs(1);
            for (int touch = 0; touch < 3 && gc_active_; ++touch) {
                load(poolBase(gc_pool_) + gc_offset_, 8);
                gc_offset_ += 16;
                if (gc_offset_ >= live_bytes_[gc_pool_]) {
                    gc_offset_ = 0;
                    if (++gc_pool_ == kPools)
                        gc_active_ = false;
                }
            }
            return;
        }

        // Mutator: eval loop touching the stack and chasing cells.
        // Chases are bursty — evaluating one expression walks one
        // list — and have locality: mostly short hops from the pool's
        // cursor, sometimes a long jump.
        instrs(3);
        load(kEvalStack + (steps_ % 512) * 8);
        if (burst_left_ == 0) {
            current_pool_ = static_cast<unsigned>(
                pool_popularity_.sample(rng_));
            burst_left_ = 8 + static_cast<unsigned>(rng_.below(33));
        }
        --burst_left_;
        const unsigned pool = current_pool_;
        const std::uint32_t cells = live_bytes_[pool] / 16;
        std::uint32_t &cursor = chase_cursor_[pool];
        if (rng_.chance(0.85))
            cursor = (cursor + 1 +
                      static_cast<std::uint32_t>(rng_.below(8))) % cells;
        else
            cursor = static_cast<std::uint32_t>(rng_.below(cells));
        load(poolBase(pool) + std::uint64_t{cursor} * 16);
        if (rng_.chance(0.30)) {
            // cons: bump-allocate in the current allocation pool.
            instr();
            store(poolBase(alloc_pool_) + alloc_offset_, 8);
            alloc_offset_ += 16;
            if (alloc_offset_ >= live_bytes_[alloc_pool_]) {
                alloc_offset_ = 0;
                alloc_pool_ = (alloc_pool_ + 1) % kPools;
            }
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        gc_active_ = false;
        gc_pool_ = 0;
        gc_offset_ = 0;
        alloc_pool_ = 0;
        alloc_offset_ = 0;
        current_pool_ = 0;
        burst_left_ = 0;
        chase_cursor_.fill(0);
    }

  private:
    static constexpr std::uint64_t kGcPeriod = 60'000;

    ZipfSampler pool_popularity_;
    std::array<std::uint32_t, kPools> live_bytes_{};
    std::uint64_t steps_ = 0;
    bool gc_active_ = false;
    unsigned gc_pool_ = 0;
    std::uint32_t gc_offset_ = 0;
    unsigned alloc_pool_ = 0;
    std::uint32_t alloc_offset_ = 0;
    unsigned current_pool_ = 0;
    unsigned burst_left_ = 0;
    std::array<std::uint32_t, kPools> chase_cursor_{};
};

/**
 * espresso: boolean function minimization.  Almost all time is spent
 * re-scanning a small hot cube list (strong temporal locality, the
 * paper's example of a program whose WS balloons under large pages);
 * occasional excursions stride through a big cover table touching only
 * ~3 of the 8 blocks per 32KB chunk, so those chunks never promote and
 * the two-page-size scheme pays its higher miss penalty for little
 * gain — espresso is one of the paper's two degradation cases.
 */
class Espresso : public SyntheticWorkload
{
  public:
    explicit Espresso(std::uint64_t seed)
        : SyntheticWorkload("espresso", seed, codeConfig()),
          hot_(kHotBase, kHotBytes, 16)
    {
        onReset();
    }

  protected:
    // Exactly eight 4KB pages: the hot cube list tiles the sets of a
    // 16-entry two-way TLB one page per set, as a compact contiguous
    // allocation naturally does.
    static constexpr Addr kHotBase = kDataBase;
    static constexpr std::uint64_t kHotBytes = 32 * 1024;
    static constexpr Addr kCoverBase = kDataBase + 0x0010'0000;
    static constexpr std::uint64_t kCoverBytes = 640 * 1024;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        // Small, loop-dominated kernel: hot set (cubes + text) fits a
        // 16-entry 4KB TLB, so espresso's baseline CPI_TLB is low and
        // its unpromotable excursions dominate the miss stream.
        config.functions = 12;
        config.avgFuncBytes = 1280;
        config.callRate = 0.02;
        config.loopBackRate = 0.14;
        return config;
    }

    void
    behave() override
    {
        ++steps_;
        if (excursion_left_ > 0) {
            // Cover-table excursion: visit blocks 0, 3 and 5 of each
            // chunk (3 of 8 -> below the promotion threshold).
            instrs(2);
            static constexpr std::uint32_t kBlockPick[3] = {0, 3, 5};
            const Addr chunk =
                kCoverBase + (excursion_chunk_ % kCoverChunks) * 0x8000;
            const Addr block =
                chunk + kBlockPick[excursion_left_ % 3] * 0x1000;
            load(block + (steps_ * 64) % 0x1000);
            if (--excursion_left_ % 3 == 0)
                ++excursion_chunk_;
            return;
        }
        if (steps_ % kExcursionPeriod == 0) {
            excursion_left_ = 90; // 30 chunks x 3 blocks
            return;
        }

        // Hot loop: re-scan the cube list.
        instrs(2);
        load(hot_.next());
        if (rng_.chance(0.2)) {
            instr();
            store(kHotBase + (rng_.below(kHotBytes) & ~Addr{7}));
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        excursion_left_ = 0;
        excursion_chunk_ = 0;
        hot_.restart();
    }

  private:
    static constexpr std::uint64_t kExcursionPeriod = 9'000;
    static constexpr std::uint64_t kCoverChunks = kCoverBytes / 0x8000;

    Sweep hot_;
    std::uint64_t steps_ = 0;
    std::uint32_t excursion_left_ = 0;
    std::uint64_t excursion_chunk_ = 0;
};

/**
 * eqntott: truth-table generation.  Dominated by long unit-stride
 * comparisons of two big bit-vector arrays (dense chunks, promotes
 * well) plus a quicksort phase over a term-index array with
 * partition-local accesses.
 */
class Eqntott : public SyntheticWorkload
{
  public:
    explicit Eqntott(std::uint64_t seed)
        : SyntheticWorkload("eqntott", seed, codeConfig()),
          scan_a_(kVecA, kVecBytes, 8), scan_b_(kVecB, kVecBytes, 8)
    {
        onReset();
    }

  protected:
    static constexpr Addr kVecA = kDataBase;
    static constexpr std::uint64_t kVecBytes = 768 * 1024;
    // B sits at a deliberately odd offset from A, so their lockstep
    // scans fall into different sets at every page size of interest.
    static constexpr Addr kVecB = kDataBase + 0x0011'D000;
    static constexpr Addr kIndexBase = kDataBase + 0x0024'0000;
    static constexpr std::uint64_t kIndexBytes = 192 * 1024;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 20;
        config.avgFuncBytes = 1024;
        config.callRate = 0.015;
        config.loopBackRate = 0.15;
        return config;
    }

    void
    behave() override
    {
        ++steps_;
        const bool sorting = (steps_ / kPhaseLength) % 4 == 3;
        if (sorting) {
            // Quicksort partitioning: two cursors converge from the
            // ends of the current subrange; a new subrange starts when
            // they meet.
            instrs(2);
            if (sort_left_ == 0) {
                sort_span_ = kIndexBytes >>
                             (1 + rng_.below(6)); // 3KB..96KB
                sort_base_ =
                    kIndexBase +
                    (rng_.below(kIndexBytes - sort_span_ + 1) & ~Addr{7});
                sort_left_ = static_cast<std::uint32_t>(sort_span_ / 16);
                sort_cursor_ = 0;
            }
            load(sort_base_ + sort_cursor_);
            load(sort_base_ + sort_span_ - sort_cursor_ - 8);
            if (rng_.chance(0.3)) {
                instr();
                store(sort_base_ + sort_cursor_);
            }
            sort_cursor_ += 8;
            --sort_left_;
            return;
        }

        // Vector comparison scan.
        instrs(2);
        load(scan_a_.next());
        load(scan_b_.next());
    }

    void
    onReset() override
    {
        steps_ = 0;
        sort_cursor_ = 0;
        sort_left_ = 0;
        sort_span_ = 0;
        sort_base_ = kIndexBase;
        scan_a_.restart();
        scan_b_.restart();
    }

  private:
    static constexpr std::uint64_t kPhaseLength = 50'000;

    Sweep scan_a_;
    Sweep scan_b_;
    std::uint64_t steps_ = 0;
    std::uint64_t sort_cursor_ = 0;
    std::uint32_t sort_left_ = 0;
    std::uint64_t sort_span_ = 0;
    Addr sort_base_ = 0;
};

} // namespace

std::unique_ptr<SyntheticWorkload>
makeLi(std::uint64_t seed)
{
    return std::make_unique<Li>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeEspresso(std::uint64_t seed)
{
    return std::make_unique<Espresso>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeEqntott(std::uint64_t seed)
{
    return std::make_unique<Eqntott>(seed);
}

} // namespace tps::workloads
