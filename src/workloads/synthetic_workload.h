/**
 * @file
 * Base class for the twelve synthetic SPEC'89-era workload generators.
 *
 * A SyntheticWorkload is an *infinite* TraceSource (wrap in
 * LimitSource or pass max_refs to materialize()); each subclass
 * implements behave(), which emits one small burst of instruction and
 * data references per call.  Determinism contract: the same seed
 * always produces the same reference stream, and reset() replays it
 * from the start.
 */

#ifndef TPS_WORKLOADS_SYNTHETIC_WORKLOAD_H_
#define TPS_WORKLOADS_SYNTHETIC_WORKLOAD_H_

#include <deque>
#include <string>

#include "trace/trace_source.h"
#include "util/random.h"
#include "workloads/code_model.h"

namespace tps::workloads
{

/** Common skeleton for synthetic workloads. */
class SyntheticWorkload : public TraceSource
{
  public:
    bool next(MemRef &ref) final;
    std::size_t fill(MemRef *out, std::size_t n) final;
    void reset() final;
    std::string name() const final { return name_; }

    std::uint64_t seed() const { return seed_; }

  protected:
    SyntheticWorkload(std::string name, std::uint64_t seed,
                      const CodeModelConfig &code_config);

    /**
     * Emit one burst of references (>= 1) via the emit helpers.
     * Called whenever the output queue runs dry.
     */
    virtual void behave() = 0;

    /** Re-initialize subclass cursors after a reset(). */
    virtual void onReset() {}

    /** Emit one instruction fetch from the code model. */
    void instr();

    /** Emit @p n instruction fetches. */
    void instrs(unsigned n);

    void load(Addr vaddr, std::uint8_t size = 8);
    void store(Addr vaddr, std::uint8_t size = 8);

    Rng rng_;

  private:
    std::string name_;
    std::uint64_t seed_;
    CodeModel code_;
    std::deque<MemRef> queue_;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_SYNTHETIC_WORKLOAD_H_
