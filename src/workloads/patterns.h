/**
 * @file
 * Reusable data-access pattern primitives for workload synthesis.
 *
 * Each primitive produces addresses only — the workloads decide how to
 * interleave them with instruction fetches and stores.
 */

#ifndef TPS_WORKLOADS_PATTERNS_H_
#define TPS_WORKLOADS_PATTERNS_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace tps::workloads
{

/**
 * Linear sweep over [base, base+bytes) with a fixed stride, wrapping
 * at the end.  stride may exceed the region (it is taken mod bytes).
 */
class Sweep
{
  public:
    Sweep(Addr base, std::uint64_t bytes, std::int64_t stride);

    /** Current address; advances the cursor. */
    Addr next();

    /** Reposition at the start of the region. */
    void restart() { offset_ = 0; }

    /** Cursor position within the region (for phase logic). */
    std::uint64_t offset() const { return offset_; }
    std::uint64_t bytes() const { return bytes_; }
    Addr base() const { return base_; }

    /** True exactly when the cursor has just wrapped to offset 0. */
    bool wrapped() const { return wrapped_; }

  private:
    Addr base_;
    std::uint64_t bytes_;
    std::uint64_t stride_; ///< normalized to [0, bytes)
    std::uint64_t offset_ = 0;
    bool wrapped_ = false;
};

/**
 * Pointer chase over a region of fixed-size cells, following a
 * precomputed random cyclic permutation (a single cycle visiting
 * every cell), so spatial locality is deliberately destroyed while
 * the footprint stays exact.
 */
class PointerChase
{
  public:
    /**
     * @param rng used once here to build the permutation; the chase
     *            itself is deterministic.
     */
    PointerChase(Addr base, std::uint64_t bytes, std::uint32_t cell_bytes,
                 Rng &rng);

    Addr next();
    void restart() { current_ = 0; }
    std::uint32_t cells() const
    {
        return static_cast<std::uint32_t>(next_.size());
    }

  private:
    Addr base_;
    std::uint32_t cell_bytes_;
    std::vector<std::uint32_t> next_; ///< successor cell index
    std::uint32_t current_ = 0;
};

/**
 * Zipf-popular objects in a region: each access picks an object by
 * popularity rank and touches a random offset inside it.
 */
class ZipfObjects
{
  public:
    ZipfObjects(Addr base, std::uint32_t objects,
                std::uint32_t object_bytes, double skew,
                std::uint64_t shuffle_seed = 11);

    /** Address inside a popularity-sampled object. */
    Addr next(Rng &rng);

    /** Base address of object with popularity rank @p rank. */
    Addr objectBase(std::size_t rank) const;

    std::uint32_t objects() const { return objects_; }
    std::uint64_t regionBytes() const
    {
        return std::uint64_t{objects_} * object_bytes_;
    }

  private:
    Addr base_;
    std::uint32_t objects_;
    std::uint32_t object_bytes_;
    ZipfSampler sampler_;
    /** rank -> object slot, so hot objects are scattered in memory. */
    std::vector<std::uint32_t> placement_;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_PATTERNS_H_
