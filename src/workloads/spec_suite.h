/**
 * @file
 * Factories for the twelve workload generators modeling the programs
 * of the paper's Table 3.1.
 *
 * Each generator reproduces the *memory behaviour* the paper (and the
 * SPEC'89 literature) attributes to its program — footprint scale,
 * spatial density per 32KB chunk, sweep/chase/popularity structure —
 * not the program's computation.  See DESIGN.md, "Substitutions".
 *
 * Ordering convention: the registry lists workloads in ascending
 * working-set size, the order the paper's figures use.
 */

#ifndef TPS_WORKLOADS_SPEC_SUITE_H_
#define TPS_WORKLOADS_SPEC_SUITE_H_

#include <cstdint>
#include <memory>

#include "workloads/synthetic_workload.h"

namespace tps::workloads
{

/** Lisp interpreter: sparse heap pools, pointer chasing, periodic GC. */
std::unique_ptr<SyntheticWorkload> makeLi(std::uint64_t seed = 101);

/** Boolean minimizer: small hot set + sparse cover-table excursions. */
std::unique_ptr<SyntheticWorkload> makeEspresso(std::uint64_t seed = 102);

/** Quantum chemistry: tiny hot data, very large text footprint. */
std::unique_ptr<SyntheticWorkload> makeFpppp(std::uint64_t seed = 103);

/** Monte Carlo reactor sim: many scattered mid-size regions. */
std::unique_ptr<SyntheticWorkload> makeDoduc(std::uint64_t seed = 104);

/** X11 drawing benchmark: framebuffer store bursts + request ring. */
std::unique_ptr<SyntheticWorkload> makeX11perf(std::uint64_t seed = 105);

/** Truth-table generator: long bit-vector scans + quicksort phase. */
std::unique_ptr<SyntheticWorkload> makeEqntott(std::uint64_t seed = 106);

/** Sliding crawler touching few blocks per chunk (sparse chunks). */
std::unique_ptr<SyntheticWorkload> makeWorm(std::uint64_t seed = 107);

/** NASA kernels: cycled mxm / FFT / pentadiagonal / gather phases. */
std::unique_ptr<SyntheticWorkload> makeNasa7(std::uint64_t seed = 108);

/** News server: Zipf-popular widgets, event ring, expose sweeps. */
std::unique_ptr<SyntheticWorkload> makeXnews(std::uint64_t seed = 109);

/** 300x300 dgemm with an unblocked large-stride operand. */
std::unique_ptr<SyntheticWorkload> makeMatrix300(std::uint64_t seed = 110);

/** Vectorized mesh solver: seven big arrays swept in lockstep. */
std::unique_ptr<SyntheticWorkload> makeTomcatv(std::uint64_t seed = 111);

/** Event-driven gate-level simulator over a big netlist graph. */
std::unique_ptr<SyntheticWorkload> makeVerilog(std::uint64_t seed = 112);

} // namespace tps::workloads

#endif // TPS_WORKLOADS_SPEC_SUITE_H_
