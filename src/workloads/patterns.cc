#include "workloads/patterns.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace tps::workloads
{

Sweep::Sweep(Addr base, std::uint64_t bytes, std::int64_t stride)
    : base_(base), bytes_(bytes)
{
    if (bytes == 0)
        tps_fatal("Sweep over empty region");
    std::int64_t norm = stride % static_cast<std::int64_t>(bytes);
    if (norm < 0)
        norm += static_cast<std::int64_t>(bytes);
    if (norm == 0)
        norm = 1; // zero stride would never advance
    stride_ = static_cast<std::uint64_t>(norm);
}

Addr
Sweep::next()
{
    const Addr addr = base_ + offset_;
    offset_ += stride_;
    wrapped_ = offset_ >= bytes_;
    if (wrapped_)
        offset_ -= bytes_;
    return addr;
}

PointerChase::PointerChase(Addr base, std::uint64_t bytes,
                           std::uint32_t cell_bytes, Rng &rng)
    : base_(base), cell_bytes_(cell_bytes)
{
    if (cell_bytes == 0 || bytes < cell_bytes)
        tps_fatal("PointerChase needs at least one cell");
    const std::uint32_t cells =
        static_cast<std::uint32_t>(bytes / cell_bytes);

    // Sattolo's algorithm: a uniform random *cyclic* permutation, so
    // the chase is one cycle covering every cell.
    std::vector<std::uint32_t> perm(cells);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint32_t i = cells - 1; i > 0; --i) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(rng.below(i));
        std::swap(perm[i], perm[j]);
    }
    // perm as a sequence defines the cycle: perm[k] -> perm[k+1].
    next_.assign(cells, 0);
    for (std::uint32_t k = 0; k < cells; ++k)
        next_[perm[k]] = perm[(k + 1) % cells];
}

Addr
PointerChase::next()
{
    const Addr addr = base_ + static_cast<Addr>(current_) * cell_bytes_;
    current_ = next_[current_];
    return addr;
}

ZipfObjects::ZipfObjects(Addr base, std::uint32_t objects,
                         std::uint32_t object_bytes, double skew,
                         std::uint64_t shuffle_seed)
    : base_(base), objects_(objects), object_bytes_(object_bytes),
      sampler_(objects > 0 ? objects : 1, skew), placement_(objects)
{
    if (objects == 0 || object_bytes == 0)
        tps_fatal("ZipfObjects needs a nonempty region");
    std::iota(placement_.begin(), placement_.end(), 0u);
    Rng shuffle_rng(shuffle_seed);
    for (std::uint32_t i = objects - 1; i > 0; --i) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(shuffle_rng.below(i + 1));
        std::swap(placement_[i], placement_[j]);
    }
}

Addr
ZipfObjects::objectBase(std::size_t rank) const
{
    return base_ +
           static_cast<Addr>(placement_.at(rank)) * object_bytes_;
}

Addr
ZipfObjects::next(Rng &rng)
{
    const std::size_t rank = sampler_.sample(rng);
    const Addr offset = rng.below(object_bytes_) & ~Addr{7};
    return objectBase(rank) + offset;
}

} // namespace tps::workloads
