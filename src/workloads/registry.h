/**
 * @file
 * The workload registry: name-indexed access to the Table 3.1 suite.
 */

#ifndef TPS_WORKLOADS_REGISTRY_H_
#define TPS_WORKLOADS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "workloads/synthetic_workload.h"

namespace tps::workloads
{

/** Descriptor of one suite workload (one Table 3.1 row). */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    std::uint64_t defaultSeed;
    std::unique_ptr<SyntheticWorkload> (*make)(std::uint64_t seed);

    std::unique_ptr<SyntheticWorkload>
    instantiate() const
    {
        return make(defaultSeed);
    }
};

/**
 * All twelve workloads, in ascending working-set-size order (the
 * order the paper's figures and tables use).
 */
const std::vector<WorkloadInfo> &suite();

/** Look up one workload by name; tps_fatal if unknown. */
const WorkloadInfo &findWorkload(const std::string &name);

/** Names in suite order (convenience for sweeps). */
std::vector<std::string> suiteNames();

} // namespace tps::workloads

#endif // TPS_WORKLOADS_REGISTRY_H_
