/**
 * @file
 * matrix300 and tomcatv: the dense linear-algebra workloads whose
 * large-stride sweeps dominate the paper's TLB results.
 */

#include "workloads/spec_suite.h"

#include "workloads/layout.h"
#include "workloads/patterns.h"

namespace tps::workloads
{

namespace
{

/**
 * matrix300: unblocked 300x300 double dgemm, C[i][j] += A[i][k]*B[k][j]
 * with row-major storage.  The inner k-loop reads A sequentially but
 * strides through B at 300*8 = 2400 bytes — crossing a 4KB page every
 * other access and spanning ~176 pages per column — which is the
 * notorious behaviour that made matrix300 a TLB/cache stress test.
 * Nearly every chunk is touched densely, so the two-page-size policy
 * promotes almost everything.
 */
class Matrix300 : public SyntheticWorkload
{
  public:
    explicit Matrix300(std::uint64_t seed)
        : SyntheticWorkload("matrix300", seed, codeConfig())
    {
    }

  protected:
    static constexpr std::uint32_t kN = 300;
    static constexpr Addr kA = kDataBase;
    static constexpr Addr kB = kA + 0x000C'0000; // 768KB apart
    static constexpr Addr kC = kB + 0x000C'0000;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 6;       // tiny kernel loop
        config.avgFuncBytes = 512;
        config.loopBackRate = 0.2;  // tight loops
        config.callRate = 0.005;
        return config;
    }

    void
    behave() override
    {
        // One k-iteration of the SAXPY inner loop (multiply, add,
        // index arithmetic, loop bookkeeping).
        instrs(4);
        load(kA + (std::uint64_t{i_} * kN + k_) * 8);
        load(kB + (std::uint64_t{k_} * kN + j_) * 8);
        if (++k_ == kN) {
            k_ = 0;
            instr();
            store(kC + (std::uint64_t{i_} * kN + j_) * 8);
            if (++j_ == kN) {
                j_ = 0;
                if (++i_ == kN)
                    i_ = 0;
            }
        }
    }

    void
    onReset() override
    {
        i_ = j_ = k_ = 0;
    }

  private:
    std::uint32_t i_ = 0, j_ = 0, k_ = 0;
};

/**
 * tomcatv: a vectorized 257x257 mesh solver.  Seven double arrays
 * (X, Y, RX, RY, AA, DD, D) laid out back to back in a Fortran common
 * block are swept row-by-row in lockstep, so at any instant seven
 * reference streams advance through pages whose index bits are related
 * by the (non-power-of-two) array pitch — the access/index interaction
 * behind the paper's observation that tomcatv thrashes two-way
 * set-associative TLBs and gets *worse* with larger pages.
 */
class Tomcatv : public SyntheticWorkload
{
  public:
    explicit Tomcatv(std::uint64_t seed)
        : SyntheticWorkload("tomcatv", seed, codeConfig())
    {
    }

  protected:
    static constexpr std::uint32_t kN = 257;
    static constexpr std::uint64_t kArrayBytes =
        std::uint64_t{kN} * kN * 8; // 528,392 bytes
    static constexpr unsigned kArrays = 7;
    static constexpr Addr kBase = kDataBase;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 8;
        config.avgFuncBytes = 1024;
        config.loopBackRate = 0.18;
        config.callRate = 0.004;
        return config;
    }

    static Addr
    arrayBase(unsigned array)
    {
        return kBase + array * kArrayBytes;
    }

    void
    behave() override
    {
        // One element step of the current loop nest.  tomcatv's main
        // loops each stream through three arrays in lockstep; because
        // the arrays sit at a fixed pitch in one common block, the
        // three concurrent pages collide in the same set at some page
        // sizes (the index-interaction anomaly of Section 5.2).
        instrs(4);
        const std::uint64_t elem = (std::uint64_t{i_} * kN + j_) * 8;
        if (phase_ == 0) {
            // Main residual loop: three concurrent streams.
            load(arrayBase(0) + elem);
            load(arrayBase(1) + elem);
            instr();
            store(arrayBase(2) + elem);
        } else if (phase_ == 1) {
            load(arrayBase(3) + elem);
            instr();
            store(arrayBase(4) + elem);
        } else {
            load(arrayBase(5) + elem);
            instr();
            store(arrayBase(6) + elem);
        }

        if (++j_ == kN) {
            j_ = 0;
            if (++i_ == kN) {
                i_ = 0;
                phase_ = (phase_ + 1) % 3; // next loop nest
            }
        }
    }

    void
    onReset() override
    {
        i_ = j_ = 0;
        phase_ = 0;
    }

  private:
    std::uint32_t i_ = 0, j_ = 0;
    unsigned phase_ = 0;
};

} // namespace

std::unique_ptr<SyntheticWorkload>
makeMatrix300(std::uint64_t seed)
{
    return std::make_unique<Matrix300>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeTomcatv(std::uint64_t seed)
{
    return std::make_unique<Tomcatv>(seed);
}

} // namespace tps::workloads
