#include "workloads/code_model.h"

#include "util/logging.h"

namespace tps::workloads
{

CodeModel::CodeModel(const CodeModelConfig &config)
    : config_(config),
      popularity_(config.functions > 0 ? config.functions : 1,
                  config.zipfSkew)
{
    if (config.functions == 0)
        tps_fatal("CodeModel needs at least one function");

    // Lay functions out back to back with deterministic size jitter.
    Rng layout_rng(config.layoutSeed);
    Addr base = config.base;
    funcs_.reserve(config.functions);
    for (std::uint32_t f = 0; f < config.functions; ++f) {
        const std::uint32_t half = config.avgFuncBytes / 2;
        std::uint32_t bytes =
            half + static_cast<std::uint32_t>(
                       layout_rng.below(config.avgFuncBytes + 1));
        bytes = (bytes + 3) & ~3u; // whole instructions
        if (bytes < 16)
            bytes = 16;
        funcs_.push_back(Func{base, bytes});
        base += bytes;
    }
    text_bytes_ = base - config.base;
    reset();
}

Addr
CodeModel::nextFetch(Rng &rng)
{
    const Func &func = funcs_[current_];
    const Addr fetch = pc_;

    // Decide where control flows next.
    if (rng.chance(config_.callRate)) {
        // Call/return: transfer to a popularity-weighted function.
        current_ = popularity_.sample(rng);
        pc_ = funcs_[current_].base;
    } else if (rng.chance(config_.loopBackRate)) {
        // Loop: jump backward a short, random distance.
        const Addr offset = pc_ - func.base;
        const Addr back = rng.below(offset / 4 + 1) * 4;
        pc_ -= back;
    } else {
        pc_ += 4;
        if (pc_ >= func.base + func.bytes) {
            // Fall off the end: return toward a popular function.
            current_ = popularity_.sample(rng);
            pc_ = funcs_[current_].base;
        }
    }
    return fetch;
}

void
CodeModel::reset()
{
    current_ = 0;
    pc_ = funcs_[0].base;
}

} // namespace tps::workloads
