#include "workloads/registry.h"

#include "util/logging.h"
#include "workloads/spec_suite.h"

namespace tps::workloads
{

const std::vector<WorkloadInfo> &
suite()
{
    static const std::vector<WorkloadInfo> table = {
        {"li", "lisp interpreter (sparse heap, GC)", 101, &makeLi},
        {"espresso", "boolean minimizer (small hot set)", 102,
         &makeEspresso},
        {"fpppp", "quantum chemistry (huge text)", 103, &makeFpppp},
        {"doduc", "Monte Carlo reactor sim", 104, &makeDoduc},
        {"x11perf", "X11 drawing benchmark", 105, &makeX11perf},
        {"eqntott", "truth-table generator", 106, &makeEqntott},
        {"worm", "chunk-sparse crawler", 107, &makeWorm},
        {"nasa7", "NASA Ames kernels", 108, &makeNasa7},
        {"xnews", "news/window server", 109, &makeXnews},
        {"matrix300", "300x300 dgemm, unblocked", 110, &makeMatrix300},
        {"tomcatv", "vectorized mesh solver", 111, &makeTomcatv},
        {"verilog", "gate-level simulator", 112, &makeVerilog},
    };
    return table;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : suite())
        if (info.name == name)
            return info;
    tps_fatal("unknown workload '", name, "'");
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    names.reserve(suite().size());
    for (const WorkloadInfo &info : suite())
        names.push_back(info.name);
    return names;
}

} // namespace tps::workloads
