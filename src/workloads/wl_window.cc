/**
 * @file
 * x11perf and xnews: the window-system workloads — store-heavy
 * framebuffer bursts and popularity-skewed widget dispatch.
 */

#include "workloads/spec_suite.h"

#include "workloads/layout.h"
#include "workloads/patterns.h"

namespace tps::workloads
{

namespace
{

/**
 * x11perf: X server drawing benchmark.  Rendering writes long
 * horizontal scanline segments into a ~1.25MB framebuffer (dense
 * store bursts that promote readily) while a small request ring and
 * GC/font tables are read.
 */
class X11perf : public SyntheticWorkload
{
  public:
    explicit X11perf(std::uint64_t seed)
        : SyntheticWorkload("x11perf", seed, codeConfig()),
          fonts_(kFontBase, 48, 2048, 1.0, seed + 5)
    {
        onReset();
    }

  protected:
    static constexpr Addr kFbBase = kMmapBase;
    static constexpr std::uint64_t kFbBytes = 1280 * 1024;
    static constexpr std::uint32_t kRowBytes = 4096; // 1024 px * 4B
    static constexpr std::uint64_t kBandBytes = 256 * 1024;
    static constexpr Addr kRingBase = kDataBase;
    static constexpr std::uint64_t kRingBytes = 16 * 1024;
    static constexpr Addr kFontBase = kDataBase + 0x0008'0000;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 40;
        config.avgFuncBytes = 1536;
        config.callRate = 0.03;
        config.loopBackRate = 0.10;
        return config;
    }

    void
    behave() override
    {
        ++steps_;
        // Read the next request from the ring.
        instrs(2);
        load(kRingBase + (steps_ * 32) % kRingBytes);

        if (burst_left_ == 0) {
            // New drawing op.  Drawing clusters in the active window
            // (a ~256KB band of the framebuffer) and occasionally the
            // active window moves — x11perf repeats each op batch in
            // one region before moving on.
            if (steps_ % 25'000 == 0) {
                const std::uint64_t bands = kFbBytes / kBandBytes;
                band_base_ = kFbBase + rng_.below(bands) * kBandBytes;
            }
            const std::uint64_t rows = kBandBytes / kRowBytes;
            burst_addr_ = band_base_ + rng_.below(rows) * kRowBytes +
                          (rng_.below(kRowBytes / 2) & ~Addr{3});
            burst_left_ = 16 + static_cast<unsigned>(rng_.below(113));
            if (rng_.chance(0.2))
                load(fonts_.next(rng_)); // glyph lookup
        }
        // Blit a segment of the scanline.
        for (int px = 0; px < 4 && burst_left_ > 0; ++px) {
            store(burst_addr_, 4);
            burst_addr_ += 4;
            --burst_left_;
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        burst_left_ = 0;
        burst_addr_ = kFbBase;
        band_base_ = kFbBase;
    }

  private:
    ZipfObjects fonts_;
    std::uint64_t steps_ = 0;
    unsigned burst_left_ = 0;
    Addr burst_addr_ = 0;
    Addr band_base_ = kFbBase;
};

/**
 * xnews: news/window server.  Dispatches events to ~600 widget
 * records (2KB each, Zipf-popular, scattered over ~1.2MB), reads an
 * event ring, and periodically handles an "expose" that sweeps a
 * contiguous window region — a mix of skewed reuse and dense sweeps.
 */
class Xnews : public SyntheticWorkload
{
  public:
    explicit Xnews(std::uint64_t seed)
        : SyntheticWorkload("xnews", seed, codeConfig()),
          widgets_(kWidgetBase, 384, 2048, 1.35, seed + 7)
    {
        onReset();
    }

  protected:
    static constexpr Addr kWidgetBase = kDataBase;
    static constexpr Addr kRingBase = kDataBase + 0x0020'0000;
    static constexpr std::uint64_t kRingBytes = 32 * 1024;
    static constexpr Addr kPixBase = kMmapBase;
    static constexpr std::uint64_t kPixBytes = 768 * 1024;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 64;
        config.avgFuncBytes = 1792;
        config.callRate = 0.04;
        config.loopBackRate = 0.06;
        return config;
    }

    void
    behave() override
    {
        ++steps_;
        if (expose_left_ > 0) {
            // Expose: densely repaint a contiguous pixmap region.
            instrs(2);
            for (int touch = 0; touch < 3 && expose_left_ > 0; ++touch) {
                store(expose_addr_, 4);
                expose_addr_ += 64;
                --expose_left_;
            }
            return;
        }
        if (steps_ % kExposePeriod == 0) {
            const std::uint64_t span = 96 * 1024;
            expose_addr_ =
                kPixBase + (rng_.below(kPixBytes - span) & ~Addr{63});
            expose_left_ = static_cast<std::uint32_t>(span / 64);
            return;
        }

        // Event dispatch: ring read + widget access.  Most events go
        // to the focused widget; the rest are popularity-weighted.
        instrs(3);
        load(kRingBase + (steps_ * 16) % kRingBytes);
        if (steps_ % 200 == 0)
            focus_ = widgets_.next(rng_) & ~Addr{2047};
        const Addr widget = rng_.chance(0.6)
                                ? focus_ + (rng_.below(2048) & ~Addr{7})
                                : widgets_.next(rng_);
        load(widget);
        if (rng_.chance(0.25)) {
            instr();
            store(widget);
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        expose_left_ = 0;
        expose_addr_ = kPixBase;
        focus_ = kWidgetBase;
    }

  private:
    static constexpr std::uint64_t kExposePeriod = 20'000;

    ZipfObjects widgets_;
    std::uint64_t steps_ = 0;
    std::uint32_t expose_left_ = 0;
    Addr expose_addr_ = 0;
    Addr focus_ = kWidgetBase;
};

} // namespace

std::unique_ptr<SyntheticWorkload>
makeX11perf(std::uint64_t seed)
{
    return std::make_unique<X11perf>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeXnews(std::uint64_t seed)
{
    return std::make_unique<Xnews>(seed);
}

} // namespace tps::workloads
