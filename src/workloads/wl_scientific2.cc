/**
 * @file
 * fpppp, doduc and nasa7: the floating-point workloads with contrasting
 * code/data balance — fpppp stresses instruction pages, doduc scatters
 * over many mid-size regions, nasa7 cycles through distinct kernels.
 */

#include "workloads/spec_suite.h"

#include "workloads/layout.h"
#include "workloads/patterns.h"

namespace tps::workloads
{

namespace
{

/**
 * fpppp: two-electron integral derivatives.  Famous for enormous
 * straight-line basic blocks: the text footprint (~480KB here) far
 * exceeds the data working set (~96KB of heavily reused scalars and
 * small matrices), so instruction pages dominate TLB traffic.  Both
 * text and hot data are dense, so two page sizes help a lot.
 */
class Fpppp : public SyntheticWorkload
{
  public:
    explicit Fpppp(std::uint64_t seed)
        : SyntheticWorkload("fpppp", seed, codeConfig()),
          data_(kDataBase, 16, 6 * 1024, 1.1, seed + 3)
    {
    }

  protected:
    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 48;
        config.avgFuncBytes = 5120; // long unrolled blocks
        config.callRate = 0.012;
        config.loopBackRate = 0.01; // straight-line code
        config.zipfSkew = 1.2;      // a hot core plus a long tail
        return config;
    }

    void
    behave() override
    {
        // FP-heavy: several instructions per data touch.
        instrs(3);
        load(data_.next(rng_));
        if (rng_.chance(0.25)) {
            instr();
            store(data_.next(rng_));
        }
    }

  private:
    ZipfObjects data_;
};

/**
 * doduc: Monte Carlo simulation of a nuclear reactor component.
 * State is spread over dozens of scattered regions of varying size
 * (8-24KB); control jumps between them with skewed popularity and
 * reads short sequential bursts.  Region sizes straddle the promotion
 * threshold (4 of 8 blocks), so only some chunks promote — the paper's
 * Table 5.1 shows doduc with mixed indexing-scheme behaviour.
 */
class Doduc : public SyntheticWorkload
{
  public:
    explicit Doduc(std::uint64_t seed)
        : SyntheticWorkload("doduc", seed, codeConfig()),
          region_pick_(kRegions, 1.0)
    {
        Rng layout_rng(seed + 29);
        for (unsigned r = 0; r < kRegions; ++r) {
            // 8KB..24KB: 2..6 blocks of the 8-block chunk.
            region_bytes_[r] = static_cast<std::uint32_t>(
                (2 + layout_rng.below(5)) * 4096);
        }
        onReset();
    }

  protected:
    static constexpr unsigned kRegions = 48;
    static constexpr Addr kRegionSpacing = 32 * 1024; // one per chunk

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 56;
        config.avgFuncBytes = 1536;
        config.callRate = 0.03;
        config.loopBackRate = 0.07;
        return config;
    }

    Addr
    regionBase(unsigned region) const
    {
        return kDataBase + region * kRegionSpacing;
    }

    void
    behave() override
    {
        if (burst_left_ == 0) {
            current_ = static_cast<unsigned>(region_pick_.sample(rng_));
            burst_left_ = 8 + static_cast<unsigned>(rng_.below(25));
            burst_offset_ = static_cast<std::uint32_t>(
                rng_.below(region_bytes_[current_]) & ~Addr{7});
        }
        instrs(2);
        load(regionBase(current_) + burst_offset_);
        burst_offset_ =
            (burst_offset_ + 8) % region_bytes_[current_];
        if (rng_.chance(0.15)) {
            instr();
            store(regionBase(current_) + burst_offset_);
        }
        --burst_left_;
    }

    void
    onReset() override
    {
        current_ = 0;
        burst_left_ = 0;
        burst_offset_ = 0;
    }

  private:
    ZipfSampler region_pick_;
    std::uint32_t region_bytes_[kRegions] = {};
    unsigned current_ = 0;
    unsigned burst_left_ = 0;
    std::uint32_t burst_offset_ = 0;
};

/**
 * nasa7: seven NASA Ames kernels run back to back.  Modeled as four
 * cycled phases over ~2.5MB of arrays: dense matrix multiply (large
 * stride), FFT butterflies (power-of-two strides — hard on set
 * indexing), pentadiagonal line sweeps, and index-driven gather.
 * Dense coverage promotes nearly everything, making nasa7 one of the
 * paper's biggest two-page-size winners.
 */
class Nasa7 : public SyntheticWorkload
{
  public:
    explicit Nasa7(std::uint64_t seed)
        : SyntheticWorkload("nasa7", seed, codeConfig())
    {
        onReset();
    }

  protected:
    static constexpr Addr kM1 = kDataBase;               // 512KB
    static constexpr Addr kM2 = kDataBase + 0x0008'0000; // 512KB
    static constexpr Addr kFft = kDataBase + 0x0010'0000; // 1MB
    static constexpr Addr kPenta = kDataBase + 0x0020'0000; // 384KB
    static constexpr Addr kGatherData = kDataBase + 0x0028'0000; // 512KB
    static constexpr Addr kGatherIndex = kDataBase + 0x0030'0000; // 64KB

    static constexpr std::uint32_t kMatN = 256; // 256x256 doubles

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 28;
        config.avgFuncBytes = 2048;
        config.loopBackRate = 0.15;
        config.callRate = 0.006;
        return config;
    }

    void
    behave() override
    {
        ++steps_;
        const unsigned phase =
            static_cast<unsigned>((steps_ / kPhaseLength) % 4);
        switch (phase) {
          case 0: { // mxm: sequential + large-stride operand
              instrs(2);
              load(kM1 + (mxm_cursor_ * 8) % 0x0008'0000);
              load(kM2 + ((mxm_cursor_ % kMatN) * kMatN +
                          mxm_cursor_ / kMatN % kMatN) * 8);
              ++mxm_cursor_;
              break;
          }
          case 1: { // FFT butterflies: stride 2^k pairs
              instrs(2);
              const unsigned stage = 3 + (fft_cursor_ / 4096) % 8;
              const std::uint64_t idx =
                  (fft_cursor_ * 8) % (0x0010'0000 >> 1);
              load(kFft + idx);
              load(kFft + idx + (std::uint64_t{1} << (stage + 3)));
              instr();
              store(kFft + idx);
              ++fft_cursor_;
              break;
          }
          case 2: { // vpenta: diagonal line sweeps
              instrs(2);
              const std::uint64_t diag =
                  (penta_cursor_ * (kMatN + 1) * 8) % 0x0006'0000;
              load(kPenta + diag);
              load(kPenta + diag + 8);
              instr();
              store(kPenta + diag + 16);
              ++penta_cursor_;
              break;
          }
          default: { // gather: index array drives scattered reads
              instrs(2);
              const Addr index_addr =
                  kGatherIndex + (gather_cursor_ * 4) % 0x0001'0000;
              load(index_addr, 4);
              // The "index value" is a deterministic hash of the slot.
              std::uint64_t h = gather_cursor_ * 0x9E3779B97F4A7C15ULL;
              h ^= h >> 29;
              load(kGatherData + (h % 0x0008'0000 & ~Addr{7}));
              ++gather_cursor_;
              break;
          }
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        mxm_cursor_ = 0;
        fft_cursor_ = 0;
        penta_cursor_ = 0;
        gather_cursor_ = 0;
    }

  private:
    static constexpr std::uint64_t kPhaseLength = 60'000;

    std::uint64_t steps_ = 0;
    std::uint64_t mxm_cursor_ = 0;
    std::uint64_t fft_cursor_ = 0;
    std::uint64_t penta_cursor_ = 0;
    std::uint64_t gather_cursor_ = 0;
};

} // namespace

std::unique_ptr<SyntheticWorkload>
makeFpppp(std::uint64_t seed)
{
    return std::make_unique<Fpppp>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeDoduc(std::uint64_t seed)
{
    return std::make_unique<Doduc>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeNasa7(std::uint64_t seed)
{
    return std::make_unique<Nasa7>(seed);
}

} // namespace tps::workloads
