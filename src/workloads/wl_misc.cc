/**
 * @file
 * worm and verilog: a deliberately chunk-sparse crawler (the paper's
 * other two-page-size degradation case) and an event-driven gate-level
 * simulator with graph-structured locality.
 */

#include "workloads/spec_suite.h"

#include "workloads/layout.h"
#include "workloads/patterns.h"

namespace tps::workloads
{

namespace
{

/**
 * worm: crawls a window across a large area, but within each 32KB
 * chunk touches only 2-3 fixed 4KB blocks (chosen per chunk by a
 * deterministic hash).  Active blocks per chunk stay below the
 * promotion threshold, so the two-page-size policy allocates almost
 * no large pages and its higher miss penalty makes CPI_TLB *worse*
 * than plain 4KB pages — reproducing the paper's worm result.
 */
class Worm : public SyntheticWorkload
{
  public:
    explicit Worm(std::uint64_t seed)
        : SyntheticWorkload("worm", seed, codeConfig())
    {
        onReset();
    }

  protected:
    static constexpr Addr kArea = kDataBase;
    static constexpr std::uint64_t kAreaBytes = 1664 * 1024; // 52 chunks
    static constexpr std::uint64_t kWindowChunks = 6;
    static constexpr std::uint64_t kChunks = kAreaBytes / 0x8000;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        // Keep text inside one 4KB block so the code chunk never has
        // enough active blocks to promote: worm's reference stream is
        // then almost entirely small pages, the paper's degradation
        // case.
        config.functions = 4;
        config.avgFuncBytes = 768;
        config.callRate = 0.02;
        config.loopBackRate = 0.12;
        return config;
    }

    /** The b-th touchable block of a chunk (b in 0..2). */
    static std::uint32_t
    blockOf(std::uint64_t chunk, unsigned b)
    {
        std::uint64_t h = (chunk + 1) * 0x9E3779B97F4A7C15ULL;
        h ^= h >> 31;
        return static_cast<std::uint32_t>((h >> (8 * b)) % 8);
    }

    void
    behave() override
    {
        ++steps_;
        if (steps_ % kAdvancePeriod == 0)
            window_head_ = (window_head_ + 1) % kChunks;

        // Touch a random chunk of the window at one of its 2-3 blocks.
        instrs(2);
        const std::uint64_t chunk =
            (window_head_ + rng_.below(kWindowChunks)) % kChunks;
        const unsigned which = static_cast<unsigned>(rng_.below(3));
        const Addr block_base =
            kArea + chunk * 0x8000 + blockOf(chunk, which) * 0x1000;
        load(block_base + (rng_.below(0x1000) & ~Addr{7}));
        if (rng_.chance(0.3)) {
            instr();
            store(block_base + (rng_.below(0x1000) & ~Addr{7}));
        }
    }

    void
    onReset() override
    {
        steps_ = 0;
        window_head_ = 0;
    }

  private:
    static constexpr std::uint64_t kAdvancePeriod = 2'500;

    std::uint64_t steps_ = 0;
    std::uint64_t window_head_ = 0;
};

/**
 * verilog: event-driven gate-level simulation.  A hot event wheel is
 * read sequentially; each event loads a gate record from a ~2.2MB
 * netlist (Zipf-popular: clock trees and hot nets) and chases 2-4
 * fanout neighbours determined by a deterministic hash — pointer
 * chasing with moderate locality over a big footprint.
 */
class Verilog : public SyntheticWorkload
{
  public:
    explicit Verilog(std::uint64_t seed)
        : SyntheticWorkload("verilog", seed, codeConfig()),
          gates_(kNetlistBase, kGates, kGateBytes, 1.25, seed + 9)
    {
        onReset();
    }

  protected:
    static constexpr Addr kNetlistBase = kDataBase;
    static constexpr std::uint32_t kGates = 47'000;
    static constexpr std::uint32_t kGateBytes = 48; // ~2.2MB netlist
    static constexpr std::uint64_t kNetlistBytes =
        std::uint64_t{kGates} * kGateBytes;
    static constexpr Addr kWheelBase = kMmapBase;
    static constexpr std::uint64_t kWheelBytes = 64 * 1024;

    static CodeModelConfig
    codeConfig()
    {
        CodeModelConfig config;
        config.functions = 72;
        config.avgFuncBytes = 2048;
        config.callRate = 0.035;
        config.loopBackRate = 0.08;
        return config;
    }

    Addr
    gateAddr(std::uint32_t gate) const
    {
        return kNetlistBase + std::uint64_t{gate} * kGateBytes;
    }

    void
    behave() override
    {
        ++steps_;
        // Pop the next event from the wheel.
        instrs(2);
        load(kWheelBase + (steps_ * 16) % kWheelBytes);

        // Evaluate a gate.  Activity clusters: most events fire within
        // the currently active clock domain (a contiguous ~128KB slice
        // of the netlist, rotating slowly), the rest are
        // popularity-weighted across the whole design.
        if (steps_ % 3'000 == 0) {
            domain_base_ =
                kNetlistBase +
                (rng_.below(kNetlistBytes - kDomainBytes) & ~Addr{63});
        }
        const Addr gate =
            rng_.chance(0.85)
                ? domain_base_ + (rng_.below(kDomainBytes) /
                                  kGateBytes) * kGateBytes
                : gates_.next(rng_);
        load(gate);
        const std::uint32_t gate_index = static_cast<std::uint32_t>(
            (gate - kNetlistBase) / kGateBytes);

        // ...and chase its fanout.  Synthesis places most fanout close
        // to the driver (placement locality); a minority of nets span
        // the chip.
        const unsigned fanout = 1 + static_cast<unsigned>(rng_.below(2));
        for (unsigned f = 0; f < fanout; ++f) {
            instrs(2);
            std::uint64_t h =
                (std::uint64_t{gate_index} * 4 + f + 1) *
                0xBF58476D1CE4E5B9ULL;
            h ^= h >> 27;
            Addr neighbour;
            if (rng_.chance(0.92)) {
                // Local net: within +/-32KB of the driving gate.
                const std::uint64_t span = 64 * 1024;
                const Addr lo =
                    gate > kNetlistBase + span / 2 ? gate - span / 2
                                                   : kNetlistBase;
                neighbour = lo + (h % span);
                if (neighbour >= kNetlistBase + kNetlistBytes)
                    neighbour = kNetlistBase + (h % kNetlistBytes);
            } else {
                neighbour = kNetlistBase + (h % kNetlistBytes);
            }
            load(neighbour & ~Addr{7});
        }
        // Schedule: write back into the wheel.
        store(kWheelBase + ((steps_ * 16 + 8192) % kWheelBytes), 8);
    }

    void
    onReset() override
    {
        steps_ = 0;
        domain_base_ = kNetlistBase;
    }

  private:
    static constexpr std::uint64_t kDomainBytes = 48 * 1024;

    ZipfObjects gates_;
    std::uint64_t steps_ = 0;
    Addr domain_base_ = kNetlistBase;
};

} // namespace

std::unique_ptr<SyntheticWorkload>
makeWorm(std::uint64_t seed)
{
    return std::make_unique<Worm>(seed);
}

std::unique_ptr<SyntheticWorkload>
makeVerilog(std::uint64_t seed)
{
    return std::make_unique<Verilog>(seed);
}

} // namespace tps::workloads
