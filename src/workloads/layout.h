/**
 * @file
 * Canonical virtual-address-space layout for synthetic workloads.
 *
 * Mirrors a classic 32-bit SPARC user process: text low, heap/data in
 * the middle, stack high.  Keeping segments far apart makes the
 * sparse-address-space behaviour the paper attributes to programs like
 * `li` reproducible.
 */

#ifndef TPS_WORKLOADS_LAYOUT_H_
#define TPS_WORKLOADS_LAYOUT_H_

#include "util/types.h"

namespace tps::workloads
{

inline constexpr Addr kTextBase = 0x0001'0000;
inline constexpr Addr kDataBase = 0x2000'0000;
inline constexpr Addr kMmapBase = 0x4000'0000;
inline constexpr Addr kStackTop = 0xF000'0000;

} // namespace tps::workloads

#endif // TPS_WORKLOADS_LAYOUT_H_
