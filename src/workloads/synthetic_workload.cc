#include "workloads/synthetic_workload.h"

#include <algorithm>

#include "util/logging.h"

namespace tps::workloads
{

SyntheticWorkload::SyntheticWorkload(std::string name, std::uint64_t seed,
                                     const CodeModelConfig &code_config)
    : rng_(seed), name_(std::move(name)), seed_(seed), code_(code_config)
{
}

bool
SyntheticWorkload::next(MemRef &ref)
{
    while (queue_.empty())
        behave();
    ref = queue_.front();
    queue_.pop_front();
    return true;
}

std::size_t
SyntheticWorkload::fill(MemRef *out, std::size_t n)
{
    // Generators are infinite: always produces exactly n references.
    std::size_t produced = 0;
    while (produced < n) {
        while (queue_.empty())
            behave();
        const std::size_t take =
            std::min(n - produced, queue_.size());
        std::copy_n(queue_.begin(), take, out + produced);
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(take));
        produced += take;
    }
    return produced;
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(seed_);
    code_.reset();
    queue_.clear();
    onReset();
}

void
SyntheticWorkload::instr()
{
    queue_.push_back(MemRef{code_.nextFetch(rng_), RefType::Ifetch, 4});
}

void
SyntheticWorkload::instrs(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        instr();
}

void
SyntheticWorkload::load(Addr vaddr, std::uint8_t size)
{
    queue_.push_back(MemRef{vaddr, RefType::Load, size});
}

void
SyntheticWorkload::store(Addr vaddr, std::uint8_t size)
{
    queue_.push_back(MemRef{vaddr, RefType::Store, size});
}

} // namespace tps::workloads
