/**
 * @file
 * Instruction-fetch address generator.
 *
 * Code pages matter to the study: programs like fpppp have large text
 * footprints whose fetches contend for TLB entries alongside data.
 * The model is a set of functions with Zipf-distributed popularity;
 * the program counter advances linearly, loops backward within a
 * function, and occasionally transfers to another function.
 */

#ifndef TPS_WORKLOADS_CODE_MODEL_H_
#define TPS_WORKLOADS_CODE_MODEL_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/types.h"
#include "workloads/layout.h"

namespace tps::workloads
{

/** Shape of a workload's text segment and control flow. */
struct CodeModelConfig
{
    Addr base = kTextBase;
    std::uint32_t functions = 16;
    std::uint32_t avgFuncBytes = 2048; ///< sizes vary 0.5x..1.5x
    double zipfSkew = 1.2;   ///< popularity skew of call targets
    double callRate = 0.02;  ///< per-instruction transfer probability
    double loopBackRate = 0.08; ///< per-instruction backward-jump prob
    std::uint64_t layoutSeed = 7; ///< fixes function sizes
};

/** Deterministic instruction-fetch stream. */
class CodeModel
{
  public:
    explicit CodeModel(const CodeModelConfig &config);

    /** Address of the next instruction fetch (4-byte instructions). */
    Addr nextFetch(Rng &rng);

    /** Return control flow to the entry function. */
    void reset();

    /** Total text bytes across all functions. */
    std::uint64_t textBytes() const { return text_bytes_; }

  private:
    struct Func
    {
        Addr base;
        std::uint32_t bytes;
    };

    CodeModelConfig config_;
    std::vector<Func> funcs_;
    ZipfSampler popularity_;
    std::size_t current_ = 0;
    Addr pc_ = 0;
    std::uint64_t text_bytes_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_CODE_MODEL_H_
