#include "phys/frag_telemetry.h"

namespace tps::phys
{

void
FragSnapshot::exportTo(obs::StatRegistry &registry,
                       const std::string &prefix) const
{
    registry.addCounter(prefix + ".free_bytes", freeBytes);
    registry.addCounter(prefix + ".largest_free_bytes",
                        largestFreeBytes);
    registry.addValue(prefix + ".frag_index", fragIndex);
    registry.addHistogram(prefix + ".free_blocks_by_order",
                          freeBlocksByOrder);
}

FragSnapshot
snapshotOf(const BuddyAllocator &buddy, unsigned super_order)
{
    FragSnapshot snap;
    snap.totalBytes = buddy.totalBytes();
    snap.freeBytes = buddy.freeBytes();
    snap.freeBlocksByOrder.resize(buddy.maxOrder() + 1, 0);
    std::uint64_t satisfying_bytes = 0;
    for (unsigned order = 0; order <= buddy.maxOrder(); ++order) {
        const std::uint64_t blocks = buddy.freeBlocksAt(order);
        snap.freeBlocksByOrder[order] = blocks;
        const std::uint64_t bytes =
            blocks << (order + buddy.frameLog2());
        if (blocks != 0)
            snap.largestFreeBytes = std::uint64_t{1}
                                    << (order + buddy.frameLog2());
        if (order >= super_order)
            satisfying_bytes += bytes;
    }
    snap.fragIndex =
        snap.freeBytes == 0
            ? 0.0
            : 1.0 - static_cast<double>(satisfying_bytes) /
                        static_cast<double>(snap.freeBytes);
    return snap;
}

} // namespace tps::phys
