/**
 * @file
 * The frame-acquisition interface the vm layer consumes.
 *
 * Page tables historically minted physical frame numbers from a
 * per-table counter ("out of thin air"); with a phys::Allocator
 * attached they ask the physical memory model instead, so the pfn a
 * PTE holds is the frame the buddy allocator really assigned.  A
 * null allocator (no pointer attached) preserves the historical
 * counter behavior bit for bit.
 *
 * Lives below vm in the layering: vm links phys, never the reverse,
 * so the interface speaks raw (vpn, sizeLog2) pairs rather than
 * vm::PageId.
 */

#ifndef TPS_PHYS_ALLOCATOR_H_
#define TPS_PHYS_ALLOCATOR_H_

#include "util/types.h"

namespace tps::phys
{

class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Physical frame number backing the page (@p vpn at @p size_log2
     * granularity), allocating backing on first use.  The returned
     * pfn has the same granularity as the page (physical address =
     * pfn << size_log2 when the backing is contiguous).  Must be
     * deterministic for a given call sequence; repeated calls for the
     * same page return the same frame while its backing lasts.
     */
    virtual Addr frameFor(Addr vpn, unsigned size_log2) = 0;
};

} // namespace tps::phys

#endif // TPS_PHYS_ALLOCATOR_H_
