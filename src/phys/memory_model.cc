#include "phys/memory_model.h"

#include "util/logging.h"

namespace tps::phys
{

namespace
{

/** SplitMix64 finalizer: the per-frame pressure coin flip.  Hashing
 *  (seed, frame) — rather than drawing from a sequential RNG — makes
 *  the occupancy map a pure function of the config, identical no
 *  matter how many cells run concurrently or in what order. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** Synthetic pfn space for pages with no (contiguous) physical
 *  backing; far above any modeled frame so they never collide. */
constexpr Addr kSyntheticPfnBase = Addr{1} << 52;

} // namespace

PhysCounters
PhysCounters::deltaSince(const PhysCounters &prev) const
{
    PhysCounters d;
    d.framesAllocated = framesAllocated - prev.framesAllocated;
    d.framesFreed = framesFreed - prev.framesFreed;
    d.frameExhaustions = frameExhaustions - prev.frameExhaustions;
    d.reservationsOpened =
        reservationsOpened - prev.reservationsOpened;
    d.reservationFallbacks =
        reservationFallbacks - prev.reservationFallbacks;
    d.superpageAllocs = superpageAllocs - prev.superpageAllocs;
    d.superpageFailures = superpageFailures - prev.superpageFailures;
    d.promotionsInPlace = promotionsInPlace - prev.promotionsInPlace;
    d.promotionsCopied = promotionsCopied - prev.promotionsCopied;
    d.promotionFailures = promotionFailures - prev.promotionFailures;
    d.pagesCopied = pagesCopied - prev.pagesCopied;
    d.demotions = demotions - prev.demotions;
    return d;
}

void
PhysCounters::exportTo(obs::StatRegistry &registry,
                       const std::string &prefix) const
{
    registry.addCounter(prefix + ".frames_allocated", framesAllocated);
    registry.addCounter(prefix + ".frames_freed", framesFreed);
    registry.addCounter(prefix + ".frame_exhaustions",
                        frameExhaustions);
    registry.addCounter(prefix + ".reservations_opened",
                        reservationsOpened);
    registry.addCounter(prefix + ".reservation_fallbacks",
                        reservationFallbacks);
    registry.addCounter(prefix + ".superpage_allocs", superpageAllocs);
    registry.addCounter(prefix + ".superpage_failures",
                        superpageFailures);
    registry.addCounter(prefix + ".promotions_in_place",
                        promotionsInPlace);
    registry.addCounter(prefix + ".promotions_copied",
                        promotionsCopied);
    registry.addCounter(prefix + ".promotion_failures",
                        promotionFailures);
    registry.addCounter(prefix + ".pages_copied", pagesCopied);
    registry.addCounter(prefix + ".demotions", demotions);
}

MemoryModel::MemoryModel(const PhysConfig &config)
    : config_(config),
      buddy_(config.memBytes, config.frameLog2,
             config.superLog2 - config.frameLog2 + 3)
{
    if (config_.superLog2 <= config_.frameLog2)
        tps_fatal("phys: superLog2 (", config_.superLog2,
                  ") must exceed frameLog2 (", config_.frameLog2, ")");
    if (config_.superOrder() > 6)
        tps_fatal("phys: superpage/frame ratio above 64 blocks "
                  "(superOrder ", config_.superOrder(), ")");
    if (buddy_.totalFrames() < config_.blocksPerChunk())
        tps_fatal("phys: memory (", config_.memBytes,
                  " bytes) smaller than one superpage");
    if (config_.fragPressure < 0.0 || config_.fragPressure >= 1.0)
        tps_fatal("phys: fragPressure must be in [0,1), got ",
                  config_.fragPressure);
    const unsigned blocks =
        static_cast<unsigned>(config_.blocksPerChunk());
    full_mask_ = blocks >= 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << blocks) - 1;
    seedPressure();
}

void
MemoryModel::seedPressure()
{
    if (config_.fragPressure == 0.0)
        return;
    // Per-frame coin flip at probability fragPressure; claimed frames
    // model memory held by other processes.  claim() of a fresh
    // allocator cannot fail.
    for (std::uint64_t frame = 0; frame < buddy_.totalFrames();
         ++frame) {
        const double u =
            static_cast<double>(
                mix64(config_.pressureSeed * 0x2545F4914F6CDD1DULL +
                      frame) >>
                11) *
            0x1.0p-53;
        if (u < config_.fragPressure) {
            if (buddy_.claim(frame, 0))
                ++pressure_frames_;
        }
    }
}

MemoryModel::ChunkState &
MemoryModel::state(Addr chunk)
{
    return chunks_[chunk];
}

void
MemoryModel::setEventSink(obs::EventLogRecorder *recorder,
                          const RefTime *now)
{
    events_ = recorder;
    event_now_ = now;
    if (recorder != nullptr)
        resv_stream_ = recorder->stream("resv_break",
                                        {"chunk", "reason"});
}

void
MemoryModel::emitBreak(Addr chunk, std::uint64_t reason)
{
    if (events_ != nullptr)
        events_->emit(resv_stream_,
                      event_now_ != nullptr ? *event_now_ : 0, chunk,
                      reason);
}

void
MemoryModel::backBlocks(Addr chunk, ChunkState &st,
                        unsigned first_block, unsigned order)
{
    const unsigned count = 1u << order;
    const std::uint64_t bits =
        (count >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << count) - 1)
        << first_block;
    if ((st.backedMask & bits) == bits)
        return;

    if (st.contiguousBase == kNoFrame && !st.reservationTried &&
        config_.reservation) {
        // First touch of the chunk: try to reserve the whole aligned
        // superpage region so a later promotion is free.
        st.reservationTried = true;
        if (const auto base = buddy_.allocate(config_.superOrder())) {
            st.contiguousBase = *base;
            ++counters_.reservationsOpened;
        } else {
            ++counters_.superpageFailures;
            ++counters_.reservationFallbacks;
            emitBreak(chunk, 0); // reservation denied -> scatter
        }
    }
    if (st.contiguousBase != kNoFrame) {
        st.backedMask |= bits;
        return;
    }

    // Scattered backing: the page gets its own (page-sized) block.
    if (st.frames.empty())
        st.frames.assign(
            static_cast<std::size_t>(config_.blocksPerChunk()),
            kNoFrame);
    if (const auto frame = buddy_.allocate(order)) {
        counters_.framesAllocated += count;
        for (unsigned b = 0; b < count; ++b)
            st.frames[first_block + b] = *frame + b;
    } else {
        // Oversubscribed: the page exists virtually but the model has
        // no frame for it; pfns fall back to the synthetic space.
        ++counters_.frameExhaustions;
    }
    st.backedMask |= bits;
}

void
MemoryModel::touch(Addr vpn, unsigned size_log2)
{
    if (size_log2 >= config_.superLog2) {
        // A chunk-sized (or bigger) page: its chunks must be fully
        // backed; promotion bookkeeping handles each one.
        const unsigned span = size_log2 - config_.superLog2;
        const Addr first = vpn << span;
        for (Addr i = 0; i < (Addr{1} << span); ++i)
            promoteChunk(first + i);
        return;
    }
    if (size_log2 < config_.frameLog2)
        tps_fatal("phys: page size 2^", size_log2,
                  " below the frame size 2^", config_.frameLog2);
    const unsigned order = size_log2 - config_.frameLog2;
    const Addr block_vpn = vpn << order;
    const Addr chunk = block_vpn >> config_.superOrder();
    const unsigned first_block = static_cast<unsigned>(
        block_vpn & (config_.blocksPerChunk() - 1));
    backBlocks(chunk, state(chunk), first_block, order);
}

void
MemoryModel::promoteChunk(Addr chunk)
{
    ChunkState &st = state(chunk);
    if (st.promoted)
        return;
    st.promoted = true;

    if (st.contiguousBase != kNoFrame) {
        // Reservation (or an earlier copy target) already holds the
        // region: promotion is a pure mapping change.
        ++counters_.promotionsInPlace;
        st.backedMask = full_mask_;
        return;
    }

    // Copy-based promotion: find a fresh contiguous region and move
    // the resident blocks into it.
    st.reservationTried = true;
    if (const auto base = buddy_.allocate(config_.superOrder())) {
        ++counters_.superpageAllocs;
        ++counters_.promotionsCopied;
        const unsigned blocks =
            static_cast<unsigned>(config_.blocksPerChunk());
        for (unsigned b = 0; b < blocks; ++b) {
            if ((st.backedMask & (std::uint64_t{1} << b)) == 0)
                continue;
            if (st.frames.empty() || st.frames[b] == kNoFrame)
                continue;
            ++counters_.pagesCopied;
            buddy_.release(st.frames[b], 0);
            ++counters_.framesFreed;
        }
        st.contiguousBase = *base;
        st.frames.clear();
        st.backedMask = full_mask_;
        return;
    }

    // No contiguous region exists.  The policy has already promoted
    // (this model observes, it does not veto), so record the failure
    // — that count is the "how often would copy-promotion have been
    // impossible" answer — and back the rest of the chunk with
    // scattered frames.
    ++counters_.superpageFailures;
    ++counters_.promotionFailures;
    emitBreak(chunk, 1); // no contiguous region for copy-promotion
    const unsigned blocks =
        static_cast<unsigned>(config_.blocksPerChunk());
    if (st.frames.empty())
        st.frames.assign(blocks, kNoFrame);
    for (unsigned b = 0; b < blocks; ++b) {
        if ((st.backedMask & (std::uint64_t{1} << b)) != 0)
            continue;
        if (const auto frame = buddy_.allocate(0)) {
            st.frames[b] = *frame;
            ++counters_.framesAllocated;
        } else {
            ++counters_.frameExhaustions;
        }
    }
    st.backedMask = full_mask_;
}

void
MemoryModel::demoteChunk(Addr chunk)
{
    ChunkState &st = state(chunk);
    if (!st.promoted)
        return;
    // Keep the backing either way: a contiguous region acts as a
    // reservation again (re-promotion will be in place), and
    // scattered frames keep serving the small pages.
    st.promoted = false;
    ++counters_.demotions;
}

Addr
MemoryModel::frameFor(Addr vpn, unsigned size_log2)
{
    touch(vpn, size_log2);
    if (size_log2 >= config_.superLog2) {
        const unsigned span = size_log2 - config_.superLog2;
        const ChunkState &st = state(vpn << span);
        if (span == 0 && st.contiguousBase != kNoFrame)
            return st.contiguousBase >> config_.superOrder();
        return kSyntheticPfnBase + vpn;
    }
    const unsigned order = size_log2 - config_.frameLog2;
    const Addr block_vpn = vpn << order;
    const ChunkState &st = state(block_vpn >> config_.superOrder());
    const unsigned first_block = static_cast<unsigned>(
        block_vpn & (config_.blocksPerChunk() - 1));
    if (st.contiguousBase != kNoFrame)
        return (st.contiguousBase + first_block) >> order;
    const std::uint64_t frame =
        st.frames.empty() ? kNoFrame : st.frames[first_block];
    if (frame == kNoFrame)
        return kSyntheticPfnBase + vpn;
    return frame >> order;
}

} // namespace tps::phys
