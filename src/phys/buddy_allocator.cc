#include "phys/buddy_allocator.h"

#include "util/logging.h"

namespace tps::phys
{

BuddyAllocator::BuddyAllocator(std::uint64_t mem_bytes,
                               unsigned frame_log2, unsigned max_order)
    : frame_log2_(frame_log2), max_order_(max_order),
      total_frames_(mem_bytes >> frame_log2)
{
    if (frame_log2 >= 63)
        tps_fatal("buddy: frame_log2 (", frame_log2, ") out of range");
    if (total_frames_ == 0)
        tps_fatal("buddy: memory (", mem_bytes,
                  " bytes) holds no frame of 2^", frame_log2, " bytes");
    while (max_order_ > 0 && blockFrames(max_order_) > total_frames_)
        --max_order_;
    free_.resize(max_order_ + 1);

    // Seed the free lists greedily: from the bottom of memory up, add
    // the largest aligned block that still fits.  A power-of-two
    // memory becomes a handful of max-order blocks; odd sizes leave a
    // tail of smaller blocks, exactly like a real memory map.
    std::uint64_t frame = 0;
    while (frame < total_frames_) {
        unsigned order = max_order_;
        while (order > 0 && ((frame & (blockFrames(order) - 1)) != 0 ||
                             frame + blockFrames(order) > total_frames_))
            --order;
        free_[order].insert(frame);
        free_frames_ += blockFrames(order);
        frame += blockFrames(order);
    }
}

std::optional<std::uint64_t>
BuddyAllocator::allocate(unsigned order)
{
    if (order > max_order_) {
        ++counters_.fails;
        return std::nullopt;
    }
    unsigned have = order;
    while (have <= max_order_ && free_[have].empty())
        ++have;
    if (have > max_order_) {
        ++counters_.fails;
        return std::nullopt;
    }
    const std::uint64_t frame = *free_[have].begin();
    free_[have].erase(free_[have].begin());
    // Split down to the requested order, keeping the lower half and
    // freeing the upper one — lowest-address-first at every step.
    while (have > order) {
        --have;
        free_[have].insert(frame + blockFrames(have));
        ++counters_.splits;
    }
    free_frames_ -= blockFrames(order);
    ++counters_.allocs;
    return frame;
}

void
BuddyAllocator::release(std::uint64_t frame, unsigned order)
{
    if (order > max_order_ || (frame & (blockFrames(order) - 1)) != 0 ||
        frame + blockFrames(order) > total_frames_)
        tps_fatal("buddy: bad release of frame ", frame, " order ",
                  order);
    ++counters_.frees;
    free_frames_ += blockFrames(order);
    while (order < max_order_) {
        const std::uint64_t buddy = frame ^ blockFrames(order);
        const auto it = free_[order].find(buddy);
        if (it == free_[order].end())
            break;
        free_[order].erase(it);
        frame &= ~blockFrames(order); // merged block starts at the pair
        ++order;
        ++counters_.coalesces;
    }
    free_[order].insert(frame);
}

bool
BuddyAllocator::claim(std::uint64_t frame, unsigned order)
{
    if (order > max_order_ || (frame & (blockFrames(order) - 1)) != 0 ||
        frame + blockFrames(order) > total_frames_)
        return false;
    // Find the free block containing the request: its aligned ancestor
    // at some order >= `order` must be on a free list.
    for (unsigned have = order; have <= max_order_; ++have) {
        std::uint64_t block = frame & ~(blockFrames(have) - 1);
        const auto it = free_[have].find(block);
        if (it == free_[have].end())
            continue;
        free_[have].erase(it);
        // Split toward the target, freeing the halves that miss it.
        for (unsigned cur = have; cur > order; --cur) {
            const std::uint64_t lower = block;
            const std::uint64_t upper = block + blockFrames(cur - 1);
            if (frame >= upper) {
                free_[cur - 1].insert(lower);
                block = upper;
            } else {
                free_[cur - 1].insert(upper);
                block = lower;
            }
            ++counters_.splits;
        }
        free_frames_ -= blockFrames(order);
        ++counters_.claims;
        return true;
    }
    return false;
}

std::optional<unsigned>
BuddyAllocator::largestFreeOrder() const
{
    for (unsigned order = max_order_ + 1; order-- > 0;)
        if (!free_[order].empty())
            return order;
    return std::nullopt;
}

} // namespace tps::phys
