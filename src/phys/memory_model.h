/**
 * @file
 * The physical memory model: a buddy allocator plus the OS-side
 * superpage machinery the paper assumes away.
 *
 * Two ways to assemble a 32KB page out of 4KB frames:
 *
 *  - Reservation (Navarro et al., and FreeBSD since): at a chunk's
 *    first touch, reserve a whole aligned superpage-sized region;
 *    blocks fill in place, and promotion is a pure mapping change —
 *    no copy.  Costs nothing when it works, but holds back memory
 *    and fails outright under fragmentation.
 *  - Copy-based promotion (the paper's Section 3.4 reality): back
 *    blocks with whatever scattered frames are at hand; when the
 *    policy promotes, allocate a fresh contiguous superpage and copy
 *    the resident blocks into it.  Always possible while any
 *    superpage block is free, but charges a real copy cost
 *    (PhysConfig::copyCyclesPerPage per resident block, surfaced in
 *    the experiment's cpi_phys).
 *
 * `fragPressure` models a busy machine: each frame is pre-claimed
 * with that probability by a hash of (seed, frame), so the free map
 * is deterministic and identical at any thread count.  At pressure p
 * the chance an aligned 8-block superpage region is entirely free is
 * (1-p)^8 — ~0.4% at p=0.5 — which is what makes reservation and
 * promotion fail in exactly the ways Trident/Mosaic fight.
 *
 * The model is an *observer* of the classified reference stream: it
 * never feeds back into policy or TLB decisions, so enabling it
 * cannot perturb the paper-facing results; it adds cost accounting
 * (copies) and feasibility accounting (failed superpage
 * allocations, fallbacks) on top.
 */

#ifndef TPS_PHYS_MEMORY_MODEL_H_
#define TPS_PHYS_MEMORY_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event_log.h"
#include "obs/stat_registry.h"
#include "phys/allocator.h"
#include "phys/buddy_allocator.h"
#include "phys/frag_telemetry.h"

namespace tps::phys
{

/** Knobs of the physical memory model (RunOptions::phys). */
struct PhysConfig
{
    /** Modeled physical memory size; 0 = model disabled entirely
     *  (the null allocator: today's behavior, bit for bit). */
    std::uint64_t memBytes = 0;

    /** Frame (small page) and superpage size exponents; the
     *  experiment driver re-derives both from the policy in play. */
    unsigned frameLog2 = 12;
    unsigned superLog2 = 15;

    /** Reserve an aligned superpage region at first chunk touch
     *  (promote in place) instead of scattering frames (promote by
     *  copy). */
    bool reservation = false;

    /** Background occupancy in [0,1): each frame is pre-claimed with
     *  this probability (deterministic in pressureSeed). */
    double fragPressure = 0.0;
    std::uint64_t pressureSeed = 0x7C15'A227;

    /** Modeled cycles to copy one small page during a copy-based
     *  promotion (4KB at 8 bytes/cycle = 512). */
    double copyCyclesPerPage = 512.0;

    bool enabled() const { return memBytes != 0; }
    unsigned superOrder() const { return superLog2 - frameLog2; }
    std::uint64_t blocksPerChunk() const
    {
        return std::uint64_t{1} << superOrder();
    }
};

/** Event counts of the model; deltas drive the interval telemetry. */
struct PhysCounters
{
    std::uint64_t framesAllocated = 0;      ///< scattered frames handed out
    std::uint64_t framesFreed = 0;          ///< scattered frames returned
    std::uint64_t frameExhaustions = 0;     ///< small allocation failed
    std::uint64_t reservationsOpened = 0;   ///< superpage regions reserved
    std::uint64_t reservationFallbacks = 0; ///< reservation denied -> scatter
    std::uint64_t superpageAllocs = 0;      ///< contiguous superpage allocs
    std::uint64_t superpageFailures = 0;    ///< failed superpage-order allocs
    std::uint64_t promotionsInPlace = 0;    ///< promoted within a reservation
    std::uint64_t promotionsCopied = 0;     ///< promoted via copy to new region
    std::uint64_t promotionFailures = 0;    ///< no contiguous region to copy to
    std::uint64_t pagesCopied = 0;          ///< small pages copied by promotions
    std::uint64_t demotions = 0;            ///< chunk demotions observed

    PhysCounters deltaSince(const PhysCounters &prev) const;

    /** Register every counter under "<prefix>.". */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * Buddy allocator + per-chunk backing state + reservation manager.
 * One instance per experiment cell; not thread-safe (cells share no
 * state, which is what keeps sweeps deterministic).
 */
class MemoryModel : public Allocator
{
  public:
    explicit MemoryModel(const PhysConfig &config);

    /**
     * Record the first-touch/backing work for a page the TLB just
     * missed on.  Every first access to a page identity is a cold TLB
     * miss, so calling this only on misses observes all first
     * touches without taxing the hit path.
     */
    void touch(Addr vpn, unsigned size_log2);

    /** The policy promoted @p chunk (its superLog2-sized number). */
    void promoteChunk(Addr chunk);

    /** The policy demoted @p chunk; its backing is kept (a
     *  reservation-like hold — re-promotion is free again). */
    void demoteChunk(Addr chunk);

    /** Allocator: pfn for the page tables (see phys/allocator.h).
     *  Chunks promoted without contiguous backing get synthetic pfns
     *  above the modeled memory. */
    Addr frameFor(Addr vpn, unsigned size_log2) override;

    /** Zero the counters (warmup boundary); backing state is kept,
     *  exactly like TLB/policy resetStats(). */
    void resetCounters() { counters_ = PhysCounters{}; }

    const PhysCounters &counters() const { return counters_; }
    const BuddyAllocator &buddy() const { return buddy_; }
    const PhysConfig &config() const { return config_; }

    /** Frames pre-claimed by fragPressure at construction. */
    std::uint64_t pressureFrames() const { return pressure_frames_; }

    /**
     * Attach an event recorder: registers the "resv_break" stream
     * (fields {chunk, reason}; reason 0 = reservation denied at first
     * touch, 1 = copy-promotion found no contiguous region) and emits
     * one event per break.  @p now is the driver-owned measured-
     * reference clock the events are timestamped from (the model has
     * no clock of its own); it must outlive the attachment.  Pass
     * nullptr/nullptr to detach.
     */
    void setEventSink(obs::EventLogRecorder *recorder,
                      const RefTime *now);

    FragSnapshot snapshot() const
    {
        return snapshotOf(buddy_, config_.superOrder());
    }

  private:
    static constexpr std::uint64_t kNoFrame = ~std::uint64_t{0};

    /** Backing state of one superpage-sized chunk. */
    struct ChunkState
    {
        std::uint64_t backedMask = 0; ///< blocks with physical backing
        /** First frame of the contiguous region (reservation or
         *  copied-to superpage); kNoFrame when scattered. */
        std::uint64_t contiguousBase = kNoFrame;
        bool reservationTried = false;
        bool promoted = false;
        /** Per-block frame when scattered (kNoFrame = none). */
        std::vector<std::uint64_t> frames;
    };

    ChunkState &state(Addr chunk);
    void backBlocks(Addr chunk, ChunkState &st, unsigned first_block,
                    unsigned order);
    void seedPressure();
    void emitBreak(Addr chunk, std::uint64_t reason);

    PhysConfig config_;
    BuddyAllocator buddy_;
    std::uint64_t full_mask_;
    std::uint64_t pressure_frames_ = 0;
    std::unordered_map<Addr, ChunkState> chunks_;
    PhysCounters counters_;
    obs::EventLogRecorder *events_ = nullptr;
    std::size_t resv_stream_ = 0;
    const RefTime *event_now_ = nullptr;
};

} // namespace tps::phys

#endif // TPS_PHYS_MEMORY_MODEL_H_
