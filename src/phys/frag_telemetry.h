/**
 * @file
 * Fragmentation telemetry over a BuddyAllocator: the free-space
 * histogram by order, the largest free block, and an external-
 * fragmentation index in the style of the kernel's fragmentation
 * metric — the fraction of free memory that is *unusable* for a
 * request of the superpage order:
 *
 *     index(o) = 1 - freeBytesInBlocksOfOrderAtLeast(o) / freeBytes
 *
 * 0 means every free byte could serve a superpage allocation; 1
 * means none can (all free memory is shattered below the superpage
 * size).  Defined as 0 when nothing is free at all: a full memory is
 * exhausted, not fragmented, and the failed-allocation counters
 * already tell that story.
 */

#ifndef TPS_PHYS_FRAG_TELEMETRY_H_
#define TPS_PHYS_FRAG_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stat_registry.h"
#include "phys/buddy_allocator.h"

namespace tps::phys
{

/** One instant's view of free physical memory. */
struct FragSnapshot
{
    std::uint64_t totalBytes = 0;
    std::uint64_t freeBytes = 0;
    std::uint64_t largestFreeBytes = 0;
    /** External-fragmentation index vs the superpage order (see file
     *  comment); in [0,1]. */
    double fragIndex = 0.0;
    /** Free blocks listed at each order, 0..maxOrder. */
    std::vector<std::uint64_t> freeBlocksByOrder;

    /**
     * Register under "<prefix>.": free_bytes, largest_free_bytes,
     * frag_index, plus the histogram as "<prefix>.free_blocks_by_order"
     * (bucket i = free blocks of 2^i frames).
     */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/** Snapshot @p buddy, scoring fragmentation against @p super_order. */
FragSnapshot snapshotOf(const BuddyAllocator &buddy,
                        unsigned super_order);

} // namespace tps::phys

#endif // TPS_PHYS_FRAG_TELEMETRY_H_
