/**
 * @file
 * Binary buddy allocator over a modeled physical memory.
 *
 * The paper mints physical frames out of thin air; everything real
 * about superpages starts with the question "are 8 contiguous,
 * aligned 4KB frames actually available?".  This allocator answers
 * it the way kernels do (Knuth's buddy system, as in BSD/Linux):
 * free memory is kept as power-of-two blocks on per-order free
 * lists, allocations split larger blocks on demand and frees
 * coalesce buddy pairs back up.
 *
 * Addresses are frame indices (byte address >> frameLog2()).  Every
 * operation is deterministic: allocations take the lowest-addressed
 * block of the smallest sufficient order, so identical request
 * sequences yield identical placements at any thread count (each
 * experiment cell owns a private allocator).
 */

#ifndef TPS_PHYS_BUDDY_ALLOCATOR_H_
#define TPS_PHYS_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "util/types.h"

namespace tps::phys
{

/** Event counts of one allocator's lifetime. */
struct BuddyCounters
{
    std::uint64_t allocs = 0;    ///< successful allocate() calls
    std::uint64_t fails = 0;     ///< allocate() calls that found no block
    std::uint64_t frees = 0;     ///< release() calls
    std::uint64_t splits = 0;    ///< block splits (alloc + claim paths)
    std::uint64_t coalesces = 0; ///< buddy merges on release()
    std::uint64_t claims = 0;    ///< successful claim() carve-outs
};

class BuddyAllocator
{
  public:
    /**
     * @param mem_bytes  modeled physical memory size
     * @param frame_log2 order-0 block (frame) size exponent
     * @param max_order  largest block order kept on a free list;
     *                   clamped down so a max-order block fits memory
     */
    BuddyAllocator(std::uint64_t mem_bytes, unsigned frame_log2,
                   unsigned max_order);

    /**
     * Allocate an aligned block of 2^order frames.
     * @return its first frame index, or nullopt when no block of a
     *         sufficient order is free (external fragmentation or
     *         genuine exhaustion).
     */
    std::optional<std::uint64_t> allocate(unsigned order);

    /** Return a block obtained from allocate()/claim() at the same
     *  order (or a sub-block of it at a smaller order). */
    void release(std::uint64_t frame, unsigned order);

    /**
     * Carve a *specific* aligned block out of free memory (memblock-
     * style: background occupancy, firmware holes).
     * @return false when any part of it is already allocated.
     */
    bool claim(std::uint64_t frame, unsigned order);

    unsigned frameLog2() const { return frame_log2_; }
    unsigned maxOrder() const { return max_order_; }
    std::uint64_t totalFrames() const { return total_frames_; }
    std::uint64_t totalBytes() const
    {
        return total_frames_ << frame_log2_;
    }

    std::uint64_t freeFrames() const { return free_frames_; }
    std::uint64_t freeBytes() const { return free_frames_ << frame_log2_; }

    /** Free blocks currently listed at @p order. */
    std::uint64_t freeBlocksAt(unsigned order) const
    {
        return free_[order].size();
    }

    /** Order of the largest free block, or nullopt when full. */
    std::optional<unsigned> largestFreeOrder() const;

    const BuddyCounters &counters() const { return counters_; }

  private:
    std::uint64_t blockFrames(unsigned order) const
    {
        return std::uint64_t{1} << order;
    }

    unsigned frame_log2_;
    unsigned max_order_;
    std::uint64_t total_frames_;
    std::uint64_t free_frames_ = 0;
    /** free_[order] holds the first frame index of each free block;
     *  std::set gives the lowest-address-first policy for free. */
    std::vector<std::set<std::uint64_t>> free_;
    BuddyCounters counters_;
};

} // namespace tps::phys

#endif // TPS_PHYS_BUDDY_ALLOCATOR_H_
