#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "obs/trace_profiler.h"
#include "util/logging.h"
#include "vm/multi_size_policy.h"
#include "vm/page_table.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

void
ExperimentResult::exportTo(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addText(prefix + ".workload", workload);
    registry.addText(prefix + ".tlb_name", tlbName);
    registry.addText(prefix + ".policy_name", policyName);
    registry.addCounter(prefix + ".refs", refs);
    registry.addCounter(prefix + ".instructions", instructions);
    tlb.exportTo(registry, prefix + ".tlb");
    policy.exportTo(registry, prefix + ".policy");
    registry.addValue(prefix + ".cpi_tlb", cpiTlb);
    registry.addValue(prefix + ".mpi", mpi);
    registry.addValue(prefix + ".miss_ratio", missRatio);
    registry.addValue(prefix + ".rpi", rpi);
    // Gate on the feature, not the measured value: a run that tracked
    // the working set and measured 0 bytes must still register the
    // key, or dumps from identical configurations would disagree on
    // their key sets.
    if (wsTracked)
        registry.addValue(prefix + ".avg_ws_bytes", avgWsBytes);
    if (pageTablesModeled) {
        registry.addValue(prefix + ".measured_miss_cycles",
                          measuredMissCycles);
        registry.addValue(prefix + ".cpi_tlb_measured", cpiTlbMeasured);
    }
    if (physModeled) {
        phys.exportTo(registry, prefix + ".phys");
        physFrag.exportTo(registry, prefix + ".phys.frag");
        registry.addValue(prefix + ".cpi_phys", cpiPhys);
    }
    if (lifecycleTracked) {
        lifecycle.exportTo(registry, prefix);
        registry.addValue(prefix + ".reach.tlb_bytes",
                          static_cast<double>(reach.reachBytes));
        registry.addValue(prefix + ".reach.open_bytes",
                          static_cast<double>(reachOpenBytes));
        registry.addValue(prefix + ".reach.utilization",
                          reachUtilization);
        registry.addCounter(prefix + ".reach.sets", reach.sets);
        registry.addCounter(prefix + ".reach.full_sets",
                            reach.fullSets);
        registry.addHistogram(prefix + ".reach.set_occupancy",
                              reach.setOccupancy);
    }
    if (harnessMeasured) {
        registry.addValue(prefix + ".harness.wall_seconds",
                          harness.wallSeconds);
        registry.addValue(prefix + ".harness.refs_per_sec",
                          harness.refsPerSec);
        registry.addCounter(prefix + ".harness.chunks", harness.chunks);
        registry.addCounter(prefix + ".harness.chunk_splits",
                            harness.chunkSplits);
        registry.addCounter(prefix + ".harness.probe_cache_lookups",
                            harness.probeCacheLookups);
        registry.addCounter(prefix + ".harness.probe_cache_hits",
                            harness.probeCacheHits);
        registry.addValue(prefix + ".harness.probe_cache_hit_rate",
                          harness.probeCacheLookups == 0
                              ? 0.0
                              : static_cast<double>(harness.probeCacheHits) /
                                    static_cast<double>(
                                        harness.probeCacheLookups));
    }
}

PolicySpec
PolicySpec::single(unsigned size_log2)
{
    PolicySpec spec;
    spec.kind = Kind::Single;
    spec.singleLog2 = size_log2;
    return spec;
}

PolicySpec
PolicySpec::twoSizes(const TwoSizeConfig &config)
{
    PolicySpec spec;
    spec.kind = Kind::TwoSize;
    spec.twoSize = config;
    return spec;
}

std::unique_ptr<PageSizePolicy>
PolicySpec::instantiate() const
{
    switch (kind) {
      case Kind::Single:
        return std::make_unique<SingleSizePolicy>(singleLog2);
      case Kind::TwoSize:
        return std::make_unique<TwoSizePolicy>(twoSize);
    }
    tps_panic("unreachable policy kind");
}

bool
operator==(const PolicySpec &a, const PolicySpec &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case PolicySpec::Kind::Single:
        return a.singleLog2 == b.singleLog2;
      case PolicySpec::Kind::TwoSize:
        return a.twoSize == b.twoSize;
    }
    tps_panic("unreachable policy kind");
}

namespace
{

/**
 * Fans invalidation events out to the TLB and, optionally, mirrors
 * chunk remaps into the modeled page tables.  When the miss-event
 * sampler is on it also remembers shot-down pages so a later re-miss
 * on one can be attributed to the shootdown rather than to capacity.
 */
class SinkTee : public InvalidationSink
{
  public:
    SinkTee(Tlb &tlb, AddressSpace *address_space,
            phys::MemoryModel *phys_model,
            std::unordered_set<PageId, PageIdHash> *shot_down = nullptr)
        : tlb_(tlb), address_space_(address_space),
          phys_model_(phys_model), shot_down_(shot_down)
    {
    }

    /** Emit each shootdown into @p events ("shootdown" stream handle
     *  @p stream), timestamped from the driver-owned clock @p now. */
    void
    setEventSink(obs::EventLogRecorder *events, std::size_t stream,
                 const RefTime *now)
    {
        events_ = events;
        shootdown_stream_ = stream;
        event_now_ = now;
    }

    void
    invalidatePage(const PageId &page) override
    {
        tlb_.invalidatePage(page);
        if (shot_down_ != nullptr)
            shot_down_->insert(page);
        if (events_ != nullptr)
            events_->emit(shootdown_stream_, *event_now_, page.vpn,
                          page.sizeLog2);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        // Physical backing first: a subsequent page-table remap asks
        // the model for the superpage's pfn.
        if (phys_model_ != nullptr) {
            if (to_large)
                phys_model_->promoteChunk(chunk_number);
            else
                phys_model_->demoteChunk(chunk_number);
        }
        if (address_space_ != nullptr)
            address_space_->remapChunk(chunk_number, to_large);
    }

  private:
    Tlb &tlb_;
    AddressSpace *address_space_;
    phys::MemoryModel *phys_model_;
    std::unordered_set<PageId, PageIdHash> *shot_down_;
    obs::EventLogRecorder *events_ = nullptr;
    std::size_t shootdown_stream_ = 0;
    const RefTime *event_now_ = nullptr;
};

/**
 * Construct the modeled address space whose page-table layout matches
 * @p policy (shared by the per-ref and batched engines).
 */
void
emplaceAddressSpace(std::optional<AddressSpace> &slot,
                    const PageSizePolicy &policy)
{
    // Small/large exponents: take them from the policy when it is
    // multi-size; a single-size policy walks only the "small"
    // table, so pair it with an unused larger size.
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        slot.emplace(policy2->config().smallLog2,
                     policy2->config().largeLog2);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        slot.emplace(policy1->sizeLog2(), policy1->sizeLog2() + 3);
    } else {
        tps_fatal("page-table modeling supports single- and "
                  "two-size policies only (got ", policy.name(), ")");
    }
}

/**
 * Physical memory model: frame/superpage exponents follow the policy
 * in play (a single-size policy still gets a superpage ladder above it
 * so fragmentation is measured against something).
 */
phys::PhysConfig
resolvePhysConfig(const phys::PhysConfig &base,
                  const PageSizePolicy &policy)
{
    phys::PhysConfig phys_config = base;
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policy2->config().smallLog2;
        phys_config.superLog2 = policy2->config().largeLog2;
    } else if (const auto *policyn =
                   dynamic_cast<const MultiSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policyn->config().sizeLog2s.at(0);
        phys_config.superLog2 = policyn->config().sizeLog2s.at(1);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policy1->sizeLog2();
        phys_config.superLog2 = policy1->sizeLog2() + 3;
    }
    return phys_config;
}

/**
 * The per-run interval-telemetry config: an explicitly enabled
 * options.timeseries wins, else a process-global sink
 * (--timeseries-out) acts as the default so every bench records
 * telemetry without plumbing it through its own RunOptions.
 */
obs::TimeSeriesConfig
resolveTsConfig(const RunOptions &options)
{
    obs::TimeSeriesConfig ts_config = options.timeseries;
    if (!ts_config.enabled()) {
        if (const obs::TimeSeriesSink *sink =
                obs::TimeSeriesSink::global())
            ts_config = sink->config();
    }
    return ts_config;
}

/**
 * The per-run event-log config: same fallback shape as
 * resolveTsConfig — an explicitly enabled options.events wins, else a
 * process-global sink (--events-out) acts as the default.
 */
obs::EventLogConfig
resolveEventsConfig(const RunOptions &options)
{
    obs::EventLogConfig events_config = options.events;
    if (!events_config.enabled()) {
        if (const obs::EventLogSink *sink = obs::EventLogSink::global())
            events_config = sink->config();
    }
    return events_config;
}

/**
 * Lifecycle-ledger granularity follows the policy in play, exactly
 * like resolvePhysConfig: the tracked transition is small -> large
 * (the first transition of a multi-size ladder); a single-size policy
 * gets a ladder above it so the ledger exists but stays empty.
 */
LifecycleConfig
resolveLifecycleConfig(const PageSizePolicy &policy)
{
    LifecycleConfig config;
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        config.smallLog2 = policy2->config().smallLog2;
        config.largeLog2 = policy2->config().largeLog2;
    } else if (const auto *policyn =
                   dynamic_cast<const MultiSizePolicy *>(&policy)) {
        config.smallLog2 = policyn->config().sizeLog2s.at(0);
        config.largeLog2 = policyn->config().sizeLog2s.at(1);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        config.smallLog2 = policy1->sizeLog2();
        config.largeLog2 = policy1->sizeLog2() + 3;
    }
    return config;
}

/** Event-stream field layouts, shared by both engines. */
constexpr const char *kPromoteStream = "promote";
constexpr const char *kDemoteStream = "demote";
constexpr const char *kShootdownStream = "shootdown";

std::size_t
registerPromoteStream(obs::EventLogRecorder &events)
{
    return events.stream(kPromoteStream,
                         {"chunk", "from_log2", "to_log2"});
}

std::size_t
registerDemoteStream(obs::EventLogRecorder &events)
{
    return events.stream(kDemoteStream,
                         {"chunk", "from_log2", "to_log2"});
}

std::size_t
registerShootdownStream(obs::EventLogRecorder &events)
{
    return events.stream(kShootdownStream, {"vpn", "size_log2"});
}

/**
 * Per-ref-engine lifecycle sink: forwards the policy's promote/demote
 * callbacks to the ledger and the event log, timestamped from the
 * driver's measured-reference counter (0 during warmup — matching the
 * batched engine, whose warmup chunks replay events at t = 0).
 */
class LifecycleTee : public LifecycleSink
{
  public:
    LifecycleTee(const std::uint64_t *measured, LifecycleLedger *ledger,
                 obs::EventLogRecorder *events,
                 std::size_t promote_stream, std::size_t demote_stream)
        : measured_(measured), ledger_(ledger), events_(events),
          promote_stream_(promote_stream), demote_stream_(demote_stream)
    {
    }

    void
    onPromote(Addr chunk_number, unsigned from_log2,
              unsigned to_log2) override
    {
        if (ledger_ != nullptr)
            ledger_->onPromote(*measured_, chunk_number, from_log2,
                               to_log2);
        if (events_ != nullptr)
            events_->emit(promote_stream_, *measured_, chunk_number,
                          from_log2, to_log2);
    }

    void
    onDemote(Addr chunk_number, unsigned from_log2,
             unsigned to_log2) override
    {
        if (ledger_ != nullptr)
            ledger_->onDemote(*measured_, chunk_number, from_log2,
                              to_log2);
        if (events_ != nullptr)
            events_->emit(demote_stream_, *measured_, chunk_number,
                          from_log2, to_log2);
    }

  private:
    const std::uint64_t *measured_;
    LifecycleLedger *ledger_;
    obs::EventLogRecorder *events_;
    std::size_t promote_stream_;
    std::size_t demote_stream_;
};

/**
 * Interval-telemetry column names for one cell: the base layout plus
 * the columns of the optional features in play (the lists grow only
 * with the features, so output without them is unchanged byte for
 * byte).
 */
void
emplaceTsRecorder(std::optional<obs::TimeSeriesRecorder> &slot,
                  const obs::TimeSeriesConfig &ts_config, bool has_wset,
                  bool has_lifecycle, bool has_phys)
{
    std::vector<std::string> counter_names = detail::kTsCounterNames;
    std::vector<std::string> value_names = detail::kTsValueNames;
    if (has_wset)
        value_names.push_back("ws_bytes");
    if (has_lifecycle) {
        // TLB reach (valid-entry coverage) and ledger reach
        // utilization, sampled at each interval close.
        value_names.push_back("reach_bytes");
        value_names.push_back("reach_utilization");
    }
    if (has_phys) {
        counter_names.insert(counter_names.end(),
                             detail::kTsPhysCounterNames.begin(),
                             detail::kTsPhysCounterNames.end());
        value_names.insert(value_names.end(),
                           detail::kTsPhysValueNames.begin(),
                           detail::kTsPhysValueNames.end());
    }
    slot.emplace(ts_config, std::move(counter_names),
                 std::move(value_names));
}

} // namespace

namespace detail
{

// Column names of the interval telemetry (order matters: the recorder
// stores rows positionally against these lists).  Shared with the
// multiprogrammed driver (core/multiprog.cc) so merged cells carry
// the same base columns as single-process cells.
const std::vector<std::string> kTsCounterNames = {
    "refs",           "instructions",   "tlb_access",
    "tlb_hit",        "tlb_miss",       "tlb_hit_small",
    "tlb_hit_large",  "tlb_miss_small", "tlb_miss_large",
    "tlb_fill",       "tlb_eviction",   "tlb_invalidation",
    "refs_small",     "refs_large",     "promotions",
    "demotions",
};

const std::vector<std::string> kTsValueNames = {
    "miss_rate",
    "mpi",
    "large_fraction",
};

// Extra columns recorded when the physical memory model is on (like
// ws_bytes, the lists grow only with the features in play so output
// without the model is unchanged byte for byte).
const std::vector<std::string> kTsPhysCounterNames = {
    "phys_frames_alloc",    "phys_superpage_fail",
    "phys_promos_in_place", "phys_promos_copied",
    "phys_pages_copied",
};

const std::vector<std::string> kTsPhysValueNames = {
    "frag_index",
    "phys_free_bytes",
};

} // namespace detail

namespace
{
using detail::kTsCounterNames;
using detail::kTsPhysCounterNames;
using detail::kTsPhysValueNames;
using detail::kTsValueNames;
} // namespace

namespace
{

/**
 * The reference-at-a-time engine (ExecMode::PerRef): the oracle the
 * batched engine is held bit-identical to by the perf equivalence
 * tests (tests/perf/).
 */
ExperimentResult
runPerRef(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
          const RunOptions &options, ProbeStrategy probe)
{
    trace.reset();
    policy.reset();
    tlb.reset();

    const bool two_sizes = policy.isMultiSize();

    std::optional<WindowedWorkingSet> wset;
    if (options.wsWindow != 0)
        wset.emplace(options.wsWindow);

    std::optional<AddressSpace> address_space;
    if (options.modelPageTables)
        emplaceAddressSpace(address_space, policy);

    std::optional<phys::MemoryModel> phys_model;
    if (options.phys.enabled()) {
        phys_model.emplace(resolvePhysConfig(options.phys, policy));
        if (address_space)
            address_space->setAllocator(&*phys_model);
    }

    // Interval telemetry: a per-cell recorder fed with counter deltas
    // every intervalRefs measured references.
    const obs::TimeSeriesConfig ts_config = resolveTsConfig(options);
    const obs::EventLogConfig events_config =
        resolveEventsConfig(options);
    const bool lifecycle_on =
        options.lifecycle || events_config.enabled();
    std::optional<obs::TimeSeriesRecorder> ts;
    if (ts_config.enabled())
        emplaceTsRecorder(ts, ts_config, wset.has_value(),
                          lifecycle_on, phys_model.has_value());
    const bool sample_misses = ts && ts->samplingMisses();
    // Miss-cause attribution (sampling only): every page identity ever
    // accessed, and identities invalidated since their last access.
    std::unordered_set<PageId, PageIdHash> seen_pages;
    std::unordered_set<PageId, PageIdHash> shot_down;

    SinkTee sink(tlb, address_space ? &*address_space : nullptr,
                 phys_model ? &*phys_model : nullptr,
                 sample_misses ? &shot_down : nullptr);
    policy.setInvalidationSink(&sink);

    ExperimentResult result;
    result.workload = trace.name();
    result.tlbName = tlb.name();
    result.policyName = policy.name();

    if (options.warmupRefs != 0 && options.maxRefs != 0 &&
        options.warmupRefs >= options.maxRefs) {
        tps_fatal("warmupRefs (", options.warmupRefs,
                  ") must be below maxRefs (", options.maxRefs, ")");
    }

    // Drain the source in batches through TraceSource::fill() rather
    // than one virtual next() per reference; the chunk lives on the
    // stack so the hot loop reads refs out of L1.  With --trace-out,
    // every chunk becomes one span on the worker's timeline (~2 clock
    // reads per 4096 refs; the null check is all it costs otherwise).
    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    constexpr std::size_t kReplayBatch = 4096;
    MemRef batch[kReplayBatch];
    RefTime now = 0;
    std::uint64_t instructions = 0;
    std::uint64_t measured_refs = 0;

    // Lifecycle ledger and event log, both timestamped from
    // measured_refs (0 during warmup), which the batched engine
    // reproduces exactly as base_measured + index + 1.
    std::optional<LifecycleLedger> ledger;
    if (lifecycle_on)
        ledger.emplace(resolveLifecycleConfig(policy));
    std::optional<obs::EventLogRecorder> events;
    std::optional<LifecycleTee> life_tee;
    if (events_config.enabled() || ledger) {
        std::size_t promote_stream = 0;
        std::size_t demote_stream = 0;
        if (events_config.enabled()) {
            events.emplace(events_config);
            promote_stream = registerPromoteStream(*events);
            demote_stream = registerDemoteStream(*events);
            sink.setEventSink(&*events,
                              registerShootdownStream(*events),
                              &measured_refs);
            tlb.setEventSink(&*events, "");
            if (phys_model)
                phys_model->setEventSink(&*events, &measured_refs);
        }
        life_tee.emplace(&measured_refs, ledger ? &*ledger : nullptr,
                         events ? &*events : nullptr, promote_stream,
                         demote_stream);
        policy.setLifecycleSink(&*life_tee);
    }

    // Snapshots at the last interval close (all-zero at the warmup
    // boundary, where the stats themselves are reset); sums of the
    // recorded deltas therefore reproduce the aggregates exactly.
    TlbStats ts_prev_tlb;
    PolicyStats ts_prev_policy;
    phys::PhysCounters ts_prev_phys;
    std::uint64_t ts_prev_instructions = 0;
    std::uint64_t ts_last_close = 0;
    auto closeInterval = [&] {
        const TlbStats tlb_d = tlb.stats().deltaSince(ts_prev_tlb);
        const PolicyStats pol_d =
            policy.stats().deltaSince(ts_prev_policy);
        const std::uint64_t refs_d = measured_refs - ts_last_close;
        const std::uint64_t instr_d = instructions - ts_prev_instructions;
        std::vector<std::uint64_t> counters = {
            refs_d,          instr_d,          tlb_d.accesses,
            tlb_d.hits,      tlb_d.misses,     tlb_d.hitsSmall,
            tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
            tlb_d.fills,     tlb_d.evictions,  tlb_d.invalidations,
            pol_d.refsSmall, pol_d.refsLarge,  pol_d.promotions,
            pol_d.demotions};
        std::vector<double> values = {
            tlb_d.missRatio(),
            instr_d == 0 ? 0.0
                         : static_cast<double>(tlb_d.misses) /
                               static_cast<double>(instr_d),
            pol_d.largeFraction()};
        if (wset)
            values.push_back(
                static_cast<double>(wset->currentBytes()));
        if (ledger) {
            values.push_back(static_cast<double>(
                tlb.reachSnapshot().reachBytes));
            values.push_back(ledger->reachUtilization());
        }
        if (phys_model) {
            const phys::PhysCounters phys_d =
                phys_model->counters().deltaSince(ts_prev_phys);
            counters.insert(counters.end(),
                            {phys_d.framesAllocated,
                             phys_d.superpageFailures,
                             phys_d.promotionsInPlace,
                             phys_d.promotionsCopied,
                             phys_d.pagesCopied});
            const phys::FragSnapshot snap = phys_model->snapshot();
            values.push_back(snap.fragIndex);
            values.push_back(static_cast<double>(snap.freeBytes));
            ts_prev_phys = phys_model->counters();
        }
        ts->endInterval(ts_last_close, refs_d, std::move(counters),
                        std::move(values));
        ts_prev_tlb = tlb.stats();
        ts_prev_policy = policy.stats();
        ts_prev_instructions = instructions;
        ts_last_close = measured_refs;
    };

    for (;;) {
        std::size_t want = kReplayBatch;
        if (options.maxRefs != 0) {
            const std::uint64_t remaining = options.maxRefs - now;
            if (remaining == 0)
                break;
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, remaining));
        }
        const std::size_t got = trace.fill(batch, want);
        if (got == 0)
            break;
        obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = batch[i];
            ++now;
            if (now == options.warmupRefs + 1 &&
                options.warmupRefs != 0) {
                // Warmup ends: zero the counters, keep the state.
                tlb.resetStats();
                policy.resetStats();
                if (phys_model)
                    phys_model->resetCounters();
                if (ledger)
                    ledger->resetStats(measured_refs);
                instructions = 0;
            }
            if (now > options.warmupRefs)
                ++measured_refs;
            if (ref.type == RefType::Ifetch)
                ++instructions;
            const PageId page = policy.classify(ref.vaddr, now);
            if (ledger)
                ledger->touch(ref.vaddr);
            const bool hit = tlb.access(page, ref.vaddr);
            if (!hit && phys_model) {
                // Every first access to a page identity is a cold TLB
                // miss, so backing work is observed here without
                // taxing the hit path.
                phys_model->touch(page.vpn, page.sizeLog2);
            }
            if (!hit && address_space) {
                if (two_sizes)
                    address_space->handleMiss(page,
                                              ProbeOrder::SmallFirst);
                else
                    address_space->handleMissSingleSize(page);
            }
            if (wset)
                wset->observe(page);
            if (ts) {
                if (sample_misses && !hit) {
                    // Seen-set updates only at misses: a hit implies
                    // an earlier fill of the same page identity,
                    // which implies an earlier (inserted) miss — so
                    // membership at miss time matches a per-access
                    // set, without hashing on the hit path.  Warmup
                    // misses insert too, so a post-warmup re-miss on
                    // a warmed page is not misattributed as cold.
                    const bool first =
                        seen_pages.insert(page).second;
                    if (now > options.warmupRefs) {
                        obs::MissCause cause;
                        if (shot_down.erase(page) != 0)
                            cause = obs::MissCause::Shootdown;
                        else if (first)
                            cause = obs::MissCause::Cold;
                        else
                            cause = obs::MissCause::Capacity;
                        ts->offerMiss(measured_refs, page.vpn,
                                      page.sizeLog2, cause);
                    } else {
                        shot_down.erase(page);
                    }
                }
                if (now > options.warmupRefs &&
                    measured_refs - ts_last_close ==
                        ts->intervalRefs()) {
                    closeInterval();
                }
            }
        }
    }
    policy.setInvalidationSink(nullptr);
    policy.setLifecycleSink(nullptr);
    if (events) {
        // The TLB outlives this run; the recorder does not.
        tlb.setEventSink(nullptr, "");
        if (phys_model)
            phys_model->setEventSink(nullptr, nullptr);
    }

    if (ts) {
        // Flush the final partial interval so per-interval sums equal
        // the whole-run aggregates exactly.
        if (measured_refs > ts_last_close)
            closeInterval();
        auto series = std::make_shared<obs::TimeSeries>(
            ts->finish(result.workload, result.tlbName,
                       result.policyName));
        result.timeseries = series;
        if (obs::TimeSeriesSink *global = obs::TimeSeriesSink::global())
            global->add(*series);
    }

    result.refs = measured_refs;
    result.instructions = instructions;
    result.tlb = tlb.stats();
    result.policy = policy.stats();
    result.cpiTlb = options.cpi.cpiTlb(result.tlb, result.policy,
                                       instructions, two_sizes, probe);
    result.mpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(result.tlb.misses) /
                           static_cast<double>(instructions);
    result.missRatio = result.tlb.missRatio();
    result.rpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(measured_refs) /
                           static_cast<double>(instructions);
    if (wset) {
        result.avgWsBytes = wset->averageBytes();
        result.wsTracked = true;
    }
    if (ledger) {
        result.lifecycleTracked = true;
        // End-of-run reach state, read before finish() closes the
        // open episodes.
        result.reachOpenBytes = ledger->openReachBytes();
        result.reachUtilization = ledger->reachUtilization();
        result.lifecycle = ledger->finish(measured_refs);
        result.reach = tlb.reachSnapshot();
    }
    if (events) {
        auto log = std::make_shared<obs::EventLog>(events->finish(
            result.workload, result.tlbName, result.policyName));
        result.events = log;
        if (obs::EventLogSink *global = obs::EventLogSink::global())
            global->add(*log);
    }
    if (address_space) {
        result.pageTablesModeled = true;
        result.measuredMissCycles = address_space->averageMissCycles();
        result.cpiTlbMeasured =
            instructions == 0
                ? 0.0
                : static_cast<double>(result.tlb.misses) *
                      result.measuredMissCycles /
                      static_cast<double>(instructions);
    }
    if (phys_model) {
        result.physModeled = true;
        result.phys = phys_model->counters();
        result.physFrag = phys_model->snapshot();
        result.cpiPhys =
            result.cpiTlb +
            (instructions == 0
                 ? 0.0
                 : static_cast<double>(result.phys.pagesCopied) *
                       phys_model->config().copyCyclesPerPage /
                       static_cast<double>(instructions));
    }
    return result;
}

/**
 * One deferred policy-side effect, recorded during a chunk's
 * classification phase at the index of the reference whose classify()
 * emitted it.  Replaying the events at exactly that index restores the
 * per-ref interleaving: everything classify(i) did reaches each cell
 * after the miss work of reference i-1 and before the probe of
 * reference i.
 */
struct PolicyEvent
{
    enum class Kind : std::uint8_t
    {
        Invalidate, ///< InvalidationSink::invalidatePage
        Remap,      ///< InvalidationSink::onChunkRemap
    };

    std::uint32_t index = 0; ///< chunk-local reference index
    Kind kind = Kind::Invalidate;
    PageId page;           ///< Invalidate payload
    Addr chunkNumber = 0;  ///< Remap payload
    bool toLarge = false;  ///< Remap payload
};

/**
 * One promote/demote transition recorded during classification, at the
 * chunk-local index of the reference whose classify() fired it.  The
 * engine folds these into the (pass-shared) lifecycle ledger and each
 * cell's event log at t = base_measured + index + 1, the measured
 * index the per-ref engine stamps at the same point.
 */
struct LifeEvent
{
    std::uint32_t index = 0; ///< chunk-local reference index
    bool promote = false;
    Addr chunk = 0;
    std::uint8_t fromLog2 = 0;
    std::uint8_t toLog2 = 0;
};

/** Policy sink of the classification phase: record, don't apply. */
class EventRecorder : public InvalidationSink, public LifecycleSink
{
  public:
    std::vector<PolicyEvent> events;
    std::vector<LifeEvent> lifeEvents;
    std::uint32_t index = 0; ///< set by the classify loop per ref

    void
    invalidatePage(const PageId &page) override
    {
        PolicyEvent event;
        event.index = index;
        event.kind = PolicyEvent::Kind::Invalidate;
        event.page = page;
        events.push_back(event);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        PolicyEvent event;
        event.index = index;
        event.kind = PolicyEvent::Kind::Remap;
        event.chunkNumber = chunk_number;
        event.toLarge = to_large;
        events.push_back(event);
    }

    void
    onPromote(Addr chunk_number, unsigned from_log2,
              unsigned to_log2) override
    {
        lifeEvents.push_back(
            LifeEvent{index, true, chunk_number,
                      static_cast<std::uint8_t>(from_log2),
                      static_cast<std::uint8_t>(to_log2)});
    }

    void
    onDemote(Addr chunk_number, unsigned from_log2,
             unsigned to_log2) override
    {
        lifeEvents.push_back(
            LifeEvent{index, false, chunk_number,
                      static_cast<std::uint8_t>(from_log2),
                      static_cast<std::uint8_t>(to_log2)});
    }
};

/** One TLB configuration sharing the batched pass. */
struct BatchCellSetup
{
    Tlb *tlb = nullptr;
    ProbeStrategy probe = ProbeStrategy::Parallel;
};

/**
 * The chunked engine (ExecMode::Batched), generalized to N cells: one
 * classification pass feeds any number of TLB configurations, each
 * with its own downstream models (DESIGN.md §11).
 *
 * Bit-identity with runPerRef() rests on three invariants:
 *  - policy state depends only on (vaddr, now), never on a TLB, so
 *    classifying a chunk ahead of the probes (and sharing the result
 *    across cells) yields the identical page stream;
 *  - policy side effects are replayed into each cell at the recorded
 *    reference index, and probes between two event indices carry no
 *    ordering hazard (lookups never touch the page-table or physical
 *    models, and miss work never touches the TLB);
 *  - chunks split at every point where per-ref code reads or resets
 *    mid-stream state (warmup boundary, interval closes, maxRefs), so
 *    each observable is read at the same reference index.
 */
std::vector<ExperimentResult>
runBatchedCells(TraceSource &trace, PageSizePolicy &policy,
                const std::vector<BatchCellSetup> &setups,
                const RunOptions &options)
{
    trace.reset();
    policy.reset();

    if (options.chunkRefs == 0)
        tps_fatal("chunkRefs must be positive");
    if (options.warmupRefs != 0 && options.maxRefs != 0 &&
        options.warmupRefs >= options.maxRefs) {
        tps_fatal("warmupRefs (", options.warmupRefs,
                  ") must be below maxRefs (", options.maxRefs, ")");
    }

    const bool two_sizes = policy.isMultiSize();
    const obs::TimeSeriesConfig ts_config = resolveTsConfig(options);
    const std::uint64_t interval_refs = ts_config.intervalRefs;
    const obs::EventLogConfig events_config =
        resolveEventsConfig(options);
    const bool lifecycle_on =
        options.lifecycle || events_config.enabled();

    // The event clock for shootdown/resv_break emission: replayChunk
    // keeps it at the measured index of the reference being replayed
    // (0 during warmup), mirroring the per-ref engine's measured_refs.
    // Declared before the cells so their sinks can hold its address.
    RefTime event_now = 0;

    struct Cell
    {
        Cell(Tlb &tlb_ref, ProbeStrategy probe_kind)
            : tlb(tlb_ref), probe(probe_kind)
        {
        }

        Tlb &tlb;
        ProbeStrategy probe;
        std::optional<WindowedWorkingSet> wset;
        std::optional<AddressSpace> addressSpace;
        std::optional<phys::MemoryModel> physModel;
        std::optional<obs::TimeSeriesRecorder> ts;
        bool sampleMisses = false;
        /** Anything to do per reference beyond the TLB probe? */
        bool missWork = false;
        std::unordered_set<PageId, PageIdHash> seenPages;
        std::unordered_set<PageId, PageIdHash> shotDown;
        std::optional<SinkTee> sink;
        TlbStats tsPrevTlb;
        phys::PhysCounters tsPrevPhys;
        std::optional<obs::EventLogRecorder> events;
        std::size_t evPromote = 0;
        std::size_t evDemote = 0;
    };

    std::vector<std::unique_ptr<Cell>> cells;
    cells.reserve(setups.size());
    for (const BatchCellSetup &setup : setups) {
        auto cell = std::make_unique<Cell>(*setup.tlb, setup.probe);
        cell->tlb.reset();
        if (options.wsWindow != 0)
            cell->wset.emplace(options.wsWindow);
        if (options.modelPageTables)
            emplaceAddressSpace(cell->addressSpace, policy);
        if (options.phys.enabled()) {
            cell->physModel.emplace(
                resolvePhysConfig(options.phys, policy));
            if (cell->addressSpace)
                cell->addressSpace->setAllocator(&*cell->physModel);
        }
        if (ts_config.enabled()) {
            emplaceTsRecorder(cell->ts, ts_config,
                              cell->wset.has_value(), lifecycle_on,
                              cell->physModel.has_value());
            cell->sampleMisses = cell->ts->samplingMisses();
        }
        cell->sink.emplace(
            cell->tlb,
            cell->addressSpace ? &*cell->addressSpace : nullptr,
            cell->physModel ? &*cell->physModel : nullptr,
            cell->sampleMisses ? &cell->shotDown : nullptr);
        if (events_config.enabled()) {
            cell->events.emplace(events_config);
            cell->evPromote = registerPromoteStream(*cell->events);
            cell->evDemote = registerDemoteStream(*cell->events);
            cell->sink->setEventSink(
                &*cell->events, registerShootdownStream(*cell->events),
                &event_now);
            cell->tlb.setEventSink(&*cell->events, "");
            if (cell->physModel)
                cell->physModel->setEventSink(&*cell->events,
                                              &event_now);
        }
        cell->missWork = cell->wset || cell->addressSpace ||
                         cell->physModel || cell->sampleMisses;
        cells.push_back(std::move(cell));
    }

    // The lifecycle ledger folds the *policy's* promote/demote stream,
    // which every cell of the pass shares — one ledger per pass, fed
    // during the classification phase, never per cell.
    std::optional<LifecycleLedger> ledger;
    if (lifecycle_on)
        ledger.emplace(resolveLifecycleConfig(policy));

    // The classification phase records side effects instead of
    // applying them; each cell replays them through its own tee.
    EventRecorder recorder;
    policy.setInvalidationSink(&recorder);
    if (lifecycle_on)
        policy.setLifecycleSink(&recorder);
    auto *policy1 = dynamic_cast<SingleSizePolicy *>(&policy);
    auto *policy2 = dynamic_cast<TwoSizePolicy *>(&policy);

    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    std::vector<MemRef> refs(options.chunkRefs);
    std::vector<Tlb::BatchRef> brefs(options.chunkRefs);
    Tlb::BatchResult probe_result;

    RefTime now = 0;
    std::uint64_t instructions = 0;
    std::uint64_t measured_refs = 0;

    // Harness self-telemetry: counted unconditionally (two integer
    // increments per *chunk*), exported only under options.harnessStats.
    const auto harness_start = std::chrono::steady_clock::now();
    std::uint64_t harness_chunks = 0;
    std::uint64_t harness_splits = 0;

    // Interval bookkeeping shared by all cells: closes fall at the
    // same measured-reference positions everywhere, and the policy and
    // instruction streams are cell-independent.
    PolicyStats ts_prev_policy;
    std::uint64_t ts_prev_instructions = 0;
    std::uint64_t ts_last_close = 0;
    auto closeCell = [&](Cell &cell) {
        const TlbStats tlb_d = cell.tlb.stats().deltaSince(cell.tsPrevTlb);
        const PolicyStats pol_d =
            policy.stats().deltaSince(ts_prev_policy);
        const std::uint64_t refs_d = measured_refs - ts_last_close;
        const std::uint64_t instr_d = instructions - ts_prev_instructions;
        std::vector<std::uint64_t> counters = {
            refs_d,          instr_d,          tlb_d.accesses,
            tlb_d.hits,      tlb_d.misses,     tlb_d.hitsSmall,
            tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
            tlb_d.fills,     tlb_d.evictions,  tlb_d.invalidations,
            pol_d.refsSmall, pol_d.refsLarge,  pol_d.promotions,
            pol_d.demotions};
        std::vector<double> values = {
            tlb_d.missRatio(),
            instr_d == 0 ? 0.0
                         : static_cast<double>(tlb_d.misses) /
                               static_cast<double>(instr_d),
            pol_d.largeFraction()};
        if (cell.wset)
            values.push_back(
                static_cast<double>(cell.wset->currentBytes()));
        if (ledger) {
            values.push_back(static_cast<double>(
                cell.tlb.reachSnapshot().reachBytes));
            values.push_back(ledger->reachUtilization());
        }
        if (cell.physModel) {
            const phys::PhysCounters phys_d =
                cell.physModel->counters().deltaSince(cell.tsPrevPhys);
            counters.insert(counters.end(),
                            {phys_d.framesAllocated,
                             phys_d.superpageFailures,
                             phys_d.promotionsInPlace,
                             phys_d.promotionsCopied,
                             phys_d.pagesCopied});
            const phys::FragSnapshot snap = cell.physModel->snapshot();
            values.push_back(snap.fragIndex);
            values.push_back(static_cast<double>(snap.freeBytes));
            cell.tsPrevPhys = cell.physModel->counters();
        }
        cell.ts->endInterval(ts_last_close, refs_d, std::move(counters),
                             std::move(values));
        cell.tsPrevTlb = cell.tlb.stats();
    };
    auto closeAll = [&] {
        for (auto &cell : cells)
            if (cell->ts)
                closeCell(*cell);
        ts_prev_policy = policy.stats();
        ts_prev_instructions = instructions;
        ts_last_close = measured_refs;
    };

    // Replay one chunk into one cell: apply the recorded policy events
    // at their reference index, probe every event-free segment in one
    // batched call, then run the per-reference miss work (which never
    // touches the TLB, so running it after the segment's probes
    // preserves per-ref semantics).
    auto replayChunk = [&](Cell &cell, std::size_t got,
                           std::uint64_t base_measured,
                           bool measuring) {
        // Cell-side promote/demote events: streams are serialized
        // independently, so appending them chunk-at-a-time preserves
        // byte-identity with the per-ref engine (within-stream order
        // and timestamps match; cross-stream interleaving is not part
        // of the format).
        if (cell.events) {
            for (const LifeEvent &life : recorder.lifeEvents) {
                cell.events->emit(
                    life.promote ? cell.evPromote : cell.evDemote,
                    measuring ? base_measured + life.index + 1 : 0,
                    life.chunk, life.fromLog2, life.toLog2);
            }
        }
        std::size_t ev = 0;
        std::size_t seg = 0;
        while (seg < got) {
            if (cell.events)
                event_now = measuring ? base_measured + seg + 1 : 0;
            while (ev < recorder.events.size() &&
                   recorder.events[ev].index == seg) {
                const PolicyEvent &event = recorder.events[ev];
                if (event.kind == PolicyEvent::Kind::Invalidate)
                    cell.sink->invalidatePage(event.page);
                else
                    cell.sink->onChunkRemap(event.chunkNumber,
                                            event.toLarge);
                ++ev;
            }
            const std::size_t seg_end =
                ev < recorder.events.size()
                    ? recorder.events[ev].index
                    : got;
            cell.tlb.lookupBatch(brefs.data() + seg, seg_end - seg,
                                 probe_result);
            if (cell.missWork) {
                for (std::size_t i = seg; i < seg_end; ++i) {
                    const bool hit = probe_result.hit[i - seg] != 0;
                    const PageId &page = brefs[i].page;
                    if (!hit && cell.physModel) {
                        // Every first access to a page identity is a
                        // cold TLB miss, so backing work is observed
                        // here without taxing the hit path.
                        if (cell.events)
                            event_now =
                                measuring ? base_measured + i + 1 : 0;
                        cell.physModel->touch(page.vpn, page.sizeLog2);
                    }
                    if (!hit && cell.addressSpace) {
                        if (two_sizes)
                            cell.addressSpace->handleMiss(
                                page, ProbeOrder::SmallFirst);
                        else
                            cell.addressSpace->handleMissSingleSize(
                                page);
                    }
                    if (cell.wset)
                        cell.wset->observe(page);
                    if (cell.sampleMisses && !hit) {
                        // Same seen-at-miss bookkeeping as the
                        // per-ref engine (see runPerRef for why
                        // membership at miss time matches a
                        // per-access set).
                        const bool first =
                            cell.seenPages.insert(page).second;
                        if (measuring) {
                            obs::MissCause cause;
                            if (cell.shotDown.erase(page) != 0)
                                cause = obs::MissCause::Shootdown;
                            else if (first)
                                cause = obs::MissCause::Cold;
                            else
                                cause = obs::MissCause::Capacity;
                            cell.ts->offerMiss(base_measured + i + 1,
                                               page.vpn, page.sizeLog2,
                                               cause);
                        } else {
                            cell.shotDown.erase(page);
                        }
                    }
                }
            }
            seg = seg_end;
        }
    };

    for (;;) {
        std::size_t want = options.chunkRefs;
        if (options.maxRefs != 0) {
            const std::uint64_t remaining = options.maxRefs - now;
            if (remaining == 0)
                break;
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, remaining));
        }
        // Never cross the warmup boundary: stats reset there.
        if (options.warmupRefs != 0 && now < options.warmupRefs)
            want = static_cast<std::size_t>(std::min<std::uint64_t>(
                want, options.warmupRefs - now));
        const bool measuring = now >= options.warmupRefs;
        // Never cross an interval close: counters are read there.
        if (interval_refs != 0 && measuring)
            want = static_cast<std::size_t>(std::min<std::uint64_t>(
                want,
                ts_last_close + interval_refs - measured_refs));
        const std::size_t got = trace.fill(refs.data(), want);
        if (got == 0)
            break;
        ++harness_chunks;
        if (want < options.chunkRefs)
            ++harness_splits; // truncated at warmup/interval/maxRefs
        obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
        if (options.warmupRefs != 0 && now == options.warmupRefs) {
            // Warmup ends: zero the counters, keep the state.
            for (auto &cell : cells) {
                cell->tlb.resetStats();
                if (cell->physModel)
                    cell->physModel->resetCounters();
            }
            policy.resetStats();
            if (ledger)
                ledger->resetStats(measured_refs);
            instructions = 0;
        }

        // Phase 1: classify the chunk once, recording side effects.
        // The loop is specialized per concrete policy so classify
        // inlines (the virtual call per reference was a measurable
        // share of the replay cost).
        const RefTime base_now = now;
        recorder.events.clear();
        recorder.lifeEvents.clear();
        std::uint64_t chunk_instr = 0;
        if (policy1 != nullptr) {
            // A single-size policy never emits events.
            for (std::size_t i = 0; i < got; ++i) {
                const MemRef &ref = refs[i];
                if (ref.type == RefType::Ifetch)
                    ++chunk_instr;
                brefs[i].page = policy1->SingleSizePolicy::classify(
                    ref.vaddr, base_now + i + 1);
                brefs[i].vaddr = ref.vaddr;
            }
        } else if (policy2 != nullptr) {
            for (std::size_t i = 0; i < got; ++i) {
                const MemRef &ref = refs[i];
                if (ref.type == RefType::Ifetch)
                    ++chunk_instr;
                recorder.index = static_cast<std::uint32_t>(i);
                brefs[i].page =
                    policy2->classifyFast(ref.vaddr, base_now + i + 1);
                brefs[i].vaddr = ref.vaddr;
            }
        } else {
            for (std::size_t i = 0; i < got; ++i) {
                const MemRef &ref = refs[i];
                if (ref.type == RefType::Ifetch)
                    ++chunk_instr;
                recorder.index = static_cast<std::uint32_t>(i);
                brefs[i].page =
                    policy.classify(ref.vaddr, base_now + i + 1);
                brefs[i].vaddr = ref.vaddr;
            }
        }
        instructions += chunk_instr;

        // Phase 1.5: fold the chunk's promote/demote and reference
        // streams into the pass-shared ledger, in the per-ref
        // interleaving (the events of classify(i) land before the
        // touch of reference i, at its measured index).
        if (ledger) {
            std::size_t le = 0;
            for (std::size_t i = 0; i < got; ++i) {
                while (le < recorder.lifeEvents.size() &&
                       recorder.lifeEvents[le].index == i) {
                    const LifeEvent &life = recorder.lifeEvents[le];
                    const RefTime t =
                        measuring ? measured_refs + i + 1 : 0;
                    if (life.promote)
                        ledger->onPromote(t, life.chunk, life.fromLog2,
                                          life.toLog2);
                    else
                        ledger->onDemote(t, life.chunk, life.fromLog2,
                                         life.toLog2);
                    ++le;
                }
                ledger->touch(refs[i].vaddr);
            }
        }

        // Phase 2: replay the classified chunk into every cell.
        for (auto &cell : cells)
            replayChunk(*cell, got, measured_refs, measuring);

        now += got;
        if (measuring)
            measured_refs += got;
        if (interval_refs != 0 && measuring &&
            measured_refs - ts_last_close == interval_refs)
            closeAll();
    }
    policy.setInvalidationSink(nullptr);
    if (lifecycle_on)
        policy.setLifecycleSink(nullptr);
    for (auto &cell : cells)
        if (cell->events) // the TLBs outlive their recorders
            cell->tlb.setEventSink(nullptr, "");

    // Flush the final partial interval so per-interval sums equal the
    // whole-run aggregates exactly.
    if (interval_refs != 0 && measured_refs > ts_last_close)
        closeAll();

    // Close the pass-shared ledger once; every cell's result carries
    // the same summary (lifecycle state is policy state).
    std::uint64_t reach_open_bytes = 0;
    double reach_utilization = 0.0;
    LifecycleSummary lifecycle_summary;
    if (ledger) {
        reach_open_bytes = ledger->openReachBytes();
        reach_utilization = ledger->reachUtilization();
        lifecycle_summary = ledger->finish(measured_refs);
    }

    // One wall clock for the whole pass: cells execute interleaved, so
    // per-cell attribution of shared-pass time would be fiction.
    const double harness_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      harness_start)
            .count();

    std::vector<ExperimentResult> results;
    results.reserve(cells.size());
    for (auto &cell_ptr : cells) {
        Cell &cell = *cell_ptr;
        ExperimentResult result;
        result.workload = trace.name();
        result.tlbName = cell.tlb.name();
        result.policyName = policy.name();
        if (cell.ts) {
            auto series = std::make_shared<obs::TimeSeries>(
                cell.ts->finish(result.workload, result.tlbName,
                                result.policyName));
            result.timeseries = series;
            if (obs::TimeSeriesSink *global =
                    obs::TimeSeriesSink::global())
                global->add(*series);
        }
        result.refs = measured_refs;
        result.instructions = instructions;
        result.tlb = cell.tlb.stats();
        result.policy = policy.stats();
        result.cpiTlb =
            options.cpi.cpiTlb(result.tlb, result.policy, instructions,
                               two_sizes, cell.probe);
        result.mpi = instructions == 0
                         ? 0.0
                         : static_cast<double>(result.tlb.misses) /
                               static_cast<double>(instructions);
        result.missRatio = result.tlb.missRatio();
        result.rpi = instructions == 0
                         ? 0.0
                         : static_cast<double>(measured_refs) /
                               static_cast<double>(instructions);
        if (cell.wset) {
            result.avgWsBytes = cell.wset->averageBytes();
            result.wsTracked = true;
        }
        if (ledger) {
            result.lifecycleTracked = true;
            result.lifecycle = lifecycle_summary;
            result.reachOpenBytes = reach_open_bytes;
            result.reachUtilization = reach_utilization;
            result.reach = cell.tlb.reachSnapshot();
        }
        if (cell.events) {
            auto log = std::make_shared<obs::EventLog>(
                cell.events->finish(result.workload, result.tlbName,
                                    result.policyName));
            result.events = log;
            if (obs::EventLogSink *global =
                    obs::EventLogSink::global())
                global->add(*log);
        }
        if (cell.addressSpace) {
            result.pageTablesModeled = true;
            result.measuredMissCycles =
                cell.addressSpace->averageMissCycles();
            result.cpiTlbMeasured =
                instructions == 0
                    ? 0.0
                    : static_cast<double>(result.tlb.misses) *
                          result.measuredMissCycles /
                          static_cast<double>(instructions);
        }
        if (cell.physModel) {
            result.physModeled = true;
            result.phys = cell.physModel->counters();
            result.physFrag = cell.physModel->snapshot();
            result.cpiPhys =
                result.cpiTlb +
                (instructions == 0
                     ? 0.0
                     : static_cast<double>(result.phys.pagesCopied) *
                           cell.physModel->config().copyCyclesPerPage /
                           static_cast<double>(instructions));
        }
        if (options.harnessStats) {
            result.harnessMeasured = true;
            result.harness.wallSeconds = harness_wall;
            // Replayed refs include warmup — that's real wall time.
            result.harness.refsPerSec =
                harness_wall > 0.0
                    ? static_cast<double>(now) / harness_wall
                    : 0.0;
            result.harness.chunks = harness_chunks;
            result.harness.chunkSplits = harness_splits;
            const ProbeCacheCounters pc = cell.tlb.probeCacheCounters();
            result.harness.probeCacheLookups = pc.lookups;
            result.harness.probeCacheHits = pc.hits;
        }
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace

ExperimentResult
runExperiment(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
              const RunOptions &options, ProbeStrategy probe)
{
    if (options.exec == ExecMode::PerRef)
        return runPerRef(trace, policy, tlb, options, probe);
    std::vector<BatchCellSetup> one(1);
    one[0].tlb = &tlb;
    one[0].probe = probe;
    std::vector<ExperimentResult> results =
        runBatchedCells(trace, policy, one, options);
    return std::move(results.front());
}

ExperimentResult
runExperiment(TraceSource &trace, const PolicySpec &policy_spec,
              const TlbConfig &tlb_config, const RunOptions &options)
{
    auto policy = policy_spec.instantiate();
    auto tlb = makeTlb(tlb_config);
    return runExperiment(trace, *policy, *tlb, options,
                         tlb_config.probe);
}

std::vector<ExperimentResult>
runSharedPass(TraceSource &trace, const PolicySpec &policy_spec,
              const std::vector<TlbConfig> &tlb_configs,
              const RunOptions &options)
{
    if (tlb_configs.empty())
        return {};
    auto policy = policy_spec.instantiate();
    std::vector<std::unique_ptr<Tlb>> tlbs;
    std::vector<BatchCellSetup> setups(tlb_configs.size());
    tlbs.reserve(tlb_configs.size());
    for (std::size_t i = 0; i < tlb_configs.size(); ++i) {
        tlbs.push_back(makeTlb(tlb_configs[i]));
        setups[i].tlb = tlbs.back().get();
        setups[i].probe = tlb_configs[i].probe;
    }
    return runBatchedCells(trace, *policy, setups, options);
}

} // namespace tps::core
