#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "core/experiment_detail.h"
#include "core/experiment_session.h"
#include "obs/trace_profiler.h"
#include "util/logging.h"
#include "vm/multi_size_policy.h"
#include "vm/page_table.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

void
ExperimentResult::exportTo(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addText(prefix + ".workload", workload);
    registry.addText(prefix + ".tlb_name", tlbName);
    registry.addText(prefix + ".policy_name", policyName);
    registry.addCounter(prefix + ".refs", refs);
    registry.addCounter(prefix + ".instructions", instructions);
    tlb.exportTo(registry, prefix + ".tlb");
    policy.exportTo(registry, prefix + ".policy");
    registry.addValue(prefix + ".cpi_tlb", cpiTlb);
    registry.addValue(prefix + ".mpi", mpi);
    registry.addValue(prefix + ".miss_ratio", missRatio);
    registry.addValue(prefix + ".rpi", rpi);
    // Gate on the feature, not the measured value: a run that tracked
    // the working set and measured 0 bytes must still register the
    // key, or dumps from identical configurations would disagree on
    // their key sets.
    if (wsTracked)
        registry.addValue(prefix + ".avg_ws_bytes", avgWsBytes);
    if (pageTablesModeled) {
        registry.addValue(prefix + ".measured_miss_cycles",
                          measuredMissCycles);
        registry.addValue(prefix + ".cpi_tlb_measured", cpiTlbMeasured);
    }
    if (physModeled) {
        phys.exportTo(registry, prefix + ".phys");
        physFrag.exportTo(registry, prefix + ".phys.frag");
        registry.addValue(prefix + ".cpi_phys", cpiPhys);
    }
    if (lifecycleTracked) {
        lifecycle.exportTo(registry, prefix);
        registry.addValue(prefix + ".reach.tlb_bytes",
                          static_cast<double>(reach.reachBytes));
        registry.addValue(prefix + ".reach.open_bytes",
                          static_cast<double>(reachOpenBytes));
        registry.addValue(prefix + ".reach.utilization",
                          reachUtilization);
        registry.addCounter(prefix + ".reach.sets", reach.sets);
        registry.addCounter(prefix + ".reach.full_sets",
                            reach.fullSets);
        registry.addHistogram(prefix + ".reach.set_occupancy",
                              reach.setOccupancy);
    }
    if (walkModeled) {
        walk.exportTo(registry, prefix + ".walk");
        registry.addValue(prefix + ".cpi_walk", cpiWalk);
    }
    if (victimModeled) {
        registry.addCounter(prefix + ".walk.victim_primary_hits",
                            victim.primaryHits);
        registry.addCounter(prefix + ".walk.victim_hits",
                            victim.victimHits);
        registry.addCounter(prefix + ".walk.victim_fills",
                            victim.victimFills);
        registry.addCounter(prefix + ".walk.victim_evictions",
                            victim.victimEvictions);
        registry.addCounter(prefix + ".walk.victim_invalidations",
                            victim.victimInvalidations);
        // Rescue rate: primary misses the array resurrected.
        const std::uint64_t primary_misses =
            victim.victimHits + tlb.misses;
        registry.addValue(prefix + ".walk.victim_hit_rate",
                          primary_misses == 0
                              ? 0.0
                              : static_cast<double>(victim.victimHits) /
                                    static_cast<double>(primary_misses));
    }
    if (harnessMeasured) {
        registry.addValue(prefix + ".harness.wall_seconds",
                          harness.wallSeconds);
        registry.addValue(prefix + ".harness.refs_per_sec",
                          harness.refsPerSec);
        registry.addCounter(prefix + ".harness.chunks", harness.chunks);
        registry.addCounter(prefix + ".harness.chunk_splits",
                            harness.chunkSplits);
        registry.addCounter(prefix + ".harness.probe_cache_lookups",
                            harness.probeCacheLookups);
        registry.addCounter(prefix + ".harness.probe_cache_hits",
                            harness.probeCacheHits);
        registry.addValue(prefix + ".harness.probe_cache_hit_rate",
                          harness.probeCacheLookups == 0
                              ? 0.0
                              : static_cast<double>(harness.probeCacheHits) /
                                    static_cast<double>(
                                        harness.probeCacheLookups));
    }
}

PolicySpec
PolicySpec::single(unsigned size_log2)
{
    PolicySpec spec;
    spec.kind = Kind::Single;
    spec.singleLog2 = size_log2;
    return spec;
}

PolicySpec
PolicySpec::twoSizes(const TwoSizeConfig &config)
{
    PolicySpec spec;
    spec.kind = Kind::TwoSize;
    spec.twoSize = config;
    return spec;
}

std::unique_ptr<PageSizePolicy>
PolicySpec::instantiate() const
{
    switch (kind) {
      case Kind::Single:
        return std::make_unique<SingleSizePolicy>(singleLog2);
      case Kind::TwoSize:
        return std::make_unique<TwoSizePolicy>(twoSize);
    }
    tps_panic("unreachable policy kind");
}

bool
operator==(const PolicySpec &a, const PolicySpec &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case PolicySpec::Kind::Single:
        return a.singleLog2 == b.singleLog2;
      case PolicySpec::Kind::TwoSize:
        return a.twoSize == b.twoSize;
    }
    tps_panic("unreachable policy kind");
}

namespace detail
{

// Column names of the interval telemetry (order matters: the recorder
// stores rows positionally against these lists).  Shared with the
// multiprogrammed driver (core/multiprog.cc) so merged cells carry
// the same base columns as single-process cells.
const std::vector<std::string> kTsCounterNames = {
    "refs",           "instructions",   "tlb_access",
    "tlb_hit",        "tlb_miss",       "tlb_hit_small",
    "tlb_hit_large",  "tlb_miss_small", "tlb_miss_large",
    "tlb_fill",       "tlb_eviction",   "tlb_invalidation",
    "refs_small",     "refs_large",     "promotions",
    "demotions",
};

const std::vector<std::string> kTsValueNames = {
    "miss_rate",
    "mpi",
    "large_fraction",
};

// Extra columns recorded when the physical memory model is on (like
// ws_bytes, the lists grow only with the features in play so output
// without the model is unchanged byte for byte).
const std::vector<std::string> kTsPhysCounterNames = {
    "phys_frames_alloc",    "phys_superpage_fail",
    "phys_promos_in_place", "phys_promos_copied",
    "phys_pages_copied",
};

const std::vector<std::string> kTsPhysValueNames = {
    "frag_index",
    "phys_free_bytes",
};

} // namespace detail

namespace
{

using detail::emplaceAddressSpace;
using detail::emplaceTsRecorder;
using detail::LifecycleTee;
using detail::registerDemoteStream;
using detail::registerPromoteStream;
using detail::registerShootdownStream;
using detail::resolveEventsConfig;
using detail::resolveLifecycleConfig;
using detail::resolvePhysConfig;
using detail::resolveTsConfig;
using detail::SinkTee;

/**
 * The reference-at-a-time engine (ExecMode::PerRef): the oracle the
 * batched engine is held bit-identical to by the perf equivalence
 * tests (tests/perf/).
 */
ExperimentResult
runPerRef(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
          const RunOptions &options, ProbeStrategy probe)
{
    trace.reset();
    policy.reset();
    tlb.reset();

    const bool two_sizes = policy.isMultiSize();

    std::optional<WindowedWorkingSet> wset;
    if (options.wsWindow != 0)
        wset.emplace(options.wsWindow);

    std::optional<AddressSpace> address_space;
    if (options.modelPageTables)
        emplaceAddressSpace(address_space, policy);

    std::optional<phys::MemoryModel> phys_model;
    if (options.phys.enabled()) {
        phys_model.emplace(resolvePhysConfig(options.phys, policy));
        if (address_space)
            address_space->setAllocator(&*phys_model);
    }

    std::optional<walk::PageWalker> walker;
    if (options.walk.enabled)
        walker.emplace(options.walk);

    // Interval telemetry: a per-cell recorder fed with counter deltas
    // every intervalRefs measured references.
    const obs::TimeSeriesConfig ts_config = resolveTsConfig(options);
    const obs::EventLogConfig events_config =
        resolveEventsConfig(options);
    const bool lifecycle_on =
        options.lifecycle || events_config.enabled();
    std::optional<obs::TimeSeriesRecorder> ts;
    if (ts_config.enabled())
        emplaceTsRecorder(ts, ts_config, wset.has_value(),
                          lifecycle_on, phys_model.has_value(),
                          walker.has_value());
    const bool sample_misses = ts && ts->samplingMisses();
    // Miss-cause attribution (sampling only): every page identity ever
    // accessed, and identities invalidated since their last access.
    std::unordered_set<PageId, PageIdHash> seen_pages;
    std::unordered_set<PageId, PageIdHash> shot_down;

    SinkTee sink(tlb, address_space ? &*address_space : nullptr,
                 phys_model ? &*phys_model : nullptr,
                 sample_misses ? &shot_down : nullptr);
    policy.setInvalidationSink(&sink);

    ExperimentResult result;
    result.workload = trace.name();
    result.tlbName = tlb.name();
    result.policyName = policy.name();

    if (options.warmupRefs != 0 && options.maxRefs != 0 &&
        options.warmupRefs >= options.maxRefs) {
        tps_fatal("warmupRefs (", options.warmupRefs,
                  ") must be below maxRefs (", options.maxRefs, ")");
    }

    // Drain the source in batches through TraceSource::fill() rather
    // than one virtual next() per reference; the chunk lives on the
    // stack so the hot loop reads refs out of L1.  With --trace-out,
    // every chunk becomes one span on the worker's timeline (~2 clock
    // reads per 4096 refs; the null check is all it costs otherwise).
    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    constexpr std::size_t kReplayBatch = 4096;
    MemRef batch[kReplayBatch];
    RefTime now = 0;
    std::uint64_t instructions = 0;
    std::uint64_t measured_refs = 0;

    // Lifecycle ledger and event log, both timestamped from
    // measured_refs (0 during warmup), which the batched engine
    // reproduces exactly as base_measured + index + 1.
    std::optional<LifecycleLedger> ledger;
    if (lifecycle_on)
        ledger.emplace(resolveLifecycleConfig(policy));
    std::optional<obs::EventLogRecorder> events;
    std::optional<LifecycleTee> life_tee;
    if (events_config.enabled() || ledger) {
        std::size_t promote_stream = 0;
        std::size_t demote_stream = 0;
        if (events_config.enabled()) {
            events.emplace(events_config);
            promote_stream = registerPromoteStream(*events);
            demote_stream = registerDemoteStream(*events);
            sink.setEventSink(&*events,
                              registerShootdownStream(*events),
                              &measured_refs);
            tlb.setEventSink(&*events, "");
            if (phys_model)
                phys_model->setEventSink(&*events, &measured_refs);
        }
        life_tee.emplace(&measured_refs, ledger ? &*ledger : nullptr,
                         events ? &*events : nullptr, promote_stream,
                         demote_stream);
        policy.setLifecycleSink(&*life_tee);
    }

    // Snapshots at the last interval close (all-zero at the warmup
    // boundary, where the stats themselves are reset); sums of the
    // recorded deltas therefore reproduce the aggregates exactly.
    TlbStats ts_prev_tlb;
    PolicyStats ts_prev_policy;
    phys::PhysCounters ts_prev_phys;
    walk::WalkStats ts_prev_walk;
    std::uint64_t ts_prev_instructions = 0;
    std::uint64_t ts_last_close = 0;
    auto closeInterval = [&] {
        const TlbStats tlb_d = tlb.stats().deltaSince(ts_prev_tlb);
        const PolicyStats pol_d =
            policy.stats().deltaSince(ts_prev_policy);
        const std::uint64_t refs_d = measured_refs - ts_last_close;
        const std::uint64_t instr_d = instructions - ts_prev_instructions;
        std::vector<std::uint64_t> counters = {
            refs_d,          instr_d,          tlb_d.accesses,
            tlb_d.hits,      tlb_d.misses,     tlb_d.hitsSmall,
            tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
            tlb_d.fills,     tlb_d.evictions,  tlb_d.invalidations,
            pol_d.refsSmall, pol_d.refsLarge,  pol_d.promotions,
            pol_d.demotions};
        std::vector<double> values = {
            tlb_d.missRatio(),
            instr_d == 0 ? 0.0
                         : static_cast<double>(tlb_d.misses) /
                               static_cast<double>(instr_d),
            pol_d.largeFraction()};
        if (wset)
            values.push_back(
                static_cast<double>(wset->currentBytes()));
        if (ledger) {
            values.push_back(static_cast<double>(
                tlb.reachSnapshot().reachBytes));
            values.push_back(ledger->reachUtilization());
        }
        if (phys_model) {
            const phys::PhysCounters phys_d =
                phys_model->counters().deltaSince(ts_prev_phys);
            counters.insert(counters.end(),
                            {phys_d.framesAllocated,
                             phys_d.superpageFailures,
                             phys_d.promotionsInPlace,
                             phys_d.promotionsCopied,
                             phys_d.pagesCopied});
            const phys::FragSnapshot snap = phys_model->snapshot();
            values.push_back(snap.fragIndex);
            values.push_back(static_cast<double>(snap.freeBytes));
            ts_prev_phys = phys_model->counters();
        }
        if (walker) {
            const walk::WalkStats walk_d =
                walker->stats().deltaSince(ts_prev_walk);
            counters.push_back(walk_d.levelAccesses);
            values.push_back(walk_d.pwcHitRate());
            ts_prev_walk = walker->stats();
        }
        ts->endInterval(ts_last_close, refs_d, std::move(counters),
                        std::move(values));
        ts_prev_tlb = tlb.stats();
        ts_prev_policy = policy.stats();
        ts_prev_instructions = instructions;
        ts_last_close = measured_refs;
    };

    for (;;) {
        std::size_t want = kReplayBatch;
        if (options.maxRefs != 0) {
            const std::uint64_t remaining = options.maxRefs - now;
            if (remaining == 0)
                break;
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, remaining));
        }
        const std::size_t got = trace.fill(batch, want);
        if (got == 0)
            break;
        obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = batch[i];
            ++now;
            if (now == options.warmupRefs + 1 &&
                options.warmupRefs != 0) {
                // Warmup ends: zero the counters, keep the state.
                tlb.resetStats();
                policy.resetStats();
                if (phys_model)
                    phys_model->resetCounters();
                if (walker)
                    walker->resetStats();
                if (ledger)
                    ledger->resetStats(measured_refs);
                instructions = 0;
            }
            if (now > options.warmupRefs)
                ++measured_refs;
            if (ref.type == RefType::Ifetch)
                ++instructions;
            const PageId page = policy.classify(ref.vaddr, now);
            if (ledger)
                ledger->touch(ref.vaddr);
            const bool hit = tlb.access(page, ref.vaddr);
            if (!hit && phys_model) {
                // Every first access to a page identity is a cold TLB
                // miss, so backing work is observed here without
                // taxing the hit path.
                phys_model->touch(page.vpn, page.sizeLog2);
            }
            if (!hit && address_space) {
                if (two_sizes)
                    address_space->handleMiss(page,
                                              ProbeOrder::SmallFirst);
                else
                    address_space->handleMissSingleSize(page);
            }
            if (!hit && walker)
                walker->walk(ref.vaddr, page.sizeLog2);
            if (wset)
                wset->observe(page);
            if (ts) {
                if (sample_misses && !hit) {
                    // Seen-set updates only at misses: a hit implies
                    // an earlier fill of the same page identity,
                    // which implies an earlier (inserted) miss — so
                    // membership at miss time matches a per-access
                    // set, without hashing on the hit path.  Warmup
                    // misses insert too, so a post-warmup re-miss on
                    // a warmed page is not misattributed as cold.
                    const bool first =
                        seen_pages.insert(page).second;
                    if (now > options.warmupRefs) {
                        obs::MissCause cause;
                        if (shot_down.erase(page) != 0)
                            cause = obs::MissCause::Shootdown;
                        else if (first)
                            cause = obs::MissCause::Cold;
                        else
                            cause = obs::MissCause::Capacity;
                        ts->offerMiss(measured_refs, page.vpn,
                                      page.sizeLog2, cause);
                    } else {
                        shot_down.erase(page);
                    }
                }
                if (now > options.warmupRefs &&
                    measured_refs - ts_last_close ==
                        ts->intervalRefs()) {
                    closeInterval();
                }
            }
        }
    }
    policy.setInvalidationSink(nullptr);
    policy.setLifecycleSink(nullptr);
    if (events) {
        // The TLB outlives this run; the recorder does not.
        tlb.setEventSink(nullptr, "");
        if (phys_model)
            phys_model->setEventSink(nullptr, nullptr);
    }

    if (ts) {
        // Flush the final partial interval so per-interval sums equal
        // the whole-run aggregates exactly.
        if (measured_refs > ts_last_close)
            closeInterval();
        auto series = std::make_shared<obs::TimeSeries>(
            ts->finish(result.workload, result.tlbName,
                       result.policyName));
        result.timeseries = series;
        if (obs::TimeSeriesSink *global = obs::TimeSeriesSink::global())
            global->add(*series);
    }

    result.refs = measured_refs;
    result.instructions = instructions;
    result.tlb = tlb.stats();
    result.policy = policy.stats();
    result.cpiTlb = options.cpi.cpiTlb(result.tlb, result.policy,
                                       instructions, two_sizes, probe);
    result.mpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(result.tlb.misses) /
                           static_cast<double>(instructions);
    result.missRatio = result.tlb.missRatio();
    result.rpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(measured_refs) /
                           static_cast<double>(instructions);
    if (wset) {
        result.avgWsBytes = wset->averageBytes();
        result.wsTracked = true;
    }
    if (ledger) {
        result.lifecycleTracked = true;
        // End-of-run reach state, read before finish() closes the
        // open episodes.
        result.reachOpenBytes = ledger->openReachBytes();
        result.reachUtilization = ledger->reachUtilization();
        result.lifecycle = ledger->finish(measured_refs);
        result.reach = tlb.reachSnapshot();
    }
    if (events) {
        auto log = std::make_shared<obs::EventLog>(events->finish(
            result.workload, result.tlbName, result.policyName));
        result.events = log;
        if (obs::EventLogSink *global = obs::EventLogSink::global())
            global->add(*log);
    }
    if (address_space) {
        result.pageTablesModeled = true;
        result.measuredMissCycles = address_space->averageMissCycles();
        result.cpiTlbMeasured =
            instructions == 0
                ? 0.0
                : static_cast<double>(result.tlb.misses) *
                      result.measuredMissCycles /
                      static_cast<double>(instructions);
    }
    if (phys_model) {
        result.physModeled = true;
        result.phys = phys_model->counters();
        result.physFrag = phys_model->snapshot();
        result.cpiPhys =
            result.cpiTlb +
            (instructions == 0
                 ? 0.0
                 : static_cast<double>(result.phys.pagesCopied) *
                       phys_model->config().copyCyclesPerPage /
                       static_cast<double>(instructions));
    }
    if (walker) {
        result.walkModeled = true;
        result.walk = walker->stats();
        result.cpiWalk =
            instructions == 0
                ? 0.0
                : static_cast<double>(result.walk.cycles) /
                      static_cast<double>(instructions);
    }
    if (const auto *victim = dynamic_cast<const VictimTlb *>(&tlb)) {
        result.victimModeled = true;
        result.victim = victim->victimStats();
    }
    return result;
}

/**
 * The run-to-completion wrapper over the resumable engine: construct
 * a session, step it dry, collect the results.  Bit-identity with the
 * old in-line loop is structural — the session runs the identical
 * code, one chunk per step().
 */
std::vector<ExperimentResult>
runBatchedCells(TraceSource &trace, PageSizePolicy &policy,
                std::vector<SessionCell> cells,
                const RunOptions &options)
{
    ExperimentSession session(trace, policy, std::move(cells), options);
    while (session.step()) {
    }
    return session.finish();
}

} // namespace

ExperimentResult
runExperiment(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
              const RunOptions &options, ProbeStrategy probe)
{
    if (options.exec == ExecMode::PerRef)
        return runPerRef(trace, policy, tlb, options, probe);
    std::vector<SessionCell> one(1);
    one[0].tlb = &tlb;
    one[0].probe = probe;
    std::vector<ExperimentResult> results =
        runBatchedCells(trace, policy, std::move(one), options);
    return std::move(results.front());
}

ExperimentResult
runExperiment(TraceSource &trace, const PolicySpec &policy_spec,
              const TlbConfig &tlb_config, const RunOptions &options)
{
    auto policy = policy_spec.instantiate();
    auto tlb = makeTlb(tlb_config);
    return runExperiment(trace, *policy, *tlb, options,
                         tlb_config.probe);
}

std::vector<ExperimentResult>
runSharedPass(TraceSource &trace, const PolicySpec &policy_spec,
              const std::vector<TlbConfig> &tlb_configs,
              const RunOptions &options)
{
    if (tlb_configs.empty())
        return {};
    auto policy = policy_spec.instantiate();
    std::vector<std::unique_ptr<Tlb>> tlbs;
    std::vector<SessionCell> cells(tlb_configs.size());
    tlbs.reserve(tlb_configs.size());
    for (std::size_t i = 0; i < tlb_configs.size(); ++i) {
        tlbs.push_back(makeTlb(tlb_configs[i]));
        cells[i].tlb = tlbs.back().get();
        cells[i].probe = tlb_configs[i].probe;
    }
    return runBatchedCells(trace, *policy, std::move(cells), options);
}

} // namespace tps::core
