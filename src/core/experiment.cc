#include "core/experiment.h"

#include <algorithm>

#include "obs/trace_profiler.h"
#include "util/logging.h"
#include "vm/page_table.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

void
ExperimentResult::exportTo(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addText(prefix + ".workload", workload);
    registry.addText(prefix + ".tlb_name", tlbName);
    registry.addText(prefix + ".policy_name", policyName);
    registry.addCounter(prefix + ".refs", refs);
    registry.addCounter(prefix + ".instructions", instructions);
    tlb.exportTo(registry, prefix + ".tlb");
    policy.exportTo(registry, prefix + ".policy");
    registry.addValue(prefix + ".cpi_tlb", cpiTlb);
    registry.addValue(prefix + ".mpi", mpi);
    registry.addValue(prefix + ".miss_ratio", missRatio);
    registry.addValue(prefix + ".rpi", rpi);
    if (avgWsBytes != 0.0)
        registry.addValue(prefix + ".avg_ws_bytes", avgWsBytes);
    if (measuredMissCycles != 0.0) {
        registry.addValue(prefix + ".measured_miss_cycles",
                          measuredMissCycles);
        registry.addValue(prefix + ".cpi_tlb_measured", cpiTlbMeasured);
    }
}

PolicySpec
PolicySpec::single(unsigned size_log2)
{
    PolicySpec spec;
    spec.kind = Kind::Single;
    spec.singleLog2 = size_log2;
    return spec;
}

PolicySpec
PolicySpec::twoSizes(const TwoSizeConfig &config)
{
    PolicySpec spec;
    spec.kind = Kind::TwoSize;
    spec.twoSize = config;
    return spec;
}

std::unique_ptr<PageSizePolicy>
PolicySpec::instantiate() const
{
    switch (kind) {
      case Kind::Single:
        return std::make_unique<SingleSizePolicy>(singleLog2);
      case Kind::TwoSize:
        return std::make_unique<TwoSizePolicy>(twoSize);
    }
    tps_panic("unreachable policy kind");
}

namespace
{

/**
 * Fans invalidation events out to the TLB and, optionally, mirrors
 * chunk remaps into the modeled page tables.
 */
class SinkTee : public InvalidationSink
{
  public:
    SinkTee(Tlb &tlb, AddressSpace *address_space)
        : tlb_(tlb), address_space_(address_space)
    {
    }

    void
    invalidatePage(const PageId &page) override
    {
        tlb_.invalidatePage(page);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        if (address_space_ != nullptr)
            address_space_->remapChunk(chunk_number, to_large);
    }

  private:
    Tlb &tlb_;
    AddressSpace *address_space_;
};

} // namespace

ExperimentResult
runExperiment(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
              const RunOptions &options, ProbeStrategy probe)
{
    trace.reset();
    policy.reset();
    tlb.reset();

    const bool two_sizes = policy.isMultiSize();

    std::optional<WindowedWorkingSet> wset;
    if (options.wsWindow != 0)
        wset.emplace(options.wsWindow);

    std::optional<AddressSpace> address_space;
    if (options.modelPageTables) {
        // Small/large exponents: take them from the policy when it is
        // multi-size; a single-size policy walks only the "small"
        // table, so pair it with an unused larger size.
        if (const auto *policy2 =
                dynamic_cast<const TwoSizePolicy *>(&policy)) {
            address_space.emplace(policy2->config().smallLog2,
                                  policy2->config().largeLog2);
        } else if (const auto *policy1 =
                       dynamic_cast<const SingleSizePolicy *>(
                           &policy)) {
            address_space.emplace(policy1->sizeLog2(),
                                  policy1->sizeLog2() + 3);
        } else {
            tps_fatal("page-table modeling supports single- and "
                      "two-size policies only (got ", policy.name(),
                      ")");
        }
    }

    SinkTee sink(tlb, address_space ? &*address_space : nullptr);
    policy.setInvalidationSink(&sink);

    ExperimentResult result;
    result.workload = trace.name();
    result.tlbName = tlb.name();
    result.policyName = policy.name();

    if (options.warmupRefs != 0 && options.maxRefs != 0 &&
        options.warmupRefs >= options.maxRefs) {
        tps_fatal("warmupRefs (", options.warmupRefs,
                  ") must be below maxRefs (", options.maxRefs, ")");
    }

    // Drain the source in batches through TraceSource::fill() rather
    // than one virtual next() per reference; the chunk lives on the
    // stack so the hot loop reads refs out of L1.  With --trace-out,
    // every chunk becomes one span on the worker's timeline (~2 clock
    // reads per 4096 refs; the null check is all it costs otherwise).
    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    constexpr std::size_t kReplayBatch = 4096;
    MemRef batch[kReplayBatch];
    RefTime now = 0;
    std::uint64_t instructions = 0;
    std::uint64_t measured_refs = 0;
    for (;;) {
        std::size_t want = kReplayBatch;
        if (options.maxRefs != 0) {
            const std::uint64_t remaining = options.maxRefs - now;
            if (remaining == 0)
                break;
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, remaining));
        }
        const std::size_t got = trace.fill(batch, want);
        if (got == 0)
            break;
        obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = batch[i];
            ++now;
            if (now == options.warmupRefs + 1 &&
                options.warmupRefs != 0) {
                // Warmup ends: zero the counters, keep the state.
                tlb.resetStats();
                policy.resetStats();
                instructions = 0;
            }
            if (now > options.warmupRefs)
                ++measured_refs;
            if (ref.type == RefType::Ifetch)
                ++instructions;
            const PageId page = policy.classify(ref.vaddr, now);
            const bool hit = tlb.access(page, ref.vaddr);
            if (!hit && address_space) {
                if (two_sizes)
                    address_space->handleMiss(page,
                                              ProbeOrder::SmallFirst);
                else
                    address_space->handleMissSingleSize(page);
            }
            if (wset)
                wset->observe(page);
        }
    }
    policy.setInvalidationSink(nullptr);

    result.refs = measured_refs;
    result.instructions = instructions;
    result.tlb = tlb.stats();
    result.policy = policy.stats();
    result.cpiTlb = options.cpi.cpiTlb(result.tlb, result.policy,
                                       instructions, two_sizes, probe);
    result.mpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(result.tlb.misses) /
                           static_cast<double>(instructions);
    result.missRatio = result.tlb.missRatio();
    result.rpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(measured_refs) /
                           static_cast<double>(instructions);
    if (wset)
        result.avgWsBytes = wset->averageBytes();
    if (address_space) {
        result.measuredMissCycles = address_space->averageMissCycles();
        result.cpiTlbMeasured =
            instructions == 0
                ? 0.0
                : static_cast<double>(result.tlb.misses) *
                      result.measuredMissCycles /
                      static_cast<double>(instructions);
    }
    return result;
}

ExperimentResult
runExperiment(TraceSource &trace, const PolicySpec &policy_spec,
              const TlbConfig &tlb_config, const RunOptions &options)
{
    auto policy = policy_spec.instantiate();
    auto tlb = makeTlb(tlb_config);
    return runExperiment(trace, *policy, *tlb, options,
                         tlb_config.probe);
}

} // namespace tps::core
