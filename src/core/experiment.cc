#include "core/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "obs/trace_profiler.h"
#include "util/logging.h"
#include "vm/multi_size_policy.h"
#include "vm/page_table.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

void
ExperimentResult::exportTo(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addText(prefix + ".workload", workload);
    registry.addText(prefix + ".tlb_name", tlbName);
    registry.addText(prefix + ".policy_name", policyName);
    registry.addCounter(prefix + ".refs", refs);
    registry.addCounter(prefix + ".instructions", instructions);
    tlb.exportTo(registry, prefix + ".tlb");
    policy.exportTo(registry, prefix + ".policy");
    registry.addValue(prefix + ".cpi_tlb", cpiTlb);
    registry.addValue(prefix + ".mpi", mpi);
    registry.addValue(prefix + ".miss_ratio", missRatio);
    registry.addValue(prefix + ".rpi", rpi);
    // Gate on the feature, not the measured value: a run that tracked
    // the working set and measured 0 bytes must still register the
    // key, or dumps from identical configurations would disagree on
    // their key sets.
    if (wsTracked)
        registry.addValue(prefix + ".avg_ws_bytes", avgWsBytes);
    if (pageTablesModeled) {
        registry.addValue(prefix + ".measured_miss_cycles",
                          measuredMissCycles);
        registry.addValue(prefix + ".cpi_tlb_measured", cpiTlbMeasured);
    }
    if (physModeled) {
        phys.exportTo(registry, prefix + ".phys");
        physFrag.exportTo(registry, prefix + ".phys.frag");
        registry.addValue(prefix + ".cpi_phys", cpiPhys);
    }
}

PolicySpec
PolicySpec::single(unsigned size_log2)
{
    PolicySpec spec;
    spec.kind = Kind::Single;
    spec.singleLog2 = size_log2;
    return spec;
}

PolicySpec
PolicySpec::twoSizes(const TwoSizeConfig &config)
{
    PolicySpec spec;
    spec.kind = Kind::TwoSize;
    spec.twoSize = config;
    return spec;
}

std::unique_ptr<PageSizePolicy>
PolicySpec::instantiate() const
{
    switch (kind) {
      case Kind::Single:
        return std::make_unique<SingleSizePolicy>(singleLog2);
      case Kind::TwoSize:
        return std::make_unique<TwoSizePolicy>(twoSize);
    }
    tps_panic("unreachable policy kind");
}

namespace
{

/**
 * Fans invalidation events out to the TLB and, optionally, mirrors
 * chunk remaps into the modeled page tables.  When the miss-event
 * sampler is on it also remembers shot-down pages so a later re-miss
 * on one can be attributed to the shootdown rather than to capacity.
 */
class SinkTee : public InvalidationSink
{
  public:
    SinkTee(Tlb &tlb, AddressSpace *address_space,
            phys::MemoryModel *phys_model,
            std::unordered_set<PageId, PageIdHash> *shot_down = nullptr)
        : tlb_(tlb), address_space_(address_space),
          phys_model_(phys_model), shot_down_(shot_down)
    {
    }

    void
    invalidatePage(const PageId &page) override
    {
        tlb_.invalidatePage(page);
        if (shot_down_ != nullptr)
            shot_down_->insert(page);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        // Physical backing first: a subsequent page-table remap asks
        // the model for the superpage's pfn.
        if (phys_model_ != nullptr) {
            if (to_large)
                phys_model_->promoteChunk(chunk_number);
            else
                phys_model_->demoteChunk(chunk_number);
        }
        if (address_space_ != nullptr)
            address_space_->remapChunk(chunk_number, to_large);
    }

  private:
    Tlb &tlb_;
    AddressSpace *address_space_;
    phys::MemoryModel *phys_model_;
    std::unordered_set<PageId, PageIdHash> *shot_down_;
};

} // namespace

namespace detail
{

// Column names of the interval telemetry (order matters: the recorder
// stores rows positionally against these lists).  Shared with the
// multiprogrammed driver (core/multiprog.cc) so merged cells carry
// the same base columns as single-process cells.
const std::vector<std::string> kTsCounterNames = {
    "refs",           "instructions",   "tlb_access",
    "tlb_hit",        "tlb_miss",       "tlb_hit_small",
    "tlb_hit_large",  "tlb_miss_small", "tlb_miss_large",
    "tlb_fill",       "tlb_eviction",   "tlb_invalidation",
    "refs_small",     "refs_large",     "promotions",
    "demotions",
};

const std::vector<std::string> kTsValueNames = {
    "miss_rate",
    "mpi",
    "large_fraction",
};

// Extra columns recorded when the physical memory model is on (like
// ws_bytes, the lists grow only with the features in play so output
// without the model is unchanged byte for byte).
const std::vector<std::string> kTsPhysCounterNames = {
    "phys_frames_alloc",    "phys_superpage_fail",
    "phys_promos_in_place", "phys_promos_copied",
    "phys_pages_copied",
};

const std::vector<std::string> kTsPhysValueNames = {
    "frag_index",
    "phys_free_bytes",
};

} // namespace detail

namespace
{
using detail::kTsCounterNames;
using detail::kTsPhysCounterNames;
using detail::kTsPhysValueNames;
using detail::kTsValueNames;
} // namespace

ExperimentResult
runExperiment(TraceSource &trace, PageSizePolicy &policy, Tlb &tlb,
              const RunOptions &options, ProbeStrategy probe)
{
    trace.reset();
    policy.reset();
    tlb.reset();

    const bool two_sizes = policy.isMultiSize();

    std::optional<WindowedWorkingSet> wset;
    if (options.wsWindow != 0)
        wset.emplace(options.wsWindow);

    std::optional<AddressSpace> address_space;
    if (options.modelPageTables) {
        // Small/large exponents: take them from the policy when it is
        // multi-size; a single-size policy walks only the "small"
        // table, so pair it with an unused larger size.
        if (const auto *policy2 =
                dynamic_cast<const TwoSizePolicy *>(&policy)) {
            address_space.emplace(policy2->config().smallLog2,
                                  policy2->config().largeLog2);
        } else if (const auto *policy1 =
                       dynamic_cast<const SingleSizePolicy *>(
                           &policy)) {
            address_space.emplace(policy1->sizeLog2(),
                                  policy1->sizeLog2() + 3);
        } else {
            tps_fatal("page-table modeling supports single- and "
                      "two-size policies only (got ", policy.name(),
                      ")");
        }
    }

    // Physical memory model: frame/superpage exponents follow the
    // policy in play (a single-size policy still gets a superpage
    // ladder above it so fragmentation is measured against something).
    std::optional<phys::MemoryModel> phys_model;
    if (options.phys.enabled()) {
        phys::PhysConfig phys_config = options.phys;
        if (const auto *policy2 =
                dynamic_cast<const TwoSizePolicy *>(&policy)) {
            phys_config.frameLog2 = policy2->config().smallLog2;
            phys_config.superLog2 = policy2->config().largeLog2;
        } else if (const auto *policyn =
                       dynamic_cast<const MultiSizePolicy *>(&policy)) {
            phys_config.frameLog2 = policyn->config().sizeLog2s.at(0);
            phys_config.superLog2 = policyn->config().sizeLog2s.at(1);
        } else if (const auto *policy1 =
                       dynamic_cast<const SingleSizePolicy *>(
                           &policy)) {
            phys_config.frameLog2 = policy1->sizeLog2();
            phys_config.superLog2 = policy1->sizeLog2() + 3;
        }
        phys_model.emplace(phys_config);
        if (address_space)
            address_space->setAllocator(&*phys_model);
    }

    // Interval telemetry: a per-cell recorder fed with counter deltas
    // every intervalRefs measured references.  The ws_bytes column
    // exists only when the working set is tracked, so column lists
    // always describe exactly what was measured.  A process-global
    // sink (--timeseries-out) acts as the default config so every
    // bench records telemetry without plumbing it through its own
    // RunOptions; an explicitly enabled options.timeseries overrides.
    obs::TimeSeriesConfig ts_config = options.timeseries;
    if (!ts_config.enabled()) {
        if (const obs::TimeSeriesSink *sink =
                obs::TimeSeriesSink::global())
            ts_config = sink->config();
    }
    std::optional<obs::TimeSeriesRecorder> ts;
    if (ts_config.enabled()) {
        std::vector<std::string> counter_names = kTsCounterNames;
        std::vector<std::string> value_names = kTsValueNames;
        if (wset)
            value_names.push_back("ws_bytes");
        if (phys_model) {
            counter_names.insert(counter_names.end(),
                                 kTsPhysCounterNames.begin(),
                                 kTsPhysCounterNames.end());
            value_names.insert(value_names.end(),
                               kTsPhysValueNames.begin(),
                               kTsPhysValueNames.end());
        }
        ts.emplace(ts_config, std::move(counter_names),
                   std::move(value_names));
    }
    const bool sample_misses = ts && ts->samplingMisses();
    // Miss-cause attribution (sampling only): every page identity ever
    // accessed, and identities invalidated since their last access.
    std::unordered_set<PageId, PageIdHash> seen_pages;
    std::unordered_set<PageId, PageIdHash> shot_down;

    SinkTee sink(tlb, address_space ? &*address_space : nullptr,
                 phys_model ? &*phys_model : nullptr,
                 sample_misses ? &shot_down : nullptr);
    policy.setInvalidationSink(&sink);

    ExperimentResult result;
    result.workload = trace.name();
    result.tlbName = tlb.name();
    result.policyName = policy.name();

    if (options.warmupRefs != 0 && options.maxRefs != 0 &&
        options.warmupRefs >= options.maxRefs) {
        tps_fatal("warmupRefs (", options.warmupRefs,
                  ") must be below maxRefs (", options.maxRefs, ")");
    }

    // Drain the source in batches through TraceSource::fill() rather
    // than one virtual next() per reference; the chunk lives on the
    // stack so the hot loop reads refs out of L1.  With --trace-out,
    // every chunk becomes one span on the worker's timeline (~2 clock
    // reads per 4096 refs; the null check is all it costs otherwise).
    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    constexpr std::size_t kReplayBatch = 4096;
    MemRef batch[kReplayBatch];
    RefTime now = 0;
    std::uint64_t instructions = 0;
    std::uint64_t measured_refs = 0;

    // Snapshots at the last interval close (all-zero at the warmup
    // boundary, where the stats themselves are reset); sums of the
    // recorded deltas therefore reproduce the aggregates exactly.
    TlbStats ts_prev_tlb;
    PolicyStats ts_prev_policy;
    phys::PhysCounters ts_prev_phys;
    std::uint64_t ts_prev_instructions = 0;
    std::uint64_t ts_last_close = 0;
    auto closeInterval = [&] {
        const TlbStats tlb_d = tlb.stats().deltaSince(ts_prev_tlb);
        const PolicyStats pol_d =
            policy.stats().deltaSince(ts_prev_policy);
        const std::uint64_t refs_d = measured_refs - ts_last_close;
        const std::uint64_t instr_d = instructions - ts_prev_instructions;
        std::vector<std::uint64_t> counters = {
            refs_d,          instr_d,          tlb_d.accesses,
            tlb_d.hits,      tlb_d.misses,     tlb_d.hitsSmall,
            tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
            tlb_d.fills,     tlb_d.evictions,  tlb_d.invalidations,
            pol_d.refsSmall, pol_d.refsLarge,  pol_d.promotions,
            pol_d.demotions};
        std::vector<double> values = {
            tlb_d.missRatio(),
            instr_d == 0 ? 0.0
                         : static_cast<double>(tlb_d.misses) /
                               static_cast<double>(instr_d),
            pol_d.largeFraction()};
        if (wset)
            values.push_back(
                static_cast<double>(wset->currentBytes()));
        if (phys_model) {
            const phys::PhysCounters phys_d =
                phys_model->counters().deltaSince(ts_prev_phys);
            counters.insert(counters.end(),
                            {phys_d.framesAllocated,
                             phys_d.superpageFailures,
                             phys_d.promotionsInPlace,
                             phys_d.promotionsCopied,
                             phys_d.pagesCopied});
            const phys::FragSnapshot snap = phys_model->snapshot();
            values.push_back(snap.fragIndex);
            values.push_back(static_cast<double>(snap.freeBytes));
            ts_prev_phys = phys_model->counters();
        }
        ts->endInterval(ts_last_close, refs_d, std::move(counters),
                        std::move(values));
        ts_prev_tlb = tlb.stats();
        ts_prev_policy = policy.stats();
        ts_prev_instructions = instructions;
        ts_last_close = measured_refs;
    };

    for (;;) {
        std::size_t want = kReplayBatch;
        if (options.maxRefs != 0) {
            const std::uint64_t remaining = options.maxRefs - now;
            if (remaining == 0)
                break;
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, remaining));
        }
        const std::size_t got = trace.fill(batch, want);
        if (got == 0)
            break;
        obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = batch[i];
            ++now;
            if (now == options.warmupRefs + 1 &&
                options.warmupRefs != 0) {
                // Warmup ends: zero the counters, keep the state.
                tlb.resetStats();
                policy.resetStats();
                if (phys_model)
                    phys_model->resetCounters();
                instructions = 0;
            }
            if (now > options.warmupRefs)
                ++measured_refs;
            if (ref.type == RefType::Ifetch)
                ++instructions;
            const PageId page = policy.classify(ref.vaddr, now);
            const bool hit = tlb.access(page, ref.vaddr);
            if (!hit && phys_model) {
                // Every first access to a page identity is a cold TLB
                // miss, so backing work is observed here without
                // taxing the hit path.
                phys_model->touch(page.vpn, page.sizeLog2);
            }
            if (!hit && address_space) {
                if (two_sizes)
                    address_space->handleMiss(page,
                                              ProbeOrder::SmallFirst);
                else
                    address_space->handleMissSingleSize(page);
            }
            if (wset)
                wset->observe(page);
            if (ts) {
                if (sample_misses && !hit) {
                    // Seen-set updates only at misses: a hit implies
                    // an earlier fill of the same page identity,
                    // which implies an earlier (inserted) miss — so
                    // membership at miss time matches a per-access
                    // set, without hashing on the hit path.  Warmup
                    // misses insert too, so a post-warmup re-miss on
                    // a warmed page is not misattributed as cold.
                    const bool first =
                        seen_pages.insert(page).second;
                    if (now > options.warmupRefs) {
                        obs::MissCause cause;
                        if (shot_down.erase(page) != 0)
                            cause = obs::MissCause::Shootdown;
                        else if (first)
                            cause = obs::MissCause::Cold;
                        else
                            cause = obs::MissCause::Capacity;
                        ts->offerMiss(measured_refs, page.vpn,
                                      page.sizeLog2, cause);
                    } else {
                        shot_down.erase(page);
                    }
                }
                if (now > options.warmupRefs &&
                    measured_refs - ts_last_close ==
                        ts->intervalRefs()) {
                    closeInterval();
                }
            }
        }
    }
    policy.setInvalidationSink(nullptr);

    if (ts) {
        // Flush the final partial interval so per-interval sums equal
        // the whole-run aggregates exactly.
        if (measured_refs > ts_last_close)
            closeInterval();
        auto series = std::make_shared<obs::TimeSeries>(
            ts->finish(result.workload, result.tlbName,
                       result.policyName));
        result.timeseries = series;
        if (obs::TimeSeriesSink *global = obs::TimeSeriesSink::global())
            global->add(*series);
    }

    result.refs = measured_refs;
    result.instructions = instructions;
    result.tlb = tlb.stats();
    result.policy = policy.stats();
    result.cpiTlb = options.cpi.cpiTlb(result.tlb, result.policy,
                                       instructions, two_sizes, probe);
    result.mpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(result.tlb.misses) /
                           static_cast<double>(instructions);
    result.missRatio = result.tlb.missRatio();
    result.rpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(measured_refs) /
                           static_cast<double>(instructions);
    if (wset) {
        result.avgWsBytes = wset->averageBytes();
        result.wsTracked = true;
    }
    if (address_space) {
        result.pageTablesModeled = true;
        result.measuredMissCycles = address_space->averageMissCycles();
        result.cpiTlbMeasured =
            instructions == 0
                ? 0.0
                : static_cast<double>(result.tlb.misses) *
                      result.measuredMissCycles /
                      static_cast<double>(instructions);
    }
    if (phys_model) {
        result.physModeled = true;
        result.phys = phys_model->counters();
        result.physFrag = phys_model->snapshot();
        result.cpiPhys =
            result.cpiTlb +
            (instructions == 0
                 ? 0.0
                 : static_cast<double>(result.phys.pagesCopied) *
                       phys_model->config().copyCyclesPerPage /
                       static_cast<double>(instructions));
    }
    return result;
}

ExperimentResult
runExperiment(TraceSource &trace, const PolicySpec &policy_spec,
              const TlbConfig &tlb_config, const RunOptions &options)
{
    auto policy = policy_spec.instantiate();
    auto tlb = makeTlb(tlb_config);
    return runExperiment(trace, *policy, *tlb, options,
                         tlb_config.probe);
}

} // namespace tps::core
