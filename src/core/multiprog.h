/**
 * @file
 * The multiprogrammed experiment driver: several processes — each
 * with its own trace, page-size policy state and page tables — time-
 * share one TLB and one physical memory under a deterministic
 * round-robin scheduler (os/scheduler.h).
 *
 * This is the study the paper could not run (its traces are
 * uniprogrammed; Section 6 names multiprogramming as the main open
 * threat): how much of the two-page-size win survives context
 * switches, ASID pressure and cross-process TLB competition, and what
 * promotion shootdowns cost once several processors/processes share
 * translations (the cpi_os term).
 *
 * Accounting invariants (the os determinism gate checks both):
 *  - per-process TlbStats are attributed by snapshot deltas at
 *    quantum and interval boundaries, so they sum to the merged
 *    (whole-TLB) stats field for field, exactly;
 *  - interval rows are counter deltas, so column sums reproduce the
 *    merged aggregates exactly.
 */

#ifndef TPS_CORE_MULTIPROG_H_
#define TPS_CORE_MULTIPROG_H_

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "os/address_space.h"
#include "os/scheduler.h"

namespace tps::core
{

/** One process, by workload-registry name (the convenience form). */
struct ProcessSpec
{
    std::string workload;
    PolicySpec policy;
    /** Quantum multiplier (os::ProcessSlot::weight). */
    std::uint64_t weight = 1;
    /** Per-process reference budget; 0 = unlimited. */
    std::uint64_t budgetRefs = 0;
};

/** One process, pre-built (tests and custom traces).  The trace is
 *  caller-owned and must outlive the run; the policy is consumed. */
struct ProcessSetup
{
    std::string name;
    TraceSource *trace = nullptr;
    std::unique_ptr<PageSizePolicy> policy;
    std::uint64_t weight = 1;
    std::uint64_t budgetRefs = 0;
};

/** Controls of a multiprogrammed run. */
struct MultiprogOptions
{
    /** maxRefs is the TOTAL across processes; warmupRefs likewise
     *  counts merged references.  With maxRefs = 0 every process runs
     *  until its trace drains or its budget is spent. */
    RunOptions run;

    os::SchedulerConfig sched;

    /**
     * Cycles one promotion/demotion shootdown broadcast costs per
     * sharing context.  Each onChunkRemap event is charged
     * shootdownCycles x (number of processes) cycles into cpi_os —
     * every context sharing the TLB must be interrupted whether or
     * not it maps the chunk, which is what makes shootdowns scale
     * badly.  0 (default) keeps cpi_os at zero, making the
     * multiprogrammed driver cost-neutral relative to runExperiment.
     */
    double shootdownCycles = 0.0;

    /** Also emit one interval-telemetry cell per process (keyed
     *  "<merged workload>/<process>") next to the merged cell. */
    bool perProcessSeries = false;

    /**
     * Merged-cell workload label; empty = the "+"-joined process
     * names.  Sweeps that vary parameters outside the workload/TLB/
     * policy names (quantum, switch mode) set this so their
     * time-series cells stay distinct.
     */
    std::string label;
};

/** OS-layer event counters of one run (post-warmup). */
struct OsCounters
{
    std::uint64_t contextSwitches = 0; ///< dispatches of a new process
    std::uint64_t switchFlushes = 0;   ///< flush-mode invalidateAll()s
    std::uint64_t asidRecycles = 0;    ///< tagged+limit tag recycles
    std::uint64_t shootdowns = 0;      ///< chunk remap broadcasts
    double shootdownCycleTotal = 0.0;  ///< cycles charged for them

    OsCounters deltaSince(const OsCounters &since) const;

    /** Register every counter under "<prefix>.". */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/** Per-process slice of the merged result. */
struct ProcessResult
{
    std::string name;
    std::string policyName;

    std::uint64_t refs = 0;         ///< measured refs it retired
    std::uint64_t instructions = 0; ///< its ifetches (post-warmup)

    /** TLB events that happened while this process ran (snapshot
     *  deltas; sums to MultiprogResult::tlb exactly). */
    TlbStats tlb;
    PolicyStats policy;

    std::uint64_t shootdowns = 0; ///< remaps this process initiated

    double cpiTlb = 0.0;
    double cpiOs = 0.0;
    double missRatio = 0.0;
};

/** Everything measured in one multiprogrammed run. */
struct MultiprogResult
{
    std::string workload; ///< "+"-joined process names
    std::string tlbName;
    std::string policyName; ///< "+"-joined per-process policy names

    std::uint64_t refs = 0;
    std::uint64_t instructions = 0;

    TlbStats tlb;       ///< the shared TLB's whole-run counters
    PolicyStats policy; ///< sum over the per-process policies
    OsCounters os;

    double cpiTlb = 0.0;
    double cpiOs = 0.0; ///< shootdown cycles per instruction
    double mpi = 0.0;
    double missRatio = 0.0;

    std::vector<ProcessResult> processes;

    /** Physical memory model outputs (meaningful iff physModeled). */
    bool physModeled = false;
    phys::PhysCounters phys;
    phys::FragSnapshot physFrag;
    double cpiPhys = 0.0;

    /** Merged-cell interval telemetry (null unless enabled). */
    std::shared_ptr<const obs::TimeSeries> timeseries;

    /**
     * Register everything under "<prefix>.": the merged counters use
     * runExperiment's layout ("<prefix>.tlb.miss", ...), OS-layer
     * counters go under "<prefix>.os." and each process under
     * "<prefix>.proc.<name>." — all keys are feature-gated by being
     * multiprog-only, so single-process dumps are unchanged.
     */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * Run one multiprogrammed experiment over caller-built processes
 * sharing @p tlb.  Traces are reset; policies are owned and reset.
 */
MultiprogResult
runMultiprogExperiment(std::vector<ProcessSetup> processes, Tlb &tlb,
                       const MultiprogOptions &options,
                       ProbeStrategy probe = ProbeStrategy::Parallel);

/** Convenience wrapper: instantiate workloads (registry defaults),
 *  policies and the TLB from specs, then run. */
MultiprogResult
runMultiprogExperiment(const std::vector<ProcessSpec> &specs,
                       const TlbConfig &tlb_config,
                       const MultiprogOptions &options);

} // namespace tps::core

#endif // TPS_CORE_MULTIPROG_H_
