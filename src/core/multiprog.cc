#include "core/multiprog.h"

#include <algorithm>
#include <unordered_set>

#include "obs/trace_profiler.h"
#include "util/logging.h"
#include "workloads/registry.h"

namespace tps::core
{

OsCounters
OsCounters::deltaSince(const OsCounters &since) const
{
    OsCounters delta;
    delta.contextSwitches = contextSwitches - since.contextSwitches;
    delta.switchFlushes = switchFlushes - since.switchFlushes;
    delta.asidRecycles = asidRecycles - since.asidRecycles;
    delta.shootdowns = shootdowns - since.shootdowns;
    delta.shootdownCycleTotal =
        shootdownCycleTotal - since.shootdownCycleTotal;
    return delta;
}

void
OsCounters::exportTo(obs::StatRegistry &registry,
                     const std::string &prefix) const
{
    registry.addCounter(prefix + ".ctx_switches", contextSwitches);
    registry.addCounter(prefix + ".switch_flushes", switchFlushes);
    registry.addCounter(prefix + ".asid_recycles", asidRecycles);
    registry.addCounter(prefix + ".shootdowns", shootdowns);
    registry.addValue(prefix + ".shootdown_cycles",
                      shootdownCycleTotal);
}

void
MultiprogResult::exportTo(obs::StatRegistry &registry,
                          const std::string &prefix) const
{
    registry.addText(prefix + ".workload", workload);
    registry.addText(prefix + ".tlb_name", tlbName);
    registry.addText(prefix + ".policy_name", policyName);
    registry.addCounter(prefix + ".refs", refs);
    registry.addCounter(prefix + ".instructions", instructions);
    tlb.exportTo(registry, prefix + ".tlb");
    policy.exportTo(registry, prefix + ".policy");
    registry.addValue(prefix + ".cpi_tlb", cpiTlb);
    registry.addValue(prefix + ".mpi", mpi);
    registry.addValue(prefix + ".miss_ratio", missRatio);
    os.exportTo(registry, prefix + ".os");
    registry.addValue(prefix + ".os.cpi_os", cpiOs);
    registry.addCounter(prefix + ".os.procs", processes.size());
    // Process keys carry the dispatch index so two instances of the
    // same workload stay distinct.
    for (std::size_t i = 0; i < processes.size(); ++i) {
        const ProcessResult &proc = processes[i];
        const std::string sub = prefix + ".proc." + std::to_string(i) +
                                "." + proc.name;
        registry.addCounter(sub + ".refs", proc.refs);
        registry.addCounter(sub + ".instructions", proc.instructions);
        proc.tlb.exportTo(registry, sub + ".tlb");
        proc.policy.exportTo(registry, sub + ".policy");
        registry.addCounter(sub + ".shootdowns", proc.shootdowns);
        registry.addValue(sub + ".cpi_tlb", proc.cpiTlb);
        registry.addValue(sub + ".cpi_os", proc.cpiOs);
    }
    if (physModeled) {
        phys.exportTo(registry, prefix + ".phys");
        physFrag.exportTo(registry, prefix + ".phys.frag");
        registry.addValue(prefix + ".cpi_phys", cpiPhys);
    }
}

namespace
{

void
accumulate(TlbStats &into, const TlbStats &delta)
{
    into.accesses += delta.accesses;
    into.hits += delta.hits;
    into.misses += delta.misses;
    into.hitsSmall += delta.hitsSmall;
    into.hitsLarge += delta.hitsLarge;
    into.missesSmall += delta.missesSmall;
    into.missesLarge += delta.missesLarge;
    into.fills += delta.fills;
    into.evictions += delta.evictions;
    into.invalidations += delta.invalidations;
}

void
accumulate(PolicyStats &into, const PolicyStats &delta)
{
    into.refsSmall += delta.refsSmall;
    into.refsLarge += delta.refsLarge;
    into.promotions += delta.promotions;
    into.demotions += delta.demotions;
}

/**
 * Per-process invalidation sink: forwards page shootdowns to the
 * shared TLB, mirrors chunk remaps into the process's page tables and
 * the shared physical model, and charges the broadcast cost
 * (cycles x sharing contexts) to both the process and the run.
 */
class ProcSink : public InvalidationSink
{
  public:
    ProcSink() = default;

    Tlb *tlb = nullptr;
    os::AddressSpace *space = nullptr;
    double costPerRemap = 0.0; ///< shootdownCycles x process count
    std::uint64_t *procShootdowns = nullptr;
    double *procCycles = nullptr;
    std::uint64_t *runShootdowns = nullptr;
    double *runCycles = nullptr;
    /** Global-page identities shot down (miss sampling); null off. */
    std::unordered_set<PageId, PageIdHash> *shotDown = nullptr;

    void
    invalidatePage(const PageId &page) override
    {
        tlb->invalidatePage(page);
        if (shotDown != nullptr)
            shotDown->insert(space->globalPage(page));
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        // Physical backing first: a subsequent page-table remap asks
        // the model for the superpage's pfn.
        space->remapPhysChunk(chunk_number, to_large);
        if (tps::AddressSpace *tables = space->pageTables())
            tables->remapChunk(chunk_number, to_large);
        ++*procShootdowns;
        ++*runShootdowns;
        *procCycles += costPerRemap;
        *runCycles += costPerRemap;
    }
};

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0)
            joined += "+";
        joined += names[i];
    }
    return joined;
}

} // namespace

MultiprogResult
runMultiprogExperiment(std::vector<ProcessSetup> processes, Tlb &tlb,
                       const MultiprogOptions &options,
                       ProbeStrategy probe)
{
    if (processes.empty())
        tps_fatal("multiprogrammed run needs at least one process");
    const RunOptions &run = options.run;
    if (run.warmupRefs != 0 && run.maxRefs != 0 &&
        run.warmupRefs >= run.maxRefs) {
        tps_fatal("warmupRefs (", run.warmupRefs,
                  ") must be below maxRefs (", run.maxRefs, ")");
    }
    if (run.wsWindow != 0)
        tps_fatal("working-set tracking is per-process; it is not "
                  "supported by the multiprogrammed driver");

    const std::size_t n = processes.size();
    std::vector<std::unique_ptr<os::AddressSpace>> spaces;
    spaces.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ProcessSetup &setup = processes[i];
        if (setup.trace == nullptr)
            tps_fatal("process ", i, " ('", setup.name,
                      "') has no trace");
        spaces.push_back(std::make_unique<os::AddressSpace>(
            static_cast<std::uint16_t>(i), setup.name, *setup.trace,
            std::move(setup.policy), run.modelPageTables));
    }

    tlb.reset();
    for (auto &space : spaces)
        space->reset();

    // One machine-wide physical memory: geometry follows the (single)
    // page-size pair the processes agree on.
    std::optional<phys::MemoryModel> phys_model;
    if (run.phys.enabled()) {
        for (const auto &space : spaces) {
            if (space->smallLog2() != spaces[0]->smallLog2() ||
                space->largeLog2() != spaces[0]->largeLog2()) {
                tps_fatal("shared physical memory requires one "
                          "page-size pair across processes (process ",
                          space->name(), " disagrees with ",
                          spaces[0]->name(), ")");
            }
        }
        phys::PhysConfig phys_config = run.phys;
        phys_config.frameLog2 = spaces[0]->smallLog2();
        phys_config.superLog2 = spaces[0]->largeLog2();
        phys_model.emplace(phys_config);
        for (auto &space : spaces)
            space->setPhysModel(&*phys_model);
    }

    os::SchedulerConfig sched_config = options.sched;
    std::vector<os::ProcessSlot> slots(n);
    for (std::size_t i = 0; i < n; ++i) {
        slots[i].weight = processes[i].weight;
        slots[i].budgetRefs = processes[i].budgetRefs;
    }
    os::Scheduler sched(sched_config, std::move(slots));
    os::AsidManager asids(sched_config.switchMode,
                          sched_config.hwAsids, n);

    MultiprogResult result;
    {
        std::vector<std::string> names;
        std::vector<std::string> policy_names;
        for (const auto &space : spaces) {
            names.push_back(space->name());
            policy_names.push_back(space->policy().name());
        }
        result.workload = options.label.empty() ? joinNames(names)
                                                : options.label;
        result.policyName = joinNames(policy_names);
    }
    result.tlbName = tlb.name();

    // Interval telemetry, with runExperiment's global-sink fallback.
    obs::TimeSeriesConfig ts_config = run.timeseries;
    if (!ts_config.enabled()) {
        if (const obs::TimeSeriesSink *sink =
                obs::TimeSeriesSink::global())
            ts_config = sink->config();
    }
    std::optional<obs::TimeSeriesRecorder> ts;
    if (ts_config.enabled()) {
        std::vector<std::string> counter_names =
            detail::kTsCounterNames;
        counter_names.insert(counter_names.end(),
                             {"ctx_switches", "switch_flushes",
                              "asid_recycles", "shootdowns"});
        std::vector<std::string> value_names = detail::kTsValueNames;
        if (phys_model) {
            counter_names.insert(counter_names.end(),
                                 detail::kTsPhysCounterNames.begin(),
                                 detail::kTsPhysCounterNames.end());
            value_names.insert(value_names.end(),
                               detail::kTsPhysValueNames.begin(),
                               detail::kTsPhysValueNames.end());
        }
        ts.emplace(ts_config, std::move(counter_names),
                   std::move(value_names));
    }
    std::vector<obs::TimeSeriesRecorder> proc_ts;
    if (ts && options.perProcessSeries) {
        proc_ts.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Per-process cells carry the base columns only; miss
            // sampling stays with the merged cell.
            obs::TimeSeriesConfig proc_config = ts_config;
            proc_config.missSampleCapacity = 0;
            proc_ts.emplace_back(proc_config,
                                 detail::kTsCounterNames,
                                 detail::kTsValueNames);
        }
    }
    const bool sample_misses = ts && ts->samplingMisses();
    // Miss-cause attribution keys use global (per-process biased) page
    // identities so equal native pages of different processes stay
    // distinct.
    std::unordered_set<PageId, PageIdHash> seen_pages;
    std::unordered_set<PageId, PageIdHash> shot_down;

    // Per-process accounting.  The sinks write through raw pointers
    // into these arrays, so they must not reallocate during the run.
    std::vector<TlbStats> proc_tlb(n);
    std::vector<std::uint64_t> proc_refs(n, 0);
    std::vector<std::uint64_t> proc_instr(n, 0);
    std::vector<std::uint64_t> proc_shootdowns(n, 0);
    std::vector<double> proc_sd_cycles(n, 0.0);
    std::uint64_t shootdowns_total = 0;
    double sd_cycles_total = 0.0;

    std::vector<ProcSink> sinks(n);
    for (std::size_t i = 0; i < n; ++i) {
        sinks[i].tlb = &tlb;
        sinks[i].space = spaces[i].get();
        sinks[i].costPerRemap =
            options.shootdownCycles * static_cast<double>(n);
        sinks[i].procShootdowns = &proc_shootdowns[i];
        sinks[i].procCycles = &proc_sd_cycles[i];
        sinks[i].runShootdowns = &shootdowns_total;
        sinks[i].runCycles = &sd_cycles_total;
        sinks[i].shotDown = sample_misses ? &shot_down : nullptr;
        spaces[i]->policy().setInvalidationSink(&sinks[i]);
    }

    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    constexpr std::size_t kReplayBatch = 4096;
    MemRef batch[kReplayBatch];
    RefTime now = 0;
    std::uint64_t measured_refs = 0;
    std::uint64_t instructions = 0;

    // Warmup bases for the monotone scheduler/ASID counters (their
    // owners are not reset at the warmup boundary; reporting is
    // relative to the boundary snapshot instead).
    std::uint64_t ctx_base = 0;
    std::uint64_t sflush_base = 0;
    std::uint64_t recycle_base = 0;
    auto currentOs = [&] {
        OsCounters counters;
        counters.contextSwitches = sched.contextSwitches() - ctx_base;
        counters.switchFlushes = asids.switchFlushes() - sflush_base;
        counters.asidRecycles = asids.recycleFlushes() - recycle_base;
        counters.shootdowns = shootdowns_total;
        counters.shootdownCycleTotal = sd_cycles_total;
        return counters;
    };
    auto sumPolicies = [&] {
        PolicyStats sum;
        for (const auto &space : spaces)
            accumulate(sum, space->policy().stats());
        return sum;
    };

    // Per-process TLB attribution: everything the shared TLB counted
    // since this snapshot belongs to the currently running process
    // (including the incoming flush/recycle invalidations of its own
    // dispatch).  Folding at every quantum end, interval close and
    // the warmup boundary makes the per-process stats sum to the
    // merged stats exactly, by construction.
    TlbStats attr_start;
    auto foldInto = [&](std::size_t p) {
        const TlbStats current = tlb.stats();
        accumulate(proc_tlb[p], current.deltaSince(attr_start));
        attr_start = current;
    };

    // Snapshots at the last interval close (all-zero at the warmup
    // boundary, where the stats themselves are reset).
    TlbStats ts_prev_tlb;
    PolicyStats ts_prev_policy;
    OsCounters ts_prev_os;
    phys::PhysCounters ts_prev_phys;
    std::uint64_t ts_prev_instructions = 0;
    std::uint64_t ts_last_close = 0;
    std::vector<TlbStats> ts_prev_proc_tlb(n);
    std::vector<PolicyStats> ts_prev_proc_policy(n);
    std::vector<std::uint64_t> ts_prev_proc_refs(n, 0);
    std::vector<std::uint64_t> ts_prev_proc_instr(n, 0);

    auto closeInterval = [&](std::size_t running) {
        foldInto(running);
        const TlbStats tlb_d = tlb.stats().deltaSince(ts_prev_tlb);
        const PolicyStats merged_policy = sumPolicies();
        const PolicyStats pol_d =
            merged_policy.deltaSince(ts_prev_policy);
        const OsCounters os_now = currentOs();
        const OsCounters os_d = os_now.deltaSince(ts_prev_os);
        const std::uint64_t refs_d = measured_refs - ts_last_close;
        const std::uint64_t instr_d =
            instructions - ts_prev_instructions;
        std::vector<std::uint64_t> counters = {
            refs_d,          instr_d,           tlb_d.accesses,
            tlb_d.hits,      tlb_d.misses,      tlb_d.hitsSmall,
            tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
            tlb_d.fills,     tlb_d.evictions,   tlb_d.invalidations,
            pol_d.refsSmall, pol_d.refsLarge,   pol_d.promotions,
            pol_d.demotions, os_d.contextSwitches,
            os_d.switchFlushes, os_d.asidRecycles, os_d.shootdowns};
        std::vector<double> values = {
            tlb_d.missRatio(),
            instr_d == 0 ? 0.0
                         : static_cast<double>(tlb_d.misses) /
                               static_cast<double>(instr_d),
            pol_d.largeFraction()};
        if (phys_model) {
            const phys::PhysCounters phys_d =
                phys_model->counters().deltaSince(ts_prev_phys);
            counters.insert(counters.end(),
                            {phys_d.framesAllocated,
                             phys_d.superpageFailures,
                             phys_d.promotionsInPlace,
                             phys_d.promotionsCopied,
                             phys_d.pagesCopied});
            const phys::FragSnapshot snap = phys_model->snapshot();
            values.push_back(snap.fragIndex);
            values.push_back(static_cast<double>(snap.freeBytes));
            ts_prev_phys = phys_model->counters();
        }
        ts->endInterval(ts_last_close, refs_d, std::move(counters),
                        std::move(values));
        for (std::size_t i = 0; i < proc_ts.size(); ++i) {
            const TlbStats ptlb_d =
                proc_tlb[i].deltaSince(ts_prev_proc_tlb[i]);
            const PolicyStats ppol_d =
                spaces[i]->policy().stats().deltaSince(
                    ts_prev_proc_policy[i]);
            const std::uint64_t prefs_d =
                proc_refs[i] - ts_prev_proc_refs[i];
            const std::uint64_t pinstr_d =
                proc_instr[i] - ts_prev_proc_instr[i];
            std::vector<std::uint64_t> pcounters = {
                prefs_d,          pinstr_d,
                ptlb_d.accesses,  ptlb_d.hits,
                ptlb_d.misses,    ptlb_d.hitsSmall,
                ptlb_d.hitsLarge, ptlb_d.missesSmall,
                ptlb_d.missesLarge, ptlb_d.fills,
                ptlb_d.evictions, ptlb_d.invalidations,
                ppol_d.refsSmall, ppol_d.refsLarge,
                ppol_d.promotions, ppol_d.demotions};
            std::vector<double> pvalues = {
                ptlb_d.missRatio(),
                pinstr_d == 0 ? 0.0
                              : static_cast<double>(ptlb_d.misses) /
                                    static_cast<double>(pinstr_d),
                ppol_d.largeFraction()};
            proc_ts[i].endInterval(ts_last_close, prefs_d,
                                   std::move(pcounters),
                                   std::move(pvalues));
            ts_prev_proc_tlb[i] = proc_tlb[i];
            ts_prev_proc_policy[i] = spaces[i]->policy().stats();
            ts_prev_proc_refs[i] = proc_refs[i];
            ts_prev_proc_instr[i] = proc_instr[i];
        }
        ts_prev_tlb = tlb.stats();
        ts_prev_policy = merged_policy;
        ts_prev_os = os_now;
        ts_prev_instructions = instructions;
        ts_last_close = measured_refs;
    };

    std::size_t last_p = 0;
    for (;;) {
        if (run.maxRefs != 0 && now >= run.maxRefs)
            break;
        const std::optional<os::Quantum> quantum = sched.nextQuantum();
        if (!quantum)
            break;
        const std::size_t p = quantum->process;
        last_p = p;
        os::AddressSpace &space = *spaces[p];
        asids.activate(p, quantum->switched, tlb);
        const bool multi = space.policy().isMultiSize();
        tps::AddressSpace *tables = space.pageTables();

        std::uint64_t slice = quantum->sliceRefs;
        if (run.maxRefs != 0)
            slice = std::min(slice, run.maxRefs - now);
        std::uint64_t ran = 0;
        bool drained = false;
        while (ran < slice) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(kReplayBatch, slice - ran));
            const std::size_t got = space.trace().fill(batch, want);
            if (got == 0) {
                drained = true;
                break;
            }
            obs::ScopedSpan chunk_span(profiler, "chunk", "replay");
            for (std::size_t i = 0; i < got; ++i) {
                const MemRef &ref = batch[i];
                ++now;
                if (now == run.warmupRefs + 1 &&
                    run.warmupRefs != 0) {
                    // Warmup ends: zero the counters, keep all state
                    // (TLB contents, policy state, ASID assignments,
                    // physical backing).
                    tlb.resetStats();
                    for (auto &sp : spaces)
                        sp->policy().resetStats();
                    if (phys_model)
                        phys_model->resetCounters();
                    instructions = 0;
                    std::fill(proc_tlb.begin(), proc_tlb.end(),
                              TlbStats{});
                    std::fill(proc_refs.begin(), proc_refs.end(), 0);
                    std::fill(proc_instr.begin(), proc_instr.end(),
                              0);
                    std::fill(proc_shootdowns.begin(),
                              proc_shootdowns.end(), 0);
                    std::fill(proc_sd_cycles.begin(),
                              proc_sd_cycles.end(), 0.0);
                    shootdowns_total = 0;
                    sd_cycles_total = 0.0;
                    ctx_base = sched.contextSwitches();
                    sflush_base = asids.switchFlushes();
                    recycle_base = asids.recycleFlushes();
                    attr_start = tlb.stats();
                }
                if (now > run.warmupRefs) {
                    ++measured_refs;
                    ++proc_refs[p];
                }
                if (ref.type == RefType::Ifetch) {
                    ++instructions;
                    ++proc_instr[p];
                }
                const PageId page =
                    space.policy().classify(ref.vaddr, now);
                const bool hit = tlb.access(page, ref.vaddr);
                if (!hit && phys_model)
                    space.touchPhys(page);
                if (!hit && tables != nullptr) {
                    if (multi)
                        tables->handleMiss(page,
                                           ProbeOrder::SmallFirst);
                    else
                        tables->handleMissSingleSize(page);
                }
                if (ts) {
                    if (sample_misses && !hit) {
                        // Same seen-set-at-misses trick as
                        // runExperiment, on global page identities.
                        const PageId global = space.globalPage(page);
                        const bool first =
                            seen_pages.insert(global).second;
                        if (now > run.warmupRefs) {
                            obs::MissCause cause;
                            if (shot_down.erase(global) != 0)
                                cause = obs::MissCause::Shootdown;
                            else if (first)
                                cause = obs::MissCause::Cold;
                            else
                                cause = obs::MissCause::Capacity;
                            ts->offerMiss(measured_refs, global.vpn,
                                          global.sizeLog2, cause);
                        } else {
                            shot_down.erase(global);
                        }
                    }
                    if (now > run.warmupRefs &&
                        measured_refs - ts_last_close ==
                            ts->intervalRefs()) {
                        closeInterval(p);
                    }
                }
            }
            ran += got;
        }
        foldInto(p);
        sched.accountRun(p, ran, drained);
    }
    for (auto &space : spaces)
        space->policy().setInvalidationSink(nullptr);

    if (ts) {
        if (measured_refs > ts_last_close)
            closeInterval(last_p);
        auto series = std::make_shared<obs::TimeSeries>(
            ts->finish(result.workload, result.tlbName,
                       result.policyName));
        result.timeseries = series;
        obs::TimeSeriesSink *global = obs::TimeSeriesSink::global();
        if (global != nullptr)
            global->add(*series);
        for (std::size_t i = 0; i < proc_ts.size(); ++i) {
            obs::TimeSeries proc_series = proc_ts[i].finish(
                result.workload + "/" + spaces[i]->name(),
                result.tlbName, spaces[i]->policy().name());
            if (global != nullptr)
                global->add(std::move(proc_series));
        }
    }

    bool any_multi = false;
    for (const auto &space : spaces)
        any_multi = any_multi || space->policy().isMultiSize();

    result.refs = measured_refs;
    result.instructions = instructions;
    result.tlb = tlb.stats();
    result.policy = sumPolicies();
    result.os = currentOs();
    result.cpiTlb = run.cpi.cpiTlb(result.tlb, result.policy,
                                   instructions, any_multi, probe);
    result.cpiOs = instructions == 0
                       ? 0.0
                       : sd_cycles_total /
                             static_cast<double>(instructions);
    result.mpi = instructions == 0
                     ? 0.0
                     : static_cast<double>(result.tlb.misses) /
                           static_cast<double>(instructions);
    result.missRatio = result.tlb.missRatio();
    result.processes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ProcessResult proc;
        proc.name = spaces[i]->name();
        proc.policyName = spaces[i]->policy().name();
        proc.refs = proc_refs[i];
        proc.instructions = proc_instr[i];
        proc.tlb = proc_tlb[i];
        proc.policy = spaces[i]->policy().stats();
        proc.shootdowns = proc_shootdowns[i];
        proc.cpiTlb = run.cpi.cpiTlb(proc.tlb, proc.policy,
                                     proc.instructions,
                                     spaces[i]->policy().isMultiSize(),
                                     probe);
        proc.cpiOs = proc.instructions == 0
                         ? 0.0
                         : proc_sd_cycles[i] /
                               static_cast<double>(proc.instructions);
        proc.missRatio = proc.tlb.missRatio();
        result.processes.push_back(std::move(proc));
    }
    if (phys_model) {
        result.physModeled = true;
        result.phys = phys_model->counters();
        result.physFrag = phys_model->snapshot();
        result.cpiPhys =
            result.cpiTlb +
            (instructions == 0
                 ? 0.0
                 : static_cast<double>(result.phys.pagesCopied) *
                       phys_model->config().copyCyclesPerPage /
                       static_cast<double>(instructions));
    }
    return result;
}

MultiprogResult
runMultiprogExperiment(const std::vector<ProcessSpec> &specs,
                       const TlbConfig &tlb_config,
                       const MultiprogOptions &options)
{
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> traces;
    std::vector<ProcessSetup> setups;
    traces.reserve(specs.size());
    setups.reserve(specs.size());
    for (const ProcessSpec &spec : specs) {
        const workloads::WorkloadInfo &info =
            workloads::findWorkload(spec.workload);
        traces.push_back(info.instantiate());
        ProcessSetup setup;
        setup.name = spec.workload;
        setup.trace = traces.back().get();
        setup.policy = spec.policy.instantiate();
        setup.weight = spec.weight;
        setup.budgetRefs = spec.budgetRefs;
        setups.push_back(std::move(setup));
    }
    auto tlb = makeTlb(tlb_config);
    return runMultiprogExperiment(std::move(setups), *tlb, options,
                                  tlb_config.probe);
}

} // namespace tps::core
