#include "core/sweep.h"

#include <map>

#include "stats/csv.h"
#include "stats/table.h"
#include "util/format.h"
#include "util/logging.h"
#include "workloads/registry.h"

namespace tps::core
{

std::string
describePolicy(const PolicySpec &spec)
{
    // Policy names are owned by the policy objects; instantiate a
    // throwaway to keep naming in one place.
    return spec.instantiate()->name();
}

SweepRunner &
SweepRunner::workloads(std::vector<std::string> names)
{
    workload_names_ = std::move(names);
    return *this;
}

SweepRunner &
SweepRunner::configuration(const TlbConfig &tlb, const PolicySpec &policy,
                           std::string label)
{
    if (label.empty())
        label = tlb.describe() + " / " + describePolicy(policy);
    configs_.push_back(Config{tlb, policy, std::move(label)});
    return *this;
}

SweepRunner &
SweepRunner::options(const RunOptions &options)
{
    options_ = options;
    return *this;
}

std::size_t
SweepRunner::cells() const
{
    const std::size_t rows = workload_names_.empty()
                                 ? workloads::suite().size()
                                 : workload_names_.size();
    return rows * configs_.size();
}

std::vector<SweepCell>
SweepRunner::run() const
{
    if (configs_.empty())
        tps_fatal("sweep has no configurations");

    std::vector<std::string> names = workload_names_;
    if (names.empty())
        names = workloads::suiteNames();

    std::vector<SweepCell> cells;
    cells.reserve(names.size() * configs_.size());
    for (const std::string &name : names) {
        auto workload = workloads::findWorkload(name).instantiate();
        for (const Config &config : configs_) {
            SweepCell cell;
            cell.workload = name;
            cell.configLabel = config.label;
            cell.result = runExperiment(*workload, config.policy,
                                        config.tlb, options_);
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

void
SweepRunner::printCpiTable(std::ostream &os,
                           const std::vector<SweepCell> &cells)
{
    // Column order = first-seen order of config labels.
    std::vector<std::string> columns;
    for (const SweepCell &cell : cells) {
        bool known = false;
        for (const std::string &column : columns)
            known |= column == cell.configLabel;
        if (!known)
            columns.push_back(cell.configLabel);
    }

    std::vector<std::string> headers = {"Program"};
    headers.insert(headers.end(), columns.begin(), columns.end());
    stats::TextTable table(std::move(headers));

    // Row order = first-seen order of workloads.
    std::vector<std::string> rows;
    std::map<std::pair<std::string, std::string>, double> grid;
    for (const SweepCell &cell : cells) {
        bool known = false;
        for (const std::string &row : rows)
            known |= row == cell.workload;
        if (!known)
            rows.push_back(cell.workload);
        grid[{cell.workload, cell.configLabel}] = cell.result.cpiTlb;
    }
    for (const std::string &row : rows) {
        std::vector<std::string> line = {row};
        for (const std::string &column : columns) {
            const auto it = grid.find({row, column});
            line.push_back(it == grid.end()
                               ? "-"
                               : formatFixed(it->second, 3));
        }
        table.addRow(std::move(line));
    }
    table.print(os);
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepCell> &cells)
{
    stats::CsvWriter csv(os, {"workload", "config", "refs",
                              "instructions", "misses", "mpi",
                              "cpi_tlb", "miss_ratio",
                              "large_fraction", "promotions",
                              "avg_ws_bytes"});
    for (const SweepCell &cell : cells) {
        const ExperimentResult &r = cell.result;
        csv.writeRow({cell.workload, cell.configLabel,
                      std::to_string(r.refs),
                      std::to_string(r.instructions),
                      std::to_string(r.tlb.misses),
                      formatFixed(r.mpi, 8), formatFixed(r.cpiTlb, 6),
                      formatFixed(r.missRatio, 8),
                      formatFixed(r.policy.largeFraction(), 6),
                      std::to_string(r.policy.promotions),
                      formatFixed(r.avgWsBytes, 0)});
    }
}

} // namespace tps::core
