#include "core/sweep.h"

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/progress.h"
#include "obs/trace_profiler.h"
#include "stats/csv.h"
#include "stats/table.h"
#include "trace/vector_trace.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace tps::core
{

namespace
{

/**
 * Above this per-workload trace length the automatic cache mode
 * declines to materialize (16 bytes/ref: 4M refs = 64MB/workload).
 */
constexpr std::uint64_t kTraceCacheMaxRefs = 4'000'000;

/**
 * Generate-once storage for materialized workload traces, safe for
 * concurrent cells.  The first requester of a (workload, length)
 * synthesizes it under a per-entry future; every other requester (any
 * thread) blocks on that future and then replays the shared immutable
 * vector through its own SharedTraceView cursor.
 *
 * There is one process-wide instance (globalTraceCache()): the
 * generators are deterministic pure functions of (name, max_refs), so
 * sharing across SweepRunner::run() calls cannot change results, and
 * it keeps back-to-back sweeps (figure studies, the serial-vs-parallel
 * micro_perf contrast) from re-synthesizing identical traces.  Entries
 * are never evicted; the per-trace budget is bounded by
 * kTraceCacheMaxRefs and a process sweeps a handful of scales at most.
 */
class MaterializedTraceCache
{
  public:
    using Stored = std::shared_ptr<const std::vector<MemRef>>;

    Stored
    get(const std::string &name, std::uint64_t max_refs)
    {
        const std::string key =
            name + ":" + std::to_string(max_refs);
        std::promise<Stored> promise;
        std::shared_future<Stored> future;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it == entries_.end()) {
                future = promise.get_future().share();
                entries_.emplace(key, future);
                builder = true;
            } else {
                future = it->second;
            }
        }
        if (builder) {
            try {
                obs::ScopedSpan span("materialize " + name, "cache");
                auto workload =
                    workloads::findWorkload(name).instantiate();
                auto refs = std::make_shared<std::vector<MemRef>>(
                    static_cast<std::size_t>(max_refs));
                const std::size_t got =
                    workload->fill(refs->data(), refs->size());
                refs->resize(got);
                promise.set_value(std::move(refs));
            } catch (...) {
                promise.set_exception(std::current_exception());
            }
        }
        return future.get();
    }

  private:
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<Stored>> entries_;
};

MaterializedTraceCache &
globalTraceCache()
{
    static MaterializedTraceCache cache;
    return cache;
}

} // namespace

std::string
describePolicy(const PolicySpec &spec)
{
    // Policy names are owned by the policy objects; instantiate a
    // throwaway to keep naming in one place.
    return spec.instantiate()->name();
}

SweepRunner &
SweepRunner::workloads(std::vector<std::string> names)
{
    workload_names_ = std::move(names);
    return *this;
}

SweepRunner &
SweepRunner::configuration(const TlbConfig &tlb, const PolicySpec &policy,
                           std::string label)
{
    if (label.empty())
        label = tlb.describe() + " / " + describePolicy(policy);
    configs_.push_back(Config{tlb, policy, std::move(label)});
    return *this;
}

SweepRunner &
SweepRunner::options(const RunOptions &options)
{
    options_ = options;
    return *this;
}

SweepRunner &
SweepRunner::timeseries(const obs::TimeSeriesConfig &config)
{
    options_.timeseries = config;
    return *this;
}

SweepRunner &
SweepRunner::threads(unsigned n)
{
    threads_ = n;
    return *this;
}

SweepRunner &
SweepRunner::sharedPass(bool enabled)
{
    shared_pass_ = enabled;
    return *this;
}

SweepRunner &
SweepRunner::cacheTraces(bool enabled)
{
    cache_mode_ = enabled ? CacheMode::On : CacheMode::Off;
    return *this;
}

std::size_t
SweepRunner::cells() const
{
    const std::size_t rows = workload_names_.empty()
                                 ? workloads::suite().size()
                                 : workload_names_.size();
    return rows * configs_.size();
}

std::vector<SweepCell>
SweepRunner::run() const
{
    if (configs_.empty())
        tps_fatal("sweep has no configurations");

    std::vector<std::string> names = workload_names_;
    if (names.empty())
        names = workloads::suiteNames();

    const unsigned nthreads =
        threads_ != 0 ? threads_ : util::ThreadPool::defaultThreads();

    // Materialized-trace cache: generate each workload once, replay
    // it from memory for every configuration.  Requires a bounded
    // reference budget (the generators are infinite).
    bool use_cache;
    switch (cache_mode_) {
      case CacheMode::On:
        use_cache = true;
        break;
      case CacheMode::Off:
        use_cache = false;
        break;
      case CacheMode::Auto:
      default: {
        const std::uint64_t env = envOr("TPS_TRACE_CACHE", 2);
        use_cache = env == 2 ? options_.maxRefs <= kTraceCacheMaxRefs
                             : env != 0;
        break;
      }
    }
    if (use_cache && options_.maxRefs == 0) {
        if (cache_mode_ == CacheMode::On)
            tps_warn("trace cache disabled: maxRefs == 0 means "
                     "unbounded sources, which cannot be materialized");
        use_cache = false;
    }

    obs::ProgressReporter progress(names.size() * configs_.size(),
                                   "cells");
    auto makeTrace = [&](const std::string &name)
        -> std::unique_ptr<TraceSource> {
        if (use_cache) {
            return std::make_unique<SharedTraceView>(
                globalTraceCache().get(name, options_.maxRefs), name);
        }
        return workloads::findWorkload(name).instantiate();
    };

    if (shared_pass_) {
        // Group columns by policy equality (first-seen order): one
        // classification pass can feed every TLB geometry whose cells
        // see the identical classified page stream.
        std::vector<std::vector<std::size_t>> groups;
        for (std::size_t c = 0; c < configs_.size(); ++c) {
            bool placed = false;
            for (auto &group : groups) {
                if (configs_[group.front()].policy ==
                    configs_[c].policy) {
                    group.push_back(c);
                    placed = true;
                    break;
                }
            }
            if (!placed)
                groups.push_back({c});
        }
        auto runGroup = [&](std::size_t unit) {
            const std::string &name = names[unit / groups.size()];
            const std::vector<std::size_t> &group =
                groups[unit % groups.size()];
            obs::ScopedSpan span(name + " | shared pass x" +
                                     std::to_string(group.size()),
                                 "cell");
            std::unique_ptr<TraceSource> trace = makeTrace(name);
            std::vector<TlbConfig> tlbs;
            tlbs.reserve(group.size());
            for (const std::size_t c : group)
                tlbs.push_back(configs_[c].tlb);
            std::vector<ExperimentResult> results = runSharedPass(
                *trace, configs_[group.front()].policy, tlbs,
                options_);
            std::vector<SweepCell> unit_cells(group.size());
            for (std::size_t j = 0; j < group.size(); ++j) {
                unit_cells[j].workload = name;
                unit_cells[j].configLabel = configs_[group[j]].label;
                unit_cells[j].result = std::move(results[j]);
                progress.tick(unit_cells[j].result.refs);
            }
            return unit_cells;
        };
        auto units = util::parallelMapIndex(
            nthreads, names.size() * groups.size(), runGroup);
        // Reassemble serial row-major order from the group units.
        std::vector<SweepCell> cells(names.size() * configs_.size());
        for (std::size_t u = 0; u < units.size(); ++u) {
            const std::size_t row = u / groups.size();
            const std::vector<std::size_t> &group =
                groups[u % groups.size()];
            for (std::size_t j = 0; j < group.size(); ++j)
                cells[row * configs_.size() + group[j]] =
                    std::move(units[u][j]);
        }
        progress.finish();
        return cells;
    }

    auto runCell = [&](std::size_t index) {
        const std::string &name = names[index / configs_.size()];
        const Config &config = configs_[index % configs_.size()];
        SweepCell cell;
        cell.workload = name;
        cell.configLabel = config.label;
        obs::ScopedSpan span(name + " | " + config.label, "cell");
        std::unique_ptr<TraceSource> trace = makeTrace(name);
        cell.result = runExperiment(*trace, config.policy, config.tlb,
                                    options_);
        progress.tick(cell.result.refs);
        return cell;
    };
    auto cells = util::parallelMapIndex(nthreads,
                                        names.size() * configs_.size(),
                                        runCell);
    progress.finish();
    return cells;
}

void
SweepRunner::printCpiTable(std::ostream &os,
                           const std::vector<SweepCell> &cells)
{
    // Column order = first-seen order of config labels.
    std::vector<std::string> columns;
    std::unordered_set<std::string> seen_columns;
    for (const SweepCell &cell : cells) {
        if (seen_columns.insert(cell.configLabel).second)
            columns.push_back(cell.configLabel);
    }

    std::vector<std::string> headers = {"Program"};
    headers.insert(headers.end(), columns.begin(), columns.end());
    stats::TextTable table(std::move(headers));

    // Row order = first-seen order of workloads.  A cell that
    // measured no references has no CPI (0/0), which must render as
    // "-" rather than masquerade as a perfect 0.000.
    std::vector<std::string> rows;
    std::unordered_set<std::string> seen_rows;
    struct GridCell
    {
        double cpi = 0.0;
        std::uint64_t refs = 0;
    };
    std::map<std::pair<std::string, std::string>, GridCell> grid;
    for (const SweepCell &cell : cells) {
        if (seen_rows.insert(cell.workload).second)
            rows.push_back(cell.workload);
        grid[{cell.workload, cell.configLabel}] = {cell.result.cpiTlb,
                                                   cell.result.refs};
    }
    for (const std::string &row : rows) {
        std::vector<std::string> line = {row};
        for (const std::string &column : columns) {
            const auto it = grid.find({row, column});
            line.push_back(it == grid.end() || it->second.refs == 0
                               ? "-"
                               : formatFixed(it->second.cpi, 3));
        }
        table.addRow(std::move(line));
    }
    table.print(os);
}

void
SweepRunner::exportStats(const std::vector<SweepCell> &cells,
                         obs::StatRegistry &registry,
                         const std::string &prefix)
{
    for (const SweepCell &cell : cells) {
        cell.result.exportTo(registry,
                             prefix + "." + obs::slugify(cell.workload) +
                                 "." + obs::slugify(cell.configLabel));
    }
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepCell> &cells)
{
    stats::CsvWriter csv(os, {"workload", "config", "refs",
                              "instructions", "misses", "mpi",
                              "cpi_tlb", "miss_ratio",
                              "large_fraction", "promotions",
                              "avg_ws_bytes"});
    for (const SweepCell &cell : cells) {
        const ExperimentResult &r = cell.result;
        csv.writeRow({cell.workload, cell.configLabel,
                      std::to_string(r.refs),
                      std::to_string(r.instructions),
                      std::to_string(r.tlb.misses),
                      formatFixed(r.mpi, 8), formatFixed(r.cpiTlb, 6),
                      formatFixed(r.missRatio, 8),
                      formatFixed(r.policy.largeFraction(), 6),
                      std::to_string(r.policy.promotions),
                      formatFixed(r.avgWsBytes, 0)});
    }
}

} // namespace tps::core
