#include "core/sweep.h"

#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/progress.h"
#include "obs/trace_profiler.h"
#include "stats/csv.h"
#include "stats/table.h"
#include "trace/vector_trace.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace tps::core
{

namespace
{

/**
 * Above this per-workload trace length the automatic cache mode
 * declines to materialize (16 bytes/ref: 4M refs = 64MB/workload).
 */
constexpr std::uint64_t kTraceCacheMaxRefs = 4'000'000;

/**
 * Generate-once storage for materialized workload traces, safe for
 * concurrent cells.  The first requester of a (workload, length)
 * synthesizes it under a per-entry future; every other requester (any
 * thread) blocks on that future and then replays the shared immutable
 * vector through its own SharedTraceView cursor.
 *
 * There is one process-wide instance (globalTraceCache()): the
 * generators are deterministic pure functions of (name, max_refs), so
 * sharing across SweepRunner::run() calls cannot change results, and
 * it keeps back-to-back sweeps (figure studies, the serial-vs-parallel
 * micro_perf contrast) from re-synthesizing identical traces.  Entries
 * are never evicted; the per-trace budget is bounded by
 * kTraceCacheMaxRefs and a process sweeps a handful of scales at most.
 */
class MaterializedTraceCache
{
  public:
    using Stored = std::shared_ptr<const std::vector<MemRef>>;

    Stored
    get(const std::string &name, std::uint64_t max_refs)
    {
        const std::string key =
            name + ":" + std::to_string(max_refs);
        std::promise<Stored> promise;
        std::shared_future<Stored> future;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it == entries_.end()) {
                future = promise.get_future().share();
                entries_.emplace(key, future);
                builder = true;
            } else {
                future = it->second;
            }
        }
        if (builder) {
            try {
                obs::ScopedSpan span("materialize " + name, "cache");
                auto workload =
                    workloads::findWorkload(name).instantiate();
                auto refs = std::make_shared<std::vector<MemRef>>(
                    static_cast<std::size_t>(max_refs));
                const std::size_t got =
                    workload->fill(refs->data(), refs->size());
                refs->resize(got);
                promise.set_value(std::move(refs));
            } catch (...) {
                promise.set_exception(std::current_exception());
            }
        }
        return future.get();
    }

  private:
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<Stored>> entries_;
};

MaterializedTraceCache &
globalTraceCache()
{
    static MaterializedTraceCache cache;
    return cache;
}

} // namespace

std::string
describePolicy(const PolicySpec &spec)
{
    // Policy names are owned by the policy objects; instantiate a
    // throwaway to keep naming in one place.
    return spec.instantiate()->name();
}

SweepRunner &
SweepRunner::workloads(std::vector<std::string> names)
{
    workload_names_ = std::move(names);
    return *this;
}

SweepRunner &
SweepRunner::configuration(const TlbConfig &tlb, const PolicySpec &policy,
                           std::string label)
{
    if (label.empty())
        label = tlb.describe() + " / " + describePolicy(policy);
    configs_.push_back(Config{tlb, policy, std::move(label)});
    return *this;
}

SweepRunner &
SweepRunner::options(const RunOptions &options)
{
    options_ = options;
    return *this;
}

SweepRunner &
SweepRunner::timeseries(const obs::TimeSeriesConfig &config)
{
    options_.timeseries = config;
    return *this;
}

SweepRunner &
SweepRunner::threads(unsigned n)
{
    threads_ = n;
    return *this;
}

SweepRunner &
SweepRunner::sharedPass(bool enabled)
{
    shared_pass_ = enabled;
    return *this;
}

SweepRunner &
SweepRunner::cacheTraces(bool enabled)
{
    cache_mode_ = enabled ? CacheMode::On : CacheMode::Off;
    return *this;
}

SweepRunner &
SweepRunner::onCellStart(
    std::function<void(const std::string &, const std::string &)> fn)
{
    on_cell_start_ = std::move(fn);
    return *this;
}

SweepRunner &
SweepRunner::onCellDone(
    std::function<void(const std::string &, const std::string &,
                       const ExperimentResult &)>
        fn)
{
    on_cell_done_ = std::move(fn);
    return *this;
}

SweepRunner &
SweepRunner::skipCells(
    std::function<bool(const std::string &, const std::string &)> fn)
{
    skip_ = std::move(fn);
    return *this;
}

SweepRunner &
SweepRunner::resumed(std::uint64_t cells_done, std::uint64_t refs_done)
{
    resumed_cells_ = cells_done;
    resumed_refs_ = refs_done;
    return *this;
}

std::string
SweepRunner::cellKey(const std::string &workload,
                     const std::string &configLabel)
{
    return obs::slugify(workload) + "/" + obs::slugify(configLabel);
}

std::string
SweepRunner::fingerprint() const
{
    // Canonical text first, then FNV-1a: the text form keeps the hash
    // auditable (a test can assert which fields participate) and makes
    // accidental field omission reviewable.
    std::string canon = "tps-sweep-fingerprint-v1\n";
    auto num = [&](const char *name, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s=%.17g\n", name, v);
        canon += buf;
    };
    auto uns = [&](const char *name, std::uint64_t v) {
        canon += name;
        canon += '=';
        canon += std::to_string(v);
        canon += '\n';
    };

    std::vector<std::string> names = workload_names_;
    if (names.empty())
        names = workloads::suiteNames();
    for (const std::string &name : names)
        canon += "workload=" + name + "\n";

    for (const Config &config : configs_) {
        canon += "config=" + config.label + "\n";
        canon += "tlb=" + config.tlb.describe() + "\n";
        uns("tlb.organization",
            static_cast<std::uint64_t>(config.tlb.organization));
        uns("tlb.entries", config.tlb.entries);
        uns("tlb.ways", config.tlb.ways);
        uns("tlb.scheme", static_cast<std::uint64_t>(config.tlb.scheme));
        uns("tlb.probe", static_cast<std::uint64_t>(config.tlb.probe));
        uns("tlb.small_log2", config.tlb.smallLog2);
        uns("tlb.large_log2", config.tlb.largeLog2);
        uns("tlb.replacement",
            static_cast<std::uint64_t>(config.tlb.replacement));
        uns("tlb.rng_seed", config.tlb.rngSeed);
        uns("tlb.split_large_entries", config.tlb.splitLargeEntries);
        uns("tlb.l1_entries", config.tlb.l1Entries);
        if (config.policy.kind == PolicySpec::Kind::Single) {
            uns("policy.single_log2", config.policy.singleLog2);
        } else {
            const TwoSizeConfig &two = config.policy.twoSize;
            uns("policy.two.small_log2", two.smallLog2);
            uns("policy.two.large_log2", two.largeLog2);
            uns("policy.two.window", two.window);
            uns("policy.two.promote", two.promoteThreshold);
            uns("policy.two.demote", two.demoteThreshold);
        }
    }

    uns("opt.max_refs", options_.maxRefs);
    uns("opt.warmup_refs", options_.warmupRefs);
    uns("opt.ws_window", options_.wsWindow);
    uns("opt.model_page_tables", options_.modelPageTables ? 1 : 0);
    num("opt.cpi.base_penalty", options_.cpi.basePenalty);
    num("opt.cpi.two_size_factor", options_.cpi.twoSizeFactor);
    num("opt.cpi.reprobe_cycles", options_.cpi.reprobeCycles);
    num("opt.cpi.promotion_cycles", options_.cpi.promotionCycles);
    uns("opt.phys.mem_bytes", options_.phys.memBytes);
    uns("opt.phys.frame_log2", options_.phys.frameLog2);
    uns("opt.phys.super_log2", options_.phys.superLog2);
    uns("opt.phys.reservation", options_.phys.reservation ? 1 : 0);
    num("opt.phys.frag_pressure", options_.phys.fragPressure);
    uns("opt.phys.pressure_seed", options_.phys.pressureSeed);
    num("opt.phys.copy_cycles", options_.phys.copyCyclesPerPage);
    uns("opt.ts.interval_refs", options_.timeseries.intervalRefs);
    uns("opt.ts.miss_samples", options_.timeseries.missSampleCapacity);
    uns("opt.ts.miss_seed", options_.timeseries.missSampleSeed);
    uns("opt.events.sample_every", options_.events.sampleEvery);
    uns("opt.events.capacity", options_.events.capacity);
    uns("opt.lifecycle", options_.lifecycle ? 1 : 0);

    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : canon) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::size_t
SweepRunner::cells() const
{
    const std::size_t rows = workload_names_.empty()
                                 ? workloads::suite().size()
                                 : workload_names_.size();
    return rows * configs_.size();
}

std::vector<SweepCell>
SweepRunner::run() const
{
    if (configs_.empty())
        tps_fatal("sweep has no configurations");

    std::vector<std::string> names = workload_names_;
    if (names.empty())
        names = workloads::suiteNames();

    const unsigned nthreads =
        threads_ != 0 ? threads_ : util::ThreadPool::defaultThreads();

    // Materialized-trace cache: generate each workload once, replay
    // it from memory for every configuration.  Requires a bounded
    // reference budget (the generators are infinite).
    bool use_cache;
    switch (cache_mode_) {
      case CacheMode::On:
        use_cache = true;
        break;
      case CacheMode::Off:
        use_cache = false;
        break;
      case CacheMode::Auto:
      default: {
        const std::uint64_t env = envOr("TPS_TRACE_CACHE", 2);
        use_cache = env == 2 ? options_.maxRefs <= kTraceCacheMaxRefs
                             : env != 0;
        break;
      }
    }
    if (use_cache && options_.maxRefs == 0) {
        if (cache_mode_ == CacheMode::On)
            tps_warn("trace cache disabled: maxRefs == 0 means "
                     "unbounded sources, which cannot be materialized");
        use_cache = false;
    }

    obs::ProgressReporter progress(names.size() * configs_.size(),
                                   "cells");
    if (resumed_cells_ != 0 || resumed_refs_ != 0)
        progress.seedResumed(resumed_cells_, resumed_refs_);
    auto skipped = [&](const std::string &workload,
                       const std::string &label) {
        return skip_ && skip_(workload, label);
    };
    auto makeTrace = [&](const std::string &name)
        -> std::unique_ptr<TraceSource> {
        if (use_cache) {
            return std::make_unique<SharedTraceView>(
                globalTraceCache().get(name, options_.maxRefs), name);
        }
        return workloads::findWorkload(name).instantiate();
    };

    if (shared_pass_) {
        // Group columns by policy equality (first-seen order): one
        // classification pass can feed every TLB geometry whose cells
        // see the identical classified page stream.
        std::vector<std::vector<std::size_t>> groups;
        for (std::size_t c = 0; c < configs_.size(); ++c) {
            bool placed = false;
            for (auto &group : groups) {
                if (configs_[group.front()].policy ==
                    configs_[c].policy) {
                    group.push_back(c);
                    placed = true;
                    break;
                }
            }
            if (!placed)
                groups.push_back({c});
        }
        auto runGroup = [&](std::size_t unit) {
            const std::string &name = names[unit / groups.size()];
            const std::vector<std::size_t> &group =
                groups[unit % groups.size()];
            // Resume: the pass probes only the group's pending
            // members.  Legal because cells of a pass share only the
            // classified page stream, never downstream state.
            std::vector<SweepCell> unit_cells(group.size());
            std::vector<std::size_t> pending; ///< indices into group
            for (std::size_t j = 0; j < group.size(); ++j) {
                unit_cells[j].workload = name;
                unit_cells[j].configLabel = configs_[group[j]].label;
                if (!skipped(name, unit_cells[j].configLabel))
                    pending.push_back(j);
            }
            if (pending.empty())
                return unit_cells;
            obs::ScopedSpan span(name + " | shared pass x" +
                                     std::to_string(pending.size()),
                                 "cell");
            if (on_cell_start_) {
                for (const std::size_t j : pending)
                    on_cell_start_(name, unit_cells[j].configLabel);
            }
            std::unique_ptr<TraceSource> trace = makeTrace(name);
            std::vector<TlbConfig> tlbs;
            tlbs.reserve(pending.size());
            for (const std::size_t j : pending)
                tlbs.push_back(configs_[group[j]].tlb);
            std::vector<ExperimentResult> results = runSharedPass(
                *trace, configs_[group.front()].policy, tlbs,
                options_);
            for (std::size_t k = 0; k < pending.size(); ++k) {
                SweepCell &cell = unit_cells[pending[k]];
                cell.result = std::move(results[k]);
                if (on_cell_done_)
                    on_cell_done_(name, cell.configLabel, cell.result);
                progress.tick(cell.result.refs);
            }
            return unit_cells;
        };
        auto units = util::parallelMapIndex(
            nthreads, names.size() * groups.size(), runGroup);
        // Reassemble serial row-major order from the group units.
        std::vector<SweepCell> cells(names.size() * configs_.size());
        for (std::size_t u = 0; u < units.size(); ++u) {
            const std::size_t row = u / groups.size();
            const std::vector<std::size_t> &group =
                groups[u % groups.size()];
            for (std::size_t j = 0; j < group.size(); ++j)
                cells[row * configs_.size() + group[j]] =
                    std::move(units[u][j]);
        }
        progress.finish();
        return cells;
    }

    auto runCell = [&](std::size_t index) {
        const std::string &name = names[index / configs_.size()];
        const Config &config = configs_[index % configs_.size()];
        SweepCell cell;
        cell.workload = name;
        cell.configLabel = config.label;
        if (skipped(name, config.label))
            return cell; // resume placeholder: refs == 0
        obs::ScopedSpan span(name + " | " + config.label, "cell");
        if (on_cell_start_)
            on_cell_start_(name, config.label);
        std::unique_ptr<TraceSource> trace = makeTrace(name);
        cell.result = runExperiment(*trace, config.policy, config.tlb,
                                    options_);
        if (on_cell_done_)
            on_cell_done_(name, config.label, cell.result);
        progress.tick(cell.result.refs);
        return cell;
    };
    auto cells = util::parallelMapIndex(nthreads,
                                        names.size() * configs_.size(),
                                        runCell);
    progress.finish();
    return cells;
}

void
SweepRunner::printCpiTable(std::ostream &os,
                           const std::vector<SweepCell> &cells)
{
    // Column order = first-seen order of config labels.
    std::vector<std::string> columns;
    std::unordered_set<std::string> seen_columns;
    for (const SweepCell &cell : cells) {
        if (seen_columns.insert(cell.configLabel).second)
            columns.push_back(cell.configLabel);
    }

    std::vector<std::string> headers = {"Program"};
    headers.insert(headers.end(), columns.begin(), columns.end());
    stats::TextTable table(std::move(headers));

    // Row order = first-seen order of workloads.  A cell that
    // measured no references has no CPI (0/0), which must render as
    // "-" rather than masquerade as a perfect 0.000.
    std::vector<std::string> rows;
    std::unordered_set<std::string> seen_rows;
    struct GridCell
    {
        double cpi = 0.0;
        std::uint64_t refs = 0;
    };
    std::map<std::pair<std::string, std::string>, GridCell> grid;
    for (const SweepCell &cell : cells) {
        if (seen_rows.insert(cell.workload).second)
            rows.push_back(cell.workload);
        grid[{cell.workload, cell.configLabel}] = {cell.result.cpiTlb,
                                                   cell.result.refs};
    }
    for (const std::string &row : rows) {
        std::vector<std::string> line = {row};
        for (const std::string &column : columns) {
            const auto it = grid.find({row, column});
            line.push_back(it == grid.end() || it->second.refs == 0
                               ? "-"
                               : formatFixed(it->second.cpi, 3));
        }
        table.addRow(std::move(line));
    }
    table.print(os);
}

void
SweepRunner::exportStats(const std::vector<SweepCell> &cells,
                         obs::StatRegistry &registry,
                         const std::string &prefix)
{
    for (const SweepCell &cell : cells) {
        cell.result.exportTo(registry,
                             prefix + "." + obs::slugify(cell.workload) +
                                 "." + obs::slugify(cell.configLabel));
    }
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepCell> &cells)
{
    stats::CsvWriter csv(os, {"workload", "config", "refs",
                              "instructions", "misses", "mpi",
                              "cpi_tlb", "miss_ratio",
                              "large_fraction", "promotions",
                              "avg_ws_bytes"});
    for (const SweepCell &cell : cells) {
        const ExperimentResult &r = cell.result;
        csv.writeRow({cell.workload, cell.configLabel,
                      std::to_string(r.refs),
                      std::to_string(r.instructions),
                      std::to_string(r.tlb.misses),
                      formatFixed(r.mpi, 8), formatFixed(r.cpiTlb, 6),
                      formatFixed(r.missRatio, 8),
                      formatFixed(r.policy.largeFraction(), 6),
                      std::to_string(r.policy.promotions),
                      formatFixed(r.avgWsBytes, 0)});
    }
}

} // namespace tps::core
