/**
 * @file
 * The paper's CPI accounting (Section 3.2).
 *
 *   CPI_TLB = (TLB misses per instruction) x (TLB miss penalty)
 *
 * with a 20-cycle penalty for single-page-size handlers and a 25%
 * higher penalty when the handler must support two page sizes
 * (Section 2.3).  Extensions beyond the paper's constants — an extra
 * reprobe charge for the sequential exact-index probe strategy and an
 * explicit per-promotion cost — default to the paper's assumptions
 * (zero / folded into the 25%).
 */

#ifndef TPS_CORE_CPI_MODEL_H_
#define TPS_CORE_CPI_MODEL_H_

#include "tlb/factory.h"
#include "tlb/tlb.h"
#include "util/types.h"
#include "vm/policy.h"

namespace tps::core
{

/** Cycle cost model for TLB miss handling. */
struct CpiModel
{
    /** Software miss handler, one page size (paper: 20 cycles). */
    double basePenalty = 20.0;

    /** Multiplier when the handler supports two sizes (paper: 1.25). */
    double twoSizeFactor = 1.25;

    /**
     * Extra cycles per second probe under the Sequential exact-index
     * strategy (charged to every miss and every large-page hit, which
     * are the accesses that reprobe).  The paper discusses but does
     * not cost this (Section 2.2 option b); default 0 models the
     * Parallel strategy.
     */
    double reprobeCycles = 0.0;

    /**
     * Cycles charged per page promotion/demotion (copying, zeroing,
     * table updates).  The paper folds this into the 25% penalty
     * (Section 3.4); nonzero values are used by the ablation bench.
     */
    double promotionCycles = 0.0;

    /** Miss penalty in cycles for the given handler flavour. */
    double
    missPenalty(bool two_sizes) const
    {
        return two_sizes ? basePenalty * twoSizeFactor : basePenalty;
    }

    /**
     * CPI contribution of TLB handling.
     *
     * @param tlb        end-of-run TLB counters
     * @param policy     end-of-run policy counters
     * @param instructions retired instruction count
     * @param two_sizes  whether the handler supports two page sizes
     * @param probe      probe strategy (Sequential adds reprobe cost)
     */
    double
    cpiTlb(const TlbStats &tlb, const PolicyStats &policy,
           std::uint64_t instructions, bool two_sizes,
           ProbeStrategy probe = ProbeStrategy::Parallel) const
    {
        if (instructions == 0)
            return 0.0;
        const double instrs = static_cast<double>(instructions);
        double cycles = static_cast<double>(tlb.misses) *
                        missPenalty(two_sizes);
        if (two_sizes && probe == ProbeStrategy::Sequential) {
            cycles += reprobeCycles *
                      static_cast<double>(tlb.misses + tlb.hitsLarge);
        }
        cycles += promotionCycles *
                  static_cast<double>(policy.promotions +
                                      policy.demotions);
        return cycles / instrs;
    }

    /** Register the model parameters under "<prefix>." so dumps carry
     *  the cost assumptions alongside the results they produced. */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix = "cpi_model") const;
};

/**
 * Critical miss-penalty increase (paper Section 3.2): the relative
 * miss-penalty headroom of scheme `ps` over the 4KB baseline,
 *     delta_mp = (MPI(4KB) / MPI(ps) - 1) x 100%.
 * Positive values mean the two-size handler could be that much slower
 * per miss and still break even with 4KB pages.
 * Returns +infinity when mpi_ps is zero.
 */
double criticalMissPenaltyIncrease(double mpi_4k, double mpi_ps);

} // namespace tps::core

#endif // TPS_CORE_CPI_MODEL_H_
