#include "core/cpi_model.h"

#include <limits>

namespace tps::core
{

void
CpiModel::exportTo(obs::StatRegistry &registry,
                   const std::string &prefix) const
{
    registry.addValue(prefix + ".base_penalty", basePenalty);
    registry.addValue(prefix + ".two_size_factor", twoSizeFactor);
    registry.addValue(prefix + ".reprobe_cycles", reprobeCycles);
    registry.addValue(prefix + ".promotion_cycles", promotionCycles);
}

double
criticalMissPenaltyIncrease(double mpi_4k, double mpi_ps)
{
    if (mpi_ps <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (mpi_4k / mpi_ps - 1.0) * 100.0;
}

} // namespace tps::core
