#include "core/experiment_session.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "core/experiment_detail.h"
#include "obs/trace_profiler.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

/** Per-TLB state of one session (see runSharedPass's legality note:
 *  everything downstream of classification lives here, per cell). */
struct ExperimentSession::Cell
{
    Cell(Tlb &tlb_ref, ProbeStrategy probe_kind)
        : tlb(tlb_ref), probe(probe_kind)
    {
    }

    Tlb &tlb;
    ProbeStrategy probe;
    std::optional<WindowedWorkingSet> wset;
    std::optional<AddressSpace> addressSpace;
    std::optional<phys::MemoryModel> physModel;
    std::optional<walk::PageWalker> walker;
    std::optional<obs::TimeSeriesRecorder> ts;
    bool sampleMisses = false;
    /** Anything to do per reference beyond the TLB probe? */
    bool missWork = false;
    std::unordered_set<PageId, PageIdHash> seenPages;
    std::unordered_set<PageId, PageIdHash> shotDown;
    std::optional<detail::SinkTee> sink;
    TlbStats tsPrevTlb;
    phys::PhysCounters tsPrevPhys;
    walk::WalkStats tsPrevWalk;
    std::optional<obs::EventLogRecorder> events;
    std::size_t evPromote = 0;
    std::size_t evDemote = 0;
};

ExperimentSession::ExperimentSession(TraceSource &trace,
                                     PageSizePolicy &policy,
                                     std::vector<SessionCell> cells,
                                     const RunOptions &options)
    : trace_(trace), policy_(policy), options_(options)
{
    trace_.reset();
    policy_.reset();

    if (options_.chunkRefs == 0)
        tps_fatal("chunkRefs must be positive");
    if (options_.warmupRefs != 0 && options_.maxRefs != 0 &&
        options_.warmupRefs >= options_.maxRefs) {
        tps_fatal("warmupRefs (", options_.warmupRefs,
                  ") must be below maxRefs (", options_.maxRefs, ")");
    }

    two_sizes_ = policy_.isMultiSize();
    ts_config_ = detail::resolveTsConfig(options_);
    interval_refs_ = ts_config_.intervalRefs;
    events_config_ = detail::resolveEventsConfig(options_);
    lifecycle_on_ = options_.lifecycle || events_config_.enabled();

    cells_.reserve(cells.size());
    for (const SessionCell &setup : cells) {
        auto cell = std::make_unique<Cell>(*setup.tlb, setup.probe);
        cell->tlb.reset();
        if (options_.wsWindow != 0)
            cell->wset.emplace(options_.wsWindow);
        if (options_.modelPageTables)
            detail::emplaceAddressSpace(cell->addressSpace, policy_);
        if (options_.phys.enabled()) {
            cell->physModel.emplace(
                detail::resolvePhysConfig(options_.phys, policy_));
            if (cell->addressSpace)
                cell->addressSpace->setAllocator(&*cell->physModel);
        }
        // One walker per cell: the miss stream it charges is a
        // function of this cell's TLB contents.
        if (options_.walk.enabled)
            cell->walker.emplace(options_.walk);
        if (ts_config_.enabled()) {
            detail::emplaceTsRecorder(cell->ts, ts_config_,
                                      cell->wset.has_value(),
                                      lifecycle_on_,
                                      cell->physModel.has_value(),
                                      cell->walker.has_value());
            cell->sampleMisses = cell->ts->samplingMisses();
        }
        cell->sink.emplace(
            cell->tlb,
            cell->addressSpace ? &*cell->addressSpace : nullptr,
            cell->physModel ? &*cell->physModel : nullptr,
            cell->sampleMisses ? &cell->shotDown : nullptr);
        if (events_config_.enabled()) {
            cell->events.emplace(events_config_);
            cell->evPromote =
                detail::registerPromoteStream(*cell->events);
            cell->evDemote = detail::registerDemoteStream(*cell->events);
            cell->sink->setEventSink(
                &*cell->events,
                detail::registerShootdownStream(*cell->events),
                &event_now_);
            cell->tlb.setEventSink(&*cell->events, "");
            if (cell->physModel)
                cell->physModel->setEventSink(&*cell->events,
                                              &event_now_);
        }
        cell->missWork = cell->wset || cell->addressSpace ||
                         cell->physModel || cell->sampleMisses ||
                         cell->walker;
        cells_.push_back(std::move(cell));
    }

    // The lifecycle ledger folds the *policy's* promote/demote stream,
    // which every cell of the pass shares — one ledger per pass, fed
    // during the classification phase, never per cell.
    if (lifecycle_on_)
        ledger_.emplace(detail::resolveLifecycleConfig(policy_));

    // The classification phase records side effects instead of
    // applying them; each cell replays them through its own tee.
    recorder_ = std::make_unique<detail::EventRecorder>();
    policy_.setInvalidationSink(recorder_.get());
    if (lifecycle_on_)
        policy_.setLifecycleSink(recorder_.get());
    policy1_ = dynamic_cast<SingleSizePolicy *>(&policy_);
    policy2_ = dynamic_cast<TwoSizePolicy *>(&policy_);

    refs_.resize(options_.chunkRefs);
    brefs_.resize(options_.chunkRefs);
}

ExperimentSession::~ExperimentSession()
{
    // An abandoned session (cancelled without finish()) must not leave
    // sinks pointing at its members: the policy and TLBs are borrowed
    // and outlive it.
    if (!finished_)
        detachSinks();
}

void
ExperimentSession::detachSinks()
{
    policy_.setInvalidationSink(nullptr);
    if (lifecycle_on_)
        policy_.setLifecycleSink(nullptr);
    for (auto &cell : cells_)
        if (cell->events) // the TLBs outlive their recorders
            cell->tlb.setEventSink(nullptr, "");
}

void
ExperimentSession::closeCell(Cell &cell)
{
    const TlbStats tlb_d = cell.tlb.stats().deltaSince(cell.tsPrevTlb);
    const PolicyStats pol_d =
        policy_.stats().deltaSince(ts_prev_policy_);
    const std::uint64_t refs_d = measured_refs_ - ts_last_close_;
    const std::uint64_t instr_d = instructions_ - ts_prev_instructions_;
    std::vector<std::uint64_t> counters = {
        refs_d,          instr_d,          tlb_d.accesses,
        tlb_d.hits,      tlb_d.misses,     tlb_d.hitsSmall,
        tlb_d.hitsLarge, tlb_d.missesSmall, tlb_d.missesLarge,
        tlb_d.fills,     tlb_d.evictions,  tlb_d.invalidations,
        pol_d.refsSmall, pol_d.refsLarge,  pol_d.promotions,
        pol_d.demotions};
    std::vector<double> values = {
        tlb_d.missRatio(),
        instr_d == 0 ? 0.0
                     : static_cast<double>(tlb_d.misses) /
                           static_cast<double>(instr_d),
        pol_d.largeFraction()};
    if (cell.wset)
        values.push_back(
            static_cast<double>(cell.wset->currentBytes()));
    if (ledger_) {
        values.push_back(static_cast<double>(
            cell.tlb.reachSnapshot().reachBytes));
        values.push_back(ledger_->reachUtilization());
    }
    if (cell.physModel) {
        const phys::PhysCounters phys_d =
            cell.physModel->counters().deltaSince(cell.tsPrevPhys);
        counters.insert(counters.end(),
                        {phys_d.framesAllocated,
                         phys_d.superpageFailures,
                         phys_d.promotionsInPlace,
                         phys_d.promotionsCopied,
                         phys_d.pagesCopied});
        const phys::FragSnapshot snap = cell.physModel->snapshot();
        values.push_back(snap.fragIndex);
        values.push_back(static_cast<double>(snap.freeBytes));
        cell.tsPrevPhys = cell.physModel->counters();
    }
    if (cell.walker) {
        const walk::WalkStats walk_d =
            cell.walker->stats().deltaSince(cell.tsPrevWalk);
        counters.push_back(walk_d.levelAccesses);
        values.push_back(walk_d.pwcHitRate());
        cell.tsPrevWalk = cell.walker->stats();
    }
    cell.ts->endInterval(ts_last_close_, refs_d, std::move(counters),
                         std::move(values));
    cell.tsPrevTlb = cell.tlb.stats();
}

void
ExperimentSession::closeAll()
{
    for (auto &cell : cells_)
        if (cell->ts)
            closeCell(*cell);
    ts_prev_policy_ = policy_.stats();
    ts_prev_instructions_ = instructions_;
    ts_last_close_ = measured_refs_;
}

// Replay one chunk into one cell: apply the recorded policy events
// at their reference index, probe every event-free segment in one
// batched call, then run the per-reference miss work (which never
// touches the TLB, so running it after the segment's probes
// preserves per-ref semantics).
void
ExperimentSession::replayChunk(Cell &cell, std::size_t got,
                               std::uint64_t base_measured,
                               bool measuring)
{
    // Cell-side promote/demote events: streams are serialized
    // independently, so appending them chunk-at-a-time preserves
    // byte-identity with the per-ref engine (within-stream order
    // and timestamps match; cross-stream interleaving is not part
    // of the format).
    if (cell.events) {
        for (const detail::LifeEvent &life : recorder_->lifeEvents) {
            cell.events->emit(
                life.promote ? cell.evPromote : cell.evDemote,
                measuring ? base_measured + life.index + 1 : 0,
                life.chunk, life.fromLog2, life.toLog2);
        }
    }
    std::size_t ev = 0;
    std::size_t seg = 0;
    while (seg < got) {
        if (cell.events)
            event_now_ = measuring ? base_measured + seg + 1 : 0;
        while (ev < recorder_->events.size() &&
               recorder_->events[ev].index == seg) {
            const detail::PolicyEvent &event = recorder_->events[ev];
            if (event.kind == detail::PolicyEvent::Kind::Invalidate)
                cell.sink->invalidatePage(event.page);
            else
                cell.sink->onChunkRemap(event.chunkNumber,
                                        event.toLarge);
            ++ev;
        }
        const std::size_t seg_end =
            ev < recorder_->events.size()
                ? recorder_->events[ev].index
                : got;
        cell.tlb.lookupBatch(brefs_.data() + seg, seg_end - seg,
                             probe_result_);
        if (cell.missWork) {
            for (std::size_t i = seg; i < seg_end; ++i) {
                const bool hit = probe_result_.hit[i - seg] != 0;
                const PageId &page = brefs_[i].page;
                if (!hit && cell.physModel) {
                    // Every first access to a page identity is a
                    // cold TLB miss, so backing work is observed
                    // here without taxing the hit path.
                    if (cell.events)
                        event_now_ =
                            measuring ? base_measured + i + 1 : 0;
                    cell.physModel->touch(page.vpn, page.sizeLog2);
                }
                if (!hit && cell.addressSpace) {
                    if (two_sizes_)
                        cell.addressSpace->handleMiss(
                            page, ProbeOrder::SmallFirst);
                    else
                        cell.addressSpace->handleMissSingleSize(page);
                }
                // Pure cost model: reads the miss stream, never the
                // TLB, so charging it inside the segment's miss loop
                // preserves per-ref semantics at any chunk size.
                if (!hit && cell.walker)
                    cell.walker->walk(brefs_[i].vaddr, page.sizeLog2);
                if (cell.wset)
                    cell.wset->observe(page);
                if (cell.sampleMisses && !hit) {
                    // Same seen-at-miss bookkeeping as the
                    // per-ref engine (see runPerRef for why
                    // membership at miss time matches a
                    // per-access set).
                    const bool first =
                        cell.seenPages.insert(page).second;
                    if (measuring) {
                        obs::MissCause cause;
                        if (cell.shotDown.erase(page) != 0)
                            cause = obs::MissCause::Shootdown;
                        else if (first)
                            cause = obs::MissCause::Cold;
                        else
                            cause = obs::MissCause::Capacity;
                        cell.ts->offerMiss(base_measured + i + 1,
                                           page.vpn, page.sizeLog2,
                                           cause);
                    } else {
                        cell.shotDown.erase(page);
                    }
                }
            }
        }
        seg = seg_end;
    }
}

bool
ExperimentSession::step()
{
    if (exhausted_ || finished_)
        return false;

    std::size_t want = options_.chunkRefs;
    if (options_.maxRefs != 0) {
        const std::uint64_t remaining = options_.maxRefs - now_;
        if (remaining == 0) {
            exhausted_ = true;
            return false;
        }
        want = static_cast<std::size_t>(
            std::min<std::uint64_t>(want, remaining));
    }
    // Never cross the warmup boundary: stats reset there.
    if (options_.warmupRefs != 0 && now_ < options_.warmupRefs)
        want = static_cast<std::size_t>(std::min<std::uint64_t>(
            want, options_.warmupRefs - now_));
    const bool measuring = now_ >= options_.warmupRefs;
    // Never cross an interval close: counters are read there.
    if (interval_refs_ != 0 && measuring)
        want = static_cast<std::size_t>(std::min<std::uint64_t>(
            want,
            ts_last_close_ + interval_refs_ - measured_refs_));
    const std::size_t got = trace_.fill(refs_.data(), want);
    if (got == 0) {
        exhausted_ = true;
        return false;
    }
    // The harness clock starts after the fill decision so a parked
    // session never bills wait time; per-chunk clock reads only
    // happen when the telemetry is requested.
    const bool timing = options_.harnessStats;
    const auto harness_start = timing
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point();
    ++harness_chunks_;
    if (want < options_.chunkRefs)
        ++harness_splits_; // truncated at warmup/interval/maxRefs
    obs::ScopedSpan chunk_span(obs::TraceProfiler::global(), "chunk",
                               "replay");
    if (options_.warmupRefs != 0 && now_ == options_.warmupRefs) {
        // Warmup ends: zero the counters, keep the state.
        for (auto &cell : cells_) {
            cell->tlb.resetStats();
            if (cell->physModel)
                cell->physModel->resetCounters();
            if (cell->walker)
                cell->walker->resetStats();
        }
        policy_.resetStats();
        if (ledger_)
            ledger_->resetStats(measured_refs_);
        instructions_ = 0;
    }

    // Phase 1: classify the chunk once, recording side effects.
    // The loop is specialized per concrete policy so classify
    // inlines (the virtual call per reference was a measurable
    // share of the replay cost).
    const RefTime base_now = now_;
    recorder_->events.clear();
    recorder_->lifeEvents.clear();
    std::uint64_t chunk_instr = 0;
    if (policy1_ != nullptr) {
        // A single-size policy never emits events.
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = refs_[i];
            if (ref.type == RefType::Ifetch)
                ++chunk_instr;
            brefs_[i].page = policy1_->SingleSizePolicy::classify(
                ref.vaddr, base_now + i + 1);
            brefs_[i].vaddr = ref.vaddr;
        }
    } else if (policy2_ != nullptr) {
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = refs_[i];
            if (ref.type == RefType::Ifetch)
                ++chunk_instr;
            recorder_->index = static_cast<std::uint32_t>(i);
            brefs_[i].page =
                policy2_->classifyFast(ref.vaddr, base_now + i + 1);
            brefs_[i].vaddr = ref.vaddr;
        }
    } else {
        for (std::size_t i = 0; i < got; ++i) {
            const MemRef &ref = refs_[i];
            if (ref.type == RefType::Ifetch)
                ++chunk_instr;
            recorder_->index = static_cast<std::uint32_t>(i);
            brefs_[i].page =
                policy_.classify(ref.vaddr, base_now + i + 1);
            brefs_[i].vaddr = ref.vaddr;
        }
    }
    instructions_ += chunk_instr;

    // Phase 1.5: fold the chunk's promote/demote and reference
    // streams into the pass-shared ledger, in the per-ref
    // interleaving (the events of classify(i) land before the
    // touch of reference i, at its measured index).
    if (ledger_) {
        std::size_t le = 0;
        for (std::size_t i = 0; i < got; ++i) {
            while (le < recorder_->lifeEvents.size() &&
                   recorder_->lifeEvents[le].index == i) {
                const detail::LifeEvent &life =
                    recorder_->lifeEvents[le];
                const RefTime t =
                    measuring ? measured_refs_ + i + 1 : 0;
                if (life.promote)
                    ledger_->onPromote(t, life.chunk, life.fromLog2,
                                       life.toLog2);
                else
                    ledger_->onDemote(t, life.chunk, life.fromLog2,
                                      life.toLog2);
                ++le;
            }
            ledger_->touch(refs_[i].vaddr);
        }
    }

    // Phase 2: replay the classified chunk into every cell.
    for (auto &cell : cells_)
        replayChunk(*cell, got, measured_refs_, measuring);

    now_ += got;
    if (measuring)
        measured_refs_ += got;
    if (interval_refs_ != 0 && measuring &&
        measured_refs_ - ts_last_close_ == interval_refs_)
        closeAll();

    if (timing)
        harness_wall_ += std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             harness_start)
                             .count();
    return true;
}

std::uint64_t
ExperimentSession::advance(std::uint64_t max_chunks)
{
    std::uint64_t done = 0;
    while (done < max_chunks && step())
        ++done;
    return done;
}

const obs::TimeSeriesRecorder *
ExperimentSession::recorder(std::size_t cell) const
{
    const Cell &c = *cells_.at(cell);
    return c.ts ? &*c.ts : nullptr;
}

std::vector<ExperimentResult>
ExperimentSession::finish()
{
    if (finished_)
        tps_fatal("ExperimentSession::finish() called twice");
    finished_ = true;
    detachSinks();

    // Flush the final partial interval so per-interval sums equal the
    // whole-run aggregates exactly.
    if (interval_refs_ != 0 && measured_refs_ > ts_last_close_)
        closeAll();

    // Close the pass-shared ledger once; every cell's result carries
    // the same summary (lifecycle state is policy state).
    std::uint64_t reach_open_bytes = 0;
    double reach_utilization = 0.0;
    LifecycleSummary lifecycle_summary;
    if (ledger_) {
        reach_open_bytes = ledger_->openReachBytes();
        reach_utilization = ledger_->reachUtilization();
        lifecycle_summary = ledger_->finish(measured_refs_);
    }

    std::vector<ExperimentResult> results;
    results.reserve(cells_.size());
    for (auto &cell_ptr : cells_) {
        Cell &cell = *cell_ptr;
        ExperimentResult result;
        result.workload = trace_.name();
        result.tlbName = cell.tlb.name();
        result.policyName = policy_.name();
        if (cell.ts) {
            auto series = std::make_shared<obs::TimeSeries>(
                cell.ts->finish(result.workload, result.tlbName,
                                result.policyName));
            result.timeseries = series;
            if (obs::TimeSeriesSink *global =
                    obs::TimeSeriesSink::global())
                global->add(*series);
        }
        result.refs = measured_refs_;
        result.instructions = instructions_;
        result.tlb = cell.tlb.stats();
        result.policy = policy_.stats();
        result.cpiTlb = options_.cpi.cpiTlb(result.tlb, result.policy,
                                            instructions_, two_sizes_,
                                            cell.probe);
        result.mpi = instructions_ == 0
                         ? 0.0
                         : static_cast<double>(result.tlb.misses) /
                               static_cast<double>(instructions_);
        result.missRatio = result.tlb.missRatio();
        result.rpi = instructions_ == 0
                         ? 0.0
                         : static_cast<double>(measured_refs_) /
                               static_cast<double>(instructions_);
        if (cell.wset) {
            result.avgWsBytes = cell.wset->averageBytes();
            result.wsTracked = true;
        }
        if (ledger_) {
            result.lifecycleTracked = true;
            result.lifecycle = lifecycle_summary;
            result.reachOpenBytes = reach_open_bytes;
            result.reachUtilization = reach_utilization;
            result.reach = cell.tlb.reachSnapshot();
        }
        if (cell.events) {
            auto log = std::make_shared<obs::EventLog>(
                cell.events->finish(result.workload, result.tlbName,
                                    result.policyName));
            result.events = log;
            if (obs::EventLogSink *global =
                    obs::EventLogSink::global())
                global->add(*log);
        }
        if (cell.addressSpace) {
            result.pageTablesModeled = true;
            result.measuredMissCycles =
                cell.addressSpace->averageMissCycles();
            result.cpiTlbMeasured =
                instructions_ == 0
                    ? 0.0
                    : static_cast<double>(result.tlb.misses) *
                          result.measuredMissCycles /
                          static_cast<double>(instructions_);
        }
        if (cell.physModel) {
            result.physModeled = true;
            result.phys = cell.physModel->counters();
            result.physFrag = cell.physModel->snapshot();
            result.cpiPhys =
                result.cpiTlb +
                (instructions_ == 0
                     ? 0.0
                     : static_cast<double>(result.phys.pagesCopied) *
                           cell.physModel->config().copyCyclesPerPage /
                           static_cast<double>(instructions_));
        }
        if (cell.walker) {
            result.walkModeled = true;
            result.walk = cell.walker->stats();
            result.cpiWalk =
                instructions_ == 0
                    ? 0.0
                    : static_cast<double>(result.walk.cycles) /
                          static_cast<double>(instructions_);
        }
        if (const auto *victim =
                dynamic_cast<const VictimTlb *>(&cell.tlb)) {
            result.victimModeled = true;
            result.victim = victim->victimStats();
        }
        if (options_.harnessStats) {
            result.harnessMeasured = true;
            result.harness.wallSeconds = harness_wall_;
            // Replayed refs include warmup — that's real wall time.
            result.harness.refsPerSec =
                harness_wall_ > 0.0
                    ? static_cast<double>(now_) / harness_wall_
                    : 0.0;
            result.harness.chunks = harness_chunks_;
            result.harness.chunkSplits = harness_splits_;
            const ProbeCacheCounters pc = cell.tlb.probeCacheCounters();
            result.harness.probeCacheLookups = pc.lookups;
            result.harness.probeCacheHits = pc.hits;
        }
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace tps::core
