/**
 * @file
 * Shared runners for every table and figure in the paper's evaluation,
 * used by both the bench binaries and the integration tests.
 *
 * Per-experiment mapping (see DESIGN.md for the full index):
 *   - runWorkloadTable    -> Table 3.1
 *   - runWsSingleStudy    -> Figure 4.1
 *   - runWsTwoStudy       -> Figure 4.2
 *   - runCpiStudy         -> Figures 5.1 (FA) and 5.2 (set-assoc)
 *   - runIndexingStudy    -> Table 5.1
 *   - deltaMp (from runCpiStudy rows) -> Section 5.2's critical
 *     miss-penalty increase
 */

#ifndef TPS_CORE_FIGURES_H_
#define TPS_CORE_FIGURES_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/progress.h"
#include "obs/trace_profiler.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace tps::core
{

/** Trace-length / window scaling shared by all studies. */
struct StudyScale
{
    /** References simulated per workload (paper: 1e8..4e9). */
    std::uint64_t refs = 2'000'000;

    /** Working-set / assignment window T (paper: 1e7). */
    RefTime window = 200'000;

    /**
     * References replayed before TLB measurement starts (CPI studies
     * only; working-set studies measure the whole trace as the paper
     * does).  Default: refs / 4.
     */
    std::uint64_t warmupRefs = 500'000;

    /**
     * Worker threads for the study runners (each workload row is an
     * independent task; row order and results are identical at any
     * thread count).  0 = auto: TPS_THREADS when set, else
     * std::thread::hardware_concurrency(); 1 = serial.
     */
    unsigned threads = 0;

    /**
     * Interval-telemetry controls applied to every experiment cell
     * the study runners execute (off unless intervalRefs != 0; see
     * RunOptions::timeseries and `--timeseries-out` in
     * bench_common.h).
     */
    obs::TimeSeriesConfig timeseries;

    /**
     * References classified per chunk by the batched experiment
     * engine (RunOptions::chunkRefs; `--chunk-refs` in bench_common.h,
     * TPS_CHUNK_REFS in the environment).  Results are identical at
     * any value; only throughput changes.
     */
    std::size_t chunkRefs = 4096;

    /**
     * Structural page-walk model applied to every cell the study
     * runners execute (RunOptions::walk; `--walk-model`,
     * `--pwc-entries` and `--victim-entries` in bench_common.h,
     * TPS_WALK_MODEL in the environment).  Off by default — the flat
     * miss-penalty constant stays the oracle.
     */
    walk::WalkConfig walk;
};

/**
 * Default scale, honouring the TPS_REFS and TPS_WINDOW environment
 * overrides so benches can be run at paper scale.
 */
StudyScale defaultScale();

/**
 * Map one row-builder over the whole suite, one task per workload,
 * on the scale's worker threads.  Every task must instantiate its own
 * generator and analyzers (tasks share no mutable state); results
 * come back in suite order no matter how many threads ran them.  All
 * the study runners below and the per-workload bench loops go through
 * this.
 */
template <typename Fn>
auto
forEachSuiteWorkload(const StudyScale &scale, Fn &&fn)
{
    const auto &suite = workloads::suite();
    const unsigned threads = scale.threads != 0
                                 ? scale.threads
                                 : util::ThreadPool::defaultThreads();
    obs::ProgressReporter progress(suite.size(), "workloads");
    auto rows = util::parallelMapIndex(
        threads, suite.size(), [&](std::size_t i) {
            obs::ScopedSpan span(suite[i].name, "workload");
            auto row = fn(suite[i]);
            progress.tick(scale.refs);
            return row;
        });
    progress.finish();
    return rows;
}

// ---------------------------------------------------------------- 3.1

/** One row of Table 3.1. */
struct WorkloadRow
{
    std::string name;
    std::string description;
    std::uint64_t refs = 0;
    std::uint64_t instructions = 0;
    double rpi = 0.0;
    std::uint64_t footprintBytes = 0; ///< distinct 4KB pages x 4KB
    double avgWs4kBytes = 0.0;        ///< working set @4KB, window T
};

std::vector<WorkloadRow> runWorkloadTable(const StudyScale &scale);

// ---------------------------------------------------------------- 4.x

/** Working sets for single page sizes (one row per workload). */
struct WsSingleRow
{
    std::string name;
    double ws4kBytes = 0.0;
    /** Normalized WS per requested size, same order as sizes arg. */
    std::vector<double> wsNormalized;
};

std::vector<WsSingleRow>
runWsSingleStudy(const StudyScale &scale,
                 const std::vector<unsigned> &size_log2s);

/** Working sets: single sizes vs the dynamic two-size scheme. */
struct WsTwoRow
{
    std::string name;
    double ws4kBytes = 0.0;
    double norm8k = 0.0;
    double norm16k = 0.0;
    double norm32k = 0.0;
    double normTwoSize = 0.0; ///< 4KB/32KB dynamic policy
    double largeFraction = 0.0; ///< refs mapped large under the policy
};

std::vector<WsTwoRow> runWsTwoStudy(const StudyScale &scale,
                                    const TwoSizeConfig &policy_config);

// ---------------------------------------------------------------- 5.x

/** CPI_TLB for the four page-size schemes of Figures 5.1/5.2. */
struct CpiRow
{
    std::string name;
    double cpi4k = 0.0;
    double cpi8k = 0.0;
    double cpi32k = 0.0;
    double cpiTwoSize = 0.0;
    double mpi4k = 0.0;
    double mpiTwoSize = 0.0;
    double largeFraction = 0.0;
    std::uint64_t promotions = 0;

    /** Section 5.2's critical miss-penalty increase. */
    double
    deltaMp() const
    {
        return criticalMissPenaltyIncrease(mpi4k, mpiTwoSize);
    }
};

/**
 * Run the Figure 5.1/5.2 study on one TLB shape.
 * @param base organization/entries/ways/replacement are taken from
 *             here; page sizes and scheme are set per column
 *             (single-size columns use exact indexing; the two-size
 *             column uses base.scheme).
 */
std::vector<CpiRow> runCpiStudy(const StudyScale &scale,
                                const TlbConfig &base,
                                const CpiModel &cpi = {});

// --------------------------------------------------------------- T5.1

/** One row of Table 5.1 (per TLB size). */
struct IndexingRow
{
    std::string name;
    double cpi4k = 0.0;             ///< 4KB pages, exact (small) index
    double cpi4kLargeIndex = 0.0;   ///< 4KB pages on large-index hw
    double cpiTwoLargeIndex = 0.0;  ///< 4KB/32KB, large-page index
    double cpiTwoExactIndex = 0.0;  ///< 4KB/32KB, exact index
};

std::vector<IndexingRow> runIndexingStudy(const StudyScale &scale,
                                          std::size_t entries,
                                          std::size_t ways,
                                          const CpiModel &cpi = {});

/** The paper's default 4KB/32KB assignment policy at scale T. */
TwoSizeConfig paperPolicy(const StudyScale &scale);

} // namespace tps::core

#endif // TPS_CORE_FIGURES_H_
