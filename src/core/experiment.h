/**
 * @file
 * The experiment driver: trace -> page-size policy -> TLB (+ optional
 * working-set tracking and page-table modeling) in a single pass,
 * producing every metric the paper reports.
 */

#ifndef TPS_CORE_EXPERIMENT_H_
#define TPS_CORE_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cpi_model.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "phys/memory_model.h"
#include "tlb/factory.h"
#include "tlb/victim_tlb.h"
#include "trace/trace_source.h"
#include "vm/lifecycle_ledger.h"
#include "vm/policy.h"
#include "vm/two_size_policy.h"
#include "walk/walk.h"

namespace tps::core
{

namespace detail
{
/** Interval-telemetry column names shared by the single-process and
 *  multiprogrammed drivers (defined in experiment.cc; the recorder
 *  stores rows positionally against these lists, so both drivers must
 *  agree on the base layout). */
extern const std::vector<std::string> kTsCounterNames;
extern const std::vector<std::string> kTsValueNames;
extern const std::vector<std::string> kTsPhysCounterNames;
extern const std::vector<std::string> kTsPhysValueNames;
} // namespace detail

/** Which page-size assignment to simulate. */
struct PolicySpec
{
    enum class Kind
    {
        Single,
        TwoSize,
    };

    Kind kind = Kind::Single;
    unsigned singleLog2 = kLog2_4K; ///< Kind::Single
    TwoSizeConfig twoSize;          ///< Kind::TwoSize

    /** Convenience constructors. */
    static PolicySpec single(unsigned size_log2);
    static PolicySpec twoSizes(const TwoSizeConfig &config);

    std::unique_ptr<PageSizePolicy> instantiate() const;
};

/**
 * Specs are equal when they instantiate behaviourally identical
 * policies (only the fields of the selected kind participate).  The
 * sweep runner uses this to group cells that can share one trace pass.
 */
bool operator==(const PolicySpec &a, const PolicySpec &b);
inline bool
operator!=(const PolicySpec &a, const PolicySpec &b)
{
    return !(a == b);
}

/** How runExperiment walks the trace. */
enum class ExecMode
{
    /**
     * Chunked execution: classify a chunk of references up front
     * (recording promotion/demotion events at their reference index),
     * then probe the TLB through Tlb::lookupBatch() on the event-free
     * segments.  Bit-identical to PerRef — the event indices restore
     * the exact classify/invalidate/probe interleaving — but several
     * times faster (DESIGN.md §11).
     */
    Batched,

    /**
     * Reference-at-a-time execution through the virtual per-ref path:
     * classify, invalidate, probe for each reference in turn.  The
     * oracle the equivalence tests hold Batched against.
     */
    PerRef,
};

/** Run controls independent of TLB/policy structure. */
struct RunOptions
{
    /** Stop after this many references (0 = drain the source). */
    std::uint64_t maxRefs = 2'000'000;

    /**
     * References replayed before measurement starts: TLB contents and
     * policy state warm up, but statistics are zeroed at this point.
     * The paper's 1e8..4e9-reference traces amortize cold-start and
     * first-pass promotion transients that would dominate our scaled
     * traces; a warmup of ~1/4 of the trace is the scaled equivalent.
     * Must be < maxRefs (or 0 to measure everything).
     */
    std::uint64_t warmupRefs = 0;

    CpiModel cpi;

    /**
     * Track the average working set of the classified page stream
     * with this window (0 = do not track).
     */
    RefTime wsWindow = 0;

    /**
     * Model the OS page tables and software walker, measuring an
     * empirical miss penalty alongside the constant-model CPI.
     */
    bool modelPageTables = false;

    /**
     * Physical memory model (off unless phys.memBytes != 0): a buddy
     * allocator backs every classified page, reservation or copy-based
     * promotion is simulated per chunk, and fragmentation telemetry is
     * recorded (see phys/memory_model.h).  The frame/superpage
     * exponents are re-derived from the policy in play; when page
     * tables are also modeled their pfns come from this model.  Off,
     * nothing changes — the null allocator preserves today's output
     * bit for bit.
     */
    phys::PhysConfig phys;

    /**
     * Interval telemetry (off unless intervalRefs != 0): snapshot
     * every counter each intervalRefs measured references and
     * reservoir-sample miss events, producing the result's
     * tps-timeseries-v1 series.  The finished series also lands in
     * obs::TimeSeriesSink::global() when one is enabled
     * (`--timeseries-out`, see bench_common.h).  When this config is
     * left disabled but a global sink exists, the sink's config is
     * used instead, so `--timeseries-out` covers benches that build
     * their RunOptions by hand.
     */
    obs::TimeSeriesConfig timeseries;

    /**
     * Structured event telemetry (off unless events.sampleEvery != 0):
     * record promotion/demotion/TLB-eviction/shootdown/reservation-
     * break events into the result's tps-events-v1 log, sampled and
     * capped per stream (see obs/event_log.h).  The finished log also
     * lands in obs::EventLogSink::global() when one is enabled
     * (`--events-out`, see bench_common.h); like the timeseries
     * config, a global sink acts as the default when this config is
     * left disabled.  Event logs are byte-identical under serial vs
     * parallel sweeps and batched vs per-ref execution.
     */
    obs::EventLogConfig events;

    /**
     * Page-lifecycle accounting (implied by `events`, or on its own):
     * fold the promotion/demotion stream into per-chunk dwell-time
     * histograms, churn counts and the wasted-promotion metric, and
     * add per-interval reach columns (reach_bytes, reach_utilization)
     * to the timeseries.  Exported under "<prefix>.lifecycle.*" and
     * "<prefix>.reach.*" — feature-gated so output without it is
     * unchanged byte for byte.
     */
    bool lifecycle = false;

    /**
     * Structural page-walk model (off unless walk.enabled): charge
     * every TLB miss a radix walk whose depth depends on the missing
     * page's size, partially absorbed by a page-walk cache, and report
     * the emergent `cpi_walk` alongside the constant-penalty cpiTlb
     * (which stays untouched — the flat model remains the oracle the
     * paper's numbers come from).  Feature-gated: disabled, every
     * output is unchanged byte for byte (see walk/walk.h).
     */
    walk::WalkConfig walk;

    /** Execution engine (results are bit-identical either way). */
    ExecMode exec = ExecMode::Batched;

    /**
     * References classified per chunk under ExecMode::Batched.  Chunks
     * additionally split at the warmup boundary and at interval-close
     * positions so every observable is read at the same reference
     * index as under PerRef.  Larger chunks amortize more per-chunk
     * bookkeeping at the cost of a larger classified-page buffer.
     */
    std::size_t chunkRefs = 4096;

    /**
     * Harness self-telemetry (off by default): measure the simulator's
     * own performance per cell — wall seconds, refs/s, chunk/split
     * counts, probe-index-cache hit rate — and export it under
     * "<prefix>.harness.*".  Feature-gated because wall-clock keys are
     * nondeterministic and must never appear in determinism diffs or
     * resumable campaign aggregates (those skip "harness" segments).
     * Only the batched engine measures it; under ExecMode::PerRef the
     * result's harnessMeasured stays false.
     */
    bool harnessStats = false;
};

/** Everything measured in one run. */
struct ExperimentResult
{
    std::string workload;
    std::string tlbName;
    std::string policyName;

    std::uint64_t refs = 0;
    std::uint64_t instructions = 0;

    TlbStats tlb;
    PolicyStats policy;

    double cpiTlb = 0.0;    ///< constant-penalty model (the paper's)
    double mpi = 0.0;       ///< TLB misses per instruction
    double missRatio = 0.0; ///< misses per reference
    double rpi = 0.0;       ///< references per instruction

    /** Average working set in bytes (0 unless wsWindow was set). */
    double avgWsBytes = 0.0;
    /** True when wsWindow was set (avg_ws_bytes is meaningful). */
    bool wsTracked = false;

    /** Measured mean handler cycles (0 unless modelPageTables). */
    double measuredMissCycles = 0.0;
    /** CPI_TLB recomputed with the measured penalty. */
    double cpiTlbMeasured = 0.0;
    /** True when modelPageTables was set. */
    bool pageTablesModeled = false;

    /** Physical memory model outputs (meaningful iff physModeled). */
    bool physModeled = false;
    phys::PhysCounters phys;     ///< whole-run (post-warmup) counters
    phys::FragSnapshot physFrag; ///< end-of-run free-memory snapshot
    /** CPI_TLB plus the modeled copy cost of copy-based promotions
     *  (phys.pagesCopied * copyCyclesPerPage per instruction). */
    double cpiPhys = 0.0;

    /** Interval telemetry (null unless options.timeseries enabled).
     *  Shared so results stay cheap to copy through sweep plumbing. */
    std::shared_ptr<const obs::TimeSeries> timeseries;

    /** Lifecycle/reach telemetry (meaningful iff lifecycleTracked):
     *  the ledger's whole-run summary — its promote/demote totals
     *  reconcile exactly with the policy counters — plus end-of-run
     *  reach state (ledger view and TLB-occupancy view). */
    bool lifecycleTracked = false;
    LifecycleSummary lifecycle;
    /** Bytes mapped large at end of run (ledger view). */
    std::uint64_t reachOpenBytes = 0;
    /** touched/covered subpages over the open episodes at end. */
    double reachUtilization = 0.0;
    /** TLB occupancy at end of run (valid-entry reach, set pressure). */
    Tlb::ReachSnapshot reach;

    /** Structured event log (null unless options.events enabled). */
    std::shared_ptr<const obs::EventLog> events;

    /** Structural walk model outputs (meaningful iff walkModeled). */
    bool walkModeled = false;
    walk::WalkStats walk;
    /**
     * CPI charged by the structural walker: walk.cycles (an exact
     * integer — cyclesPerLevel * level accesses + pwcHitCycles * PWC
     * hits) per instruction.  The emergent counterpart of the flat
     * cpiTlb.
     */
    double cpiWalk = 0.0;

    /**
     * Victim-TLB outputs (meaningful iff victimModeled): set whenever
     * the cell's TLB is a VictimTlb, independently of the walk model.
     * Exported under "<prefix>.walk.victim_*" so the one feature
     * namespace covers the whole mechanism axis.
     */
    bool victimModeled = false;
    VictimStats victim;

    /**
     * Harness self-telemetry (meaningful iff harnessMeasured): how
     * fast the *simulator* ran this cell, not the simulated machine.
     * Under runSharedPass the wall clock covers the whole shared pass
     * (cells of one pass execute interleaved and are not separable).
     */
    struct HarnessStats
    {
        double wallSeconds = 0.0;
        double refsPerSec = 0.0;  ///< replayed refs (incl. warmup) / wall
        std::uint64_t chunks = 0; ///< batched chunks executed
        /** Chunks truncated at a warmup/interval/maxRefs boundary. */
        std::uint64_t chunkSplits = 0;
        std::uint64_t probeCacheLookups = 0;
        std::uint64_t probeCacheHits = 0;
    };
    bool harnessMeasured = false;
    HarnessStats harness;

    /**
     * Register everything measured under "<prefix>.": run counters
     * ("<prefix>.refs"), the TLB counters ("<prefix>.tlb.miss"), the
     * policy counters ("<prefix>.policy.promotions") and the derived
     * metrics ("<prefix>.cpi_tlb", ...), with the workload/TLB/policy
     * names as text entries.
     */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * Run one experiment: replays @p trace (after reset()) through
 * @p policy into @p tlb.
 *
 * The policy's invalidation sink is pointed at the TLB for the
 * duration (promotions shoot down stale entries, per Section 3.4).
 */
ExperimentResult runExperiment(TraceSource &trace, PageSizePolicy &policy,
                               Tlb &tlb, const RunOptions &options,
                               ProbeStrategy probe = ProbeStrategy::Parallel);

/**
 * Convenience wrapper: build policy and TLB from specs, then run.
 */
ExperimentResult runExperiment(TraceSource &trace,
                               const PolicySpec &policy_spec,
                               const TlbConfig &tlb_config,
                               const RunOptions &options);

/**
 * Run several TLB configurations through ONE pass over @p trace,
 * sharing the page-size classification work (stacksim's
 * one-pass-many-configs trick applied to the full driver).
 *
 * Legality: the policy's evolution — and therefore the classified page
 * stream, the promotion/demotion event sequence, the instruction count
 * and the working set — depends only on (vaddr, now), never on any
 * TLB's contents.  Everything downstream of classification (TLB,
 * page tables, physical memory, telemetry) is instantiated per cell,
 * so results[i] is bit-identical to
 * runExperiment(trace, policy_spec, tlb_configs[i], options).
 *
 * Always executes batched; options.exec is ignored.
 */
std::vector<ExperimentResult>
runSharedPass(TraceSource &trace, const PolicySpec &policy_spec,
              const std::vector<TlbConfig> &tlb_configs,
              const RunOptions &options);

} // namespace tps::core

#endif // TPS_CORE_EXPERIMENT_H_
