#include "core/figures.h"

#include "core/sweep.h"
#include "trace/trace_stats.h"
#include "trace/transforms.h"
#include "util/format.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"
#include "wset/avg_working_set.h"
#include "wset/two_size_working_set.h"
#include "wset/windowed_working_set.h"

namespace tps::core
{

StudyScale
defaultScale()
{
    StudyScale scale;
    scale.refs = envOr("TPS_REFS", scale.refs);
    scale.window = envOr("TPS_WINDOW", scale.window);
    scale.warmupRefs = envOr("TPS_WARMUP", scale.refs / 4);
    scale.chunkRefs = static_cast<std::size_t>(
        envOr("TPS_CHUNK_REFS", scale.chunkRefs));
    scale.walk.enabled =
        envOr("TPS_WALK_MODEL", std::uint64_t{0}) != 0;
    return scale;
}

TwoSizeConfig
paperPolicy(const StudyScale &scale)
{
    TwoSizeConfig config;
    config.smallLog2 = kLog2_4K;
    config.largeLog2 = kLog2_32K;
    config.window = scale.window;
    // promoteThreshold 0 -> "half or more of the blocks" (Section 3.4)
    return config;
}

std::vector<WorkloadRow>
runWorkloadTable(const StudyScale &scale)
{
    return forEachSuiteWorkload(scale, [&](const auto &info) {
        auto workload = info.instantiate();

        // One pass collects both descriptive stats and the 4KB
        // average working set.
        TraceStatsBuilder stats_builder;
        AvgWorkingSet wset({kLog2_4K}, {scale.window});
        MemRef ref;
        for (std::uint64_t n = 0; n < scale.refs && workload->next(ref);
             ++n) {
            stats_builder.observe(ref);
            wset.observe(ref.vaddr);
        }
        wset.finish();
        const TraceStats stats = stats_builder.finish();

        WorkloadRow row;
        row.name = info.name;
        row.description = info.description;
        row.refs = stats.refs;
        row.instructions = stats.instructions;
        row.rpi = stats.rpi();
        row.footprintBytes = stats.footprintBytes();
        row.avgWs4kBytes = wset.averageBytes(0, 0);
        return row;
    });
}

std::vector<WsSingleRow>
runWsSingleStudy(const StudyScale &scale,
                 const std::vector<unsigned> &size_log2s)
{
    return forEachSuiteWorkload(scale, [&](const auto &info) {
        auto workload = info.instantiate();

        // All sizes in one pass (the Slutz-Traiger property the
        // paper's tooling relied on).
        std::vector<unsigned> sizes = {kLog2_4K};
        sizes.insert(sizes.end(), size_log2s.begin(), size_log2s.end());
        AvgWorkingSet wset(sizes, {scale.window});
        MemRef ref;
        for (std::uint64_t n = 0; n < scale.refs && workload->next(ref);
             ++n)
            wset.observe(ref.vaddr);
        wset.finish();

        WsSingleRow row;
        row.name = info.name;
        row.ws4kBytes = wset.averageBytes(0, 0);
        for (std::size_t s = 1; s < sizes.size(); ++s) {
            row.wsNormalized.push_back(
                row.ws4kBytes == 0.0
                    ? 0.0
                    : wset.averageBytes(s, 0) / row.ws4kBytes);
        }
        return row;
    });
}

std::vector<WsTwoRow>
runWsTwoStudy(const StudyScale &scale, const TwoSizeConfig &policy_config)
{
    return forEachSuiteWorkload(scale, [&](const auto &info) {
        auto workload = info.instantiate();

        AvgWorkingSet wset_static(
            {kLog2_4K, kLog2_8K, kLog2_16K, kLog2_32K}, {scale.window});
        // The dynamic analyzer evaluates the Section 3.4 assignment
        // from the window contents at every t (the paper's
        // definition); the policy instance runs alongside purely to
        // report the large-page reference fraction.
        TwoSizeWorkingSet wset_dynamic(policy_config);
        TwoSizePolicy policy(policy_config);

        MemRef ref;
        RefTime now = 0;
        while (now < scale.refs && workload->next(ref)) {
            ++now;
            wset_static.observe(ref.vaddr);
            wset_dynamic.observe(ref.vaddr);
            policy.classify(ref.vaddr, now);
        }
        wset_static.finish();

        WsTwoRow row;
        row.name = info.name;
        row.ws4kBytes = wset_static.averageBytes(0, 0);
        if (row.ws4kBytes > 0.0) {
            row.norm8k = wset_static.averageBytes(1, 0) / row.ws4kBytes;
            row.norm16k = wset_static.averageBytes(2, 0) / row.ws4kBytes;
            row.norm32k = wset_static.averageBytes(3, 0) / row.ws4kBytes;
            row.normTwoSize =
                wset_dynamic.averageBytes() / row.ws4kBytes;
        }
        row.largeFraction = policy.stats().largeFraction();
        return row;
    });
}

namespace
{

/** Run one (policy, TLB) cell of a CPI study. */
ExperimentResult
runCell(TraceSource &trace, const PolicySpec &policy, TlbConfig tlb,
        const StudyScale &scale, const CpiModel &cpi)
{
    // Label construction instantiates a throwaway policy for its
    // name, so skip it entirely unless tracing is on.
    obs::TraceProfiler *profiler = obs::TraceProfiler::global();
    obs::ScopedSpan span(profiler,
                         profiler != nullptr
                             ? trace.name() + " | " + tlb.describe() +
                                   " / " + describePolicy(policy)
                             : std::string(),
                         "cell");
    RunOptions options;
    options.maxRefs = scale.refs;
    options.warmupRefs =
        scale.warmupRefs < scale.refs ? scale.warmupRefs : 0;
    options.cpi = cpi;
    options.timeseries = scale.timeseries;
    options.chunkRefs = scale.chunkRefs;
    options.walk = scale.walk;
    return runExperiment(trace, policy, tlb, options);
}

/** TLB config for a single-size column: index by that size's bits. */
TlbConfig
singleSizeTlb(TlbConfig base, unsigned size_log2)
{
    base.scheme = IndexScheme::Exact;
    base.smallLog2 = size_log2;
    // largeLog2 only disambiguates stats and must stay above small.
    base.largeLog2 = size_log2 + 3;
    return base;
}

} // namespace

std::vector<CpiRow>
runCpiStudy(const StudyScale &scale, const TlbConfig &base,
            const CpiModel &cpi)
{
    const TwoSizeConfig policy2 = paperPolicy(scale);
    return forEachSuiteWorkload(scale, [&](const auto &info) {
        auto workload = info.instantiate();

        CpiRow row;
        row.name = info.name;

        const auto r4 =
            runCell(*workload, PolicySpec::single(kLog2_4K),
                    singleSizeTlb(base, kLog2_4K), scale, cpi);
        row.cpi4k = r4.cpiTlb;
        row.mpi4k = r4.mpi;

        row.cpi8k = runCell(*workload, PolicySpec::single(kLog2_8K),
                            singleSizeTlb(base, kLog2_8K), scale, cpi)
                        .cpiTlb;
        row.cpi32k = runCell(*workload, PolicySpec::single(kLog2_32K),
                             singleSizeTlb(base, kLog2_32K), scale, cpi)
                         .cpiTlb;

        TlbConfig two_tlb = base;
        two_tlb.smallLog2 = policy2.smallLog2;
        two_tlb.largeLog2 = policy2.largeLog2;
        const auto r2 = runCell(*workload, PolicySpec::twoSizes(policy2),
                                two_tlb, scale, cpi);
        row.cpiTwoSize = r2.cpiTlb;
        row.mpiTwoSize = r2.mpi;
        row.largeFraction = r2.policy.largeFraction();
        row.promotions = r2.policy.promotions;

        return row;
    });
}

std::vector<IndexingRow>
runIndexingStudy(const StudyScale &scale, std::size_t entries,
                 std::size_t ways, const CpiModel &cpi)
{
    const TwoSizeConfig policy2 = paperPolicy(scale);

    TlbConfig base;
    base.organization = TlbOrganization::SetAssociative;
    base.entries = entries;
    base.ways = ways;
    base.smallLog2 = policy2.smallLog2;
    base.largeLog2 = policy2.largeLog2;

    return forEachSuiteWorkload(scale, [&](const auto &info) {
        auto workload = info.instantiate();

        IndexingRow row;
        row.name = info.name;

        TlbConfig tlb = base;
        tlb.scheme = IndexScheme::Exact; // small pages -> small index
        row.cpi4k = runCell(*workload, PolicySpec::single(kLog2_4K), tlb,
                            scale, cpi)
                        .cpiTlb;

        tlb.scheme = IndexScheme::LargePage;
        row.cpi4kLargeIndex =
            runCell(*workload, PolicySpec::single(kLog2_4K), tlb, scale,
                    cpi)
                .cpiTlb;

        tlb.scheme = IndexScheme::LargePage;
        row.cpiTwoLargeIndex =
            runCell(*workload, PolicySpec::twoSizes(policy2), tlb, scale,
                    cpi)
                .cpiTlb;

        tlb.scheme = IndexScheme::Exact;
        row.cpiTwoExactIndex =
            runCell(*workload, PolicySpec::twoSizes(policy2), tlb, scale,
                    cpi)
                .cpiTlb;

        return row;
    });
}

} // namespace tps::core
