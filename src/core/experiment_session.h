/**
 * @file
 * Resumable experiment engine: the chunked (ExecMode::Batched) driver
 * loop of runExperiment, reshaped into a state machine that advances
 * one chunk per step() call.
 *
 * Motivation (DESIGN.md §14): a trace-replay daemon must multiplex
 * many experiments onto a few worker threads, which means an
 * experiment has to be something the scheduler can put down and pick
 * up again.  The contract that makes that safe is bit-identity:
 * stepping a session to exhaustion and calling finish() produces
 * byte-identical stats, timeseries and event logs to the one-shot
 * runExperiment path, at every quantum size (gated by tests/net/).
 *
 * A session borrows its trace, policy and TLBs — the caller keeps
 * ownership and must keep them alive until finish() (or destruction).
 * Sessions are not movable: cells' event sinks hold the address of a
 * member clock.  One session is single-threaded; concurrency comes
 * from running different sessions on different workers.
 */

#ifndef TPS_CORE_EXPERIMENT_SESSION_H_
#define TPS_CORE_EXPERIMENT_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/experiment.h"

namespace tps::core
{

namespace detail
{
class EventRecorder;
} // namespace detail

/** One TLB configuration sharing a session's classification pass. */
struct SessionCell
{
    Tlb *tlb = nullptr;
    ProbeStrategy probe = ProbeStrategy::Parallel;
};

/**
 * The chunked engine, generalized to N cells and resumable: one
 * classification pass feeds any number of TLB configurations, each
 * with its own downstream models (DESIGN.md §11), one chunk per
 * step().
 *
 * Bit-identity with the per-ref oracle rests on three invariants:
 *  - policy state depends only on (vaddr, now), never on a TLB, so
 *    classifying a chunk ahead of the probes (and sharing the result
 *    across cells) yields the identical page stream;
 *  - policy side effects are replayed into each cell at the recorded
 *    reference index, and probes between two event indices carry no
 *    ordering hazard (lookups never touch the page-table or physical
 *    models, and miss work never touches the TLB);
 *  - chunks split at every point where per-ref code reads or resets
 *    mid-stream state (warmup boundary, interval closes, maxRefs), so
 *    each observable is read at the same reference index.
 *
 * Resumability adds a fourth: no chunk reads state a previous chunk
 * did not leave behind, so where the step() calls fall — one per
 * chunk, all at once, or interleaved with other sessions' — cannot
 * change any output.
 */
class ExperimentSession
{
  public:
    /**
     * Bind a session to @p trace / @p policy / the cells' TLBs (all
     * borrowed; reset() is called on each).  Validates options the
     * same way runExperiment does (positive chunkRefs, warmup below
     * maxRefs).
     */
    ExperimentSession(TraceSource &trace, PageSizePolicy &policy,
                      std::vector<SessionCell> cells,
                      const RunOptions &options);
    ~ExperimentSession();

    ExperimentSession(const ExperimentSession &) = delete;
    ExperimentSession &operator=(const ExperimentSession &) = delete;

    /**
     * Replay one chunk (up to options.chunkRefs references, split
     * early at warmup/interval/maxRefs boundaries).  Returns false —
     * without consuming anything — once the trace is drained or
     * maxRefs is reached; the session is then exhausted and only
     * finish() remains.
     */
    bool step();

    /** step() up to @p max_chunks times; returns chunks executed. */
    std::uint64_t advance(std::uint64_t max_chunks);

    /** True once step() has hit end-of-trace / maxRefs. */
    bool exhausted() const { return exhausted_; }

    /** True once finish() has been called. */
    bool finished() const { return finished_; }

    /** References replayed so far, including warmup. */
    std::uint64_t replayedRefs() const { return now_; }

    /** Measured (post-warmup) references replayed so far. */
    std::uint64_t measuredRefs() const { return measured_refs_; }

    /** Chunks executed so far (monotonic; step() that returns false
     *  does not count). */
    std::uint64_t chunksExecuted() const { return harness_chunks_; }

    std::size_t cellCount() const { return cells_.size(); }

    /**
     * Live view of one cell's interval recorder (nullptr when the run
     * records no telemetry).  Rows accumulate as intervals close;
     * reading between step() calls is how a server streams telemetry
     * without waiting for the run to finish.
     */
    const obs::TimeSeriesRecorder *recorder(std::size_t cell) const;

    /**
     * Detach from the borrowed policy/TLBs and build one result per
     * cell.  Callable once; normally after step() returns false, but
     * an early finish() is legal and yields the stats of the partial
     * run (how a server reports a cancelled session).
     */
    std::vector<ExperimentResult> finish();

  private:
    struct Cell;

    void closeCell(Cell &cell);
    void closeAll();
    void replayChunk(Cell &cell, std::size_t got,
                     std::uint64_t base_measured, bool measuring);
    void detachSinks();

    TraceSource &trace_;
    PageSizePolicy &policy_;
    RunOptions options_;
    bool two_sizes_ = false;
    obs::TimeSeriesConfig ts_config_;
    std::uint64_t interval_refs_ = 0;
    obs::EventLogConfig events_config_;
    bool lifecycle_on_ = false;

    // The event clock for shootdown/resv_break emission: replayChunk
    // keeps it at the measured index of the reference being replayed
    // (0 during warmup), mirroring the per-ref engine's measured_refs.
    // Cells' sinks hold its address (hence: not movable).
    RefTime event_now_ = 0;

    std::vector<std::unique_ptr<Cell>> cells_;
    std::optional<LifecycleLedger> ledger_;
    std::unique_ptr<detail::EventRecorder> recorder_;

    SingleSizePolicy *policy1_ = nullptr;
    TwoSizePolicy *policy2_ = nullptr;

    std::vector<MemRef> refs_;
    std::vector<Tlb::BatchRef> brefs_;
    Tlb::BatchResult probe_result_;

    RefTime now_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t measured_refs_ = 0;

    // Harness self-telemetry: counted unconditionally (two integer
    // increments per *chunk*), exported only under
    // options.harnessStats.  The wall clock sums step() durations, so
    // a session parked between quanta does not accrue time.
    std::uint64_t harness_chunks_ = 0;
    std::uint64_t harness_splits_ = 0;
    double harness_wall_ = 0.0;

    // Interval bookkeeping shared by all cells: closes fall at the
    // same measured-reference positions everywhere, and the policy and
    // instruction streams are cell-independent.
    PolicyStats ts_prev_policy_;
    std::uint64_t ts_prev_instructions_ = 0;
    std::uint64_t ts_last_close_ = 0;

    bool exhausted_ = false;
    bool finished_ = false;
};

} // namespace tps::core

#endif // TPS_CORE_EXPERIMENT_SESSION_H_
