/**
 * @file
 * SweepRunner: declarative cartesian-product experiment sweeps.
 *
 * The paper evaluated 84+ TLB configurations against 12 traces; its
 * modern equivalent is a grid of (workload x TLB x policy) cells.
 * SweepRunner runs such a grid through the experiment driver and
 * hands back every cell, with helpers to render the grid as a table
 * (one row per workload, one column per configuration) or CSV.
 */

#ifndef TPS_CORE_SWEEP_H_
#define TPS_CORE_SWEEP_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace tps::core
{

/** One cell of a sweep. */
struct SweepCell
{
    std::string workload;
    std::string configLabel; ///< "<tlb> / <policy>"
    ExperimentResult result;
};

/** Cartesian-product sweep of workloads x (TLB, policy) pairs. */
class SweepRunner
{
  public:
    /** Add workloads by registry name (default: the whole suite). */
    SweepRunner &workloads(std::vector<std::string> names);

    /**
     * Add one configuration column.
     * @param label  shown as the column header; auto-derived from the
     *               TLB and policy when empty.
     */
    SweepRunner &configuration(const TlbConfig &tlb,
                               const PolicySpec &policy,
                               std::string label = "");

    /** Run controls applied to every cell. */
    SweepRunner &options(const RunOptions &options);

    /**
     * Interval-telemetry controls for every cell (shorthand for
     * mutating options().timeseries): each cell's ExperimentResult
     * carries its series and the global TimeSeriesSink, when enabled,
     * collects them all.
     */
    SweepRunner &timeseries(const obs::TimeSeriesConfig &config);

    /**
     * Worker threads for run().  0 (the default) resolves to
     * TPS_THREADS when set, else std::thread::hardware_concurrency();
     * 1 forces the fully serial in-thread path.
     */
    SweepRunner &threads(unsigned n);

    /**
     * Share one trace pass among configuration columns with equal
     * policies (stacksim's one-pass-many-configs trick, extended to
     * the full driver via runSharedPass).  Columns are grouped by
     * PolicySpec equality; each (workload, group) becomes one work
     * unit classifying the trace once and probing every TLB geometry
     * in the group.  Results stay bit-identical to independent cells
     * — the tests/perf suite gates this — and the returned vector
     * keeps serial row-major order.  Off by default.
     */
    SweepRunner &sharedPass(bool enabled = true);

    /**
     * Force the shared materialized-trace cache on or off.  When on,
     * each workload is generated once into an immutable in-memory
     * trace and every configuration replays it through its own
     * cursor; when off, each cell re-runs the generator.  The default
     * (without calling this) is automatic: cached when options().
     * maxRefs is bounded and small enough to hold in memory,
     * overridable via TPS_TRACE_CACHE=0/1.  Either way the replayed
     * stream is identical — sources are deterministic across reset().
     */
    SweepRunner &cacheTraces(bool enabled);

    /**
     * Per-cell lifecycle hooks (the campaign driver's heartbeat and
     * journal).  Called from worker threads, possibly concurrently —
     * the callee synchronizes.  onCellDone fires after the cell's
     * result is complete; under sharedPass(), start/done fire per cell
     * when its group's pass starts/completes.
     */
    SweepRunner &onCellStart(
        std::function<void(const std::string &workload,
                           const std::string &configLabel)> fn);
    SweepRunner &onCellDone(
        std::function<void(const std::string &workload,
                           const std::string &configLabel,
                           const ExperimentResult &result)> fn);

    /**
     * Resume support: cells for which @p fn returns true are not
     * executed.  Their SweepCell keeps workload/label but a default
     * result (refs == 0 marks it skipped); they fire no hooks and do
     * not tick progress.  Under sharedPass() a group's pass probes
     * only its pending members (legal because cells of a pass are
     * downstream-independent; the perf suite gates this).
     */
    SweepRunner &skipCells(
        std::function<bool(const std::string &workload,
                           const std::string &configLabel)> fn);

    /**
     * Seed the progress reporter with checkpointed work from a
     * resumed campaign: @p cells_done items and @p refs_done refs
     * count toward displayed totals but not rates/ETA (see
     * obs::ProgressReporter::seedResumed).
     */
    SweepRunner &resumed(std::uint64_t cells_done,
                         std::uint64_t refs_done);

    /**
     * FNV-1a fingerprint of everything that determines cell *results*:
     * resolved workload names, per-column labels + TLB + policy
     * parameters, and the result-relevant RunOptions (reference
     * budgets, CPI model, working-set window, page-table/phys
     * modeling, interval-telemetry shape).  Deliberately excludes the
     * bit-identical execution knobs — threads, chunkRefs, exec mode,
     * harnessStats — so a campaign may legally resume with different
     * parallelism.  The campaign journal stores this hash and refuses
     * to resume across a mismatch.
     */
    std::string fingerprint() const;

    /** Stable cell id: "<workload-slug>/<label-slug>" (journal key). */
    static std::string cellKey(const std::string &workload,
                               const std::string &configLabel);

    /**
     * Execute the grid.  Cells are scheduled across the configured
     * worker threads — each cell instantiates its own workload,
     * policy and TLB, so cells share no mutable state — and the
     * returned vector is always in serial row-major order (all
     * configs of one workload before the next) with bit-identical
     * results regardless of thread count.
     *
     * Observability: when the global trace profiler is enabled each
     * cell emits one "cell" span (plus one "replay" span per chunk
     * underneath), and when progress reporting is on a rate-limited
     * cells-done/refs-per-second line goes to stderr.
     */
    std::vector<SweepCell> run() const;

    std::size_t cells() const;

    /** Render CPI_TLB as a workload x configuration table.  Cells
     *  that measured no references print "-" rather than a fake 0
     *  CPI (see stats::Counter::perOr). */
    static void printCpiTable(std::ostream &os,
                              const std::vector<SweepCell> &cells);

    /** Dump every cell's key metrics as CSV. */
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepCell> &cells);

    /**
     * Register every cell's full counter set under
     * "<prefix>.<workload>.<config>." (labels are slugified:
     * lower-cased, runs of non-alphanumerics collapsed to '_').
     */
    static void exportStats(const std::vector<SweepCell> &cells,
                            obs::StatRegistry &registry,
                            const std::string &prefix = "sweep");

  private:
    struct Config
    {
        TlbConfig tlb;
        PolicySpec policy;
        std::string label;
    };

    enum class CacheMode
    {
        Auto,
        On,
        Off,
    };

    std::vector<std::string> workload_names_;
    std::vector<Config> configs_;
    RunOptions options_;
    unsigned threads_ = 0;
    CacheMode cache_mode_ = CacheMode::Auto;
    bool shared_pass_ = false;
    std::function<void(const std::string &, const std::string &)>
        on_cell_start_;
    std::function<void(const std::string &, const std::string &,
                       const ExperimentResult &)>
        on_cell_done_;
    std::function<bool(const std::string &, const std::string &)> skip_;
    std::uint64_t resumed_cells_ = 0;
    std::uint64_t resumed_refs_ = 0;
};

/** Human-readable label for a PolicySpec ("4KB", "4KB/32KB"). */
std::string describePolicy(const PolicySpec &spec);

} // namespace tps::core

#endif // TPS_CORE_SWEEP_H_
