/**
 * @file
 * SweepRunner: declarative cartesian-product experiment sweeps.
 *
 * The paper evaluated 84+ TLB configurations against 12 traces; its
 * modern equivalent is a grid of (workload x TLB x policy) cells.
 * SweepRunner runs such a grid through the experiment driver and
 * hands back every cell, with helpers to render the grid as a table
 * (one row per workload, one column per configuration) or CSV.
 */

#ifndef TPS_CORE_SWEEP_H_
#define TPS_CORE_SWEEP_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace tps::core
{

/** One cell of a sweep. */
struct SweepCell
{
    std::string workload;
    std::string configLabel; ///< "<tlb> / <policy>"
    ExperimentResult result;
};

/** Cartesian-product sweep of workloads x (TLB, policy) pairs. */
class SweepRunner
{
  public:
    /** Add workloads by registry name (default: the whole suite). */
    SweepRunner &workloads(std::vector<std::string> names);

    /**
     * Add one configuration column.
     * @param label  shown as the column header; auto-derived from the
     *               TLB and policy when empty.
     */
    SweepRunner &configuration(const TlbConfig &tlb,
                               const PolicySpec &policy,
                               std::string label = "");

    /** Run controls applied to every cell. */
    SweepRunner &options(const RunOptions &options);

    /**
     * Execute the grid (row-major: all configs of one workload before
     * the next, so each workload's generator state is reused).
     */
    std::vector<SweepCell> run() const;

    std::size_t cells() const;

    /** Render CPI_TLB as a workload x configuration table. */
    static void printCpiTable(std::ostream &os,
                              const std::vector<SweepCell> &cells);

    /** Dump every cell's key metrics as CSV. */
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepCell> &cells);

  private:
    struct Config
    {
        TlbConfig tlb;
        PolicySpec policy;
        std::string label;
    };

    std::vector<std::string> workload_names_;
    std::vector<Config> configs_;
    RunOptions options_;
};

/** Human-readable label for a PolicySpec ("4KB", "4KB/32KB"). */
std::string describePolicy(const PolicySpec &spec);

} // namespace tps::core

#endif // TPS_CORE_SWEEP_H_
