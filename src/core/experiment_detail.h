/**
 * @file
 * Internal helpers shared by the experiment engines: the per-ref
 * oracle (experiment.cc) and the resumable chunked session
 * (experiment_session.cc).  Everything here is an implementation
 * detail of core — tools and tests include experiment.h /
 * experiment_session.h instead.
 */

#ifndef TPS_CORE_EXPERIMENT_DETAIL_H_
#define TPS_CORE_EXPERIMENT_DETAIL_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/experiment.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "phys/memory_model.h"
#include "util/logging.h"
#include "vm/lifecycle_ledger.h"
#include "vm/multi_size_policy.h"
#include "vm/page_table.h"
#include "vm/policy.h"
#include "vm/two_size_policy.h"

namespace tps::core::detail
{

/**
 * Fans invalidation events out to the TLB and, optionally, mirrors
 * chunk remaps into the modeled page tables.  When the miss-event
 * sampler is on it also remembers shot-down pages so a later re-miss
 * on one can be attributed to the shootdown rather than to capacity.
 */
class SinkTee : public InvalidationSink
{
  public:
    SinkTee(Tlb &tlb, AddressSpace *address_space,
            phys::MemoryModel *phys_model,
            std::unordered_set<PageId, PageIdHash> *shot_down = nullptr)
        : tlb_(tlb), address_space_(address_space),
          phys_model_(phys_model), shot_down_(shot_down)
    {
    }

    /** Emit each shootdown into @p events ("shootdown" stream handle
     *  @p stream), timestamped from the driver-owned clock @p now. */
    void
    setEventSink(obs::EventLogRecorder *events, std::size_t stream,
                 const RefTime *now)
    {
        events_ = events;
        shootdown_stream_ = stream;
        event_now_ = now;
    }

    void
    invalidatePage(const PageId &page) override
    {
        tlb_.invalidatePage(page);
        if (shot_down_ != nullptr)
            shot_down_->insert(page);
        if (events_ != nullptr)
            events_->emit(shootdown_stream_, *event_now_, page.vpn,
                          page.sizeLog2);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        // Physical backing first: a subsequent page-table remap asks
        // the model for the superpage's pfn.
        if (phys_model_ != nullptr) {
            if (to_large)
                phys_model_->promoteChunk(chunk_number);
            else
                phys_model_->demoteChunk(chunk_number);
        }
        if (address_space_ != nullptr)
            address_space_->remapChunk(chunk_number, to_large);
    }

  private:
    Tlb &tlb_;
    AddressSpace *address_space_;
    phys::MemoryModel *phys_model_;
    std::unordered_set<PageId, PageIdHash> *shot_down_;
    obs::EventLogRecorder *events_ = nullptr;
    std::size_t shootdown_stream_ = 0;
    const RefTime *event_now_ = nullptr;
};

/**
 * Construct the modeled address space whose page-table layout matches
 * @p policy (shared by the per-ref and batched engines).
 */
inline void
emplaceAddressSpace(std::optional<AddressSpace> &slot,
                    const PageSizePolicy &policy)
{
    // Small/large exponents: take them from the policy when it is
    // multi-size; a single-size policy walks only the "small"
    // table, so pair it with an unused larger size.
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        slot.emplace(policy2->config().smallLog2,
                     policy2->config().largeLog2);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        slot.emplace(policy1->sizeLog2(), policy1->sizeLog2() + 3);
    } else {
        tps_fatal("page-table modeling supports single- and "
                  "two-size policies only (got ", policy.name(), ")");
    }
}

/**
 * Physical memory model: frame/superpage exponents follow the policy
 * in play (a single-size policy still gets a superpage ladder above it
 * so fragmentation is measured against something).
 */
inline phys::PhysConfig
resolvePhysConfig(const phys::PhysConfig &base,
                  const PageSizePolicy &policy)
{
    phys::PhysConfig phys_config = base;
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policy2->config().smallLog2;
        phys_config.superLog2 = policy2->config().largeLog2;
    } else if (const auto *policyn =
                   dynamic_cast<const MultiSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policyn->config().sizeLog2s.at(0);
        phys_config.superLog2 = policyn->config().sizeLog2s.at(1);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        phys_config.frameLog2 = policy1->sizeLog2();
        phys_config.superLog2 = policy1->sizeLog2() + 3;
    }
    return phys_config;
}

/**
 * The per-run interval-telemetry config: an explicitly enabled
 * options.timeseries wins, else a process-global sink
 * (--timeseries-out) acts as the default so every bench records
 * telemetry without plumbing it through its own RunOptions.
 */
inline obs::TimeSeriesConfig
resolveTsConfig(const RunOptions &options)
{
    obs::TimeSeriesConfig ts_config = options.timeseries;
    if (!ts_config.enabled()) {
        if (const obs::TimeSeriesSink *sink =
                obs::TimeSeriesSink::global())
            ts_config = sink->config();
    }
    return ts_config;
}

/**
 * The per-run event-log config: same fallback shape as
 * resolveTsConfig — an explicitly enabled options.events wins, else a
 * process-global sink (--events-out) acts as the default.
 */
inline obs::EventLogConfig
resolveEventsConfig(const RunOptions &options)
{
    obs::EventLogConfig events_config = options.events;
    if (!events_config.enabled()) {
        if (const obs::EventLogSink *sink = obs::EventLogSink::global())
            events_config = sink->config();
    }
    return events_config;
}

/**
 * Lifecycle-ledger granularity follows the policy in play, exactly
 * like resolvePhysConfig: the tracked transition is small -> large
 * (the first transition of a multi-size ladder); a single-size policy
 * gets a ladder above it so the ledger exists but stays empty.
 */
inline LifecycleConfig
resolveLifecycleConfig(const PageSizePolicy &policy)
{
    LifecycleConfig config;
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(&policy)) {
        config.smallLog2 = policy2->config().smallLog2;
        config.largeLog2 = policy2->config().largeLog2;
    } else if (const auto *policyn =
                   dynamic_cast<const MultiSizePolicy *>(&policy)) {
        config.smallLog2 = policyn->config().sizeLog2s.at(0);
        config.largeLog2 = policyn->config().sizeLog2s.at(1);
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(&policy)) {
        config.smallLog2 = policy1->sizeLog2();
        config.largeLog2 = policy1->sizeLog2() + 3;
    }
    return config;
}

/** Event-stream field layouts, shared by both engines. */
inline std::size_t
registerPromoteStream(obs::EventLogRecorder &events)
{
    return events.stream("promote", {"chunk", "from_log2", "to_log2"});
}

inline std::size_t
registerDemoteStream(obs::EventLogRecorder &events)
{
    return events.stream("demote", {"chunk", "from_log2", "to_log2"});
}

inline std::size_t
registerShootdownStream(obs::EventLogRecorder &events)
{
    return events.stream("shootdown", {"vpn", "size_log2"});
}

/**
 * Per-ref-engine lifecycle sink: forwards the policy's promote/demote
 * callbacks to the ledger and the event log, timestamped from the
 * driver's measured-reference counter (0 during warmup — matching the
 * batched engine, whose warmup chunks replay events at t = 0).
 */
class LifecycleTee : public LifecycleSink
{
  public:
    LifecycleTee(const std::uint64_t *measured, LifecycleLedger *ledger,
                 obs::EventLogRecorder *events,
                 std::size_t promote_stream, std::size_t demote_stream)
        : measured_(measured), ledger_(ledger), events_(events),
          promote_stream_(promote_stream), demote_stream_(demote_stream)
    {
    }

    void
    onPromote(Addr chunk_number, unsigned from_log2,
              unsigned to_log2) override
    {
        if (ledger_ != nullptr)
            ledger_->onPromote(*measured_, chunk_number, from_log2,
                               to_log2);
        if (events_ != nullptr)
            events_->emit(promote_stream_, *measured_, chunk_number,
                          from_log2, to_log2);
    }

    void
    onDemote(Addr chunk_number, unsigned from_log2,
             unsigned to_log2) override
    {
        if (ledger_ != nullptr)
            ledger_->onDemote(*measured_, chunk_number, from_log2,
                              to_log2);
        if (events_ != nullptr)
            events_->emit(demote_stream_, *measured_, chunk_number,
                          from_log2, to_log2);
    }

  private:
    const std::uint64_t *measured_;
    LifecycleLedger *ledger_;
    obs::EventLogRecorder *events_;
    std::size_t promote_stream_;
    std::size_t demote_stream_;
};

/**
 * Interval-telemetry column names for one cell: the base layout plus
 * the columns of the optional features in play (the lists grow only
 * with the features, so output without them is unchanged byte for
 * byte).
 */
inline void
emplaceTsRecorder(std::optional<obs::TimeSeriesRecorder> &slot,
                  const obs::TimeSeriesConfig &ts_config, bool has_wset,
                  bool has_lifecycle, bool has_phys, bool has_walk)
{
    std::vector<std::string> counter_names = detail::kTsCounterNames;
    std::vector<std::string> value_names = detail::kTsValueNames;
    if (has_wset)
        value_names.push_back("ws_bytes");
    if (has_lifecycle) {
        // TLB reach (valid-entry coverage) and ledger reach
        // utilization, sampled at each interval close.
        value_names.push_back("reach_bytes");
        value_names.push_back("reach_utilization");
    }
    if (has_phys) {
        counter_names.insert(counter_names.end(),
                             detail::kTsPhysCounterNames.begin(),
                             detail::kTsPhysCounterNames.end());
        value_names.insert(value_names.end(),
                           detail::kTsPhysValueNames.begin(),
                           detail::kTsPhysValueNames.end());
    }
    if (has_walk) {
        // Per-interval walk depth (level accesses performed) and PWC
        // absorption, both interval deltas.
        counter_names.push_back("walk_levels");
        value_names.push_back("pwc_hit_rate");
    }
    slot.emplace(ts_config, std::move(counter_names),
                 std::move(value_names));
}

/**
 * One deferred policy-side effect, recorded during a chunk's
 * classification phase at the index of the reference whose classify()
 * emitted it.  Replaying the events at exactly that index restores the
 * per-ref interleaving: everything classify(i) did reaches each cell
 * after the miss work of reference i-1 and before the probe of
 * reference i.
 */
struct PolicyEvent
{
    enum class Kind : std::uint8_t
    {
        Invalidate, ///< InvalidationSink::invalidatePage
        Remap,      ///< InvalidationSink::onChunkRemap
    };

    std::uint32_t index = 0; ///< chunk-local reference index
    Kind kind = Kind::Invalidate;
    PageId page;           ///< Invalidate payload
    Addr chunkNumber = 0;  ///< Remap payload
    bool toLarge = false;  ///< Remap payload
};

/**
 * One promote/demote transition recorded during classification, at the
 * chunk-local index of the reference whose classify() fired it.  The
 * engine folds these into the (pass-shared) lifecycle ledger and each
 * cell's event log at t = base_measured + index + 1, the measured
 * index the per-ref engine stamps at the same point.
 */
struct LifeEvent
{
    std::uint32_t index = 0; ///< chunk-local reference index
    bool promote = false;
    Addr chunk = 0;
    std::uint8_t fromLog2 = 0;
    std::uint8_t toLog2 = 0;
};

/** Policy sink of the classification phase: record, don't apply. */
class EventRecorder : public InvalidationSink, public LifecycleSink
{
  public:
    std::vector<PolicyEvent> events;
    std::vector<LifeEvent> lifeEvents;
    std::uint32_t index = 0; ///< set by the classify loop per ref

    void
    invalidatePage(const PageId &page) override
    {
        PolicyEvent event;
        event.index = index;
        event.kind = PolicyEvent::Kind::Invalidate;
        event.page = page;
        events.push_back(event);
    }

    void
    onChunkRemap(Addr chunk_number, bool to_large) override
    {
        PolicyEvent event;
        event.index = index;
        event.kind = PolicyEvent::Kind::Remap;
        event.chunkNumber = chunk_number;
        event.toLarge = to_large;
        events.push_back(event);
    }

    void
    onPromote(Addr chunk_number, unsigned from_log2,
              unsigned to_log2) override
    {
        lifeEvents.push_back(
            LifeEvent{index, true, chunk_number,
                      static_cast<std::uint8_t>(from_log2),
                      static_cast<std::uint8_t>(to_log2)});
    }

    void
    onDemote(Addr chunk_number, unsigned from_log2,
             unsigned to_log2) override
    {
        lifeEvents.push_back(
            LifeEvent{index, false, chunk_number,
                      static_cast<std::uint8_t>(from_log2),
                      static_cast<std::uint8_t>(to_log2)});
    }
};

} // namespace tps::core::detail

#endif // TPS_CORE_EXPERIMENT_DETAIL_H_
