/**
 * @file
 * Durable record of a multi-cell campaign: one JSONL file
 * (tps-campaign-v1) holding a header that fingerprints the campaign
 * configuration plus one line per completed workload×config cell.
 * Every commit rewrites the whole file through an atomic
 * write-temp-rename, so the journal on disk is always a complete,
 * parseable document — a campaign killed at any instant resumes from
 * exactly the set of cells whose completion lines made it to disk.
 *
 * Resume safety: the header carries a hash of the enumerated cells
 * and run options.  `tps_campaign --resume` refuses a journal whose
 * hash differs from the config it was asked to run, so stats from
 * different experiments can never be silently merged.
 */

#ifndef TPS_OBS_CAMPAIGN_JOURNAL_H_
#define TPS_OBS_CAMPAIGN_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace tps::obs
{

inline constexpr const char *kCampaignSchema = "tps-campaign-v1";

/** One journaled cell completion. */
struct CampaignCellRecord
{
    std::string key;      ///< unique cell id, e.g. "matrix300/fa64_4k"
    std::string workload; ///< workload name
    std::string config;   ///< human-readable column label
    std::uint64_t refs = 0;
    std::uint64_t instructions = 0;
    double cpiTlb = 0.0;
    double wallSeconds = 0.0;
    std::string statsFile;      ///< per-cell stats dump, relative to journal
    std::string timeseriesFile; ///< per-cell timeseries ("" when disabled)
};

class CampaignJournal
{
  public:
    /** A journal parsed back from disk. */
    struct Loaded
    {
        bool exists = false; ///< file was present and parsed
        std::string configHash;
        std::string command;
        std::string createdUtc;
        std::uint64_t cellsTotal = 0;
        std::vector<CampaignCellRecord> records;
    };

    explicit CampaignJournal(std::string path);

    /**
     * Begin a fresh campaign: records the header fields and commits a
     * header-only journal.  Throws std::runtime_error on IO failure.
     */
    void start(const std::string &configHash, std::uint64_t cellsTotal,
               const std::string &command, const std::string &createdUtc);

    /**
     * Continue a previously loaded campaign: seeds the in-memory state
     * from @p loaded without touching the file (it already holds
     * exactly these records).
     */
    void resume(const Loaded &loaded);

    /**
     * Append one completion and commit the journal.  Thread-safe.
     * Throws std::runtime_error on IO failure — losing a completion
     * record silently would make --resume recompute or, worse, skip.
     */
    void append(const CampaignCellRecord &record);

    /** Has @p key already been journaled as complete? Thread-safe. */
    bool done(const std::string &key) const;

    std::vector<CampaignCellRecord> records() const;
    const std::string &path() const { return path_; }
    const std::string &configHash() const { return config_hash_; }

    /**
     * Parse @p path.  Returns false with @p error set on IO/parse
     * problems; a missing file is not an error (exists=false).
     */
    static bool load(const std::string &path, Loaded &out,
                     std::string &error);

  private:
    void commitLocked();

    std::string path_;
    std::string config_hash_;
    std::string command_;
    std::string created_utc_;
    std::uint64_t cells_total_ = 0;

    mutable std::mutex mutex_;
    std::vector<CampaignCellRecord> records_;
    std::set<std::string> done_;
};

/**
 * Merge the per-cell stats files of every journaled cell into one
 * tps-stats-v1 document on @p os (no manifest, names sorted).  Keys
 * with a "harness" path segment — wall-clock self-telemetry — are
 * skipped so the aggregate of a resumed campaign is byte-identical to
 * an uninterrupted run.  Returns false with @p error set on failure.
 */
bool aggregateCampaignStats(const std::string &journal_path,
                            std::ostream &os, std::string &error);

} // namespace tps::obs

#endif // TPS_OBS_CAMPAIGN_JOURNAL_H_
