#include "obs/timeseries.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

#include "obs/stat_registry.h"

namespace tps::obs
{

const char *
missCauseName(MissCause cause)
{
    switch (cause) {
      case MissCause::Cold:
        return "cold";
      case MissCause::Capacity:
        return "capacity";
      case MissCause::Shootdown:
        return "shootdown";
    }
    return "unknown";
}

std::uint64_t
TimeSeries::counterSum(const std::string &name) const
{
    const auto it =
        std::find(counterNames.begin(), counterNames.end(), name);
    if (it == counterNames.end())
        throw std::out_of_range("no time-series counter '" + name + "'");
    const std::size_t column =
        static_cast<std::size_t>(it - counterNames.begin());
    std::uint64_t sum = 0;
    for (const IntervalRow &row : intervals)
        sum += row.counters[column];
    return sum;
}

void
TimeSeries::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("workload").value(workload);
    writer.key("tlb").value(tlbName);
    writer.key("policy").value(policyName);
    writer.key("interval_refs").value(intervalRefs);

    writer.key("counter_names").beginArray();
    for (const std::string &name : counterNames)
        writer.value(name);
    writer.endArray();
    writer.key("value_names").beginArray();
    for (const std::string &name : valueNames)
        writer.value(name);
    writer.endArray();

    writer.key("intervals").beginArray();
    for (const IntervalRow &row : intervals) {
        writer.beginObject();
        writer.key("start").value(row.startRef);
        writer.key("refs").value(row.refs);
        writer.key("counters").beginArray();
        for (const std::uint64_t c : row.counters)
            writer.value(c);
        writer.endArray();
        writer.key("values").beginArray();
        for (const double v : row.values)
            writer.value(v);
        writer.endArray();
        writer.endObject();
    }
    writer.endArray();

    // Whole-run aggregates recomputed from the rows: the redundancy is
    // the point — consumers can cross-check against a tps-stats-v1
    // dump without re-summing columns.
    writer.key("totals").beginObject();
    for (std::size_t c = 0; c < counterNames.size(); ++c) {
        std::uint64_t sum = 0;
        for (const IntervalRow &row : intervals)
            sum += row.counters[c];
        writer.key(counterNames[c]).value(sum);
    }
    writer.endObject();

    if (missSampleCapacity != 0) {
        writer.key("miss_samples").beginObject();
        writer.key("capacity")
            .value(static_cast<std::uint64_t>(missSampleCapacity));
        writer.key("seen").value(missSeen);
        writer.key("events").beginArray();
        for (const MissEvent &event : missSamples) {
            writer.beginObject();
            writer.key("ref").value(event.ref);
            writer.key("vpn").value(event.vpn);
            writer.key("size_log2").value(
                static_cast<std::uint64_t>(event.sizeLog2));
            writer.key("cause").value(missCauseName(event.cause));
            writer.endObject();
        }
        writer.endArray();
        writer.endObject();
    }
    writer.endObject();
}

TimeSeriesRecorder::TimeSeriesRecorder(
    const TimeSeriesConfig &config,
    std::vector<std::string> counter_names,
    std::vector<std::string> value_names)
    : config_(config), rng_state_(config.missSampleSeed)
{
    if (config_.intervalRefs == 0)
        throw std::invalid_argument(
            "TimeSeriesRecorder needs intervalRefs > 0");
    series_.intervalRefs = config_.intervalRefs;
    series_.counterNames = std::move(counter_names);
    series_.valueNames = std::move(value_names);
    series_.missSampleCapacity = config_.missSampleCapacity;
}

std::uint64_t
TimeSeriesRecorder::nextRandom()
{
    // SplitMix64: tiny, seedable, and private to this recorder so
    // sampling never perturbs (or is perturbed by) workload PRNGs.
    std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void
TimeSeriesRecorder::endInterval(std::uint64_t start_ref,
                                std::uint64_t refs,
                                std::vector<std::uint64_t> counters,
                                std::vector<double> values)
{
    if (counters.size() != series_.counterNames.size() ||
        values.size() != series_.valueNames.size()) {
        throw std::invalid_argument(
            "time-series interval column count mismatch");
    }
    IntervalRow row;
    row.startRef = start_ref;
    row.refs = refs;
    row.counters = std::move(counters);
    row.values = std::move(values);
    series_.intervals.push_back(std::move(row));
}

void
TimeSeriesRecorder::offerMiss(std::uint64_t ref, std::uint64_t vpn,
                              std::uint8_t size_log2, MissCause cause)
{
    if (config_.missSampleCapacity == 0)
        return;
    ++miss_seen_;
    const MissEvent event{ref, vpn, size_log2, cause};
    if (series_.missSamples.size() < config_.missSampleCapacity) {
        series_.missSamples.push_back(event);
        return;
    }
    // Algorithm R: keep each of the n seen events with probability
    // capacity/n.  The modulo bias is negligible against 2^64 and the
    // draw sequence is deterministic for a fixed seed.
    const std::uint64_t j = nextRandom() % miss_seen_;
    if (j < config_.missSampleCapacity)
        series_.missSamples[static_cast<std::size_t>(j)] = event;
}

TimeSeries
TimeSeriesRecorder::finish(std::string workload, std::string tlb_name,
                           std::string policy_name)
{
    series_.workload = std::move(workload);
    series_.tlbName = std::move(tlb_name);
    series_.policyName = std::move(policy_name);
    series_.missSeen = miss_seen_;
    std::sort(series_.missSamples.begin(), series_.missSamples.end(),
              [](const MissEvent &a, const MissEvent &b) {
                  return a.ref < b.ref;
              });
    return std::move(series_);
}

// ------------------------------------------------------------- sink

TimeSeriesSink::TimeSeriesSink(TimeSeriesConfig config)
    : config_(config)
{
}

void
TimeSeriesSink::add(TimeSeries series)
{
    const std::string key = slugify(series.workload) + "." +
                            slugify(series.tlbName) + "." +
                            slugify(series.policyName);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_[key].push_back(std::move(series));
}

std::size_t
TimeSeriesSink::cellCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[key, list] : cells_)
        n += list.size();
    return n;
}

namespace
{

std::string
serializeSeries(const TimeSeries &series)
{
    std::ostringstream out;
    JsonWriter writer(out, /*pretty=*/false);
    series.writeJson(writer);
    writer.finish();
    return out.str();
}

} // namespace

void
TimeSeriesSink::writeJson(std::ostream &os,
                          const RunManifest *manifest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter writer(os);
    writer.beginObject();
    writer.key("schema").value(kTimeSeriesSchema);
    if (manifest != nullptr) {
        writer.key("manifest");
        manifest->writeJson(writer);
    }
    writer.key("interval_refs").value(config_.intervalRefs);
    writer.key("miss_sample_capacity")
        .value(static_cast<std::uint64_t>(config_.missSampleCapacity));
    writer.key("cells").beginObject();
    for (const auto &[key, list] : cells_) {
        if (list.size() == 1) {
            writer.key(key);
            list.front().writeJson(writer);
            continue;
        }
        // Identical configurations run more than once: completion
        // order is thread-dependent, so order duplicates by content
        // before numbering them.
        std::vector<std::pair<std::string, const TimeSeries *>> dups;
        for (const TimeSeries &series : list)
            dups.emplace_back(serializeSeries(series), &series);
        std::sort(dups.begin(), dups.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (std::size_t i = 0; i < dups.size(); ++i) {
            writer.key(i == 0 ? key
                              : key + "_" + std::to_string(i + 1));
            dups[i].second->writeJson(writer);
        }
    }
    writer.endObject();
    writer.endObject();
    writer.finish();
    os << "\n";
}

namespace
{

std::atomic<TimeSeriesSink *> global_sink{nullptr};

} // namespace

TimeSeriesSink *
TimeSeriesSink::global()
{
    return global_sink.load(std::memory_order_acquire);
}

TimeSeriesSink *
TimeSeriesSink::enableGlobal(const TimeSeriesConfig &config)
{
    TimeSeriesSink *sink = global_sink.load(std::memory_order_acquire);
    if (sink != nullptr)
        return sink;
    auto *fresh = new TimeSeriesSink(config);
    TimeSeriesSink *expected = nullptr;
    if (global_sink.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
        return fresh;
    }
    delete fresh;
    return expected;
}

void
TimeSeriesSink::disableGlobal()
{
    TimeSeriesSink *sink =
        global_sink.exchange(nullptr, std::memory_order_acq_rel);
    delete sink;
}

} // namespace tps::obs
