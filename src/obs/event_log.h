/**
 * @file
 * Causal event telemetry: a bounded, deterministically-sampled log of
 * the discrete events behind the aggregate counters — promotions,
 * demotions, TLB evictions (with entry dwell time), shootdowns and
 * reservation breaks — emitted as the `tps-events-v1` JSON schema.
 *
 * Aggregates say *how many* promotions happened; the event log says
 * *which chunk*, *when*, and what happened to it afterwards — the
 * evidence `tps_inspect` drills into and the LifecycleLedger folds
 * down.  Events are grouped into named streams ("promote",
 * "tlb_evict.small", ...) registered up front with field names, so the
 * document's stream set is a pure function of the configuration, never
 * of what happened to fire.
 *
 * Determinism contract: within one stream, emission order and
 * timestamps are identical under serial vs parallel sweeps and under
 * batched vs per-reference execution (the experiment driver replays
 * policy events at exact reference indices; composite TLBs register
 * one stream per sub-TLB because batching partitions refs *across*
 * subs but never reorders *within* one).  Sampling keeps every Nth
 * event of a stream up to a hard capacity — counting, not random — so
 * a sampled log is a deterministic subsequence of the full one.
 */

#ifndef TPS_OBS_EVENT_LOG_H_
#define TPS_OBS_EVENT_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"

namespace tps::obs
{

/** Identifies the event-log dump format; bump on breaking changes. */
inline constexpr const char *kEventLogSchema = "tps-events-v1";

/** Per-run event-log controls (see core::RunOptions). */
struct EventLogConfig
{
    /** Keep every Nth event per stream (1 = all; 0 = disabled). */
    std::uint64_t sampleEvery = 0;

    /** Hard cap on kept events per stream (later events are counted
     *  but dropped; "seen" always reports the true total). */
    std::size_t capacity = 65536;

    bool enabled() const { return sampleEvery != 0; }
};

/**
 * One event: a timestamp (measured-reference index, 1-based) plus up
 * to three stream-specific operands named by the stream's field list.
 */
struct Event
{
    std::uint64_t t = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
};

/** One named stream of a finished log. */
struct EventStream
{
    /** Names of the operand fields actually used (t is implicit). */
    std::vector<std::string> fields;
    std::uint64_t seen = 0; ///< events offered (pre-sampling)
    std::vector<Event> events; ///< kept events, emission order
};

/** The finished event log of one experiment cell. */
struct EventLog
{
    std::string workload;
    std::string tlbName;
    std::string policyName;

    std::uint64_t sampleEvery = 1;
    std::size_t capacity = 0;
    std::map<std::string, EventStream> streams;

    /** Emit as one JSON object value (caller provides the key). */
    void writeJson(JsonWriter &writer) const;
};

/**
 * Per-cell recorder.  Streams are registered up front (handle-based so
 * the hot emission path is an index, not a map lookup); emit() applies
 * the keep-every-Nth sampling and the capacity cap.  Not thread-safe —
 * each simulation cell owns its recorder.
 */
class EventLogRecorder
{
  public:
    explicit EventLogRecorder(const EventLogConfig &config);

    /** Register (or look up) the stream @p name; idempotent so
     *  composite TLB levels sharing a recorder cannot collide. */
    std::size_t stream(const std::string &name,
                       std::vector<std::string> fields);

    void
    emit(std::size_t handle, std::uint64_t t, std::uint64_t a,
         std::uint64_t b = 0, std::uint64_t c = 0)
    {
        Stream &s = streams_[handle];
        ++s.data.seen;
        if ((s.data.seen - 1) % config_.sampleEvery != 0)
            return;
        if (s.data.events.size() >= config_.capacity)
            return;
        s.data.events.push_back(Event{t, a, b, c});
    }

    /** Finish: label the log and hand it over (recorder is spent). */
    EventLog finish(std::string workload, std::string tlb_name,
                    std::string policy_name);

  private:
    struct Stream
    {
        std::string name;
        EventStream data;
    };

    EventLogConfig config_;
    std::vector<Stream> streams_;
};

/**
 * Process-global collection point for finished event logs, one per
 * experiment cell, written as one `tps-events-v1` document at exit
 * (benches enable it with `--events-out FILE`; see bench_common.h).
 * Cells are keyed by slugified "<workload>.<tlb>.<policy>"; add() is
 * thread-safe and output is sorted with content-ordered "_2" suffixes
 * for duplicates, so the document is byte-identical at any worker
 * thread count (the determinism gate cmp's serial vs 4-thread runs).
 */
class EventLogSink
{
  public:
    explicit EventLogSink(EventLogConfig config);

    const EventLogConfig &config() const { return config_; }

    /** Record one finished cell (any thread). */
    void add(EventLog log);

    std::size_t cellCount() const;

    /**
     * Emit the document:
     * { "schema": "tps-events-v1",
     *   "manifest": {...},              // when provided
     *   "sample_every": N, "capacity": N,
     *   "cells": { "<key>": {...} } }   // sorted keys
     */
    void writeJson(std::ostream &os,
                   const RunManifest *manifest = nullptr) const;

    // ------------------------------------------------- global access

    /** The process-global sink, nullptr until enabled. */
    static EventLogSink *global();

    /** Idempotently create the global sink (first config wins). */
    static EventLogSink *enableGlobal(const EventLogConfig &config);

    /** Detach the global sink again (tests). */
    static void disableGlobal();

  private:
    EventLogConfig config_;
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<EventLog>> cells_;
};

} // namespace tps::obs

#endif // TPS_OBS_EVENT_LOG_H_
