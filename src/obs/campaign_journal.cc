#include "obs/campaign_journal.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/atomic_file.h"
#include "obs/json.h"
#include "obs/stat_registry.h"

namespace tps::obs
{

namespace
{

std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
readFile(const std::string &path, std::string &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = path + ": cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
requireString(const JsonValue &doc, const std::string &name)
{
    const JsonValue *v = doc.find(name);
    if (v == nullptr || v->type != JsonValue::Type::String)
        throw std::runtime_error("missing string field \"" + name + "\"");
    return v->text;
}

std::uint64_t
requireUint(const JsonValue &doc, const std::string &name)
{
    const JsonValue *v = doc.find(name);
    if (v == nullptr || v->type != JsonValue::Type::Int || v->integer < 0)
        throw std::runtime_error("missing integer field \"" + name + "\"");
    return static_cast<std::uint64_t>(v->integer);
}

double
requireNumber(const JsonValue &doc, const std::string &name)
{
    const JsonValue *v = doc.find(name);
    if (v == nullptr || !v->isNumber())
        throw std::runtime_error("missing number field \"" + name + "\"");
    return v->number;
}

void
writeCellLine(JsonWriter &w, const CampaignCellRecord &r)
{
    w.beginObject();
    w.key("type").value("cell");
    w.key("key").value(r.key);
    w.key("workload").value(r.workload);
    w.key("config").value(r.config);
    w.key("refs").value(r.refs);
    w.key("instructions").value(r.instructions);
    w.key("cpi_tlb").value(r.cpiTlb);
    w.key("wall_seconds").value(r.wallSeconds);
    w.key("stats_file").value(r.statsFile);
    w.key("timeseries_file").value(r.timeseriesFile);
    w.endObject();
}

CampaignCellRecord
parseCellLine(const JsonValue &doc)
{
    CampaignCellRecord r;
    r.key = requireString(doc, "key");
    r.workload = requireString(doc, "workload");
    r.config = requireString(doc, "config");
    r.refs = requireUint(doc, "refs");
    r.instructions = requireUint(doc, "instructions");
    r.cpiTlb = requireNumber(doc, "cpi_tlb");
    r.wallSeconds = requireNumber(doc, "wall_seconds");
    r.statsFile = requireString(doc, "stats_file");
    r.timeseriesFile = requireString(doc, "timeseries_file");
    return r;
}

/** Does the dotted stat name contain a "harness" segment? */
bool
hasHarnessSegment(const std::string &name)
{
    std::size_t pos = 0;
    while (pos <= name.size()) {
        std::size_t dot = name.find('.', pos);
        if (dot == std::string::npos)
            dot = name.size();
        if (name.compare(pos, dot - pos, "harness") == 0)
            return true;
        pos = dot + 1;
    }
    return false;
}

/**
 * Rebuild registry entries from a parsed tps-stats-v1 document.
 * Numbers written as Int were counters, others were values; the
 * non-finite values the writer spells as strings come back as such.
 */
void
mergeStatsDocument(const JsonValue &doc, StatRegistry &into,
                   const std::string &file)
{
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != "tps-stats-v1")
        throw std::runtime_error(file + ": not a tps-stats-v1 document");
    if (const JsonValue *stats = doc.find("stats")) {
        for (const auto &[name, v] : stats->object) {
            if (hasHarnessSegment(name))
                continue;
            if (v.type == JsonValue::Type::Int && v.integer >= 0)
                into.addCounter(name,
                                static_cast<std::uint64_t>(v.integer));
            else if (v.isNumber())
                into.addValue(name, v.number);
            else if (v.type == JsonValue::Type::String) {
                // value(double) writes non-finite doubles as strings.
                double d = std::numeric_limits<double>::quiet_NaN();
                if (v.text == "inf")
                    d = std::numeric_limits<double>::infinity();
                else if (v.text == "-inf")
                    d = -std::numeric_limits<double>::infinity();
                else if (v.text != "nan")
                    throw std::runtime_error(file + ": bad stat " + name);
                into.addValue(name, d);
            } else {
                throw std::runtime_error(file + ": bad stat " + name);
            }
        }
    }
    if (const JsonValue *text = doc.find("text")) {
        for (const auto &[name, v] : text->object) {
            if (hasHarnessSegment(name))
                continue;
            into.addText(name, v.text);
        }
    }
    if (const JsonValue *histograms = doc.find("histograms")) {
        for (const auto &[name, v] : histograms->object) {
            if (hasHarnessSegment(name))
                continue;
            std::vector<std::uint64_t> buckets;
            buckets.reserve(v.array.size());
            for (const JsonValue &b : v.array)
                buckets.push_back(static_cast<std::uint64_t>(b.integer));
            into.addHistogram(name, std::move(buckets));
        }
    }
}

} // namespace

CampaignJournal::CampaignJournal(std::string path) : path_(std::move(path)) {}

void
CampaignJournal::start(const std::string &configHash,
                       std::uint64_t cellsTotal, const std::string &command,
                       const std::string &createdUtc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_hash_ = configHash;
    cells_total_ = cellsTotal;
    command_ = command;
    created_utc_ = createdUtc;
    records_.clear();
    done_.clear();
    commitLocked();
}

void
CampaignJournal::resume(const Loaded &loaded)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_hash_ = loaded.configHash;
    cells_total_ = loaded.cellsTotal;
    command_ = loaded.command;
    created_utc_ = loaded.createdUtc;
    records_ = loaded.records;
    done_.clear();
    for (const CampaignCellRecord &r : records_)
        done_.insert(r.key);
}

void
CampaignJournal::append(const CampaignCellRecord &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
    done_.insert(record.key);
    commitLocked();
}

bool
CampaignJournal::done(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_.count(key) != 0;
}

std::vector<CampaignCellRecord>
CampaignJournal::records() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

void
CampaignJournal::commitLocked()
{
    std::ostringstream out;
    {
        JsonWriter w(out, /*pretty=*/false);
        w.beginObject();
        w.key("type").value("header");
        w.key("schema").value(kCampaignSchema);
        w.key("config_hash").value(config_hash_);
        w.key("cells_total").value(cells_total_);
        w.key("command").value(command_);
        w.key("created_utc").value(created_utc_);
        w.endObject();
        w.finish();
    }
    out << '\n';
    for (const CampaignCellRecord &r : records_) {
        JsonWriter w(out, /*pretty=*/false);
        writeCellLine(w, r);
        w.finish();
        out << '\n';
    }
    std::string error;
    if (!atomicWriteFile(path_, out.str(), error))
        throw std::runtime_error("campaign journal: " + error);
}

bool
CampaignJournal::load(const std::string &path, Loaded &out,
                      std::string &error)
{
    out = Loaded{};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // absent journal: fresh campaign
    std::string line;
    std::size_t lineno = 0;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue doc;
        try {
            doc = parseJson(line);
            const std::string type = requireString(doc, "type");
            if (!sawHeader) {
                if (type != "header")
                    throw std::runtime_error("first line is not a header");
                const std::string schema = requireString(doc, "schema");
                if (schema != kCampaignSchema)
                    throw std::runtime_error("unsupported schema \"" +
                                             schema + "\"");
                out.configHash = requireString(doc, "config_hash");
                out.cellsTotal = requireUint(doc, "cells_total");
                out.command = requireString(doc, "command");
                out.createdUtc = requireString(doc, "created_utc");
                sawHeader = true;
            } else if (type == "cell") {
                out.records.push_back(parseCellLine(doc));
            } else {
                throw std::runtime_error("unknown record type \"" + type +
                                         "\"");
            }
        } catch (const std::exception &e) {
            error = path + ":" + std::to_string(lineno) + ": " + e.what();
            return false;
        }
    }
    if (!sawHeader) {
        error = path + ": empty journal (no header line)";
        return false;
    }
    out.exists = true;
    return true;
}

bool
aggregateCampaignStats(const std::string &journal_path, std::ostream &os,
                       std::string &error)
{
    CampaignJournal::Loaded loaded;
    if (!CampaignJournal::load(journal_path, loaded, error))
        return false;
    if (!loaded.exists) {
        error = journal_path + ": no such journal";
        return false;
    }
    const std::string dir = dirnameOf(journal_path);
    StatRegistry merged;
    try {
        for (const CampaignCellRecord &r : loaded.records) {
            const std::string file = dir + "/" + r.statsFile;
            std::string content;
            if (!readFile(file, content, error))
                return false;
            mergeStatsDocument(parseJson(content), merged, r.statsFile);
        }
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
    merged.writeJson(os);
    return true;
}

} // namespace tps::obs
