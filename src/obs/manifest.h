/**
 * @file
 * Run manifest: the configuration provenance attached to every stats
 * dump so two runs can be compared knowing exactly what produced them
 * (gem5 embeds the same information at the head of stats.txt).
 */

#ifndef TPS_OBS_MANIFEST_H_
#define TPS_OBS_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.h"

namespace tps::obs
{

/** Identifies the stats-dump format; bump on breaking changes. */
inline constexpr const char *kStatsSchema = "tps-stats-v1";

/**
 * Everything needed to attribute and reproduce one run.  Timing and
 * host fields vary between runs of the same configuration; the diff
 * tool compares only the "stats" section, never the manifest.
 */
struct RunManifest
{
    std::string experiment;   ///< e.g. "Figure 5.2"
    std::string command;      ///< argv joined with spaces
    std::string gitDescribe;  ///< from the build, "unknown" if absent
    std::string hostname;
    std::string timestampUtc; ///< ISO-8601, manifest creation time

    std::uint64_t refs = 0;       ///< per-workload reference budget
    std::uint64_t window = 0;     ///< working-set / assignment window
    std::uint64_t warmupRefs = 0;
    std::uint64_t seed = 0;       ///< base PRNG seed (workload seeds
                                  ///< derive deterministically from it)
    unsigned threads = 0;         ///< resolved worker count
    std::string traceCacheMode = "auto"; ///< auto/on/off

    // Machine context: without these, refs/s numbers from different
    // hosts (or a loaded shared box) are uninterpretable.
    unsigned hardwareConcurrency = 0; ///< std::thread::hardware_concurrency
    double loadAvg1m = -1.0;          ///< 1-minute load average, -1 unknown
    std::uint64_t pageSizeBytes = 0;  ///< sysconf(_SC_PAGESIZE)

    /** Free-form extras (env overrides in effect, bench knobs...). */
    std::map<std::string, std::string> extra;

    /** Capture command line, git describe, hostname and timestamp. */
    static RunManifest capture(const std::string &experiment, int argc,
                               char **argv);

    /** The git describe string baked into this build. */
    static std::string buildGitDescribe();
    static std::string currentHostname();
    static std::string currentTimestampUtc();

    /** Emit as one JSON object value (caller provides the key). */
    void writeJson(JsonWriter &writer) const;
};

} // namespace tps::obs

#endif // TPS_OBS_MANIFEST_H_
