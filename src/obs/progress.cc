#include "obs/progress.h"

#include <cinttypes>

namespace tps::obs
{

namespace
{

std::atomic<bool> progress_enabled{false};

} // namespace

void
setProgressEnabled(bool enabled)
{
    progress_enabled.store(enabled, std::memory_order_relaxed);
}

bool
progressEnabled()
{
    return progress_enabled.load(std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::uint64_t total, std::string label)
    : total_(total), label_(std::move(label)),
      start_(std::chrono::steady_clock::now())
{
}

bool
ProgressReporter::enabled() const
{
    return forced_ >= 0 ? forced_ != 0 : progressEnabled();
}

void
ProgressReporter::tick(std::uint64_t refs)
{
    done_.fetch_add(1, std::memory_order_relaxed);
    if (refs != 0)
        refs_.fetch_add(refs, std::memory_order_relaxed);
    if (!enabled())
        return;

    const std::uint64_t now_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    std::uint64_t last = last_emit_us_.load(std::memory_order_relaxed);
    if (now_us - last < interval_us_)
        return;
    // One thread wins the right to emit this interval's line; losers
    // simply skip (their update is covered by a later line).
    if (!last_emit_us_.compare_exchange_strong(last, now_us,
                                               std::memory_order_relaxed))
        return;
    emitLine(false);
}

void
ProgressReporter::seedResumed(std::uint64_t done, std::uint64_t refs)
{
    seed_done_ = done;
    seed_refs_ = refs;
    done_.store(done, std::memory_order_relaxed);
    refs_.store(refs, std::memory_order_relaxed);
    // Also seed the window snapshot: the first emitted line's window
    // must cover only work done by this process.
    window_done_.store(done, std::memory_order_relaxed);
    window_refs_.store(refs, std::memory_order_relaxed);
}

void
ProgressReporter::finish()
{
    if (!enabled())
        return;
    emitLine(true);
}

void
ProgressReporter::emitLine(bool final)
{
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const std::uint64_t refs = refs_.load(std::memory_order_relaxed);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();

    // Windowed rates: progress since the previously emitted line.  A
    // cumulative refs/s average is dominated by a slow warm-up cell
    // long after throughput recovers; the ETA extrapolates from the
    // last window instead, falling back to the cumulative rate when
    // the window is empty (first line, or finish() right after an
    // emitting tick).
    const std::uint64_t win_done =
        done - window_done_.load(std::memory_order_relaxed);
    const std::uint64_t win_refs =
        refs - window_refs_.load(std::memory_order_relaxed);
    const double win_elapsed =
        elapsed -
        static_cast<double>(
            window_start_us_.load(std::memory_order_relaxed)) /
            1e6;
    window_done_.store(done, std::memory_order_relaxed);
    window_refs_.store(refs, std::memory_order_relaxed);
    window_start_us_.store(static_cast<std::uint64_t>(elapsed * 1e6),
                           std::memory_order_relaxed);

    char line[256];
    int n = std::snprintf(line, sizeof(line),
                          "progress: %" PRIu64 " %s", done,
                          label_.c_str());
    auto append = [&](const char *fmt, auto... args) {
        if (n < 0 || static_cast<std::size_t>(n) >= sizeof(line))
            return;
        const int m = std::snprintf(line + n, sizeof(line) -
                                        static_cast<std::size_t>(n),
                                    fmt, args...);
        if (m > 0)
            n += m;
    };
    if (total_ != 0) {
        append("/%" PRIu64 " (%.0f%%)", total_,
               100.0 * static_cast<double>(done) /
                   static_cast<double>(total_));
    }
    // Cumulative fallbacks must exclude checkpointed work too — a
    // resumed campaign's seeded refs took zero seconds of *this*
    // process's time.
    const std::uint64_t new_done = done - seed_done_;
    const std::uint64_t new_refs = refs - seed_refs_;
    if (win_refs != 0 && win_elapsed > 0.0) {
        append(", %.2fM refs/s",
               static_cast<double>(win_refs) / win_elapsed / 1e6);
    } else if (new_refs != 0 && elapsed > 0.0) {
        append(", %.2fM refs/s",
               static_cast<double>(new_refs) / elapsed / 1e6);
    }
    append(", elapsed %.1fs", elapsed);
    if (!final && total_ != 0 && done != 0 && done < total_) {
        // A window (or whole run) with zero elapsed time or zero items
        // yields a 0/inf/NaN per-item estimate; print a placeholder
        // rather than extrapolating from it.
        double per_item = 0.0;
        if (win_done != 0 && win_elapsed > 0.0)
            per_item = win_elapsed / static_cast<double>(win_done);
        else if (new_done != 0 && elapsed > 0.0)
            per_item = elapsed / static_cast<double>(new_done);
        if (per_item > 0.0)
            append(", eta %.1fs",
                   per_item * static_cast<double>(total_ - done));
        else
            append(", eta --:--");
    }
    if (final)
        append(" [done]");

    // Single fprintf call so concurrent finishers cannot interleave
    // mid-line.
    std::fprintf(stream_, "%s\n", line);
    std::fflush(stream_);
    emitted_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace tps::obs
