#include "obs/heartbeat.h"

#include <sstream>

#include "obs/atomic_file.h"
#include "obs/json.h"

namespace tps::obs
{

namespace
{

std::string
getString(const JsonValue &doc, const std::string &name)
{
    const JsonValue *v = doc.find(name);
    return v != nullptr && v->type == JsonValue::Type::String ? v->text : "";
}

std::uint64_t
getUint(const JsonValue &doc, const std::string &name)
{
    const JsonValue *v = doc.find(name);
    if (v != nullptr && v->type == JsonValue::Type::Int && v->integer >= 0)
        return static_cast<std::uint64_t>(v->integer);
    return 0;
}

double
getNumber(const JsonValue &doc, const std::string &name, double fallback)
{
    const JsonValue *v = doc.find(name);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

} // namespace

void
Heartbeat::writeJson(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.key("schema").value(kHeartbeatSchema);
    w.key("state").value(state);
    w.key("config_hash").value(configHash);
    w.key("timestamp_utc").value(timestampUtc);
    w.key("hostname").value(hostname);
    w.key("pid").value(pid);
    w.key("uptime_seconds").value(uptimeSeconds);
    w.key("workers").value(workers);
    w.key("workers_busy").value(workersBusy);
    w.key("cells_total").value(cellsTotal);
    w.key("cells_done").value(cellsDone);
    w.key("cells_resumed").value(cellsResumed);
    w.key("refs_done").value(refsDone);
    w.key("refs_per_sec").value(refsPerSec);
    w.key("eta_seconds").value(etaSeconds);
    w.key("in_flight").beginArray();
    for (const HeartbeatCell &c : inFlight) {
        w.beginObject();
        w.key("key").value(c.key);
        w.key("workload").value(c.workload);
        w.key("config").value(c.config);
        w.key("elapsed_seconds").value(c.elapsedSeconds);
        w.key("eta_seconds").value(c.etaSeconds);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
}

bool
Heartbeat::fromJson(const std::string &text, Heartbeat &out,
                    std::string &error)
{
    out = Heartbeat{};
    JsonValue doc;
    try {
        doc = parseJson(text);
    } catch (const JsonParseError &e) {
        error = e.what();
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != kHeartbeatSchema) {
        error = "missing or wrong schema (want tps-heartbeat-v1)";
        return false;
    }
    out.state = getString(doc, "state");
    out.configHash = getString(doc, "config_hash");
    out.timestampUtc = getString(doc, "timestamp_utc");
    out.hostname = getString(doc, "hostname");
    out.pid = getUint(doc, "pid");
    out.uptimeSeconds = getNumber(doc, "uptime_seconds", 0.0);
    out.workers = getUint(doc, "workers");
    out.workersBusy = getUint(doc, "workers_busy");
    out.cellsTotal = getUint(doc, "cells_total");
    out.cellsDone = getUint(doc, "cells_done");
    out.cellsResumed = getUint(doc, "cells_resumed");
    out.refsDone = getUint(doc, "refs_done");
    out.refsPerSec = getNumber(doc, "refs_per_sec", 0.0);
    out.etaSeconds = getNumber(doc, "eta_seconds", -1.0);
    if (const JsonValue *cells = doc.find("in_flight")) {
        for (const JsonValue &c : cells->array) {
            HeartbeatCell cell;
            cell.key = getString(c, "key");
            cell.workload = getString(c, "workload");
            cell.config = getString(c, "config");
            cell.elapsedSeconds = getNumber(c, "elapsed_seconds", 0.0);
            cell.etaSeconds = getNumber(c, "eta_seconds", -1.0);
            out.inFlight.push_back(std::move(cell));
        }
    }
    return true;
}

bool
HeartbeatWriter::write(const Heartbeat &hb, std::string &error) const
{
    std::ostringstream out;
    hb.writeJson(out);
    out << '\n';
    return atomicWriteFile(path_, out.str(), error);
}

} // namespace tps::obs
