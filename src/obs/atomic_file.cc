#include "obs/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tps::obs
{

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string &error)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0) {
        error = tmp + ": " + std::strerror(errno);
        return false;
    }
    const char *data = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = tmp + ": " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    // The rename only publishes durable bytes if they reached the disk
    // first; without the fsync a crash could surface a renamed-but-
    // empty journal.
    if (::fsync(fd) != 0) {
        error = tmp + ": fsync: " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        error = tmp + ": close: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = path + ": rename: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace tps::obs
