#include "obs/report_html.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace tps::obs::report
{

namespace
{

const JsonValue *
find(const JsonValue &v, const char *name)
{
    return v.find(name);
}

std::string
stringOr(const JsonValue *v, const std::string &fallback = "")
{
    return v != nullptr && v->type == JsonValue::Type::String
               ? v->text
               : fallback;
}

double
numberOr(const JsonValue *v, double fallback = 0.0)
{
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

/** One plotted line: label, palette slot (1-based), y per interval. */
struct ChartSeries
{
    std::string name;
    int slot = 1;
    std::vector<double> points;
};

/**
 * Inline-SVG line chart.  One y-axis only; callers group series with
 * a shared unit.  Hover <title> tooltips are emitted per point while
 * the interval count stays small enough to keep reports light.
 */
std::string
lineChart(const std::string &title,
          const std::vector<ChartSeries> &series_list,
          double x0, double dx, const std::string &x_unit)
{
    constexpr double kW = 640, kH = 190;
    constexpr double kL = 64, kR = 150, kT = 26, kB = 24;
    const double plot_w = kW - kL - kR, plot_h = kH - kT - kB;

    std::size_t n = 0;
    double y_max = 0.0;
    for (const ChartSeries &s : series_list) {
        n = std::max(n, s.points.size());
        for (const double v : s.points)
            y_max = std::max(y_max, v);
    }
    if (y_max <= 0.0)
        y_max = 1.0;

    std::ostringstream svg;
    svg << "<svg class=\"chart\" viewBox=\"0 0 " << kW << " " << kH
        << "\" role=\"img\" aria-label=\"" << htmlEscape(title)
        << "\">\n";
    svg << "<text class=\"ctitle\" x=\"" << kL << "\" y=\"15\">"
        << htmlEscape(title) << "</text>\n";

    // Recessive grid: four horizontal lines with y labels.
    for (int g = 0; g <= 4; ++g) {
        const double frac = static_cast<double>(g) / 4.0;
        const double y = kT + plot_h * (1.0 - frac);
        svg << "<line class=\"grid\" x1=\"" << kL << "\" y1=\"" << y
            << "\" x2=\"" << kL + plot_w << "\" y2=\"" << y << "\"/>\n";
        svg << "<text class=\"tick\" x=\"" << kL - 6 << "\" y=\""
            << y + 3.5 << "\" text-anchor=\"end\">"
            << htmlEscape(formatNumber(y_max * frac)) << "</text>\n";
    }
    // X range labels (first/last interval start).
    svg << "<text class=\"tick\" x=\"" << kL << "\" y=\"" << kH - 8
        << "\">" << htmlEscape(formatNumber(x0)) << "</text>\n";
    if (n > 1) {
        svg << "<text class=\"tick\" x=\"" << kL + plot_w << "\" y=\""
            << kH - 8 << "\" text-anchor=\"end\">"
            << htmlEscape(formatNumber(
                   x0 + dx * static_cast<double>(n - 1)))
            << " " << htmlEscape(x_unit) << "</text>\n";
    }

    auto xAt = [&](std::size_t i) {
        return n <= 1 ? kL
                      : kL + plot_w * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
    };
    auto yAt = [&](double v) {
        return kT + plot_h * (1.0 - std::min(v, y_max) / y_max);
    };

    const bool hover = n <= 200;
    for (const ChartSeries &s : series_list) {
        svg << "<polyline class=\"s" << s.slot << "\" points=\"";
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            char pt[48];
            std::snprintf(pt, sizeof(pt), "%.2f,%.2f ", xAt(i),
                          yAt(s.points[i]));
            svg << pt;
        }
        svg << "\"/>\n";
        if (hover) {
            for (std::size_t i = 0; i < s.points.size(); ++i) {
                svg << "<circle class=\"pt s" << s.slot << "\" cx=\""
                    << xAt(i) << "\" cy=\"" << yAt(s.points[i])
                    << "\" r=\"7\"><title>" << htmlEscape(s.name)
                    << " @ " << formatNumber(
                           x0 + dx * static_cast<double>(i))
                    << " " << htmlEscape(x_unit) << ": "
                    << htmlEscape(formatNumber(s.points[i]))
                    << "</title></circle>\n";
            }
        }
    }

    // Legend (always present for >= 2 series; single series is named
    // by the title).
    if (series_list.size() >= 2) {
        double ly = kT + 6;
        for (const ChartSeries &s : series_list) {
            svg << "<rect class=\"chip s" << s.slot << "\" x=\""
                << kL + plot_w + 10 << "\" y=\"" << ly - 8
                << "\" width=\"10\" height=\"10\" rx=\"2\"/>\n";
            svg << "<text class=\"ltext\" x=\"" << kL + plot_w + 25
                << "\" y=\"" << ly + 1 << "\">" << htmlEscape(s.name)
                << "</text>\n";
            ly += 17;
        }
    }
    svg << "</svg>\n";
    return svg.str();
}

/** Column index in the names array, or -1. */
int
columnOf(const JsonValue *names, const std::string &wanted)
{
    if (names == nullptr || names->type != JsonValue::Type::Array)
        return -1;
    for (std::size_t i = 0; i < names->array.size(); ++i)
        if (names->array[i].text == wanted)
            return static_cast<int>(i);
    return -1;
}

std::vector<double>
column(const JsonValue &cell, const char *section,
       const char *names_key, const std::string &name)
{
    std::vector<double> out;
    const int idx = columnOf(find(cell, names_key), name);
    const JsonValue *intervals = find(cell, "intervals");
    if (idx < 0 || intervals == nullptr)
        return out;
    for (const JsonValue &row : intervals->array) {
        const JsonValue *cols = find(row, section);
        if (cols != nullptr &&
            static_cast<std::size_t>(idx) < cols->array.size())
            out.push_back(cols->array[static_cast<std::size_t>(idx)]
                              .number);
    }
    return out;
}

/** Everything inside <style> — the palette is the validated default
 *  (see dataviz reference palette), declared once per mode. */
const char *kStyle = R"css(
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --surface-2: #f4f3f0;
  --text: #0b0b0b; --text-2: #52514e; --grid: #e4e2dc;
  --c1: #2a78d6; --c2: #eb6834; --c3: #1baf7a; --c4: #8950c7;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --surface-2: #242423;
    --text: #ffffff; --text-2: #c3c2b7; --grid: #383835;
    --c1: #3987e5; --c2: #d95926; --c3: #199e70; --c4: #9a66d8;
  }
}
body { background: var(--surface); color: var(--text);
  font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto;
  max-width: 72rem; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.dim { color: var(--text-2); font-weight: normal; }
table.manifest, table.stats { border-collapse: collapse;
  margin: .5rem 0; }
table th, table td { text-align: left; padding: .15rem .6rem;
  border-bottom: 1px solid var(--grid); font-weight: normal; }
table th { color: var(--text-2); }
details.cell { border: 1px solid var(--grid); border-radius: 6px;
  padding: .35rem .7rem; margin: .5rem 0;
  background: var(--surface-2); }
summary { cursor: pointer; }
svg.chart { display: block; max-width: 40rem; margin: .7rem 0; }
.ctitle { fill: var(--text); font: 600 12px system-ui, sans-serif; }
.tick, .ltext { fill: var(--text-2);
  font: 10px system-ui, sans-serif; }
.grid { stroke: var(--grid); stroke-width: 1; }
polyline { fill: none; stroke-width: 2; stroke-linejoin: round; }
polyline.s1 { stroke: var(--c1); } polyline.s2 { stroke: var(--c2); }
polyline.s3 { stroke: var(--c3); } polyline.s4 { stroke: var(--c4); }
rect.chip.s1 { fill: var(--c1); } rect.chip.s2 { fill: var(--c2); }
rect.chip.s3 { fill: var(--c3); } rect.chip.s4 { fill: var(--c4); }
circle.pt { fill: transparent; }
circle.pt:hover { fill: currentColor; r: 3.5; }
circle.pt.s1 { color: var(--c1); } circle.pt.s2 { color: var(--c2); }
circle.pt.s3 { color: var(--c3); } circle.pt.s4 { color: var(--c4); }
div.cpibar { display: flex; width: 18rem; height: 14px;
  border-radius: 3px; overflow: hidden;
  background: var(--surface-2); }
div.cpibar span { display: block; height: 100%; }
div.cpibar .btlb { background: var(--c1); }
div.cpibar .bwalk { background: var(--c2); }
)css";

} // namespace

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
writePageHead(std::ostream &os, const std::string &title)
{
    os << "<!doctype html>\n<html lang=\"en\"><head>"
       << "<meta charset=\"utf-8\">\n"
       << "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">\n"
       << "<title>" << htmlEscape(title) << "</title>\n<style>"
       << kStyle << "</style></head>\n<body>\n<h1>"
       << htmlEscape(title) << "</h1>\n";
}

void
writePageFoot(std::ostream &os)
{
    os << "</body></html>\n";
}

void
writeManifest(std::ostream &os, const JsonValue *manifest)
{
    if (manifest == nullptr ||
        manifest->type != JsonValue::Type::Object)
        return;
    os << "<table class=\"manifest\">\n";
    for (const auto &[key, value] : manifest->object) {
        std::string rendered;
        if (value.type == JsonValue::Type::String)
            rendered = value.text;
        else if (value.isNumber())
            rendered = formatNumber(value.number);
        else if (value.type == JsonValue::Type::Object) {
            for (const auto &[ek, ev] : value.object) {
                if (!rendered.empty())
                    rendered += ", ";
                rendered += ek + "=" +
                            (ev.type == JsonValue::Type::String
                                 ? ev.text
                                 : formatNumber(ev.number));
            }
        }
        os << "<tr><th>" << htmlEscape(key) << "</th><td>"
           << htmlEscape(rendered) << "</td></tr>\n";
    }
    os << "</table>\n";
}

void
writeTimeSeriesCell(std::ostream &os, const std::string &key,
                    const JsonValue &cell)
{
    const std::string workload = stringOr(find(cell, "workload"), key);
    const std::string tlb = stringOr(find(cell, "tlb"));
    const std::string policy = stringOr(find(cell, "policy"));
    const double interval = numberOr(find(cell, "interval_refs"), 1.0);
    const JsonValue *intervals = find(cell, "intervals");
    const std::size_t n =
        intervals != nullptr ? intervals->array.size() : 0;

    const JsonValue *totals = find(cell, "totals");
    const double total_refs = numberOr(
        totals != nullptr ? totals->find("refs") : nullptr);
    const double total_miss = numberOr(
        totals != nullptr ? totals->find("tlb_miss") : nullptr);

    os << "<details class=\"cell\"><summary><b>"
       << htmlEscape(workload) << "</b> &middot; " << htmlEscape(tlb)
       << " / " << htmlEscape(policy) << " <span class=\"dim\">("
       << n << " intervals, "
       << htmlEscape(formatNumber(total_refs)) << " refs, miss rate "
       << htmlEscape(formatNumber(
              total_refs > 0 ? total_miss / total_refs : 0.0))
       << ")</span></summary>\n";

    // Chart 1: fractions (one unit, one axis).
    {
        std::vector<ChartSeries> fractions;
        ChartSeries miss{"miss rate", 1,
                         column(cell, "values", "value_names",
                                "miss_rate")};
        ChartSeries coverage{"large-page coverage", 2,
                             column(cell, "values", "value_names",
                                    "large_fraction")};
        if (!miss.points.empty())
            fractions.push_back(std::move(miss));
        const bool any_coverage =
            std::any_of(coverage.points.begin(), coverage.points.end(),
                        [](double v) { return v != 0.0; });
        if (any_coverage)
            fractions.push_back(std::move(coverage));
        if (!fractions.empty())
            os << lineChart("TLB miss rate per interval", fractions,
                            0.0, interval, "refs");
    }

    // Chart 2: policy/shootdown events per interval (counts).
    {
        std::vector<ChartSeries> events;
        ChartSeries promos{"promotions", 1,
                           column(cell, "counters", "counter_names",
                                  "promotions")};
        ChartSeries demos{"demotions", 2,
                          column(cell, "counters", "counter_names",
                                 "demotions")};
        ChartSeries shoots{"shootdowns", 3,
                           column(cell, "counters", "counter_names",
                                  "tlb_invalidation")};
        for (auto *s : {&promos, &demos, &shoots}) {
            if (std::any_of(s->points.begin(), s->points.end(),
                            [](double v) { return v != 0.0; }))
                events.push_back(std::move(*s));
        }
        if (!events.empty())
            os << lineChart("Promotions / demotions / shootdowns "
                            "per interval",
                            events, 0.0, interval, "refs");
    }

    // Chart 3: working set, when tracked.
    {
        ChartSeries ws{"working set", 1,
                       column(cell, "values", "value_names",
                              "ws_bytes")};
        if (!ws.points.empty())
            os << lineChart("Working-set bytes at interval end",
                            {ws}, 0.0, interval, "refs");
    }

    // Chart 3.5: TLB reach telemetry (columns exist only when the
    // lifecycle ledger ran — `--events-out` or RunOptions::lifecycle —
    // so absence = skip).
    {
        ChartSeries reach{"effective reach", 1,
                          column(cell, "values", "value_names",
                                 "reach_bytes")};
        if (!reach.points.empty())
            os << lineChart("Effective TLB reach bytes at interval "
                            "end",
                            {reach}, 0.0, interval, "refs");
        ChartSeries util{"reach utilization", 2,
                         column(cell, "values", "value_names",
                                "reach_utilization")};
        if (!util.points.empty()) {
            os << lineChart("Reach utilization (touched / covered "
                            "subpages of open superpages)",
                            {util}, 0.0, interval, "refs");
            // Churn table: how much of the promotion traffic was
            // back-and-forth on the same chunks (whole-run sums of
            // the interval counters).
            auto sum = [&](const char *name) {
                double total = 0.0;
                for (const double v :
                     column(cell, "counters", "counter_names", name))
                    total += v;
                return total;
            };
            const double promos = sum("promotions");
            const double demos = sum("demotions");
            os << "<details><summary>promotion churn</summary>"
               << "<table class=\"stats\">\n"
               << "<tr><th>promotions</th><td>"
               << htmlEscape(formatNumber(promos)) << "</td></tr>\n"
               << "<tr><th>demotions</th><td>"
               << htmlEscape(formatNumber(demos)) << "</td></tr>\n"
               << "<tr><th>churn (min of the two)</th><td>"
               << htmlEscape(formatNumber(std::min(promos, demos)))
               << "</td></tr>\n"
               << "<tr><th>shootdowns</th><td>"
               << htmlEscape(formatNumber(sum("tlb_invalidation")))
               << "</td></tr>\n</table></details>\n";
        }
    }

    // Chart 4: physical-memory fragmentation, when the phys model ran
    // (columns exist only under --phys-mem, so absence = skip).
    {
        ChartSeries frag{"fragmentation index", 1,
                         column(cell, "values", "value_names",
                                "frag_index")};
        if (!frag.points.empty())
            os << lineChart("External fragmentation index at "
                            "interval end",
                            {frag}, 0.0, interval, "refs");
        ChartSeries free_bytes{"free bytes", 1,
                               column(cell, "values", "value_names",
                                      "phys_free_bytes")};
        if (!free_bytes.points.empty())
            os << lineChart("Free physical memory at interval end",
                            {free_bytes}, 0.0, interval, "refs");
    }

    // Chart 5: phys allocation events per interval (counts).
    {
        std::vector<ChartSeries> events;
        ChartSeries in_place{"in-place promotions", 1,
                             column(cell, "counters", "counter_names",
                                    "phys_promos_in_place")};
        ChartSeries copied{"copy promotions", 2,
                           column(cell, "counters", "counter_names",
                                  "phys_promos_copied")};
        ChartSeries sp_fail{"superpage alloc failures", 3,
                            column(cell, "counters", "counter_names",
                                   "phys_superpage_fail")};
        for (auto *s : {&in_place, &copied, &sp_fail}) {
            if (std::any_of(s->points.begin(), s->points.end(),
                            [](double v) { return v != 0.0; }))
                events.push_back(std::move(*s));
        }
        if (!events.empty())
            os << lineChart("Superpage allocation events per interval",
                            events, 0.0, interval, "refs");
    }

    // Chart 6: OS-layer events per interval (columns exist only for
    // multiprogrammed cells — core::runMultiprogExperiment — so
    // absence = skip).
    {
        std::vector<ChartSeries> events;
        ChartSeries switches{"context switches", 1,
                             column(cell, "counters", "counter_names",
                                    "ctx_switches")};
        ChartSeries flushes{"switch flushes", 2,
                            column(cell, "counters", "counter_names",
                                   "switch_flushes")};
        ChartSeries recycles{"ASID recycles", 3,
                             column(cell, "counters", "counter_names",
                                    "asid_recycles")};
        ChartSeries shootdowns{"shootdown broadcasts", 4,
                               column(cell, "counters",
                                      "counter_names", "shootdowns")};
        for (auto *s : {&switches, &flushes, &recycles, &shootdowns}) {
            if (!s->points.empty() &&
                std::any_of(s->points.begin(), s->points.end(),
                            [](double v) { return v != 0.0; }))
                events.push_back(std::move(*s));
        }
        if (!events.empty())
            os << lineChart("Context switches / ASID events "
                            "per interval",
                            events, 0.0, interval, "refs");
    }

    // Chart 7: page-walk model (columns exist only under
    // --walk-model, so absence = skip).
    {
        ChartSeries pwc{"PWC hit rate", 1,
                        column(cell, "values", "value_names",
                               "pwc_hit_rate")};
        if (!pwc.points.empty())
            os << lineChart("Page-walk cache hit rate per interval",
                            {pwc}, 0.0, interval, "refs");
        ChartSeries levels{"walk level accesses", 2,
                           column(cell, "counters", "counter_names",
                                  "walk_levels")};
        if (std::any_of(levels.points.begin(), levels.points.end(),
                        [](double v) { return v != 0.0; }))
            os << lineChart("Page-walk level accesses per interval",
                            {levels}, 0.0, interval, "refs");
    }

    // Totals table (the whole-run aggregates, table view of the data).
    if (totals != nullptr) {
        os << "<details><summary>whole-run totals</summary>"
           << "<table class=\"stats\">\n";
        for (const auto &[name, value] : totals->object)
            os << "<tr><th>" << htmlEscape(name) << "</th><td>"
               << htmlEscape(formatNumber(value.number))
               << "</td></tr>\n";
        os << "</table></details>\n";
    }

    // Sampled miss events.
    if (const JsonValue *samples = find(cell, "miss_samples")) {
        const JsonValue *events = find(*samples, "events");
        const std::size_t shown =
            events != nullptr ? events->array.size() : 0;
        os << "<details><summary>sampled miss events (" << shown
           << " of " << htmlEscape(formatNumber(
                             numberOr(find(*samples, "seen"))))
           << " misses)</summary><table class=\"stats\">"
           << "<tr><th>ref</th><th>vpn</th><th>page</th>"
           << "<th>cause</th></tr>\n";
        if (events != nullptr) {
            for (const JsonValue &event : events->array) {
                char vpn[32];
                std::snprintf(
                    vpn, sizeof(vpn), "0x%llx",
                    static_cast<unsigned long long>(
                        numberOr(find(event, "vpn"))));
                const double size_log2 =
                    numberOr(find(event, "size_log2"));
                os << "<tr><td>"
                   << htmlEscape(formatNumber(
                          numberOr(find(event, "ref"))))
                   << "</td><td>" << vpn << "</td><td>"
                   << htmlEscape(formatNumber(
                          std::pow(2.0, size_log2) / 1024.0))
                   << "KB</td><td>"
                   << htmlEscape(stringOr(find(event, "cause")))
                   << "</td></tr>\n";
            }
        }
        os << "</table></details>\n";
    }
    os << "</details>\n";
}

void
writeStatsSections(std::ostream &os, const JsonValue &doc)
{
    // CPI stack: every cell that exported cpi_tlb gets a shared-scale
    // bar; cells that also ran the walk model get the structural
    // cpi_walk band stacked beside the flat term, so the two cost
    // models are comparable at a glance (DESIGN.md §15).
    {
        struct Band
        {
            std::string cell;
            double tlb = 0.0;
            double walk = 0.0;
            bool hasWalk = false;
        };
        std::vector<Band> bands;
        const JsonValue *stats = find(doc, "stats");
        const std::string suffix = ".cpi_tlb";
        if (stats != nullptr &&
            stats->type == JsonValue::Type::Object) {
            for (const auto &[name, value] : stats->object) {
                if (name.size() <= suffix.size() ||
                    name.compare(name.size() - suffix.size(),
                                 suffix.size(), suffix) != 0)
                    continue;
                Band band;
                band.cell =
                    name.substr(0, name.size() - suffix.size());
                band.tlb = value.number;
                if (const JsonValue *w =
                        stats->find(band.cell + ".cpi_walk")) {
                    band.walk = w->number;
                    band.hasWalk = true;
                }
                bands.push_back(std::move(band));
            }
        }
        const bool any_walk =
            std::any_of(bands.begin(), bands.end(),
                        [](const Band &b) { return b.hasWalk; });
        if (!bands.empty() && any_walk) {
            double max_total = 0.0;
            for (const Band &b : bands)
                max_total = std::max(max_total, b.tlb + b.walk);
            if (max_total <= 0.0)
                max_total = 1.0;
            os << "<details open><summary>CPI stack (flat "
                  "cpi_tlb + structural cpi_walk)</summary>"
                  "<table class=\"stats\">\n"
                  "<tr><th>cell</th><th>cpi_tlb</th>"
                  "<th>cpi_walk</th><th></th></tr>\n";
            for (const Band &b : bands) {
                char tlb_w[16], walk_w[16];
                std::snprintf(tlb_w, sizeof(tlb_w), "%.2f%%",
                              100.0 * b.tlb / max_total);
                std::snprintf(walk_w, sizeof(walk_w), "%.2f%%",
                              100.0 * b.walk / max_total);
                os << "<tr><th>" << htmlEscape(b.cell) << "</th><td>"
                   << htmlEscape(formatNumber(b.tlb)) << "</td><td>"
                   << (b.hasWalk ? htmlEscape(formatNumber(b.walk))
                                 : std::string("-"))
                   << "</td><td><div class=\"cpibar\">"
                      "<span class=\"btlb\" title=\"cpi_tlb\" "
                      "style=\"width:"
                   << tlb_w << "\"></span>";
                if (b.hasWalk)
                    os << "<span class=\"bwalk\" title=\"cpi_walk\" "
                          "style=\"width:"
                       << walk_w << "\"></span>";
                os << "</div></td></tr>\n";
            }
            os << "</table></details>\n";
        }
    }

    for (const char *section : {"stats", "text"}) {
        const JsonValue *values = find(doc, section);
        if (values == nullptr ||
            values->type != JsonValue::Type::Object ||
            values->object.empty())
            continue;
        os << "<details><summary>" << section << " ("
           << values->object.size()
           << " entries)</summary><table class=\"stats\">\n";
        for (const auto &[name, value] : values->object) {
            os << "<tr><th>" << htmlEscape(name) << "</th><td>"
               << htmlEscape(value.type == JsonValue::Type::String
                                 ? value.text
                                 : formatNumber(value.number))
               << "</td></tr>\n";
        }
        os << "</table></details>\n";
    }
}

} // namespace tps::obs::report
