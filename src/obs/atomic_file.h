/**
 * @file
 * Crash-safe whole-file replacement: write to a sibling temp file,
 * fsync, rename over the destination.  POSIX rename() is atomic, so a
 * reader (or a reboot) sees either the previous complete file or the
 * new complete file, never a torn mixture — the property the campaign
 * journal and the heartbeat status file are built on.
 */

#ifndef TPS_OBS_ATOMIC_FILE_H_
#define TPS_OBS_ATOMIC_FILE_H_

#include <string>

namespace tps::obs
{

/**
 * Atomically replace @p path with @p content via "<path>.tmp".
 * @return true on success; false with @p error filled on any IO
 *         failure (the temp file is removed on a failed write, but a
 *         crash can leave one behind — it is never read).
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string &error);

} // namespace tps::obs

#endif // TPS_OBS_ATOMIC_FILE_H_
