#include "obs/stat_registry.h"

#include <cstdio>
#include <stdexcept>

namespace tps::obs
{

bool
isValidStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prev_dot = false;
    for (const char c : name) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
slugify(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    bool pending_sep = false;
    for (const char c : label) {
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9');
        if (!alnum) {
            pending_sep = !out.empty();
            continue;
        }
        if (pending_sep) {
            out.push_back('_');
            pending_sep = false;
        }
        out.push_back(c >= 'A' && c <= 'Z'
                          ? static_cast<char>(c - 'A' + 'a')
                          : c);
    }
    return out.empty() ? std::string("_") : out;
}

StatRegistry::StatRegistry(const StatRegistry &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    entries_ = other.entries_;
}

StatRegistry &
StatRegistry::operator=(const StatRegistry &other)
{
    if (this == &other)
        return *this;
    std::map<std::string, StatEntry> copy;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        copy = other.entries_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    entries_ = std::move(copy);
    return *this;
}

void
StatRegistry::addEntry(const std::string &name, StatEntry entry)
{
    if (!isValidStatName(name))
        throw std::invalid_argument("invalid stat name: '" + name + "'");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(name, std::move(entry));
    (void)it;
    if (!inserted)
        throw std::invalid_argument("duplicate stat name: '" + name + "'");
}

void
StatRegistry::addCounter(const std::string &name, std::uint64_t value)
{
    StatEntry entry;
    entry.kind = StatEntry::Kind::Counter;
    entry.counter = value;
    addEntry(name, std::move(entry));
}

void
StatRegistry::addValue(const std::string &name, double value)
{
    StatEntry entry;
    entry.kind = StatEntry::Kind::Value;
    entry.value = value;
    addEntry(name, std::move(entry));
}

void
StatRegistry::addText(const std::string &name, const std::string &value)
{
    StatEntry entry;
    entry.kind = StatEntry::Kind::Text;
    entry.text = value;
    addEntry(name, std::move(entry));
}

void
StatRegistry::addHistogram(const std::string &name,
                           std::vector<std::uint64_t> buckets)
{
    StatEntry entry;
    entry.kind = StatEntry::Kind::Histogram;
    entry.buckets = std::move(buckets);
    addEntry(name, std::move(entry));
}

void
StatRegistry::incrCounter(const std::string &name, std::uint64_t delta)
{
    if (!isValidStatName(name))
        throw std::invalid_argument("invalid stat name: '" + name + "'");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        StatEntry entry;
        entry.kind = StatEntry::Kind::Counter;
        entry.counter = delta;
        entries_.emplace(name, std::move(entry));
        return;
    }
    if (it->second.kind != StatEntry::Kind::Counter)
        throw std::invalid_argument("stat '" + name +
                                    "' is not a counter");
    it->second.counter += delta;
}

bool
StatRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
}

std::size_t
StatRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const StatEntry &entry = entries_.at(name);
    if (entry.kind != StatEntry::Kind::Counter)
        throw std::out_of_range("stat '" + name + "' is not a counter");
    return entry.counter;
}

double
StatRegistry::value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const StatEntry &entry = entries_.at(name);
    if (entry.kind == StatEntry::Kind::Value)
        return entry.value;
    if (entry.kind == StatEntry::Kind::Counter)
        return static_cast<double>(entry.counter);
    throw std::out_of_range("stat '" + name + "' is not numeric");
}

const std::string &
StatRegistry::text(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const StatEntry &entry = entries_.at(name);
    if (entry.kind != StatEntry::Kind::Text)
        throw std::out_of_range("stat '" + name + "' is not text");
    return entry.text;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

void
StatRegistry::merge(const StatRegistry &other, const std::string &prefix)
{
    // Snapshot the source first so self-merge or concurrent writers
    // on `other` cannot deadlock against our own lock.
    std::map<std::string, StatEntry> source;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        source = other.entries_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, entry] : source) {
        const std::string full =
            prefix.empty() ? name : prefix + "." + name;
        if (!isValidStatName(full))
            throw std::invalid_argument("invalid stat name: '" + full +
                                        "'");
        const auto [it, inserted] = entries_.emplace(full,
                                                     std::move(entry));
        (void)it;
        if (!inserted)
            throw std::invalid_argument("duplicate stat name: '" + full +
                                        "'");
    }
}

void
StatRegistry::writeJson(std::ostream &os,
                        const RunManifest *manifest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter writer(os);
    writer.beginObject();
    writer.key("schema").value(kStatsSchema);
    if (manifest != nullptr) {
        writer.key("manifest");
        manifest->writeJson(writer);
    }

    writer.key("stats").beginObject();
    for (const auto &[name, entry] : entries_) {
        if (entry.kind == StatEntry::Kind::Counter)
            writer.key(name).value(entry.counter);
        else if (entry.kind == StatEntry::Kind::Value)
            writer.key(name).value(entry.value);
    }
    writer.endObject();

    writer.key("text").beginObject();
    for (const auto &[name, entry] : entries_) {
        if (entry.kind == StatEntry::Kind::Text)
            writer.key(name).value(entry.text);
    }
    writer.endObject();

    writer.key("histograms").beginObject();
    for (const auto &[name, entry] : entries_) {
        if (entry.kind != StatEntry::Kind::Histogram)
            continue;
        writer.key(name).beginArray();
        for (const std::uint64_t bucket : entry.buckets)
            writer.value(bucket);
        writer.endArray();
    }
    writer.endObject();

    writer.endObject();
    writer.finish();
}

void
StatRegistry::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "name,kind,value\n";
    for (const auto &[name, entry] : entries_) {
        os << name << ',';
        switch (entry.kind) {
          case StatEntry::Kind::Counter:
            os << "counter," << entry.counter;
            break;
          case StatEntry::Kind::Value: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", entry.value);
            os << "value," << buf;
            break;
          }
          case StatEntry::Kind::Text:
            os << "text," << entry.text;
            break;
          case StatEntry::Kind::Histogram: {
            os << "histogram,";
            bool first = true;
            for (const std::uint64_t bucket : entry.buckets) {
                if (!first)
                    os << ' ';
                first = false;
                os << bucket;
            }
            break;
          }
        }
        os << '\n';
    }
}

} // namespace tps::obs
