/**
 * @file
 * Interval telemetry: phase-resolved time series of simulation
 * counters plus a reservoir-sampled miss-event log, emitted as the
 * `tps-timeseries-v1` JSON schema.
 *
 * Whole-run aggregates hide *when* a workload earns its superpages —
 * promotions cluster at phase boundaries and tomcatv's set-associative
 * thrashing is invisible in end-of-run averages.  A TimeSeriesRecorder
 * is fed by the experiment driver every `intervalRefs` measured
 * references with the *delta* of every counter since the previous
 * snapshot, so summing a column over all intervals reproduces the
 * whole-run aggregate exactly (the invariant the determinism gate
 * checks).
 *
 * Layering: like the rest of tps::obs this sits below tps::util, so
 * the recorder is column-oriented and domain-agnostic — the experiment
 * driver owns the column meaning (TLB misses, promotions, ...) and the
 * recorder owns storage, sampling and serialization.
 */

#ifndef TPS_OBS_TIMESERIES_H_
#define TPS_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"

namespace tps::obs
{

/** Identifies the time-series dump format; bump on breaking changes. */
inline constexpr const char *kTimeSeriesSchema = "tps-timeseries-v1";

/** Per-run interval-telemetry controls (see core::RunOptions). */
struct TimeSeriesConfig
{
    /** Measured references per interval (0 = recording disabled). */
    std::uint64_t intervalRefs = 0;

    /** Reservoir capacity of the miss-event log (0 = no sampling). */
    std::size_t missSampleCapacity = 0;

    /** Seed of the reservoir's private PRNG (sampling is
     *  deterministic for a fixed seed and reference stream). */
    std::uint64_t missSampleSeed = 0x9E3779B97F4A7C15ULL;

    bool enabled() const { return intervalRefs != 0; }
};

/** Why a sampled reference missed. */
enum class MissCause : std::uint8_t
{
    Cold,      ///< first access to this page identity
    Capacity,  ///< page was seen before (capacity/conflict re-miss)
    Shootdown, ///< page was invalidated since its last access
};

const char *missCauseName(MissCause cause);

/** One reservoir-sampled TLB miss. */
struct MissEvent
{
    std::uint64_t ref = 0; ///< measured-reference index (1-based)
    std::uint64_t vpn = 0;
    std::uint8_t sizeLog2 = 0;
    MissCause cause = MissCause::Cold;
};

/** One closed interval: counter deltas and instantaneous values. */
struct IntervalRow
{
    std::uint64_t startRef = 0; ///< first measured ref of the interval
    std::uint64_t refs = 0;     ///< references in this interval
    std::vector<std::uint64_t> counters; ///< deltas, per counter name
    std::vector<double> values;          ///< per value name
};

/** The finished series of one experiment cell. */
struct TimeSeries
{
    std::string workload;
    std::string tlbName;
    std::string policyName;

    std::uint64_t intervalRefs = 0;
    std::vector<std::string> counterNames;
    std::vector<std::string> valueNames;
    std::vector<IntervalRow> intervals;

    std::size_t missSampleCapacity = 0;
    std::uint64_t missSeen = 0; ///< misses offered to the reservoir
    std::vector<MissEvent> missSamples; ///< sorted by ref

    /** Sum of one counter column over all intervals. */
    std::uint64_t counterSum(const std::string &name) const;

    /** Emit as one JSON object value (caller provides the key). */
    void writeJson(JsonWriter &writer) const;
};

/**
 * Per-cell recorder: the experiment driver closes an interval every
 * `intervalRefs` measured references by handing over the counter
 * deltas since the last close, and offers every miss to the sampler.
 * Not thread-safe — each simulation cell owns its recorder.
 */
class TimeSeriesRecorder
{
  public:
    TimeSeriesRecorder(const TimeSeriesConfig &config,
                       std::vector<std::string> counter_names,
                       std::vector<std::string> value_names);

    std::uint64_t intervalRefs() const { return config_.intervalRefs; }
    bool samplingMisses() const { return config_.missSampleCapacity != 0; }

    /**
     * Close one interval.  @p counters and @p values must match the
     * construction-time name lists in length and order; counters are
     * deltas since the previous endInterval call.
     */
    void endInterval(std::uint64_t start_ref, std::uint64_t refs,
                     std::vector<std::uint64_t> counters,
                     std::vector<double> values);

    /** Offer one miss to the reservoir (Vitter's algorithm R). */
    void offerMiss(std::uint64_t ref, std::uint64_t vpn,
                   std::uint8_t size_log2, MissCause cause);

    std::uint64_t missSeen() const { return miss_seen_; }
    const std::vector<IntervalRow> &intervals() const
    {
        return series_.intervals;
    }
    const std::vector<std::string> &counterNames() const
    {
        return series_.counterNames;
    }
    const std::vector<std::string> &valueNames() const
    {
        return series_.valueNames;
    }

    /** Finish: label the series and hand it over (recorder is spent).
     *  Miss samples come back sorted by reference time so the output
     *  is canonical regardless of replacement order. */
    TimeSeries finish(std::string workload, std::string tlb_name,
                      std::string policy_name);

  private:
    std::uint64_t nextRandom();

    TimeSeriesConfig config_;
    TimeSeries series_;
    std::uint64_t miss_seen_ = 0;
    std::uint64_t rng_state_;
};

/**
 * Process-global collection point for finished series, one per
 * experiment cell, written as one `tps-timeseries-v1` document at
 * exit (benches enable it with `--timeseries-out FILE`; see
 * bench_common.h).  Cells are keyed by slugified
 * "<workload>.<tlb>.<policy>"; add() is thread-safe and output order
 * is sorted, so the cells section is byte-identical at any worker
 * thread count.
 */
class TimeSeriesSink
{
  public:
    explicit TimeSeriesSink(TimeSeriesConfig config);

    const TimeSeriesConfig &config() const { return config_; }

    /** Record one finished cell (any thread). */
    void add(TimeSeries series);

    std::size_t cellCount() const;

    /**
     * Emit the document:
     * { "schema": "tps-timeseries-v1",
     *   "manifest": {...},              // when provided
     *   "interval_refs": N,
     *   "cells": { "<key>": {...} } }   // sorted keys
     * Duplicate cell keys (the same configuration run twice) are
     * disambiguated with a "_2" suffix after sorting the duplicates
     * by serialized content, keeping output deterministic regardless
     * of completion order.
     */
    void writeJson(std::ostream &os,
                   const RunManifest *manifest = nullptr) const;

    // ------------------------------------------------- global access

    /** The process-global sink, nullptr until enabled. */
    static TimeSeriesSink *global();

    /** Idempotently create the global sink (first config wins). */
    static TimeSeriesSink *enableGlobal(const TimeSeriesConfig &config);

    /** Detach the global sink again (tests). */
    static void disableGlobal();

  private:
    TimeSeriesConfig config_;
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<TimeSeries>> cells_;
};

} // namespace tps::obs

#endif // TPS_OBS_TIMESERIES_H_
