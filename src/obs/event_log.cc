#include "obs/event_log.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

#include "obs/stat_registry.h"

namespace tps::obs
{

void
EventLog::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("workload").value(workload);
    writer.key("tlb").value(tlbName);
    writer.key("policy").value(policyName);
    writer.key("sample_every").value(sampleEvery);
    writer.key("capacity")
        .value(static_cast<std::uint64_t>(capacity));
    writer.key("streams").beginObject();
    for (const auto &[name, stream] : streams) {
        writer.key(name).beginObject();
        writer.key("fields").beginArray();
        writer.value(std::string("t"));
        for (const std::string &field : stream.fields)
            writer.value(field);
        writer.endArray();
        writer.key("seen").value(stream.seen);
        // Events as flat [t, fields...] rows: compact, and the field
        // list above names the columns (tps_inspect decodes by name).
        writer.key("events").beginArray();
        for (const Event &event : stream.events) {
            writer.beginArray();
            writer.value(event.t);
            if (stream.fields.size() > 0)
                writer.value(event.a);
            if (stream.fields.size() > 1)
                writer.value(event.b);
            if (stream.fields.size() > 2)
                writer.value(event.c);
            writer.endArray();
        }
        writer.endArray();
        writer.endObject();
    }
    writer.endObject();
    writer.endObject();
}

EventLogRecorder::EventLogRecorder(const EventLogConfig &config)
    : config_(config)
{
    if (config_.sampleEvery == 0)
        throw std::invalid_argument(
            "EventLogRecorder needs sampleEvery > 0");
}

std::size_t
EventLogRecorder::stream(const std::string &name,
                         std::vector<std::string> fields)
{
    for (std::size_t i = 0; i < streams_.size(); ++i)
        if (streams_[i].name == name)
            return i;
    if (fields.size() > 3)
        throw std::invalid_argument("event streams carry at most 3 "
                                    "operand fields");
    Stream s;
    s.name = name;
    s.data.fields = std::move(fields);
    streams_.push_back(std::move(s));
    return streams_.size() - 1;
}

EventLog
EventLogRecorder::finish(std::string workload, std::string tlb_name,
                         std::string policy_name)
{
    EventLog log;
    log.workload = std::move(workload);
    log.tlbName = std::move(tlb_name);
    log.policyName = std::move(policy_name);
    log.sampleEvery = config_.sampleEvery;
    log.capacity = config_.capacity;
    for (Stream &s : streams_)
        log.streams.emplace(std::move(s.name), std::move(s.data));
    streams_.clear();
    return log;
}

// ------------------------------------------------------------- sink

EventLogSink::EventLogSink(EventLogConfig config) : config_(config) {}

void
EventLogSink::add(EventLog log)
{
    const std::string key = slugify(log.workload) + "." +
                            slugify(log.tlbName) + "." +
                            slugify(log.policyName);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_[key].push_back(std::move(log));
}

std::size_t
EventLogSink::cellCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[key, list] : cells_)
        n += list.size();
    return n;
}

namespace
{

std::string
serializeLog(const EventLog &log)
{
    std::ostringstream out;
    JsonWriter writer(out, /*pretty=*/false);
    log.writeJson(writer);
    writer.finish();
    return out.str();
}

} // namespace

void
EventLogSink::writeJson(std::ostream &os,
                        const RunManifest *manifest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter writer(os);
    writer.beginObject();
    writer.key("schema").value(kEventLogSchema);
    if (manifest != nullptr) {
        writer.key("manifest");
        manifest->writeJson(writer);
    }
    writer.key("sample_every").value(config_.sampleEvery);
    writer.key("capacity")
        .value(static_cast<std::uint64_t>(config_.capacity));
    writer.key("cells").beginObject();
    for (const auto &[key, list] : cells_) {
        if (list.size() == 1) {
            writer.key(key);
            list.front().writeJson(writer);
            continue;
        }
        // Identical configurations run more than once: completion
        // order is thread-dependent, so order duplicates by content
        // before numbering them (the TimeSeriesSink convention).
        std::vector<std::pair<std::string, const EventLog *>> dups;
        for (const EventLog &log : list)
            dups.emplace_back(serializeLog(log), &log);
        std::sort(dups.begin(), dups.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (std::size_t i = 0; i < dups.size(); ++i) {
            writer.key(i == 0 ? key
                              : key + "_" + std::to_string(i + 1));
            dups[i].second->writeJson(writer);
        }
    }
    writer.endObject();
    writer.endObject();
    writer.finish();
    os << "\n";
}

namespace
{

std::atomic<EventLogSink *> global_sink{nullptr};

} // namespace

EventLogSink *
EventLogSink::global()
{
    return global_sink.load(std::memory_order_acquire);
}

EventLogSink *
EventLogSink::enableGlobal(const EventLogConfig &config)
{
    EventLogSink *sink = global_sink.load(std::memory_order_acquire);
    if (sink != nullptr)
        return sink;
    auto *fresh = new EventLogSink(config);
    EventLogSink *expected = nullptr;
    if (global_sink.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
        return fresh;
    }
    delete fresh;
    return expected;
}

void
EventLogSink::disableGlobal()
{
    EventLogSink *sink =
        global_sink.exchange(nullptr, std::memory_order_acq_rel);
    delete sink;
}

} // namespace tps::obs
