/**
 * @file
 * Best-effort flush-on-signal: a small registry of callbacks run once
 * when SIGINT/SIGTERM arrives, before the process exits with the
 * conventional 128+signo status.  The bench harness registers its
 * stats/trace/timeseries flush here, and `tps_campaign` registers a
 * final heartbeat write — so an interrupted overnight run still leaves
 * a readable status file instead of relying solely on `atexit` hooks,
 * which fatal signals skip.
 *
 * Honesty note: the callbacks do stream IO and allocation, which is
 * not async-signal-safe.  This is a deliberate pragmatic tradeoff for
 * a terminal interrupt of a simulator — the worst case is a garbled
 * *auxiliary* dump, never a corrupted journal, because journal and
 * heartbeat commits go through atomic write-temp-rename and a rename
 * either happened or it did not.
 */

#ifndef TPS_OBS_SIGNAL_FLUSH_H_
#define TPS_OBS_SIGNAL_FLUSH_H_

#include <functional>

namespace tps::obs
{

/**
 * Register @p fn to run when SIGINT or SIGTERM arrives (argument: the
 * signal number).  The first call installs the handlers; callbacks run
 * in registration order, at most once per process, after which the
 * process _Exit()s with 128+signo.  Thread-safe.
 */
void installSignalFlush(std::function<void(int)> fn);

/**
 * Run the registered callbacks now (at most once) without exiting —
 * for orderly shutdown paths that want the same flush behaviour, and
 * for tests.  Returns the number of callbacks run (0 when a signal
 * already consumed them).
 */
int runSignalFlushCallbacks(int signo);

} // namespace tps::obs

#endif // TPS_OBS_SIGNAL_FLUSH_H_
