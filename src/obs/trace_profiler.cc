#include "obs/trace_profiler.h"

#include <unistd.h>

#include <atomic>
#include <memory>

#include "obs/json.h"

namespace tps::obs
{

namespace
{

std::atomic<TraceProfiler *> global_profiler{nullptr};
std::mutex global_mutex;

} // namespace

TraceProfiler::TraceProfiler() : start_(std::chrono::steady_clock::now()) {}

std::uint64_t
TraceProfiler::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

std::uint32_t
TraceProfiler::threadId()
{
    // Dense per-profiler thread ids in first-emission order; the
    // thread_local caches the assignment per (profiler, thread).
    struct Assignment
    {
        const TraceProfiler *owner = nullptr;
        std::uint32_t tid = 0;
    };
    thread_local Assignment assignment;
    if (assignment.owner != this) {
        std::lock_guard<std::mutex> lock(mutex_);
        assignment.owner = this;
        assignment.tid = next_tid_++;
    }
    return assignment.tid;
}

void
TraceProfiler::record(Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceProfiler::begin(std::string name, const char *cat)
{
    Event event;
    event.name = std::move(name);
    event.cat = cat;
    event.ph = 'B';
    event.tsUs = nowUs();
    event.tid = threadId();
    record(std::move(event));
}

void
TraceProfiler::end()
{
    Event event;
    event.cat = nullptr;
    event.ph = 'E';
    event.tsUs = nowUs();
    event.tid = threadId();
    record(std::move(event));
}

void
TraceProfiler::instant(std::string name, const char *cat)
{
    Event event;
    event.name = std::move(name);
    event.cat = cat;
    event.ph = 'i';
    event.tsUs = nowUs();
    event.tid = threadId();
    record(std::move(event));
}

std::size_t
TraceProfiler::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceProfiler::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

void
TraceProfiler::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t pid = static_cast<std::uint64_t>(getpid());
    JsonWriter writer(os, /*pretty=*/false);
    writer.beginObject();
    writer.key("traceEvents").beginArray();
    // Name the process so Perfetto shows something meaningful.
    writer.beginObject();
    writer.key("ph").value("M");
    writer.key("pid").value(pid);
    writer.key("tid").value(std::uint64_t{0});
    writer.key("name").value("process_name");
    writer.key("args").beginObject();
    writer.key("name").value("tps");
    writer.endObject();
    writer.endObject();
    for (const Event &event : events_) {
        writer.beginObject();
        writer.key("ph").value(std::string(1, event.ph));
        writer.key("pid").value(pid);
        writer.key("tid").value(
            static_cast<std::uint64_t>(event.tid));
        writer.key("ts").value(event.tsUs);
        if (event.ph != 'E') {
            writer.key("name").value(event.name);
            writer.key("cat").value(event.cat != nullptr ? event.cat
                                                         : "default");
        }
        if (event.ph == 'i')
            writer.key("s").value("t"); // thread-scoped instant
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    writer.finish();
}

TraceProfiler *
TraceProfiler::global()
{
    return global_profiler.load(std::memory_order_acquire);
}

TraceProfiler *
TraceProfiler::enableGlobal()
{
    std::lock_guard<std::mutex> lock(global_mutex);
    TraceProfiler *existing =
        global_profiler.load(std::memory_order_acquire);
    if (existing != nullptr)
        return existing;
    // Leaked deliberately: worker threads may still emit spans while
    // the process exits, and the profiler must outlive them all.
    TraceProfiler *created = new TraceProfiler();
    global_profiler.store(created, std::memory_order_release);
    return created;
}

void
TraceProfiler::disableGlobal()
{
    std::lock_guard<std::mutex> lock(global_mutex);
    global_profiler.store(nullptr, std::memory_order_release);
}

} // namespace tps::obs
