/**
 * @file
 * Rate-limited progress reporting for long sweeps: a single stderr
 * line every ~250ms with items done/total, reference throughput and
 * an ETA, safe to tick from any worker thread.
 *
 * Reporting is globally gated (benches enable it with `--progress`
 * or TPS_PROGRESS=1); a disabled reporter costs two relaxed atomic
 * increments per tick.
 */

#ifndef TPS_OBS_PROGRESS_H_
#define TPS_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tps::obs
{

/** Global gate (default off); see also TPS_PROGRESS handling in
 *  bench_common.h. */
void setProgressEnabled(bool enabled);
bool progressEnabled();

class ProgressReporter
{
  public:
    /**
     * @param total total number of items (cells, workloads...) that
     *              will be ticked; 0 when unknown (no ETA).
     * @param label what an item is, e.g. "cells".
     */
    explicit ProgressReporter(std::uint64_t total,
                              std::string label = "items");

    /** Report one finished item plus the references it simulated. */
    void tick(std::uint64_t refs = 0);

    /**
     * Seed checkpointed work from a resumed run: @p done items and
     * @p refs references count toward the displayed totals but are
     * excluded from every rate and ETA, so the first reporting window
     * after `--resume` doesn't claim an absurd throughput for cells
     * this process never executed.  Call before the first tick().
     */
    void seedResumed(std::uint64_t done, std::uint64_t refs);

    /** Unconditionally emit a final line (when reporting is on). */
    void finish();

    /** Items ticked so far. */
    std::uint64_t done() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    /** Progress lines emitted so far (rate-limiting test hook). */
    std::uint64_t emitted() const
    {
        return emitted_.load(std::memory_order_relaxed);
    }

    /** Minimum milliseconds between lines (default 250; test hook). */
    void setMinIntervalMs(std::uint64_t ms) { interval_us_ = ms * 1000; }

    /** Redirect output (default stderr; test hook). */
    void setStream(std::FILE *stream) { stream_ = stream; }

    /** Per-instance override of the global gate (test hook). */
    void forceEnabled(bool enabled) { forced_ = enabled ? 1 : 0; }

    /** Pretend the run started at @p start (test hook: exercises the
     *  zero/negative-elapsed ETA guard deterministically). */
    void setStartForTest(std::chrono::steady_clock::time_point start)
    {
        start_ = start;
    }

  private:
    bool enabled() const;
    void emitLine(bool final);

    const std::uint64_t total_;
    const std::string label_;
    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> refs_{0};
    std::atomic<std::uint64_t> emitted_{0};
    std::atomic<std::uint64_t> last_emit_us_{0};
    /** Snapshot at the previously emitted line, so rates and the ETA
     *  reflect the last reporting window rather than the cumulative
     *  average (which overestimates the ETA after a slow warm-up
     *  cell).  Written only by the thread that wins the emit CAS. */
    std::atomic<std::uint64_t> window_done_{0};
    std::atomic<std::uint64_t> window_refs_{0};
    std::atomic<std::uint64_t> window_start_us_{0};
    /** Checkpointed work counted in done_/refs_ but never in rates
     *  (set once by seedResumed before any tick). */
    std::uint64_t seed_done_ = 0;
    std::uint64_t seed_refs_ = 0;
    std::uint64_t interval_us_ = 250'000;
    int forced_ = -1; ///< -1 = follow global gate
    std::FILE *stream_ = stderr;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tps::obs

#endif // TPS_OBS_PROGRESS_H_
