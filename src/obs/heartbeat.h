/**
 * @file
 * Live campaign status: a small JSON document (tps-heartbeat-v1)
 * atomically rewritten every interval by the campaign driver and
 * tailed by `tps_top`.  Because the writer goes through
 * write-temp-rename, a reader polling the file never sees a torn
 * document — it either gets the previous heartbeat or the next one.
 *
 * The struct is a plain value with symmetric writeJson/fromJson so
 * the viewer, tests and any external tooling share one schema.
 */

#ifndef TPS_OBS_HEARTBEAT_H_
#define TPS_OBS_HEARTBEAT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tps::obs
{

inline constexpr const char *kHeartbeatSchema = "tps-heartbeat-v1";

/** One cell currently executing. */
struct HeartbeatCell
{
    std::string key;
    std::string workload;
    std::string config;
    double elapsedSeconds = 0.0;
    /** Estimated remaining seconds; < 0 when no estimate exists yet. */
    double etaSeconds = -1.0;
};

struct Heartbeat
{
    /** "starting" | "running" | "finished" | "interrupted". */
    std::string state;
    std::string configHash;
    std::string timestampUtc;
    /** Writer provenance: which process on which machine produced
     *  this document (several daemons/campaigns can share a status
     *  directory; see RunManifest for the fuller machine context). */
    std::string hostname;
    std::uint64_t pid = 0;
    double uptimeSeconds = 0.0;

    std::uint64_t workers = 0;
    std::uint64_t workersBusy = 0;

    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsDone = 0;     ///< includes resumed cells
    std::uint64_t cellsResumed = 0;  ///< skipped via --resume
    std::uint64_t refsDone = 0;      ///< refs of completed cells
    double refsPerSec = 0.0;         ///< windowed campaign throughput
    /** Estimated remaining seconds; < 0 when no estimate exists yet. */
    double etaSeconds = -1.0;

    std::vector<HeartbeatCell> inFlight;

    void writeJson(std::ostream &os) const;

    /**
     * Parse a heartbeat document.  Returns false with @p error set on
     * malformed input or a schema mismatch.
     */
    static bool fromJson(const std::string &text, Heartbeat &out,
                         std::string &error);
};

/**
 * Publishes heartbeats to a file via atomic replacement.  Thread-safe;
 * the campaign driver calls write() from its heartbeat thread and once
 * more from signal/exit paths.
 */
class HeartbeatWriter
{
  public:
    explicit HeartbeatWriter(std::string path) : path_(std::move(path)) {}

    /** Serialize and atomically publish; false + error on IO failure. */
    bool write(const Heartbeat &hb, std::string &error) const;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace tps::obs

#endif // TPS_OBS_HEARTBEAT_H_
