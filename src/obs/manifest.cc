#include "obs/manifest.h"

#include <stdlib.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

namespace tps::obs
{

std::string
RunManifest::buildGitDescribe()
{
#ifdef TPS_GIT_DESCRIBE
    return TPS_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string
RunManifest::currentHostname()
{
    char buf[256] = {0};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf;
}

std::string
RunManifest::currentTimestampUtc()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

RunManifest
RunManifest::capture(const std::string &experiment, int argc, char **argv)
{
    RunManifest m;
    m.experiment = experiment;
    for (int i = 0; i < argc && argv != nullptr; ++i) {
        if (i != 0)
            m.command += ' ';
        m.command += argv[i];
    }
    m.gitDescribe = buildGitDescribe();
    m.hostname = currentHostname();
    m.timestampUtc = currentTimestampUtc();
    m.hardwareConcurrency = std::thread::hardware_concurrency();
    double load[1] = {-1.0};
    if (getloadavg(load, 1) == 1)
        m.loadAvg1m = load[0];
    const long page = sysconf(_SC_PAGESIZE);
    if (page > 0)
        m.pageSizeBytes = static_cast<std::uint64_t>(page);
    return m;
}

void
RunManifest::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("experiment").value(experiment);
    writer.key("command").value(command);
    writer.key("git_describe").value(gitDescribe);
    writer.key("hostname").value(hostname);
    writer.key("timestamp_utc").value(timestampUtc);
    writer.key("refs").value(refs);
    writer.key("window").value(window);
    writer.key("warmup_refs").value(warmupRefs);
    writer.key("seed").value(seed);
    writer.key("threads").value(threads);
    writer.key("trace_cache").value(traceCacheMode);
    writer.key("hardware_concurrency").value(hardwareConcurrency);
    writer.key("loadavg_1m").value(loadAvg1m);
    writer.key("page_size").value(pageSizeBytes);
    if (!extra.empty()) {
        writer.key("extra").beginObject();
        for (const auto &[name, value] : extra)
            writer.key(name).value(value);
        writer.endObject();
    }
    writer.endObject();
}

} // namespace tps::obs
